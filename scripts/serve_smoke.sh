#!/usr/bin/env bash
# Smoke test for the hdsd-serve daemon: pipe a scripted session of
# lookups, estimates, region extractions and updates through the binary
# and assert the replies. Mirrors the richer assertions in
# crates/service/tests/serve_session.rs but exercises the release binary
# exactly as a user would.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p hdsd-service --bin hdsd-serve

SESSION='{"op":"stats"}
{"op":"kappa","space":"core","id":0}
{"op":"kappa","space":"truss","vertices":[0,1]}
{"op":"estimate","space":"core","id":2,"iterations":3,"budget":50}
{"op":"region","space":"core","id":0}
{"op":"nuclei","space":"34","k":1}
{"op":"remove","edges":[[5,6]]}
{"op":"kappa","space":"core","id":6}
{"op":"update","insert":[[0,4],[1,4]],"remove":[]}
{"op":"kappa","space":"core","id":4}
{"op":"metrics"}'

# The session is fed with a pause before the shutdown op so the metrics
# listener stays up long enough to be scraped mid-flight, exactly like a
# Prometheus scrape loop against a live daemon.
METRICS_PORT="${METRICS_PORT:-19901}"
OUT=$(
  {
    printf '%s\n' "$SESSION"
    sleep 2
    printf '%s\n' '{"op":"shutdown"}'
  } | ./target/release/hdsd-serve --demo --spaces core,truss,34 \
        --metrics-addr "127.0.0.1:${METRICS_PORT}" --trace-slow-ms 0 &
  SERVE_PID=$!
  python3 - "$METRICS_PORT" > target/smoke_metrics.txt <<'PYEOF'
import sys, time, urllib.request
url = "http://127.0.0.1:%s/metrics" % sys.argv[1]
body = ""
# Retry until the exporter is up AND the first requests have landed in
# the registry (the session is racing us through the daemon's stdin).
for attempt in range(30):
    try:
        body = urllib.request.urlopen(url, timeout=2).read().decode()
        if "hdsd_request_micros" in body:
            break
    except Exception:
        pass
    time.sleep(0.2)
else:
    sys.exit("scrape failed or never saw request metrics: " + url)
sys.stdout.write(body)
PYEOF
  wait "$SERVE_PID"
)
echo "$OUT"

lines=$(printf '%s\n' "$OUT" | wc -l)
[ "$lines" -eq 12 ] || { echo "FAIL: expected 12 replies, got $lines"; exit 1; }

assert_line() { # line_number pattern description
  reply=$(printf '%s\n' "$OUT" | sed -n "${1}p")
  case "$reply" in
    *"$2"*) ;;
    *) echo "FAIL: reply $1 ($3) missing '$2': $reply"; exit 1 ;;
  esac
}

assert_line 1 '"edges":12' "stats sees the demo graph"
assert_line 1 '"uptime_seconds":' "stats reports uptime"
assert_line 1 '"requests_total":' "stats counts requests"
assert_line 2 '"kappa":3' "κ-core lookup"
assert_line 3 '"kappa":2' "κ-truss lookup by endpoints"
assert_line 4 '"interval":' "budgeted estimate returns the bound interval"
assert_line 5 '"num_vertices":6' "densest region around vertex 0"
assert_line 6 '"total":2' "two separate (3,4) nuclei (paper Fig. 3)"
assert_line 7 '"removed":1' "edge removal applied"
assert_line 8 '"kappa":0' "tail vertex left every core"
assert_line 9 '"inserted":2' "K5-closing insertions applied"
assert_line 10 '"kappa":4' "warm refresh found the new 4-core"
assert_line 11 '"requests_total"' "metrics op returns the registry"
assert_line 11 'request_micros{op=' "metrics op has per-op histograms"
assert_line 9 '"trace":' "slow threshold 0 attaches the span tree to the update"
assert_line 12 '"bye"' "clean shutdown"

for n in 1 2 3 4 5 6 7 8 9 10 11 12; do
  assert_line "$n" '"ok":true' "reply $n ok"
  assert_line "$n" '"micros":' "reply $n telemetry"
done

# The scraped Prometheus exposition: families the dashboards key on.
assert_scrape() { # pattern description
  grep -qF -- "$1" target/smoke_metrics.txt \
    || { echo "FAIL: metrics scrape missing '$1' ($2)"; exit 1; }
}
assert_scrape '# TYPE hdsd_requests_total counter' "request counter family"
assert_scrape 'hdsd_request_micros_bucket{op="stats"' "per-op latency histogram"
assert_scrape 'hdsd_graph_edges' "graph gauges"
assert_scrape 'hdsd_space_peel_micros' "startup peel latency"
assert_scrape 'hdsd_peel_containers_scanned_total' "peel work counters"

echo "PASS: hdsd-serve answered the scripted session and served a scrapeable metrics surface"
