#!/usr/bin/env bash
# Smoke test for the hdsd-serve daemon: pipe a scripted session of
# lookups, estimates, region extractions and updates through the binary
# and assert the replies. Mirrors the richer assertions in
# crates/service/tests/serve_session.rs but exercises the release binary
# exactly as a user would.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p hdsd-service --bin hdsd-serve

SESSION='{"op":"stats"}
{"op":"kappa","space":"core","id":0}
{"op":"kappa","space":"truss","vertices":[0,1]}
{"op":"estimate","space":"core","id":2,"iterations":3,"budget":50}
{"op":"region","space":"core","id":0}
{"op":"nuclei","space":"34","k":1}
{"op":"remove","edges":[[5,6]]}
{"op":"kappa","space":"core","id":6}
{"op":"update","insert":[[0,4],[1,4]],"remove":[]}
{"op":"kappa","space":"core","id":4}
{"op":"shutdown"}'

OUT=$(printf '%s\n' "$SESSION" | ./target/release/hdsd-serve --demo --spaces core,truss,34)
echo "$OUT"

lines=$(printf '%s\n' "$OUT" | wc -l)
[ "$lines" -eq 11 ] || { echo "FAIL: expected 11 replies, got $lines"; exit 1; }

assert_line() { # line_number pattern description
  reply=$(printf '%s\n' "$OUT" | sed -n "${1}p")
  case "$reply" in
    *"$2"*) ;;
    *) echo "FAIL: reply $1 ($3) missing '$2': $reply"; exit 1 ;;
  esac
}

assert_line 1 '"edges":12' "stats sees the demo graph"
assert_line 2 '"kappa":3' "κ-core lookup"
assert_line 3 '"kappa":2' "κ-truss lookup by endpoints"
assert_line 4 '"interval":' "budgeted estimate returns the bound interval"
assert_line 5 '"num_vertices":6' "densest region around vertex 0"
assert_line 6 '"total":2' "two separate (3,4) nuclei (paper Fig. 3)"
assert_line 7 '"removed":1' "edge removal applied"
assert_line 8 '"kappa":0' "tail vertex left every core"
assert_line 9 '"inserted":2' "K5-closing insertions applied"
assert_line 10 '"kappa":4' "warm refresh found the new 4-core"
assert_line 11 '"bye"' "clean shutdown"

for n in 1 2 3 4 5 6 7 8 9 10 11; do
  assert_line "$n" '"ok":true' "reply $n ok"
  assert_line "$n" '"micros":' "reply $n telemetry"
done

echo "PASS: hdsd-serve answered the scripted session correctly"
