#!/usr/bin/env python3
"""CI perf-regression gate over the --quick bench JSON artifacts.

Compares the deterministic *counter* metrics of a fresh quick bench run
(recomputation ratios, warm-vs-cold processed counts) against a committed
baseline with a relative tolerance, and fails the job on regression.
Wall-clock fields are deliberately ignored — CI runners are too noisy —
with one exception: the peel kind gates the flat-vs-walk speedup ratio
(same-process relative time, invoked with a wider tolerance that then
applies to all of that kind's metrics). Correctness flags (kappa_exact,
converged, kappa_identical, counters_match) are hard failures.

Usage:
  bench_gate.py compare --kind frontier \
      --baseline ci/bench_baseline_frontier.json \
      --fresh target/BENCH_frontier.quick.json [--tolerance 0.15]
  bench_gate.py compare --kind service \
      --baseline ci/bench_baseline_service.json \
      --fresh target/BENCH_service.quick.json [--tolerance 0.15]
  bench_gate.py selftest

Exit status: 0 = no regression, 1 = regression (or invalid input).
"""

import argparse
import json
import sys
from collections import defaultdict


def extract_frontier(doc):
    """Higher-is-better counters of the frontier ablation."""
    hard_failures = []
    for run in doc.get("runs", []):
        if not run.get("kappa_exact", False):
            hard_failures.append(f"run {run.get('space')}/{run.get('mode')} lost kappa exactness")
        if not run.get("converged", False):
            hard_failures.append(f"run {run.get('space')}/{run.get('mode')} did not converge")
    metrics = {}
    for row in doc.get("frontier_vs_full_scan", []):
        metrics[f"frontier_ratio[{row['space']}]"] = float(row["ratio"])
    return metrics, hard_failures


def extract_service(doc):
    """Higher-is-better counters of the serving bench: per-space mean
    cold/warm recomputation ratio across the update batches, plus the
    hierarchy repair's mean preserved-node fraction (how much of the
    forest each repair grafted back instead of rebuilding)."""
    ratios = defaultdict(list)
    for row in doc.get("refreshes", []):
        ratios[row["space"]].append(float(row["processed_ratio"]))
    metrics = {}
    for space, values in sorted(ratios.items()):
        metrics[f"refresh_processed_ratio[{space}]"] = sum(values) / len(values)
    preserved = defaultdict(list)
    for row in doc.get("hierarchy", []):
        preserved[row["space"]].append(float(row["preserved_fraction"]))
    for space, values in sorted(preserved.items()):
        metrics[f"hierarchy_preserved_fraction[{space}]"] = sum(values) / len(values)
    return metrics, []


def extract_peel(doc):
    """Counters and ratios of the exact-path peeling bench.

    Hard failures: any engine disagreeing on the exact decomposition
    (kappa_identical) or the flat/walk/parallel work counters diverging
    (counters_match) — both are determinism pins the bench itself asserts
    and re-reports here — plus the barrier-free parallel drain falling
    below its core-aware speedup floor, min(2.0, 0.5 * cores) over
    sequential flat (2x at >= 4 cores; proportionally less on smaller
    runners, and effectively ungated on 1-2 cores where there is no
    parallelism to measure). Gated metrics: the flat-vs-walk speedup on
    the container-heavy spaces (core's native layout is already CSR, its
    near-1 ratio would only gate noise), the capped parallel-requirement
    ratio (portable across machines, like the concurrent bench), plus the
    deterministic work counters (containers scanned, bucket moves) as
    drift floors."""
    hard_failures = []
    metrics = {}
    cores = float(doc.get("cores", 1))
    required = min(2.0, 0.5 * cores)
    for row in doc.get("spaces", []):
        space = row.get("space")
        if not row.get("kappa_identical", False):
            hard_failures.append(f"peel {space}: engines disagree on the exact decomposition")
        if not row.get("counters_match", False):
            hard_failures.append(f"peel {space}: work counters diverged across engines")
        if space != "core":
            metrics[f"peel_speedup_flat_vs_walk[{space}]"] = float(row["speedup_flat_vs_walk"])
        if "speedup_par_vs_flat" in row:
            par = float(row["speedup_par_vs_flat"])
            if par < required:
                hard_failures.append(
                    f"peel {space}: parallel drain at {par:.2f}x sequential flat is below the "
                    f"{required:.2f}x floor for {cores:.0f} cores"
                )
            metrics[f"peel_parallel_requirement_met[{space}]"] = min(
                par / max(required, 1e-9), 1.0
            )
        # "pin:" metrics are checked two-sided: the counters are
        # graph-determined constants, so drift in EITHER direction (more
        # work or less) is a regression, not just a drop.
        metrics[f"pin:peel_containers_scanned[{space}]"] = float(row["containers_scanned"])
        metrics[f"pin:peel_bucket_moves[{space}]"] = float(row["bucket_moves"])
    return metrics, hard_failures


def extract_telemetry(doc):
    """Overhead ceilings of the telemetry primitives.

    Each result row carries its measured ns/op and a pinned ceiling. The
    ceiling check is a hard failure — a counter add or a disabled span
    guard blowing through a 10-50x headroom ceiling means a lock, an
    allocation or a syscall crept into a hot path, not CI noise. The
    ceilings themselves are gated as two-sided "pin:" metrics so they
    cannot be quietly loosened without touching the committed baseline."""
    hard_failures = []
    metrics = {}
    for row in doc.get("results", []):
        name = row["name"]
        ns = float(row["ns_per_op"])
        ceiling = float(row["ceiling_ns"])
        if ns > ceiling:
            hard_failures.append(
                f"telemetry {name}: {ns:.1f} ns/op exceeds its {ceiling:.0f} ns ceiling"
            )
        metrics[f"pin:telemetry_ceiling_ns[{name}]"] = ceiling
    return metrics, hard_failures


def extract_concurrent(doc):
    """Requirements of the epoch-published concurrent serving bench.

    All checks are core-aware and computed from the fresh document alone
    (hard failures, not baseline-relative): max-thread lookup throughput
    under a churning writer must scale to at least min(4.0, 0.6 * cores)
    of single-thread, and read p99 during refresh must stay within 2x of
    quiescent — the latter only gated on >= 2 cores, where a reader can
    actually overlap the writer instead of timesharing with it. A reader
    observing a non-monotone epoch is a correctness failure.

    The baseline-relative metrics are capped at 1.0 ("requirement met
    with headroom") so the soft gate is portable across machines with
    different core counts; the raw scaling is reported ungated."""
    hard_failures = []
    cores = float(doc.get("cores", 1))
    required = min(4.0, 0.6 * cores)
    scaling = float(doc.get("scaling_max_vs_1", 0.0))
    if not doc.get("reads_monotone", False):
        hard_failures.append("concurrent: a reader observed a non-monotone epoch")
    if scaling < required:
        hard_failures.append(
            f"concurrent: {scaling:.2f}x max-thread scaling under churn is below the "
            f"{required:.2f}x floor for {cores:.0f} cores"
        )
    metrics = {"concurrent_scaling_requirement_met": min(scaling / max(required, 1e-9), 1.0)}
    p99 = doc.get("p99", {})
    ratio = float(p99.get("ratio", float("inf")))
    if cores >= 2:
        if ratio > 2.0:
            hard_failures.append(
                f"concurrent: read p99 during refresh is {ratio:.2f}x quiescent (bound 2.0x)"
            )
        metrics["concurrent_p99_requirement_met"] = min(2.0 / max(ratio, 1e-9), 1.0)
    return metrics, hard_failures


EXTRACTORS = {
    "frontier": extract_frontier,
    "service": extract_service,
    "peel": extract_peel,
    "telemetry": extract_telemetry,
    "concurrent": extract_concurrent,
}


def compare(kind, baseline_doc, fresh_doc, tolerance):
    """Returns a list of failure strings (empty = gate passes)."""
    extract = EXTRACTORS[kind]
    base_metrics, _ = extract(baseline_doc)
    fresh_metrics, hard_failures = extract(fresh_doc)
    failures = list(hard_failures)
    if not base_metrics:
        failures.append(f"baseline for kind {kind!r} contains no gated metrics")
    for name, base in sorted(base_metrics.items()):
        fresh = fresh_metrics.get(name)
        if fresh is None:
            failures.append(f"{name}: missing from fresh run (baseline {base:.3f})")
            continue
        if name.startswith("pin:"):
            # Pinned metric: deterministic value, regression in either
            # direction (the tolerance is only slack for intentional
            # baseline refreshes landing in the same commit).
            lo, hi = base * (1.0 - tolerance), base * (1.0 + tolerance)
            ok = lo <= fresh <= hi
            verdict = "ok" if ok else "DRIFT"
            print(f"  {name}: fresh {fresh:.3f} vs baseline {base:.3f} (band {lo:.3f}..{hi:.3f}) {verdict}")
            if not ok:
                failures.append(
                    f"{name}: {fresh:.3f} outside {lo:.3f}..{hi:.3f} (baseline {base:.3f}, tol {tolerance:.0%})"
                )
            continue
        floor = base * (1.0 - tolerance)
        verdict = "ok" if fresh >= floor else "REGRESSION"
        print(f"  {name}: fresh {fresh:.3f} vs baseline {base:.3f} (floor {floor:.3f}) {verdict}")
        if fresh < floor:
            failures.append(
                f"{name}: {fresh:.3f} fell below {floor:.3f} (baseline {base:.3f}, tol {tolerance:.0%})"
            )
    for name in sorted(set(fresh_metrics) - set(base_metrics)):
        print(f"  {name}: {fresh_metrics[name]:.3f} (new metric, not gated)")
    return failures


def selftest():
    """The gate must pass on identical input and fail on a regressed copy."""
    frontier = {
        "runs": [{"space": "s", "mode": "frontier", "kappa_exact": True, "converged": True}],
        "frontier_vs_full_scan": [
            {"space": "(1,2) k-core", "ratio": 5.0},
            {"space": "(2,3) k-truss", "ratio": 3.0},
        ],
    }
    service = {
        "refreshes": [
            {"space": "truss", "processed_ratio": 1.8},
            {"space": "truss", "processed_ratio": 2.2},
            {"space": "nucleus34", "processed_ratio": 2.0},
        ],
        "hierarchy": [
            {"space": "truss", "preserved_fraction": 0.95},
            {"space": "truss", "preserved_fraction": 0.85},
            {"space": "nucleus34", "preserved_fraction": 1.0},
        ],
    }
    peel = {
        "cores": 8,
        "spaces": [
            {
                "space": "core",
                "speedup_flat_vs_walk": 1.1,
                "speedup_par_vs_flat": 2.6,
                "containers_scanned": 1000,
                "bucket_moves": 400,
                "kappa_identical": True,
                "counters_match": True,
            },
            {
                "space": "truss",
                "speedup_flat_vs_walk": 1.8,
                "speedup_par_vs_flat": 3.1,
                "containers_scanned": 2000,
                "bucket_moves": 900,
                "kappa_identical": True,
                "counters_match": True,
            },
        ],
    }
    telemetry = {
        "results": [
            {"name": "counter_add", "ns_per_op": 6.0, "ceiling_ns": 100.0},
            {"name": "disabled_span", "ns_per_op": 1.5, "ceiling_ns": 50.0},
        ]
    }
    concurrent = {
        "cores": 8,
        "scaling_max_vs_1": 5.1,
        "p99": {"quiescent_us": 0.5, "refresh_us": 0.8, "ratio": 1.6},
        "reads_monotone": True,
    }
    checks = []
    checks.append(("identical frontier passes", compare("frontier", frontier, frontier, 0.1) == []))
    checks.append(("identical service passes", compare("service", service, service, 0.1) == []))
    checks.append(("identical peel passes", compare("peel", peel, peel, 0.1) == []))
    checks.append(
        ("identical telemetry passes", compare("telemetry", telemetry, telemetry, 0.1) == [])
    )

    regressed = json.loads(json.dumps(frontier))
    regressed["frontier_vs_full_scan"][0]["ratio"] = 1.2
    checks.append(("regressed ratio fails", compare("frontier", frontier, regressed, 0.1) != []))

    inexact = json.loads(json.dumps(frontier))
    inexact["runs"][0]["kappa_exact"] = False
    checks.append(("lost exactness fails", compare("frontier", frontier, inexact, 0.1) != []))

    slow_service = json.loads(json.dumps(service))
    for row in slow_service["refreshes"]:
        row["processed_ratio"] = 1.0
    checks.append(("regressed service fails", compare("service", service, slow_service, 0.1) != []))

    unpreserving = json.loads(json.dumps(service))
    for row in unpreserving["hierarchy"]:
        row["preserved_fraction"] = 0.1
    checks.append(
        ("regressed hierarchy preservation fails", compare("service", service, unpreserving, 0.1) != [])
    )

    slow_peel = json.loads(json.dumps(peel))
    slow_peel["spaces"][1]["speedup_flat_vs_walk"] = 1.0
    checks.append(("regressed peel speedup fails", compare("peel", peel, slow_peel, 0.1) != []))

    slow_drain = json.loads(json.dumps(peel))
    slow_drain["spaces"][1]["speedup_par_vs_flat"] = 1.2  # 8 cores demand min(2.0, 4.0) = 2.0x
    checks.append(("parallel drain below floor fails", compare("peel", peel, slow_drain, 0.1) != []))

    small_runner = json.loads(json.dumps(peel))
    small_runner["cores"] = 2  # floor drops to min(2.0, 1.0) = 1.0x
    for row in small_runner["spaces"]:
        row["speedup_par_vs_flat"] = 1.05
    checks.append(
        ("small-runner drain floor scales down", compare("peel", small_runner, small_runner, 0.1) == [])
    )

    inflated_peel = json.loads(json.dumps(peel))
    inflated_peel["spaces"][1]["bucket_moves"] = 2000  # common-mode work increase
    checks.append(("inflated peel counters fail", compare("peel", peel, inflated_peel, 0.1) != []))

    inexact_peel = json.loads(json.dumps(peel))
    inexact_peel["spaces"][0]["kappa_identical"] = False
    checks.append(("peel exactness loss fails", compare("peel", peel, inexact_peel, 0.1) != []))

    drifted_peel = json.loads(json.dumps(peel))
    drifted_peel["spaces"][1]["counters_match"] = False
    checks.append(("peel counter divergence fails", compare("peel", peel, drifted_peel, 0.1) != []))

    over_ceiling = json.loads(json.dumps(telemetry))
    over_ceiling["results"][1]["ns_per_op"] = 80.0  # a lock crept into the span guard
    checks.append(
        ("telemetry over ceiling fails", compare("telemetry", telemetry, over_ceiling, 0.1) != [])
    )

    loosened = json.loads(json.dumps(telemetry))
    loosened["results"][0]["ceiling_ns"] = 10_000.0  # quietly raising the bar
    checks.append(
        ("loosened telemetry ceiling fails", compare("telemetry", telemetry, loosened, 0.1) != [])
    )

    missing = {"refreshes": []}
    checks.append(("missing metrics fail", compare("service", service, missing, 0.1) != []))

    checks.append(
        ("identical concurrent passes", compare("concurrent", concurrent, concurrent, 0.1) == [])
    )
    flat = json.loads(json.dumps(concurrent))
    flat["scaling_max_vs_1"] = 1.1  # 8 cores demand min(4.0, 4.8) = 4.0x
    checks.append(("flat scaling curve fails", compare("concurrent", concurrent, flat, 0.1) != []))
    stalled = json.loads(json.dumps(concurrent))
    stalled["p99"]["ratio"] = 7.5  # readers blocked behind the writer
    checks.append(("refresh-stalled p99 fails", compare("concurrent", concurrent, stalled, 0.1) != []))
    single_core = json.loads(json.dumps(concurrent))
    single_core["cores"] = 1
    single_core["scaling_max_vs_1"] = 0.9  # >= min(4.0, 0.6) floor
    single_core["p99"]["ratio"] = 7.5  # timesharing, not a stall: not gated
    checks.append(
        ("single-core p99 is not gated", compare("concurrent", single_core, single_core, 0.1) == [])
    )
    regressed_epoch = json.loads(json.dumps(concurrent))
    regressed_epoch["reads_monotone"] = False
    checks.append(
        ("non-monotone epoch fails", compare("concurrent", concurrent, regressed_epoch, 0.1) != [])
    )

    ok = True
    for name, passed in checks:
        print(f"selftest: {name}: {'ok' if passed else 'FAILED'}")
        ok &= passed
    return 0 if ok else 1


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    sub = ap.add_subparsers(dest="cmd", required=True)
    cmp_p = sub.add_parser("compare", help="compare a fresh bench JSON against a baseline")
    cmp_p.add_argument("--kind", choices=sorted(EXTRACTORS), required=True)
    cmp_p.add_argument("--baseline", required=True)
    cmp_p.add_argument("--fresh", required=True)
    cmp_p.add_argument("--tolerance", type=float, default=0.15)
    sub.add_parser("selftest", help="verify the gate detects fabricated regressions")
    args = ap.parse_args()

    if args.cmd == "selftest":
        return selftest()

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
        with open(args.fresh) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench gate: cannot load inputs: {e}", file=sys.stderr)
        return 1

    print(f"bench gate [{args.kind}]: {args.fresh} vs {args.baseline}")
    failures = compare(args.kind, baseline, fresh, args.tolerance)
    if failures:
        for f in failures:
            print(f"bench gate: {f}", file=sys.stderr)
        return 1
    print("bench gate: no regression")
    return 0


if __name__ == "__main__":
    sys.exit(main())
