#!/usr/bin/env bash
# Crash-recovery smoke test for the hdsd-serve daemon, exercising the
# release binary exactly as an operator would: run a reference session to
# completion, then run the same update stream durably, `kill -9` the
# daemon halfway through, restart it over the same directory (WAL-tail
# replay), feed it the rest of the stream, and diff the κ answers against
# the uninterrupted reference. Mirrors the richer in-process assertions
# in crates/service/tests/crash_recovery.rs.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p hdsd-service --bin hdsd-serve

BIN=./target/release/hdsd-serve
DIR=$(mktemp -d "${TMPDIR:-/tmp}/hdsd_crash_smoke.XXXXXX")
trap 'rm -rf "$DIR"' EXIT

ARGS=(--demo --spaces core,truss,34)

# The update stream, split at the crash point, and the probes whose
# answers must be identical with and without the crash.
FIRST_HALF='{"op":"update","insert":[[0,4],[1,4]],"remove":[[5,6]]}'
SECOND_HALF='{"op":"update","insert":[[0,7],[4,7],[1,7]]}
{"op":"update","remove":[[2,4]]}'
PROBES='{"op":"kappa","space":"core","id":0}
{"op":"kappa","space":"core","id":4}
{"op":"kappa","space":"core","id":6}
{"op":"kappa","space":"truss","vertices":[0,1]}
{"op":"kappa","space":"34","vertices":[0,1,2]}
{"op":"nuclei","space":"34","k":1}'

probe_kappas() { # $1 = full session output → the probe replies only
  printf '%s\n' "$1" | grep -o '"kappa":[0-9]*\|"total":[0-9]*'
}

# 1. Reference: the whole stream in one uninterrupted process.
REF_OUT=$(printf '%s\n%s\n%s\n{"op":"shutdown"}\n' \
  "$FIRST_HALF" "$SECOND_HALF" "$PROBES" | "$BIN" "${ARGS[@]}")
REF=$(probe_kappas "$REF_OUT")
[ -n "$REF" ] || { echo "FAIL: reference session produced no probe answers"; exit 1; }

# 2. Durable run, killed -9 mid-stream. The daemon reads the first half,
#    acks it (fsync always), then blocks on an open pipe until SIGKILL —
#    no drain, no checkpoint, no goodbye.
FIFO="$DIR/requests"
mkfifo "$FIFO"
"$BIN" "${ARGS[@]}" --durable "$DIR/state" --fsync always \
  < "$FIFO" > "$DIR/first.out" &
SERVE_PID=$!
exec 3> "$FIFO"
printf '%s\n' "$FIRST_HALF" >&3
# Wait until the ack (with its wal_seq) is on disk, then kill without mercy.
for _ in $(seq 1 100); do
  grep -q '"wal_seq":1' "$DIR/first.out" 2>/dev/null && break
  sleep 0.1
done
grep -q '"wal_seq":1' "$DIR/first.out" || { echo "FAIL: first half never acked"; exit 1; }
kill -9 "$SERVE_PID" 2>/dev/null || true
wait "$SERVE_PID" 2>/dev/null || true
exec 3>&-

# 3. Restart over the same directory; finish the stream; probe.
REC_OUT=$(printf '%s\n%s\n{"op":"wal_stats"}\n{"op":"shutdown"}\n' \
  "$SECOND_HALF" "$PROBES" | "$BIN" "${ARGS[@]}" --durable "$DIR/state")
REC=$(probe_kappas "$REC_OUT")

printf '%s\n' "$REC_OUT" | grep -q '"snapshot_loaded":true' \
  || { echo "FAIL: restart did not load the checkpoint"; exit 1; }
printf '%s\n' "$REC_OUT" | grep -q '"replayed":1' \
  || { echo "FAIL: restart did not replay the killed batch from the WAL"; exit 1; }

if [ "$REF" != "$REC" ]; then
  echo "FAIL: κ diverged after kill -9 + recovery"
  echo "--- reference:"; printf '%s\n' "$REF"
  echo "--- recovered:"; printf '%s\n' "$REC"
  exit 1
fi

echo "PASS: kill -9 mid-stream, WAL replay, and resumed updates serve identical κ"
