#!/usr/bin/env bash
# Overload smoke test for the hdsd-serve daemon: flood the release
# binary over TCP at ~10x its admission capacity with pipelining
# clients and assert the overload contract end to end —
#
#   * every request is answered exactly once: ok, in-band error, or a
#     structured {"error":"overloaded","retry_after_ms":N} shed;
#   * the shed accounting balances: the stats overload counters equal
#     what the clients observed on the wire, and the in-flight/queue
#     gauges return to quiescent after the storm;
#   * memory stays bounded (VmHWM) — no unbounded queues or buffers;
#   * SIGTERM after the storm drains and exits cleanly.
#
# Mirrors crates/service/tests/overload_chaos.rs against the real
# release binary, exactly as an operator would meet it.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p hdsd-service --bin hdsd-serve

PORT="${OVERLOAD_SMOKE_PORT:-19917}"
RSS_LIMIT_MB="${OVERLOAD_SMOKE_RSS_MB:-1024}"

./target/release/hdsd-serve --synthetic 20000,8,0.5,7 --spaces core,truss \
  --listen "127.0.0.1:${PORT}" --readers 2 --max-inflight 8 \
  --brownout auto &
SERVE_PID=$!
trap 'kill -9 "$SERVE_PID" 2>/dev/null || true' EXIT

python3 - "$PORT" "$SERVE_PID" "$RSS_LIMIT_MB" <<'PYEOF'
import json, socket, sys, threading, time

port, pid, rss_limit_mb = int(sys.argv[1]), int(sys.argv[2]), int(sys.argv[3])
addr = ("127.0.0.1", port)

def connect(tries=100):
    for _ in range(tries):
        try:
            s = socket.create_connection(addr, timeout=10)
            s.settimeout(60)
            return s
        except OSError:
            time.sleep(0.1)
    sys.exit("FAIL: could not connect to hdsd-serve on %d" % port)

def ask(line):
    s = connect()
    f = s.makefile("rwb")
    f.write(line.encode() + b"\n"); f.flush()
    reply = f.readline()
    s.close()
    if not reply:
        sys.exit("FAIL: no reply to %s" % line)
    return json.loads(reply)

# Warm-up: the daemon serves before the storm.
v = ask('{"op":"kappa","space":"core","id":0}')
assert v.get("ok") is True, v

# The flood: 8 clients x 250 expensive requests, all pipelined before
# the first read -- ~10x the in-flight budget of 8, sustained.
REQS = 250
tallies = []          # (ok, errors, overloaded) per client
lock = threading.Lock()
failures = []

def flood(cid):
    try:
        s = connect()
        f = s.makefile("rwb")
        lines = []
        for i in range(REQS):
            n = (cid * REQS + i) % 10000
            if i % 3 == 0:
                lines.append('{"op":"region","space":"truss","id":%d}' % n)
            elif i % 3 == 1:
                lines.append('{"op":"estimate","space":"core","id":%d,"iterations":2,"budget":128}' % n)
            else:
                lines.append('{"op":"kappa","space":"core","id":%d}' % n)
        f.write(("\n".join(lines) + "\n").encode()); f.flush()
        ok = err = shed = 0
        for i in range(REQS):
            reply = f.readline()
            if not reply:
                raise AssertionError("client %d: connection closed at %d/%d" % (cid, i, REQS))
            v = json.loads(reply)
            if v.get("ok") is True:
                ok += 1
            elif v.get("error") == "overloaded":
                retry = v.get("retry_after_ms")
                assert isinstance(retry, int) and 25 <= retry <= 5000, v
                shed += 1
            else:
                assert "internal panic" not in str(v.get("error", "")), v
                err += 1
        s.close()
        with lock:
            tallies.append((ok, err, shed))
    except Exception as e:
        with lock:
            failures.append("client %d: %s" % (cid, e))

def rss_hwm_mb():
    with open("/proc/%d/status" % pid) as f:
        for line in f:
            if line.startswith("VmHWM"):
                return int(line.split()[1]) // 1024
    return 0

threads = [threading.Thread(target=flood, args=(c,)) for c in range(8)]
for t in threads: t.start()
peak = 0
while any(t.is_alive() for t in threads):
    peak = max(peak, rss_hwm_mb())
    time.sleep(0.1)
for t in threads: t.join()
peak = max(peak, rss_hwm_mb())

if failures:
    sys.exit("FAIL: " + "; ".join(failures))
total_ok = sum(t[0] for t in tallies)
total_err = sum(t[1] for t in tallies)
total_shed = sum(t[2] for t in tallies)
answered = total_ok + total_err + total_shed
assert answered == 8 * REQS, "FAIL: %d of %d requests answered" % (answered, 8 * REQS)
print("flood: %d ok, %d error, %d shed; peak RSS %d MB" % (total_ok, total_err, total_shed, peak))
if peak > rss_limit_mb:
    sys.exit("FAIL: peak RSS %d MB exceeds the %d MB bound" % (peak, rss_limit_mb))

# Shed accounting balances and the gauges are quiescent again (the
# stats request itself is the 1 in flight while it snapshots).
v = ask('{"op":"stats"}')
assert v.get("ok") is True, v
o = v["overload"]
assert o["shed"] == total_shed, "FAIL: daemon counted %d sheds, clients saw %d" % (o["shed"], total_shed)
assert o["cancelled"] == 0, o
assert o["inflight"] == 1, o
assert o["queue_depth"] == 0, o
assert o["max_inflight"] == 8, o
print("accounting: shed=%d cancelled=%d tier=%s -- balanced" % (o["shed"], o["cancelled"], o["brownout_tier"]))
PYEOF

# Clean SIGTERM drain: the daemon must exit 0 promptly.
kill -TERM "$SERVE_PID"
for _ in $(seq 1 100); do
  kill -0 "$SERVE_PID" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$SERVE_PID" 2>/dev/null; then
  echo "FAIL: daemon ignored SIGTERM after the flood"
  exit 1
fi
wait "$SERVE_PID" && rc=0 || rc=$?
[ "$rc" -eq 0 ] || { echo "FAIL: daemon exited $rc on SIGTERM"; exit 1; }
trap - EXIT

echo "PASS: flood at 10x capacity was shed/answered exactly, accounting balanced, RSS bounded, SIGTERM drained"
