#![warn(missing_docs)]
//! # hdsd — Hierarchical Dense Subgraph Discovery
//!
//! A production-quality Rust implementation of
//! *"Local Algorithms for Hierarchical Dense Subgraph Discovery"*
//! (Sarıyüce, Seshadhri, Pinar — PVLDB 12(1), 2018).
//!
//! The crate re-exports the full workspace:
//!
//! | module | contents |
//! |---|---|
//! | [`graph`] | CSR graphs, builders, I/O, triangles, 4-cliques |
//! | [`hindex`] | linear-time h-index kernels |
//! | [`parallel`] | scoped-thread runtime with dynamic scheduling |
//! | [`metrics`] | Kendall-Tau, Spearman, error statistics |
//! | [`datasets`] | seeded generators + the paper's dataset registry |
//! | [`nucleus`] | peeling, Snd, And, degree levels, hierarchy, queries |
//!
//! ## What this implements
//!
//! A **k-(r,s) nucleus** generalizes k-cores (r=1, s=2) and k-trusses
//! (r=2, s=3): it is a maximal S-connected union of s-cliques in which
//! every r-clique participates in at least `k` s-cliques. The **κ index**
//! of an r-clique is the largest such `k`. The paper's contribution —
//! reproduced here — is a family of *local* algorithms that converge to
//! the exact κ indices by iterating h-index computations on neighborhood
//! values, enabling parallelism, approximation with per-iteration
//! guarantees, and query-driven evaluation, none of which global peeling
//! supports.
//!
//! ## Quick start
//!
//! ```
//! use hdsd::prelude::*;
//!
//! // Build a graph: two 4-cliques sharing an edge.
//! let g = hdsd::graph::graph_from_edges([
//!     (0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3),
//!     (2, 4), (2, 5), (3, 4), (3, 5), (4, 5),
//! ]);
//!
//! // Exact truss decomposition by local iteration:
//! let space = TrussSpace::precomputed(&g);
//! let local = snd(&space, &LocalConfig::default());
//! let exact = peel(&space);
//! assert_eq!(local.tau, exact.kappa);
//!
//! // Hierarchy of dense subgraphs:
//! let forest = build_hierarchy(&space, &exact.kappa);
//! assert!(!forest.is_empty());
//! ```

pub use hdsd_datasets as datasets;
pub use hdsd_graph as graph;
pub use hdsd_hindex as hindex;
pub use hdsd_metrics as metrics;
pub use hdsd_nucleus as nucleus;
pub use hdsd_parallel as parallel;

/// Convenient top-level imports.
pub mod prelude {
    pub use hdsd_graph::{CsrGraph, GraphBuilder};
    pub use hdsd_nucleus::{
        and, and_without_notification, build_hierarchy, degree_levels, estimate_core_numbers,
        estimate_truss_numbers, local_estimate, peel, peel_parallel, snd, snd_with_observer,
        CliqueSpace, ConvergenceResult, CoreSpace, GenericSpace, LocalConfig, Nucleus34Space,
        Order, SweepMode, TrussSpace,
    };
    pub use hdsd_parallel::{ParallelConfig, SchedulerStats};
}
