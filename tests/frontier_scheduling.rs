//! Frontier-scheduling correctness: the worklist-driven And must be
//! indistinguishable from the ground truth (peeling) and from the other
//! sweep modes on *results*, while doing strictly less scanning work.
//!
//! The property test sweeps random graphs across every clique space; the
//! regression tests pin the scheduler-telemetry contract on a power-law
//! graph with a long convergence tail (the workload the frontier exists
//! for).

use hdsd::datasets::{erdos_renyi_gnm, holme_kim};
use hdsd::nucleus::Vertex13Space;
use hdsd::prelude::*;
use proptest::prelude::*;

fn frontier_cfg() -> LocalConfig {
    LocalConfig::default().sweep_mode(SweepMode::Frontier)
}

/// Frontier-And κ must equal the peeling ground truth on `space`, with and
/// without the flat container cache, sequentially and in parallel.
fn assert_frontier_exact<S: CliqueSpace>(space: &S) {
    let exact = peel(space).kappa;
    for cfg in [
        frontier_cfg(),
        frontier_cfg().without_container_cache(),
        LocalConfig::with_threads(3).sweep_mode(SweepMode::Frontier),
    ] {
        let r = and(space, &cfg, &Order::Natural);
        assert_eq!(r.tau, exact, "{} diverged from peeling", space.name());
        assert!(r.converged);
        assert_eq!(r.scheduler.items_skipped, 0, "frontier never pays idle visits");
        assert_eq!(r.scheduler.items_processed, r.total_processed());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn frontier_matches_peeling_on_all_spaces(
        n in 20u32..60,
        extra in 0usize..180,
        seed in 0u64..10_000,
    ) {
        let g = erdos_renyi_gnm(n, n as usize + extra, seed);
        assert_frontier_exact(&CoreSpace::new(&g));
        assert_frontier_exact(&TrussSpace::precomputed(&g));
        assert_frontier_exact(&Nucleus34Space::precomputed(&g));
        assert_frontier_exact(&Vertex13Space::new(&g));
    }

    #[test]
    fn frontier_agrees_with_flag_scan_and_full_scan(
        n in 30u32..80,
        extra in 20usize..200,
        seed in 0u64..10_000,
    ) {
        let g = erdos_renyi_gnm(n, n as usize + extra, seed);
        let sp = CoreSpace::new(&g);
        let frontier = and(&sp, &frontier_cfg(), &Order::Natural);
        let flags =
            and(&sp, &LocalConfig::default().sweep_mode(SweepMode::FlagScan), &Order::Natural);
        let full =
            and(&sp, &LocalConfig::default().sweep_mode(SweepMode::FullScan), &Order::Natural);
        prop_assert_eq!(&frontier.tau, &flags.tau);
        prop_assert_eq!(&frontier.tau, &full.tau);
        // Scanning cost ordering: the frontier touches exactly what it
        // processes; the flag scan touches n per sweep.
        prop_assert_eq!(frontier.scheduler.items_skipped, 0);
        prop_assert_eq!(
            flags.scheduler.items_processed + flags.scheduler.items_skipped,
            (sp.num_cliques() * flags.sweeps) as u64
        );
        // On fast-converging graphs the frontier's trailing certification
        // epoch (plus its ≤1-sweep wake lag vs the in-sweep flag pickup)
        // can add up to two extra full passes; beyond that it must win.
        let slack = 2 * sp.num_cliques() as u64;
        prop_assert!(frontier.total_processed() <= full.total_processed() + slack);
    }
}

/// On a graph with a long convergence tail, the frontier must recompute
/// strictly fewer r-cliques than `n × sweeps` (what any full-permutation
/// walk visits) — the telemetry that proves late sweeps got cheap.
#[test]
fn frontier_processed_beats_full_permutation_scanning() {
    let g = holme_kim(3_000, 4, 0.5, 7);
    let sp = CoreSpace::new(&g);
    let n = sp.num_cliques() as u64;

    let frontier = and(&sp, &frontier_cfg(), &Order::Natural);
    assert!(frontier.converged);
    assert!(
        frontier.total_processed() < n * frontier.sweeps as u64,
        "frontier did {} recomputations over {} sweeps of {} items — no better than scanning",
        frontier.total_processed(),
        frontier.sweeps,
        n
    );

    // The headline acceptance claim, at test scale: ≥2× fewer
    // recomputations than the no-notification baseline, identical κ.
    let full = and(&sp, &LocalConfig::default().sweep_mode(SweepMode::FullScan), &Order::Natural);
    assert_eq!(frontier.tau, full.tau);
    assert!(
        2 * frontier.total_processed() <= full.total_processed(),
        "frontier {} vs full-scan {}: less than 2x saving",
        frontier.total_processed(),
        full.total_processed()
    );
}

/// The same telemetry contract holds for the parallel frontier drain, and
/// chunk hand-out telemetry reflects the configured worker count.
#[test]
fn parallel_frontier_telemetry_and_exactness() {
    let g = holme_kim(2_000, 4, 0.5, 11);
    let sp = TrussSpace::precomputed(&g);
    let exact = peel(&sp).kappa;
    let n = sp.num_cliques() as u64;
    for threads in [2usize, 4] {
        let cfg = LocalConfig::with_threads(threads).sweep_mode(SweepMode::Frontier);
        let r = and(&sp, &cfg, &Order::Natural);
        assert_eq!(r.tau, exact, "threads={threads}");
        assert!(r.converged);
        assert_eq!(r.scheduler.chunks_per_worker.len(), threads);
        assert_eq!(r.scheduler.items_skipped, 0);
        assert!(r.scheduler.items_processed < n * r.sweeps as u64);
    }
}

/// GenericSpace exercises the walk path (it opts out of the flat cache):
/// frontier scheduling must still match peeling there.
#[test]
fn frontier_on_generic_space_matches_peeling() {
    let g = erdos_renyi_gnm(40, 160, 3);
    let sp = GenericSpace::new(&g, 1, 3);
    let exact = peel(&sp).kappa;
    let r = and(&sp, &frontier_cfg(), &Order::Natural);
    assert_eq!(r.tau, exact);
    assert!(r.converged);
}
