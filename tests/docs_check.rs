//! Keeps the architecture documentation honest.
//!
//! ARCHITECTURE.md names crates and test files by path; this test fails
//! the build when a named path stops existing (doc rot) or a workspace
//! crate is missing from the document (coverage rot), and checks that
//! README links to both ARCHITECTURE.md and docs/PROTOCOL.md.

use std::collections::BTreeSet;
use std::path::Path;

fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
}

fn read(rel: &str) -> String {
    std::fs::read_to_string(repo_root().join(rel))
        .unwrap_or_else(|e| panic!("{rel} must exist: {e}"))
}

/// Every `crates/...` path-like token in the text. Trailing punctuation
/// and markdown syntax are trimmed; `crates/<name>` placeholders are
/// skipped.
fn named_crate_paths(text: &str) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    for raw in text.split(|c: char| c.is_whitespace() || "()[]|`\"',".contains(c)) {
        let Some(rest) = raw.strip_prefix("crates/") else { continue };
        let rest = rest.trim_end_matches(|c: char| !c.is_alphanumeric());
        if rest.is_empty() || rest.contains('<') {
            continue;
        }
        // A path may point into a crate (crates/service/src/wal.rs);
        // existence of the full path is what's claimed.
        out.insert(format!("crates/{rest}"));
    }
    out
}

#[test]
fn architecture_md_names_only_real_paths_and_every_crate() {
    let arch = read("ARCHITECTURE.md");

    let named = named_crate_paths(&arch);
    assert!(!named.is_empty(), "ARCHITECTURE.md no longer names any crates/ paths");
    for path in &named {
        assert!(
            repo_root().join(path).exists(),
            "ARCHITECTURE.md names {path}, which does not exist — update the doc"
        );
    }

    // Coverage: every workspace member must appear. Vendor stand-ins
    // count as covered by naming their subdirectory.
    let manifest = read("Cargo.toml");
    for line in manifest.lines() {
        let line = line.trim().trim_start_matches('"');
        let Some(member) = line.strip_prefix("crates/") else { continue };
        let member = member.trim_end_matches(|c: char| !c.is_alphanumeric() && c != '/');
        let member = format!("crates/{member}");
        assert!(
            named.iter().any(|n| *n == member || n.starts_with(&format!("{member}/"))),
            "workspace member {member} is not named in ARCHITECTURE.md — document it"
        );
    }

    // The docs that ARCHITECTURE.md delegates to must exist too.
    for rel in ["docs/PROTOCOL.md", "README.md", "tests/docs_check.rs"] {
        assert!(arch.contains(rel), "ARCHITECTURE.md must reference {rel}");
        assert!(repo_root().join(rel).exists(), "{rel} must exist");
    }
}

#[test]
fn readme_links_the_architecture_and_protocol_docs() {
    let readme = read("README.md");
    for rel in ["ARCHITECTURE.md", "docs/PROTOCOL.md"] {
        assert!(readme.contains(&format!("({rel})")), "README.md must markdown-link {rel}");
        assert!(repo_root().join(rel).exists(), "{rel} must exist");
    }
}
