//! End-to-end pipelines across every crate: datasets → decomposition →
//! hierarchy/metrics/queries, exercising the public API exactly the way
//! the benchmark harness and a downstream user would.

use hdsd::datasets::Dataset;
use hdsd::metrics::{histogram, kendall_tau_b, relative_error_stats, spearman_rho};
use hdsd::prelude::*;

#[test]
fn dataset_to_truss_hierarchy_pipeline() {
    let g = Dataset::Fb.generate(0.15);
    let space = TrussSpace::precomputed(&g);
    let exact = peel(&space);
    let local = snd(&space, &LocalConfig::default());
    assert_eq!(local.tau, exact.kappa);
    assert!(local.converged);

    let forest = build_hierarchy(&space, &exact.kappa);
    assert!(!forest.is_empty());
    // Densities of the innermost nuclei beat the graph average.
    let overall = hdsd::graph::density(&g);
    let leaf_best = forest
        .leaves()
        .into_iter()
        .map(|l| forest.node_density(l, &space, &g).density)
        .fold(0.0f64, f64::max);
    assert!(leaf_best > overall, "leaf {leaf_best} vs overall {overall}");
}

#[test]
fn convergence_rate_curve_is_monotone_in_quality() {
    // The f1a experiment shape: Kendall-τ vs iterations must be
    // non-decreasing (within tolerance) and end at 1.0.
    let g = Dataset::Tw.generate(0.08);
    let space = TrussSpace::precomputed(&g);
    let exact = peel(&space).kappa;
    let mut kts = Vec::new();
    snd_with_observer(&space, &LocalConfig::default(), &mut |ev| {
        kts.push(kendall_tau_b(ev.tau, &exact));
    });
    assert!(kts.len() >= 2);
    assert!((kts.last().unwrap() - 1.0).abs() < 1e-9, "must end exact");
    // Quality roughly improves (allow small dips from rank ties).
    let mut max_seen = f64::MIN;
    let mut big_dips = 0;
    for &kt in &kts {
        if kt < max_seen - 0.05 {
            big_dips += 1;
        }
        max_seen = max_seen.max(kt);
    }
    assert_eq!(big_dips, 0, "quality curve has large regressions: {kts:?}");
    // Spearman agrees directionally at the end.
    assert!(spearman_rho(&exact, &exact) > 0.999);
}

#[test]
fn and_processes_less_work_than_snd_with_notifications() {
    let g = Dataset::Sse.generate(0.1);
    let space = CoreSpace::new(&g);
    let s = snd(&space, &LocalConfig::default());
    let a = and(&space, &LocalConfig::default(), &Order::Natural);
    assert_eq!(s.tau, a.tau);
    assert!(
        a.total_processed() < s.total_processed(),
        "And+notification {} should beat Snd {}",
        a.total_processed(),
        s.total_processed()
    );
}

#[test]
fn query_estimates_match_full_decomposition_trajectory() {
    let g = Dataset::Wnd.generate(0.15);
    let space = CoreSpace::new(&g);
    let mut snapshots: Vec<Vec<u32>> = Vec::new();
    snd_with_observer(&space, &LocalConfig::default(), &mut |ev| {
        snapshots.push(ev.tau.to_vec());
    });
    let queries: Vec<u32> = (0..10u32).map(|i| i * (g.num_vertices() as u32 / 10)).collect();
    for t in [1usize, 2] {
        let ests = estimate_core_numbers(&g, &queries, t);
        for (&q, est) in queries.iter().zip(&ests) {
            assert_eq!(est.estimate, snapshots[t - 1][q as usize], "q={q} t={t}");
        }
    }
}

#[test]
fn error_stats_and_histogram_compose() {
    let g = Dataset::Fb.generate(0.1);
    let space = CoreSpace::new(&g);
    let exact = peel(&space).kappa;
    let approx = snd(&space, &LocalConfig::default().max_iterations(2)).tau;
    let stats = relative_error_stats(&approx, &exact);
    assert!(stats.exact_fraction > 0.0 && stats.exact_fraction <= 1.0);
    let h = histogram(exact.iter().copied());
    assert_eq!(h.total as usize, exact.len());
    assert_eq!(h.max_value(), exact.iter().copied().max());
}

#[test]
fn degree_level_bound_holds_on_registry_graphs() {
    for d in [Dataset::Fb, Dataset::Sse] {
        let g = d.generate(0.08);
        let space = CoreSpace::new(&g);
        let lv = degree_levels(&space);
        let r = snd(&space, &LocalConfig::default());
        assert!(
            r.iterations_to_converge() <= lv.snd_iteration_bound(),
            "{}: {} > {}",
            d.short_name(),
            r.iterations_to_converge(),
            lv.snd_iteration_bound()
        );
    }
}

#[test]
fn io_round_trip_preserves_decomposition() {
    let g = Dataset::Tw.generate(0.05);
    let dir = std::env::temp_dir().join("hdsd_e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tw.txt");
    hdsd::graph::io::write_edge_list(&g, &path).unwrap();
    let g2 = hdsd::graph::io::read_edge_list(&path).unwrap();
    std::fs::remove_file(&path).ok();
    let k1 = peel(&CoreSpace::new(&g)).kappa;
    let k2 = peel(&CoreSpace::new(&g2)).kappa;
    assert_eq!(k1, k2);
}

#[test]
fn parallel_consistency_across_thread_counts() {
    let g = Dataset::Hg.generate(0.05);
    let space = TrussSpace::precomputed(&g);
    let baseline = peel(&space).kappa;
    for threads in [1usize, 2, 3, 8] {
        let r = snd(&space, &LocalConfig::with_threads(threads));
        assert_eq!(r.tau, baseline, "threads={threads}");
        let a = and(&space, &LocalConfig::with_threads(threads), &Order::Natural);
        assert_eq!(a.tau, baseline, "and threads={threads}");
    }
}
