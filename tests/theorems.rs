//! Property tests for the paper's theorems, run end-to-end across crates.
//!
//! * Theorem 1 — monotonicity (`τ_{t+1} ≤ τ_t`) and the lower bound
//!   (`τ_t ≥ κ`), for every space.
//! * Theorem 2 — κ is non-decreasing across degree levels.
//! * Theorem 3 / Lemma 2 — r-cliques in level `L_i` converge within `i`
//!   iterations; the level count bounds Snd's iteration count.
//! * Theorem 4 — And in non-decreasing final-κ order converges in a single
//!   updating sweep.

use hdsd::prelude::*;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = hdsd::graph::CsrGraph> {
    proptest::collection::vec((0u32..20, 0u32..20), 0..100)
        .prop_map(|edges| hdsd::graph::GraphBuilder::new().edges(edges).build())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn theorem1_monotone_and_lower_bounded(g in arb_graph()) {
        let sp = CoreSpace::new(&g);
        let exact = peel(&sp).kappa;
        let mut prev: Option<Vec<u32>> = None;
        let mut ok = true;
        snd_with_observer(&sp, &LocalConfig::default(), &mut |ev| {
            if let Some(p) = &prev {
                ok &= ev.tau.iter().zip(p).all(|(&a, &b)| a <= b);
            }
            ok &= ev.tau.iter().zip(&exact).all(|(&a, &b)| a >= b);
            prev = Some(ev.tau.to_vec());
        });
        prop_assert!(ok, "Theorem 1 violated");
    }

    #[test]
    fn theorem1_for_truss(g in arb_graph()) {
        let sp = TrussSpace::precomputed(&g);
        let exact = peel(&sp).kappa;
        let mut prev: Option<Vec<u32>> = None;
        let mut ok = true;
        snd_with_observer(&sp, &LocalConfig::default(), &mut |ev| {
            if let Some(p) = &prev {
                ok &= ev.tau.iter().zip(p).all(|(&a, &b)| a <= b);
            }
            ok &= ev.tau.iter().zip(&exact).all(|(&a, &b)| a >= b);
            prev = Some(ev.tau.to_vec());
        });
        prop_assert!(ok);
    }

    #[test]
    fn theorem2_levels_sort_kappa(g in arb_graph()) {
        let sp = CoreSpace::new(&g);
        let lv = degree_levels(&sp);
        let kappa = peel(&sp).kappa;
        for i in 0..kappa.len() {
            for j in 0..kappa.len() {
                if lv.level[i] < lv.level[j] {
                    prop_assert!(
                        kappa[i] <= kappa[j],
                        "level({i})={} < level({j})={} but κ({i})={} > κ({j})={}",
                        lv.level[i], lv.level[j], kappa[i], kappa[j]
                    );
                }
            }
        }
    }

    #[test]
    fn theorem3_level_i_converges_within_i_iterations(g in arb_graph()) {
        let sp = CoreSpace::new(&g);
        let lv = degree_levels(&sp);
        let exact = peel(&sp).kappa;
        let mut snapshots: Vec<Vec<u32>> = Vec::new();
        snd_with_observer(&sp, &LocalConfig::default(), &mut |ev| {
            snapshots.push(ev.tau.to_vec());
        });
        // After iteration t (1-based snapshots), all cliques in levels <= t
        // must equal κ. (Level-0 cliques already start at κ = τ0.)
        for (t, snap) in snapshots.iter().enumerate() {
            let iter = t + 1;
            for i in 0..exact.len() {
                if (lv.level[i] as usize) <= iter {
                    prop_assert_eq!(
                        snap[i], exact[i],
                        "level {} clique {} not converged by iteration {}",
                        lv.level[i], i, iter
                    );
                }
            }
        }
        // Lemma 2: total updating iterations bounded by the level count.
        let updating = snapshots.len().saturating_sub(1);
        prop_assert!(updating <= lv.num_levels.max(1));
    }

    #[test]
    fn theorem4_single_sweep_in_peel_order(g in arb_graph()) {
        for as_truss in [false, true] {
            let iters = if as_truss {
                let sp = TrussSpace::precomputed(&g);
                let p = peel(&sp);
                let r = and(&sp, &LocalConfig::default(), &Order::Custom(p.order.clone()));
                prop_assert_eq!(&r.tau, &p.kappa);
                r.iterations_to_converge()
            } else {
                let sp = CoreSpace::new(&g);
                let p = peel(&sp);
                let r = and(&sp, &LocalConfig::default(), &Order::Custom(p.order.clone()));
                prop_assert_eq!(&r.tau, &p.kappa);
                r.iterations_to_converge()
            };
            prop_assert!(iters <= 1, "Theorem 4: took {iters} updating sweeps");
        }
    }

    #[test]
    fn resume_from_any_upper_bound_reaches_kappa(
        g in arb_graph(),
        bumps in proptest::collection::vec(0u32..6, 20),
    ) {
        // The warm-start property behind incremental maintenance: And
        // started from any pointwise upper bound τ_init ≥ κ converges to
        // exactly κ.
        use hdsd::nucleus::and_resume;
        let sp = CoreSpace::new(&g);
        let exact = peel(&sp).kappa;
        let tau_init: Vec<u32> = exact
            .iter()
            .zip(bumps.iter().cycle())
            .map(|(&k, &b)| k + b)
            .collect();
        let r = and_resume(&sp, &LocalConfig::default(), &Order::Natural, tau_init, &mut |_| {});
        prop_assert!(r.converged);
        prop_assert_eq!(&r.tau, &exact);

        // Also from the extreme upper bound (everything huge).
        let huge = vec![u32::MAX / 2; exact.len()];
        let r2 = and_resume(&sp, &LocalConfig::default(), &Order::Reverse, huge, &mut |_| {});
        prop_assert_eq!(&r2.tau, &exact);

        // And for the truss space with a stale-style bound.
        let ts = TrussSpace::precomputed(&g);
        let exact_t = peel(&ts).kappa;
        let init_t: Vec<u32> = exact_t.iter().map(|&k| k + 2).collect();
        let r3 = and_resume(&ts, &LocalConfig::default(), &Order::Natural, init_t, &mut |_| {});
        prop_assert_eq!(&r3.tau, &exact_t);
    }

    #[test]
    fn incremental_core_matches_rebuild(
        g in arb_graph(),
        extra in proptest::collection::vec((0u32..22, 0u32..22), 1..10),
    ) {
        use hdsd::nucleus::IncrementalCore;
        let mut inc = IncrementalCore::new(g);
        inc.insert_edges(&extra);
        let expect = peel(&CoreSpace::new(inc.graph())).kappa;
        prop_assert_eq!(inc.core_numbers(), expect.as_slice());
        // then delete half of what exists
        let victims: Vec<(u32, u32)> =
            inc.graph().edges().iter().copied().step_by(2).collect();
        inc.remove_edges(&victims);
        let expect = peel(&CoreSpace::new(inc.graph())).kappa;
        prop_assert_eq!(inc.core_numbers(), expect.as_slice());
    }

    #[test]
    fn kcore_definition_holds(g in arb_graph()) {
        // κ₂ correctness against the definition: the subgraph induced by
        // {v : κ(v) >= k} has minimum degree >= k for every realized k.
        let sp = CoreSpace::new(&g);
        let kappa = peel(&sp).kappa;
        let mut ks: Vec<u32> = kappa.clone();
        ks.sort_unstable();
        ks.dedup();
        for &k in ks.iter().filter(|&&k| k > 0) {
            let members: Vec<u32> = (0..g.num_vertices() as u32)
                .filter(|&v| kappa[v as usize] >= k)
                .collect();
            let sub = hdsd::graph::induced_subgraph(&g, &members);
            for v in sub.graph.vertices() {
                prop_assert!(
                    sub.graph.degree(v) >= k as usize,
                    "vertex {} has degree {} < k={k} in the {k}-core",
                    sub.original[v as usize],
                    sub.graph.degree(v)
                );
            }
        }
    }

    #[test]
    fn ktruss_definition_holds(g in arb_graph()) {
        // Edges with κ₃ >= k, as a subgraph, give every such edge >= k
        // triangles within the subgraph.
        let sp = TrussSpace::precomputed(&g);
        let kappa = peel(&sp).kappa;
        let mut ks: Vec<u32> = kappa.clone();
        ks.sort_unstable();
        ks.dedup();
        for &k in ks.iter().filter(|&&k| k > 0) {
            let edges: Vec<(u32, u32)> = (0..g.num_edges())
                .filter(|&e| kappa[e] >= k)
                .map(|e| g.edge_endpoints(e as u32))
                .collect();
            let sub = hdsd::graph::GraphBuilder::new().edges(edges.iter().copied()).build();
            let counts = hdsd::graph::count_triangles_per_edge(&sub);
            for (e, &c) in counts.iter().enumerate() {
                prop_assert!(
                    c >= k,
                    "edge {:?} has {} < k={k} triangles in the {k}-truss",
                    sub.edge_endpoints(e as u32),
                    c
                );
            }
        }
    }
}
