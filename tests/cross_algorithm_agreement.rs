//! Cross-crate integration: every algorithm (peeling sequential/parallel,
//! Snd sequential/parallel, And in several orders with and without
//! notification) must produce identical κ indices on arbitrary graphs, for
//! every decomposition space — including the explicit-hypergraph generic
//! space as an independent oracle.

use hdsd::prelude::*;
use proptest::prelude::*;

/// Arbitrary small graph as an edge list over `n ≤ 24` vertices.
fn arb_graph() -> impl Strategy<Value = hdsd::graph::CsrGraph> {
    proptest::collection::vec((0u32..24, 0u32..24), 0..120)
        .prop_map(|edges| hdsd::graph::GraphBuilder::new().edges(edges).build())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn core_all_algorithms_agree(g in arb_graph()) {
        let sp = CoreSpace::new(&g);
        let exact = peel(&sp).kappa;
        prop_assert_eq!(&snd(&sp, &LocalConfig::default()).tau, &exact);
        prop_assert_eq!(&and(&sp, &LocalConfig::default(), &Order::Natural).tau, &exact);
        prop_assert_eq!(&and(&sp, &LocalConfig::default(), &Order::Reverse).tau, &exact);
        prop_assert_eq!(&and(&sp, &LocalConfig::default(), &Order::Random(1)).tau, &exact);
        prop_assert_eq!(&and_without_notification(&sp, &LocalConfig::default(), &Order::Natural).tau, &exact);
        prop_assert_eq!(&peel_parallel(&sp, ParallelConfig::with_threads(3).chunk(4)).kappa, &exact);
        prop_assert_eq!(&snd(&sp, &LocalConfig::with_threads(3)).tau, &exact);
        prop_assert_eq!(&and(&sp, &LocalConfig::with_threads(3), &Order::Natural).tau, &exact);
    }

    #[test]
    fn truss_all_algorithms_agree(g in arb_graph()) {
        let pre = TrussSpace::precomputed(&g);
        let fly = TrussSpace::on_the_fly(&g);
        let exact = peel(&pre).kappa;
        prop_assert_eq!(&peel(&fly).kappa, &exact);
        prop_assert_eq!(&snd(&pre, &LocalConfig::default()).tau, &exact);
        prop_assert_eq!(&snd(&fly, &LocalConfig::default()).tau, &exact);
        prop_assert_eq!(&and(&pre, &LocalConfig::default(), &Order::IncreasingDegree).tau, &exact);
        prop_assert_eq!(&and(&fly, &LocalConfig::with_threads(2), &Order::Natural).tau, &exact);
    }

    #[test]
    fn nucleus34_all_algorithms_agree(g in arb_graph()) {
        let pre = Nucleus34Space::precomputed(&g);
        let fly = Nucleus34Space::on_the_fly(&g);
        let exact = peel(&pre).kappa;
        prop_assert_eq!(&peel(&fly).kappa, &exact);
        prop_assert_eq!(&snd(&pre, &LocalConfig::default()).tau, &exact);
        prop_assert_eq!(&and(&fly, &LocalConfig::default(), &Order::Natural).tau, &exact);
    }

    #[test]
    fn generic_space_is_consistent_oracle(g in arb_graph()) {
        // (1,2) generic == core space.
        let core = CoreSpace::new(&g);
        let gen12 = GenericSpace::new(&g, 1, 2);
        prop_assert_eq!(&peel(&gen12).kappa, &peel(&core).kappa);

        // (2,3) generic == truss space (ids align lexicographically).
        let truss = TrussSpace::precomputed(&g);
        let gen23 = GenericSpace::new(&g, 2, 3);
        prop_assert_eq!(&peel(&gen23).kappa, &peel(&truss).kappa);

        // Exotic (1,3): vertices by triangle participation — snd == peel.
        let gen13 = GenericSpace::new(&g, 1, 3);
        prop_assert_eq!(&snd(&gen13, &LocalConfig::default()).tau, &peel(&gen13).kappa);

        // Exotic (2,4): edges by K4 participation — and == peel.
        let gen24 = GenericSpace::new(&g, 2, 4);
        prop_assert_eq!(
            &and(&gen24, &LocalConfig::default(), &Order::Natural).tau,
            &peel(&gen24).kappa
        );
    }

    #[test]
    fn generic_34_matches_specialized_34(g in arb_graph()) {
        // Triangle id orders differ between the TriangleList (orientation
        // order) and GenericSpace (lexicographic), so compare multisets of
        // (sorted triangle vertices, κ).
        let spec = Nucleus34Space::precomputed(&g);
        let gen = GenericSpace::new(&g, 3, 4);
        let k_spec = peel(&spec).kappa;
        let k_gen = peel(&gen).kappa;
        let mut a: Vec<([u32; 3], u32)> = spec
            .triangles()
            .tri_verts
            .iter()
            .zip(&k_spec)
            .map(|(vs, &k)| (*vs, k))
            .collect();
        let mut b: Vec<([u32; 3], u32)> = (0..gen.num_r_cliques())
            .map(|i| {
                let vs = gen.r_clique_vertices(i);
                ([vs[0], vs[1], vs[2]], k_gen[i])
            })
            .collect();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }
}

#[test]
fn large_scale_agreement_on_registry_dataset() {
    // One heavier end-to-end check on a registry stand-in.
    let g = hdsd::datasets::Dataset::Sse.generate(0.2);
    let core = CoreSpace::new(&g);
    let exact = peel(&core).kappa;
    assert_eq!(snd(&core, &LocalConfig::with_threads(4)).tau, exact);
    assert_eq!(and(&core, &LocalConfig::default(), &Order::Natural).tau, exact);

    let truss = TrussSpace::precomputed(&g);
    let exact_t = peel(&truss).kappa;
    assert_eq!(snd(&truss, &LocalConfig::with_threads(2)).tau, exact_t);
}
