//! Adversarial structures for the convergence theory: the paper's degree
//! levels model the *worst case* for iterative convergence, and these
//! graphs realize it (long paths and lollipops force information to travel
//! one hop per synchronous iteration), alongside stress shapes (stars,
//! cliques, disconnected unions) that probe boundary behaviour.

use hdsd::graph::graph_from_edges;
use hdsd::prelude::*;

/// Path graph 0-1-…-(n−1).
fn path(n: u32) -> hdsd::graph::CsrGraph {
    graph_from_edges((0..n - 1).map(|i| (i, i + 1)))
}

/// Lollipop: K_k clique with a path of length `tail` attached.
fn lollipop(k: u32, tail: u32) -> hdsd::graph::CsrGraph {
    let mut edges = Vec::new();
    for u in 0..k {
        for v in u + 1..k {
            edges.push((u, v));
        }
    }
    for i in 0..tail {
        edges.push((k - 1 + i, k + i));
    }
    graph_from_edges(edges)
}

#[test]
fn path_needs_linear_iterations() {
    // On a path, τ of interior vertices drops only when the wave of 1s
    // reaches them: Snd needs ~n/2 iterations — degree levels predict it.
    let n = 101;
    let g = path(n);
    let sp = CoreSpace::new(&g);
    let lv = degree_levels(&sp);
    let r = snd(&sp, &LocalConfig::default());
    assert!(r.converged);
    assert!(r.tau.iter().all(|&k| k == 1));
    // levels = ceil(n/2); iterations within bound and of the same order.
    assert_eq!(lv.num_levels, (n as usize).div_ceil(2));
    assert!(r.iterations_to_converge() <= lv.snd_iteration_bound());
    assert!(
        r.iterations_to_converge() >= lv.num_levels / 2,
        "path should be a near-tight case: {} vs {} levels",
        r.iterations_to_converge(),
        lv.num_levels
    );
}

#[test]
fn lollipop_kappa_and_slow_tail() {
    let g = lollipop(6, 30);
    let sp = CoreSpace::new(&g);
    let exact = peel(&sp);
    // clique vertices: κ = 5; tail: κ = 1.
    for v in 0..5 {
        assert_eq!(exact.kappa[v], 5);
    }
    assert_eq!(exact.kappa[35], 1);
    let r = snd(&sp, &LocalConfig::default());
    assert_eq!(r.tau, exact.kappa);
    // The tail forces many iterations even though the clique stabilizes
    // instantly: locality of the algorithm made visible.
    assert!(r.iterations_to_converge() >= 10);
}

#[test]
fn star_graph_boundaries() {
    // Star with 5000 leaves: hub degree huge, κ = 1 everywhere.
    let g = graph_from_edges((1..=5000u32).map(|i| (0, i)));
    let sp = CoreSpace::new(&g);
    let r = snd(&sp, &LocalConfig::default());
    assert!(r.tau.iter().all(|&k| k == 1));
    // Exactly one updating sweep: the hub's h-index over 5000 ones is 1.
    assert_eq!(r.iterations_to_converge(), 1);
    // Truss: no triangles at all.
    let t = TrussSpace::precomputed(&g);
    assert!(peel(&t).kappa.iter().all(|&k| k == 0));
}

#[test]
fn clique_is_immediate_for_all_spaces() {
    let mut edges = Vec::new();
    for u in 0..12u32 {
        for v in u + 1..12 {
            edges.push((u, v));
        }
    }
    let g = graph_from_edges(edges);
    let core = CoreSpace::new(&g);
    let r = snd(&core, &LocalConfig::default());
    assert!(r.tau.iter().all(|&k| k == 11));
    assert_eq!(r.iterations_to_converge(), 0, "degrees are already κ");
    let truss = TrussSpace::precomputed(&g);
    assert!(snd(&truss, &LocalConfig::default()).tau.iter().all(|&k| k == 10));
    let nuc = Nucleus34Space::precomputed(&g);
    assert!(snd(&nuc, &LocalConfig::default()).tau.iter().all(|&k| k == 9));
}

#[test]
fn disconnected_components_decompose_independently() {
    // K5 ∪ path ∪ isolated vertices.
    let mut edges = Vec::new();
    for u in 0..5u32 {
        for v in u + 1..5 {
            edges.push((u, v));
        }
    }
    edges.extend([(10, 11), (11, 12)]);
    let g = hdsd::graph::GraphBuilder::new().with_num_vertices(20).edges(edges).build();
    let sp = CoreSpace::new(&g);
    let kappa = peel(&sp).kappa;
    assert!(kappa[0..5].iter().all(|&k| k == 4));
    assert_eq!(&kappa[10..13], &[1, 1, 1]);
    assert!(kappa[13..].iter().all(|&k| k == 0));
    assert_eq!(snd(&sp, &LocalConfig::default()).tau, kappa);
    // Hierarchy: one root per component with s-cliques.
    let h = build_hierarchy(&sp, &kappa);
    assert_eq!(h.roots.len(), 2);
}

#[test]
fn two_level_onion_converges_level_by_level() {
    // Rings of decreasing connectivity around a core clique: checks that
    // convergence proceeds outside-in as Theorem 3 describes.
    // K6 core (κ=5), each core vertex also wired to a C12 ring (κ=2).
    let mut edges = Vec::new();
    for u in 0..6u32 {
        for v in u + 1..6 {
            edges.push((u, v));
        }
    }
    for i in 0..12u32 {
        edges.push((6 + i, 6 + (i + 1) % 12));
    }
    edges.push((0, 6));
    let g = graph_from_edges(edges);
    let sp = CoreSpace::new(&g);
    let exact = peel(&sp).kappa;
    let lv = degree_levels(&sp);
    let mut per_iter_convergence: Vec<usize> = Vec::new();
    snd_with_observer(&sp, &LocalConfig::default(), &mut |ev| {
        per_iter_convergence.push(ev.tau.iter().zip(&exact).filter(|(&a, &b)| a == b).count());
    });
    // convergence count is monotone non-decreasing over iterations
    assert!(per_iter_convergence.windows(2).all(|w| w[0] <= w[1]));
    // and everything in levels <= 1 is converged after the first sweep
    let after_one = {
        let r1 = snd(&sp, &LocalConfig::default().max_iterations(1));
        exact.iter().enumerate().filter(|&(i, _)| lv.level[i] <= 1).all(|(i, &k)| r1.tau[i] == k)
    };
    assert!(after_one, "Theorem 3 at t=1");
}

#[test]
fn duplicate_heavy_input_is_canonicalized_before_decomposition() {
    // The builder dedupes; decomposition must be independent of input noise.
    let clean = graph_from_edges([(0, 1), (1, 2), (2, 0)]);
    let noisy =
        graph_from_edges([(0, 1), (1, 0), (0, 1), (1, 2), (2, 1), (2, 0), (0, 2), (2, 2), (1, 1)]);
    assert_eq!(clean.edges(), noisy.edges());
    assert_eq!(peel(&CoreSpace::new(&clean)).kappa, peel(&CoreSpace::new(&noisy)).kappa);
}

#[test]
fn max_iterations_zero_like_behaviour() {
    // A 1-iteration cap still yields a valid decomposition bound.
    let g = lollipop(5, 10);
    let sp = CoreSpace::new(&g);
    let exact = peel(&sp).kappa;
    let r = snd(&sp, &LocalConfig::default().max_iterations(1));
    assert!(!r.converged);
    assert_eq!(r.sweeps, 1);
    for (a, k) in r.tau.iter().zip(&exact) {
        assert!(a >= k);
    }
}
