//! Definitional validation of the hierarchy output: every node the forest
//! reports must actually *be* a k-(r,s) nucleus — minimum S-degree ≥ k
//! inside the materialized subgraph, S-connected, and maximal (the parent
//! fails the child's k).

use hdsd::graph::GraphBuilder;
use hdsd::prelude::*;
use proptest::prelude::*;

fn arb_graph() -> impl Strategy<Value = hdsd::graph::CsrGraph> {
    proptest::collection::vec((0u32..18, 0u32..18), 10..90)
        .prop_map(|edges| GraphBuilder::new().edges(edges).build())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn core_nodes_are_k_cores(g in arb_graph()) {
        let sp = CoreSpace::new(&g);
        let kappa = peel(&sp).kappa;
        let forest = build_hierarchy(&sp, &kappa);
        for id in 0..forest.len() as u32 {
            let k = forest.nodes[id as usize].k;
            let verts = forest.member_vertices(id, &sp);
            let sub = hdsd::graph::induced_subgraph(&g, &verts);
            // minimum degree >= k
            for v in sub.graph.vertices() {
                prop_assert!(
                    sub.graph.degree(v) >= k as usize,
                    "node {id} (k={k}): vertex {} has degree {}",
                    sub.original[v as usize],
                    sub.graph.degree(v)
                );
            }
            // connected
            if sub.graph.num_vertices() > 0 {
                let cc = hdsd::graph::connected_components(&sub.graph);
                prop_assert_eq!(cc.num_components, 1, "node {} not connected", id);
            }
        }
    }

    #[test]
    fn truss_nodes_are_k_trusses(g in arb_graph()) {
        let sp = TrussSpace::precomputed(&g);
        let kappa = peel(&sp).kappa;
        let forest = build_hierarchy(&sp, &kappa);
        for id in 0..forest.len() as u32 {
            let k = forest.nodes[id as usize].k;
            let member_edges = forest.member_cliques(id);
            // Subgraph formed by exactly the member edges.
            let sub_edges: Vec<(u32, u32)> = member_edges
                .iter()
                .map(|&e| g.edge_endpoints(e))
                .collect();
            let sub = GraphBuilder::new().edges(sub_edges.iter().copied()).build();
            let counts = hdsd::graph::count_triangles_per_edge(&sub);
            for (e, &c) in counts.iter().enumerate() {
                prop_assert!(
                    c >= k,
                    "node {id} (k={k}): edge {:?} has only {c} triangles",
                    sub.edge_endpoints(e as u32)
                );
            }
        }
    }

    #[test]
    fn maximality_parent_k_is_strictly_smaller(g in arb_graph()) {
        for as_truss in [false, true] {
            let forest = if as_truss {
                let sp = TrussSpace::precomputed(&g);
                let kappa = peel(&sp).kappa;
                build_hierarchy(&sp, &kappa)
            } else {
                let sp = CoreSpace::new(&g);
                let kappa = peel(&sp).kappa;
                build_hierarchy(&sp, &kappa)
            };
            for node in &forest.nodes {
                if let Some(p) = node.parent {
                    prop_assert!(forest.nodes[p as usize].k < node.k);
                }
                // Sizes add up.
                let child_sum: usize = node
                    .children
                    .iter()
                    .map(|&c| forest.nodes[c as usize].size)
                    .sum();
                prop_assert_eq!(node.size, node.own_cliques.len() + child_sum);
            }
        }
    }

    #[test]
    fn nucleus34_nodes_have_min_k4_degree(g in arb_graph()) {
        let sp = Nucleus34Space::precomputed(&g);
        let kappa = peel(&sp).kappa;
        let forest = build_hierarchy(&sp, &kappa);
        for id in 0..forest.len() as u32 {
            let k = forest.nodes[id as usize].k;
            if k == 0 {
                continue;
            }
            let verts = forest.member_vertices(id, &sp);
            let sub = hdsd::graph::induced_subgraph(&g, &verts);
            // Within the materialized subgraph, the member triangles must
            // keep ≥ k K4s. Membership check via vertex mapping: count K4s
            // per triangle in the subgraph and compare on member triangles.
            let tl = hdsd::graph::TriangleList::build(&sub.graph);
            let counts = hdsd::graph::count_k4_per_triangle(&sub.graph, &tl);
            // map member triangles into subgraph vertex ids
            let mut to_local = std::collections::HashMap::new();
            for (local, &orig) in sub.original.iter().enumerate() {
                to_local.insert(orig, local as u32);
            }
            for &t in &forest.member_cliques(id) {
                let mut vs = Vec::new();
                sp.vertices_of(t as usize, &mut vs);
                let l: Vec<u32> = vs.iter().map(|v| to_local[v]).collect();
                let tid = tl
                    .triangle_id(&sub.graph, l[0], l[1], l[2])
                    .expect("member triangle must exist in materialized subgraph");
                prop_assert!(
                    counts[tid as usize] >= k,
                    "node {id} (k={k}): triangle {vs:?} has {} K4s",
                    counts[tid as usize]
                );
            }
        }
    }
}

#[test]
fn hierarchy_on_registry_dataset_is_consistent() {
    let g = hdsd::datasets::Dataset::Fb.generate(0.1);
    let sp = TrussSpace::precomputed(&g);
    let kappa = peel(&sp).kappa;
    let forest = build_hierarchy(&sp, &kappa);
    // Spot-check the deepest leaf satisfies its k.
    let leaf = *forest.leaves().iter().max_by_key(|&&l| forest.nodes[l as usize].k).unwrap();
    let k = forest.nodes[leaf as usize].k;
    let member_edges = forest.member_cliques(leaf);
    let sub = GraphBuilder::new().edges(member_edges.iter().map(|&e| g.edge_endpoints(e))).build();
    let counts = hdsd::graph::count_triangles_per_edge(&sub);
    assert!(counts.iter().all(|&c| c >= k), "deepest truss leaf fails its k");
}
