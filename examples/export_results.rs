//! Exporting decomposition artifacts: κ tables as TSV and the nucleus
//! forest as GraphViz dot, plus the (1,3) "triangle-core" extension space
//! that shows what instantiating the framework for a new (r, s) costs.
//!
//! Run with: `cargo run --release --example export_results`
//! Outputs land in `target/hdsd-exports/`.

use hdsd::nucleus::{write_hierarchy_dot, write_kappa_tsv, Vertex13Space};
use hdsd::prelude::*;
use std::fs::File;
use std::io::BufWriter;

fn main() -> std::io::Result<()> {
    let out_dir = std::path::Path::new("target/hdsd-exports");
    std::fs::create_dir_all(out_dir)?;

    let g = hdsd::datasets::planted_partition(&[25, 25, 25], 0.5, 0.03, 11);
    println!("graph: {} vertices, {} edges", g.num_vertices(), g.num_edges());

    // --- truss decomposition: TSV + dot ---------------------------------
    let truss = TrussSpace::precomputed(&g);
    let kappa = peel(&truss).kappa;
    let tsv_path = out_dir.join("truss_kappa.tsv");
    write_kappa_tsv(&truss, &kappa, BufWriter::new(File::create(&tsv_path)?))?;
    println!("wrote {}", tsv_path.display());

    let forest = build_hierarchy(&truss, &kappa);
    let dot_path = out_dir.join("truss_hierarchy.dot");
    write_hierarchy_dot(&forest, &truss, &g, true, BufWriter::new(File::create(&dot_path)?))?;
    println!(
        "wrote {} ({} nuclei, depth {}) — render with `dot -Tsvg`",
        dot_path.display(),
        forest.len(),
        forest.depth()
    );

    // --- the (1,3) extension space ---------------------------------------
    // Vertices scored by triangle participation: the "triangle k-core".
    // Same algorithms, new space — the framework's generality in action.
    let v13 = Vertex13Space::new(&g);
    let exact13 = peel(&v13);
    let local13 = snd(&v13, &LocalConfig::default());
    assert_eq!(local13.tau, exact13.kappa);
    println!(
        "(1,3) triangle-core: max κ = {}, Snd converged in {} iterations",
        exact13.max_kappa,
        local13.iterations_to_converge()
    );
    let tsv13 = out_dir.join("triangle_core_kappa.tsv");
    write_kappa_tsv(&v13, &exact13.kappa, BufWriter::new(File::create(&tsv13)?))?;
    println!("wrote {}", tsv13.display());

    // --- densest nucleus shortcut ----------------------------------------
    if let Some((d, verts)) = hdsd::nucleus::densest_nucleus(&truss, &g, 8) {
        println!(
            "densest truss nucleus (≥8 vertices): k={} |V|={} density={:.3}, members {:?}…",
            d.k,
            d.vertices,
            d.density,
            &verts[..verts.len().min(10)]
        );
    }
    Ok(())
}
