//! Quickstart: compute k-core, k-truss and (3,4)-nucleus decompositions of
//! a small social-style graph three ways — exact peeling, synchronous local
//! iteration (Snd) and asynchronous local iteration (And) — and confirm
//! they agree.
//!
//! Run with: `cargo run --release --example quickstart`

use hdsd::prelude::*;

fn main() {
    // A reproducible 2k-vertex social-style graph (heavy-tailed degrees,
    // strong triangle clustering, thinned for a realistic low-degree tail).
    let g = hdsd::datasets::thin_edges(&hdsd::datasets::holme_kim(2_000, 12, 0.5, 42), 0.7, 42);
    println!(
        "graph: {} vertices, {} edges, {} triangles, {} four-cliques",
        g.num_vertices(),
        g.num_edges(),
        hdsd::graph::total_triangles(&g),
        hdsd::graph::total_k4(&g),
    );

    // ---- k-core (the (1,2) nucleus) -------------------------------------
    let core = CoreSpace::new(&g);
    let exact = peel(&core);
    let local_snd = snd(&core, &LocalConfig::default());
    let local_and = and(&core, &LocalConfig::default(), &Order::Natural);
    assert_eq!(local_snd.tau, exact.kappa);
    assert_eq!(local_and.tau, exact.kappa);
    println!(
        "k-core   : max κ = {:>3} | Snd {} iters, And {} iters (peeling order would need 1)",
        exact.max_kappa,
        local_snd.iterations_to_converge(),
        local_and.iterations_to_converge(),
    );

    // ---- k-truss (the (2,3) nucleus) -------------------------------------
    let truss = TrussSpace::precomputed(&g);
    let exact_t = peel(&truss);
    let snd_t = snd(&truss, &LocalConfig::default());
    assert_eq!(snd_t.tau, exact_t.kappa);
    println!(
        "k-truss  : max κ = {:>3} | Snd {} iters over {} edges",
        exact_t.max_kappa,
        snd_t.iterations_to_converge(),
        g.num_edges(),
    );

    // ---- (3,4) nucleus ----------------------------------------------------
    let nuc = Nucleus34Space::precomputed(&g);
    let exact_n = peel(&nuc);
    let snd_n = snd(&nuc, &LocalConfig::default());
    assert_eq!(snd_n.tau, exact_n.kappa);
    println!(
        "(3,4)    : max κ = {:>3} | Snd {} iters over {} triangles",
        exact_n.max_kappa,
        snd_n.iterations_to_converge(),
        snd_n.tau.len(),
    );

    // ---- Theorem 4: peeling order converges in one asynchronous sweep ----
    let one_shot = and(&core, &LocalConfig::default(), &Order::Custom(exact.order.clone()));
    println!(
        "Theorem 4: And in non-decreasing κ order converged in {} updating sweep(s)",
        one_shot.iterations_to_converge()
    );
    assert!(one_shot.iterations_to_converge() <= 1);

    // ---- Approximation: stop after 2 iterations ---------------------------
    let approx = snd(&core, &LocalConfig::default().max_iterations(2));
    let tau_kt = hdsd::metrics::kendall_tau_b(&approx.tau, &exact.kappa);
    println!("after 2 iterations: Kendall-τ vs exact core numbers = {tau_kt:.4}");
}
