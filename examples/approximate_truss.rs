//! The runtime/quality trade-off: approximate truss decomposition by
//! stopping the local iteration early (the paper's Figures 1a/6/7).
//!
//! Peeling offers no intermediate answers — densest regions emerge last —
//! but every Snd iteration yields a complete approximate decomposition
//! with a one-sided guarantee (τ_t ≥ κ, Theorem 1). This example prints
//! the Kendall-τ accuracy, the max relative error and the *stability
//! indicator* (fraction of edges unchanged in the last sweep — computable
//! without ground truth) after each iteration, on a facebook-scale graph.
//!
//! Run with: `cargo run --release --example approximate_truss`

use hdsd::datasets::Dataset;
use hdsd::metrics::{kendall_tau_b, relative_error_stats};
use hdsd::prelude::*;

fn main() {
    let g = Dataset::Fb.generate(0.5);
    println!(
        "facebook stand-in: {} vertices, {} edges, {} triangles",
        g.num_vertices(),
        g.num_edges(),
        hdsd::graph::total_triangles(&g)
    );

    let space = TrussSpace::precomputed(&g);
    let exact = peel(&space).kappa;

    println!("\nSnd truss decomposition, per-iteration quality:");
    println!(
        "{:>5} {:>10} {:>12} {:>12} {:>12} {:>12}",
        "iter", "updates", "kendall-τ", "exact-frac", "mean-rel-err", "stability"
    );
    let total = space_len(&space) as f64;
    snd_with_observer(&space, &LocalConfig::default(), &mut |ev| {
        let kt = kendall_tau_b(ev.tau, &exact);
        let stats = relative_error_stats(ev.tau, &exact);
        let stability = 1.0 - ev.updates as f64 / total;
        println!(
            "{:>5} {:>10} {:>12.4} {:>12.3} {:>12.4} {:>12.4}",
            ev.iteration,
            ev.updates,
            kt,
            stats.exact_fraction,
            stats.mean_relative_error,
            stability
        );
    });

    println!("\nthe stability column needs no ground truth: when it crosses ~0.99 the");
    println!("ranking is already almost exact — the paper's informed stopping rule.");
}

fn space_len<S: CliqueSpace>(space: &S) -> usize {
    space.num_cliques()
}
