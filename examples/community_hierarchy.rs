//! Recovering a planted community hierarchy with nucleus decompositions —
//! the use case that motivates the paper (dense subgraphs at multiple
//! granularities with their containment relations, e.g. research-topic
//! hierarchies in citation networks).
//!
//! We plant a two-level community structure (4 tight leaf communities
//! inside 2 looser super-communities inside a sparse background), then show
//! that the nucleus forest recovers the nesting: leaves of the forest are
//! the planted leaf communities, their parents the super-communities, with
//! density increasing toward the leaves.
//!
//! Run with: `cargo run --release --example community_hierarchy`

use hdsd::datasets::{nested_communities, NestedCommunitySpec};
use hdsd::prelude::*;

fn main() {
    let leaf_size = 24;
    let spec = [
        NestedCommunitySpec { branching: 2, p: 0.22 }, // super-communities
        NestedCommunitySpec { branching: 2, p: 0.85 }, // leaf communities
    ];
    let g = nested_communities(leaf_size, &spec, 0.02, 7);
    println!(
        "planted graph: {} vertices, {} edges, overall density {:.4}",
        g.num_vertices(),
        g.num_edges(),
        hdsd::graph::density(&g)
    );

    for decomposition in ["core", "truss"] {
        println!("\n=== {decomposition} hierarchy ===");
        match decomposition {
            "core" => {
                let sp = CoreSpace::new(&g);
                report(&sp, &g);
            }
            "truss" => {
                let sp = TrussSpace::precomputed(&g);
                report(&sp, &g);
            }
            _ => unreachable!(),
        }
    }
}

fn report<S: CliqueSpace>(space: &S, g: &hdsd::graph::CsrGraph) {
    let kappa = peel(space).kappa;
    let forest = build_hierarchy(space, &kappa);
    println!(
        "{}: {} nuclei, {} roots, depth {}",
        space.name(),
        forest.len(),
        forest.roots.len(),
        forest.depth()
    );

    // Print the root-to-leaf chain densities for the largest root.
    let Some(&root) = forest.roots.iter().max_by_key(|&&r| forest.nodes[r as usize].size) else {
        return;
    };
    let mut frontier = vec![(root, 0usize)];
    let mut reported = 0;
    while let Some((id, depth)) = frontier.pop() {
        let d = forest.node_density(id, space, g);
        if d.vertices >= 8 {
            println!(
                "{:indent$}k={:<3} |V|={:<4} |E|={:<5} density={:.3}",
                "",
                d.k,
                d.vertices,
                d.edges,
                d.density,
                indent = depth * 2
            );
            reported += 1;
            if reported > 24 {
                println!("  … (truncated)");
                break;
            }
        }
        for &c in &forest.nodes[id as usize].children {
            frontier.push((c, depth + 1));
        }
    }

    // Quality check: the densest leaves should align with planted leaves.
    let best_leaf = forest
        .leaves()
        .into_iter()
        .map(|l| forest.node_density(l, space, g))
        .max_by(|a, b| a.density.total_cmp(&b.density));
    if let Some(d) = best_leaf {
        println!(
            "densest leaf nucleus: k={} with {} vertices at density {:.3}",
            d.k, d.vertices, d.density
        );
    }
}
