//! Query-driven estimation: answer "how deep does this vertex/edge sit in
//! the dense hierarchy?" for a handful of queries without decomposing the
//! whole graph — the scenario from the paper's introduction that peeling
//! fundamentally cannot serve (it reveals the densest regions last).
//!
//! For each query we run `t` local h-index iterations on the t-hop
//! neighborhood and compare against the exact κ from a full peel,
//! reporting accuracy and the fraction of the graph touched.
//!
//! Run with: `cargo run --release --example query_driven`

use hdsd::metrics::relative_error_stats;
use hdsd::prelude::*;

fn main() {
    let g = hdsd::datasets::holme_kim(10_000, 8, 0.5, 123);
    println!("graph: {} vertices, {} edges", g.num_vertices(), g.num_edges());

    // Ground truth (what a full decomposition would cost us).
    let core = CoreSpace::new(&g);
    let exact = peel(&core).kappa;

    // 50 queries spread over the id space (deterministic).
    let queries: Vec<u32> = (0..50u32).map(|i| i * (g.num_vertices() as u32 / 50)).collect();
    let exact_q: Vec<u32> = queries.iter().map(|&q| exact[q as usize]).collect();

    println!("\ncore-number estimation, 50 queries:");
    println!(
        "{:>5} {:>12} {:>12} {:>14} {:>16}",
        "iters", "exact-frac", "mean-rel-err", "max-abs-err", "avg-explored"
    );
    for t in [0usize, 1, 2, 3, 4, 6, 8] {
        let ests = estimate_core_numbers(&g, &queries, t);
        let est_vals: Vec<u32> = ests.iter().map(|e| e.estimate).collect();
        let stats = relative_error_stats(&est_vals, &exact_q);
        let avg_explored =
            ests.iter().map(|e| e.explored).sum::<usize>() as f64 / ests.len() as f64;
        println!(
            "{:>5} {:>12.3} {:>12.4} {:>14} {:>13.1} ({:.2}% of V)",
            t,
            stats.exact_fraction,
            stats.mean_relative_error,
            stats.max_abs_error,
            avg_explored,
            100.0 * avg_explored / g.num_vertices() as f64
        );
    }

    // Truss-number queries on a few edges.
    let truss = TrussSpace::on_the_fly(&g);
    let exact_t = peel(&truss).kappa;
    let equeries: Vec<u32> = (0..20u32).map(|i| i * (g.num_edges() as u32 / 20)).collect();
    let exact_eq: Vec<u32> = equeries.iter().map(|&e| exact_t[e as usize]).collect();

    println!("\ntruss-number estimation, 20 query edges:");
    println!("{:>5} {:>12} {:>12} {:>14}", "iters", "exact-frac", "mean-rel-err", "max-abs-err");
    for t in [1usize, 2, 3, 4] {
        let ests = estimate_truss_numbers(&g, &equeries, t);
        let est_vals: Vec<u32> = ests.iter().map(|e| e.estimate).collect();
        let stats = relative_error_stats(&est_vals, &exact_eq);
        println!(
            "{:>5} {:>12.3} {:>12.4} {:>14}",
            t, stats.exact_fraction, stats.mean_relative_error, stats.max_abs_error
        );
    }

    println!("\ntake-away: a handful of iterations on a local ball gives near-exact");
    println!("κ estimates while touching a small fraction of the graph.");
}
