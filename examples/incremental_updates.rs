//! Incremental core maintenance: keep κ₂ exact while edges stream in and
//! out, without re-running a full decomposition — an extension the paper's
//! locality makes possible (the asynchronous iteration converges to κ from
//! any stale-but-lifted upper bound; see `hdsd::nucleus::and_resume`).
//!
//! Run with: `cargo run --release --example incremental_updates`

use hdsd::nucleus::IncrementalCore;
use hdsd::prelude::*;
use std::time::Instant;

fn main() {
    let g = hdsd::datasets::thin_edges(&hdsd::datasets::holme_kim(20_000, 8, 0.5, 77), 0.7, 77);
    println!("initial graph: {} vertices, {} edges", g.num_vertices(), g.num_edges());

    // Cold-start cost for reference.
    let t0 = Instant::now();
    let cold = snd(&CoreSpace::new(&g), &LocalConfig::default());
    let cold_time = t0.elapsed();
    println!(
        "cold decomposition: {} sweeps in {:.1} ms",
        cold.sweeps,
        cold_time.as_secs_f64() * 1e3
    );

    let mut inc = IncrementalCore::new(g);

    // Stream 10 batches of mixed insertions and deletions.
    let mut state = 0xD1Eu64;
    let mut rand = move |m: u64| {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        (state >> 33) % m
    };
    println!("\n{:>6} {:>8} {:>10} {:>12} {:>12}", "batch", "op", "edges", "sweeps", "time-ms");
    for batch in 0..10 {
        if batch % 2 == 0 {
            // Small insert batches keep the candidate set (the cliques the
            // +1-per-insertion bound can actually reach) tight; large
            // batches widen the lift and erode the warm start's edge.
            let n = inc.graph().num_vertices() as u64;
            let edges: Vec<(u32, u32)> = (0..4).map(|_| (rand(n) as u32, rand(n) as u32)).collect();
            let t = Instant::now();
            let sweeps = inc.insert_edges(&edges);
            println!(
                "{:>6} {:>8} {:>10} {:>12} {:>12.1}",
                batch,
                "insert",
                edges.len(),
                sweeps,
                t.elapsed().as_secs_f64() * 1e3
            );
        } else {
            let m = inc.graph().num_edges() as u64;
            let victims: Vec<(u32, u32)> =
                (0..20).map(|_| inc.graph().edges()[rand(m) as usize]).collect();
            let t = Instant::now();
            let sweeps = inc.remove_edges(&victims);
            println!(
                "{:>6} {:>8} {:>10} {:>12} {:>12.1}",
                batch,
                "delete",
                victims.len(),
                sweeps,
                t.elapsed().as_secs_f64() * 1e3
            );
        }
    }

    // Verify exactness against a from-scratch decomposition.
    let fresh = peel(&CoreSpace::new(inc.graph())).kappa;
    assert_eq!(inc.core_numbers(), fresh.as_slice());
    println!("\nfinal κ verified against a from-scratch peel: exact ✓");
    println!(
        "deletions refresh in a handful of sweeps vs the cold run's {} — the payoff of \
         locality. (The same machinery now maintains k-truss and (3,4)-nucleus indices: \
         see Incremental<TrussKind> / Incremental<Nucleus34Kind>.)",
        cold.sweeps
    );
}
