//! Property tests for the barrier-free drain primitives: the chunk-claim
//! cursor, the push-once MPMC drain queue, the dedup worklist ring, and
//! quiescence-counting termination. Each property hammers the primitive
//! from several real threads with randomized sizes, worker counts, and
//! chunk shapes (including the degenerate shapes the unit tests pin:
//! empty input, a single item, more workers than chunks) and asserts the
//! exactly-once / no-loss / termination invariants hold under whatever
//! interleaving the scheduler produced. Runs at `PROPTEST_CASES=500` in
//! the nightly slow-props job.
//!
//! Bodies live in plain functions (the `proptest!` block only forwards)
//! so the macro input stays within its recursion budget.

use hdsd_parallel::{ChunkCursor, ConcurrentWorklist, DrainQueue, QuiescenceCounter};
use proptest::prelude::*;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};

/// Every index in `0..limit` is claimed exactly once, no matter how many
/// workers race on the cursor or how ragged the chunks are.
fn check_cursor_partitions(limit: usize, workers: usize, chunk: usize) {
    let cursor = ChunkCursor::new(limit);
    let hits: Vec<AtomicU32> = (0..limit).map(|_| AtomicU32::new(0)).collect();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| {
                while let Some(r) = cursor.claim(chunk) {
                    for i in r {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    for (i, h) in hits.iter().enumerate() {
        assert_eq!(h.load(Ordering::Relaxed), 1, "index {i} claim count");
    }
    assert!(cursor.claim(chunk).is_none(), "exhausted cursor must stay exhausted");
}

/// Concurrent pushers and claimers: every pushed id is drained exactly
/// once, with its pushing worker faithfully recorded.
fn check_drain_queue_exactly_once(n: u32, pushers: u32, claimers: usize, take: usize) {
    let q = DrainQueue::new(n as usize);
    let abort = AtomicBool::new(false);
    let seen: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
    let drained = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for w in 0..pushers {
            let q = &q;
            s.spawn(move || {
                // Pusher w owns the ids ≡ w (mod pushers): push-once.
                let mut id = w;
                while id < n {
                    q.push(id, w);
                    id += pushers;
                }
            });
        }
        for _ in 0..claimers {
            let q = &q;
            let abort = &abort;
            let seen = &seen;
            let drained = &drained;
            s.spawn(move || loop {
                if let Some(slots) = q.claim(take) {
                    for slot in slots {
                        let (id, owner) = q.read(slot, abort).expect("abort never raised");
                        let prev = seen[id as usize].swap(owner, Ordering::Relaxed);
                        assert_eq!(prev, u32::MAX, "id {id} drained twice");
                        drained.fetch_add(1, Ordering::Relaxed);
                    }
                } else if drained.load(Ordering::Relaxed) == n as usize {
                    break;
                } else {
                    std::hint::spin_loop();
                }
            });
        }
    });
    assert_eq!(q.claimed(), n as usize);
    for id in 0..n {
        assert_eq!(
            seen[id as usize].load(Ordering::Relaxed),
            id % pushers,
            "id {id} has the wrong recorded pusher"
        );
    }
}

/// The dedup worklist never yields an id twice between unmarks, never
/// loses one, and re-admits ids after unmark — under racing re-pushers.
fn check_worklist_conservation(universe: usize, workers: usize, rounds: usize) {
    let wl = ConcurrentWorklist::new(universe);
    let pushed = AtomicUsize::new(0);
    let popped = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            let wl = &wl;
            let pushed = &pushed;
            let popped = &popped;
            s.spawn(move || {
                for _ in 0..rounds {
                    for id in 0..universe as u32 {
                        if wl.push(id) {
                            pushed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                    // Drain whatever is visible right now; unmark so later
                    // rounds (ours or a peer's) can re-admit.
                    while let Some(id) = wl.pop() {
                        wl.unmark(id);
                        popped.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    // Sequential epilogue: drain whatever the last unmarks re-admitted.
    while let Some(id) = wl.pop() {
        wl.unmark(id);
        popped.fetch_add(1, Ordering::Relaxed);
    }
    assert_eq!(popped.load(Ordering::Relaxed), pushed.load(Ordering::Relaxed));
    assert!(wl.pop().is_none());
}

/// Quiescence counting terminates exactly: workers that spawn follow-on
/// work (a bounded cascade) all exit, every enqueued item is processed,
/// and nothing is stranded — even with more workers than items, including
/// zero items.
fn check_quiescence_cascade(seed_items: u32, workers: usize, fanout: u32, depth: u32) {
    // Item encoding: id + depth·LEVEL, so each depth level owns a disjoint
    // id band (dedup collisions only happen within a level, which is
    // exactly the rollback path under test).
    const LEVEL: u32 = 1024;
    let wl = ConcurrentWorklist::new((LEVEL * 4) as usize);
    let quiesce = QuiescenceCounter::new();
    let next_id = AtomicU32::new(seed_items);
    let enqueued = AtomicUsize::new(0);
    for id in 0..seed_items {
        quiesce.issue(1);
        assert!(wl.push(id + depth * LEVEL));
        enqueued.fetch_add(1, Ordering::Relaxed);
    }
    let processed = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            let wl = &wl;
            let quiesce = &quiesce;
            let next_id = &next_id;
            let processed = &processed;
            let enqueued = &enqueued;
            s.spawn(move || loop {
                let Some(item) = wl.pop() else {
                    if quiesce.quiescent() {
                        break;
                    }
                    std::hint::spin_loop();
                    continue;
                };
                wl.unmark(item);
                processed.fetch_add(1, Ordering::Relaxed);
                let d = item / LEVEL;
                if d > 0 {
                    for _ in 0..fanout {
                        let id = next_id.fetch_add(1, Ordering::Relaxed) % LEVEL;
                        quiesce.issue(1);
                        if wl.push(id + (d - 1) * LEVEL) {
                            enqueued.fetch_add(1, Ordering::Relaxed);
                        } else {
                            quiesce.retire(1); // dedup rejected: roll back
                        }
                    }
                }
                quiesce.retire(1);
            });
        }
    });
    assert!(quiesce.quiescent(), "all issued work must be retired at join");
    assert_eq!(processed.load(Ordering::Relaxed), enqueued.load(Ordering::Relaxed));
    assert!(wl.pop().is_none(), "no work may be stranded in the ring");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn chunk_cursor_partitions_exactly_once(
        limit in 0usize..400,
        workers in 1usize..9,
        chunk in 1usize..33,
    ) {
        check_cursor_partitions(limit, workers, chunk);
    }

    #[test]
    fn drain_queue_delivers_each_push_exactly_once(
        n in 0u32..300,
        pushers in 1u32..5,
        claimers in 1usize..5,
        take in 1usize..17,
    ) {
        check_drain_queue_exactly_once(n, pushers, claimers, take);
    }

    #[test]
    fn worklist_pops_equal_successful_pushes(
        universe in 1usize..200,
        workers in 1usize..6,
        rounds in 1usize..4,
    ) {
        check_worklist_conservation(universe, workers, rounds);
    }

    #[test]
    fn quiescence_terminates_cascading_drains(
        seed_items in 0u32..40,
        workers in 1usize..9,
        fanout in 0u32..3,
        depth in 0u32..4,
    ) {
        check_quiescence_cascade(seed_items, workers, fanout, depth);
    }
}
