//! Chunked parallel-for with static and dynamic scheduling.
//!
//! `parallel_for_chunks(n, cfg, f)` partitions `0..n` into chunks and runs
//! `f(range)` on worker threads. With [`Policy::Dynamic`] chunks are claimed
//! from a shared atomic counter (OpenMP `schedule(dynamic)`); with
//! [`Policy::Static`] each worker receives one contiguous stripe up front
//! (OpenMP `schedule(static)`), which reproduces the load-imbalance
//! pathology the paper describes for the notification mechanism.

use std::sync::atomic::{AtomicUsize, Ordering};

use crate::ParallelConfig;

/// Scheduling policy for [`parallel_for_chunks`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Chunks are claimed dynamically from a shared counter.
    Dynamic,
    /// The index space is split into `threads` contiguous stripes.
    Static,
}

/// Per-run scheduler telemetry (chunks processed per worker), used by the
/// scheduling ablation bench to visualize load imbalance.
#[derive(Clone, Debug, Default)]
pub struct SchedulerStats {
    /// Number of chunks each worker processed.
    pub chunks_per_worker: Vec<usize>,
}

impl SchedulerStats {
    /// Max/min chunk-count imbalance ratio (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let max = self.chunks_per_worker.iter().copied().max().unwrap_or(0);
        let min = self.chunks_per_worker.iter().copied().min().unwrap_or(0);
        if min == 0 {
            if max == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            max as f64 / min as f64
        }
    }
}

/// Runs `f` over `0..n` in parallel chunks. `f` must be `Sync` (it is shared
/// by reference across workers) and is invoked with disjoint ranges covering
/// `0..n` exactly once.
pub fn parallel_for_chunks<F>(n: usize, cfg: ParallelConfig, f: F) -> SchedulerStats
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    parallel_for_chunks_with(n, cfg, || (), |(), r| f(r))
}

/// Like [`parallel_for_chunks`] but with per-worker state created by `init`
/// (e.g. a scratch `HBuffer`), passed mutably to every chunk the worker
/// claims.
pub fn parallel_for_chunks_with<S, I, F>(
    n: usize,
    cfg: ParallelConfig,
    init: I,
    f: F,
) -> SchedulerStats
where
    I: Fn() -> S + Sync,
    F: Fn(&mut S, std::ops::Range<usize>) + Sync,
{
    let threads = cfg.threads.max(1);
    let chunk = cfg.chunk.max(1);
    if n == 0 {
        return SchedulerStats { chunks_per_worker: vec![0; threads] };
    }
    if threads == 1 {
        let mut s = init();
        let mut done = 0usize;
        let mut chunks = 0usize;
        while done < n {
            let hi = (done + chunk).min(n);
            f(&mut s, done..hi);
            done = hi;
            chunks += 1;
        }
        return SchedulerStats { chunks_per_worker: vec![chunks] };
    }

    match cfg.policy {
        #[allow(clippy::needless_range_loop)]
        Policy::Dynamic => {
            let next = AtomicUsize::new(0);
            let counters: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let next = &next;
                    let counter = &counters[t];
                    let init = &init;
                    let f = &f;
                    scope.spawn(move || {
                        let mut s = init();
                        loop {
                            let lo = next.fetch_add(chunk, Ordering::Relaxed);
                            if lo >= n {
                                break;
                            }
                            let hi = (lo + chunk).min(n);
                            f(&mut s, lo..hi);
                            counter.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            SchedulerStats {
                chunks_per_worker: counters.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            }
        }
        #[allow(clippy::needless_range_loop)]
        Policy::Static => {
            let per = n.div_ceil(threads);
            let counters: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let lo = (t * per).min(n);
                    let hi = ((t + 1) * per).min(n);
                    let counter = &counters[t];
                    let init = &init;
                    let f = &f;
                    scope.spawn(move || {
                        let mut s = init();
                        let mut at = lo;
                        while at < hi {
                            let end = (at + chunk).min(hi);
                            f(&mut s, at..end);
                            at = end;
                            counter.fetch_add(1, Ordering::Relaxed);
                        }
                    });
                }
            });
            SchedulerStats {
                chunks_per_worker: counters.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    fn sum_check(threads: usize, policy: Policy, n: usize, chunk: usize) {
        let cfg = ParallelConfig { threads, chunk, policy };
        let total = AtomicU64::new(0);
        let calls = AtomicUsize::new(0);
        parallel_for_chunks(n, cfg, |r| {
            let mut s = 0u64;
            for i in r {
                s += i as u64;
            }
            total.fetch_add(s, Ordering::Relaxed);
            calls.fetch_add(1, Ordering::Relaxed);
        });
        let expect = (n as u64).saturating_sub(1) * n as u64 / 2;
        assert_eq!(total.load(Ordering::Relaxed), expect, "threads={threads} {policy:?}");
        let expected_calls = match policy {
            // Static chunks each stripe separately, so count per stripe.
            Policy::Static if threads > 1 && n > 0 => {
                let per = n.div_ceil(threads);
                (0..threads)
                    .map(|t| {
                        let lo = (t * per).min(n);
                        let hi = ((t + 1) * per).min(n);
                        (hi - lo).div_ceil(chunk.max(1))
                    })
                    .sum()
            }
            _ => n.div_ceil(chunk.max(1)),
        };
        assert_eq!(calls.load(Ordering::Relaxed), expected_calls);
    }

    #[test]
    fn covers_index_space_exactly_once() {
        for &threads in &[1usize, 2, 4, 7] {
            for &policy in &[Policy::Dynamic, Policy::Static] {
                for &n in &[0usize, 1, 5, 100, 1001] {
                    sum_check(threads, policy, n, 16);
                }
            }
        }
    }

    #[test]
    fn chunk_of_one_works() {
        sum_check(3, Policy::Dynamic, 50, 1);
        sum_check(3, Policy::Static, 50, 1);
    }

    #[test]
    fn per_worker_state_is_reused() {
        // Each worker counts its own chunks in local state; stats must agree.
        let cfg = ParallelConfig { threads: 4, chunk: 8, policy: Policy::Dynamic };
        let seen = AtomicUsize::new(0);
        let stats = parallel_for_chunks_with(
            1000,
            cfg,
            || 0usize,
            |local, r| {
                *local += 1;
                seen.fetch_add(r.len(), Ordering::Relaxed);
            },
        );
        assert_eq!(seen.load(Ordering::Relaxed), 1000);
        let total_chunks: usize = stats.chunks_per_worker.iter().sum();
        assert_eq!(total_chunks, 1000usize.div_ceil(8));
    }

    #[test]
    fn static_policy_stripes_are_contiguous() {
        use std::sync::Mutex;
        let cfg = ParallelConfig { threads: 3, chunk: 4, policy: Policy::Static };
        let ranges = Mutex::new(Vec::new());
        parallel_for_chunks(30, cfg, |r| {
            ranges.lock().unwrap().push(r);
        });
        let mut rs = ranges.into_inner().unwrap();
        rs.sort_by_key(|r| r.start);
        // Disjoint cover of 0..30.
        let mut at = 0;
        for r in rs {
            assert_eq!(r.start, at);
            at = r.end;
        }
        assert_eq!(at, 30);
    }

    #[test]
    fn imbalance_metric() {
        let s = SchedulerStats { chunks_per_worker: vec![4, 2] };
        assert!((s.imbalance() - 2.0).abs() < 1e-12);
        let z = SchedulerStats { chunks_per_worker: vec![0, 0] };
        assert_eq!(z.imbalance(), 1.0);
        let inf = SchedulerStats { chunks_per_worker: vec![3, 0] };
        assert!(inf.imbalance().is_infinite());
    }

    #[test]
    fn borrows_caller_stack() {
        // The whole point of scoped threads: write into a caller-owned slice.
        let mut out = vec![0u32; 256];
        {
            let cells: Vec<std::sync::atomic::AtomicU32> =
                (0..256).map(|_| std::sync::atomic::AtomicU32::new(0)).collect();
            parallel_for_chunks(256, ParallelConfig::with_threads(4).chunk(16), |r| {
                for i in r {
                    cells[i].store(i as u32 * 2, Ordering::Relaxed);
                }
            });
            for (i, c) in cells.iter().enumerate() {
                out[i] = c.load(Ordering::Relaxed);
            }
        }
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 * 2));
    }
}
