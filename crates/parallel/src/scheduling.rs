//! Chunked parallel-for with static and dynamic scheduling.
//!
//! `parallel_for_chunks(n, cfg, f)` partitions `0..n` into chunks and runs
//! `f(range)` on worker threads. With [`Policy::Dynamic`] chunks are claimed
//! from a shared atomic counter (OpenMP `schedule(dynamic)`); with
//! [`Policy::Static`] each worker receives one contiguous stripe up front
//! (OpenMP `schedule(static)`), which reproduces the load-imbalance
//! pathology the paper describes for the notification mechanism.

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

use crate::{AtomicBitset, ParallelConfig};

/// Scheduling policy for [`parallel_for_chunks`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Chunks are claimed dynamically from a shared counter.
    Dynamic,
    /// The index space is split into `threads` contiguous stripes.
    Static,
}

/// Per-run scheduler telemetry, used by the scheduling ablation benches to
/// visualize load imbalance and to count useful vs wasted sweep work.
///
/// `items_processed` / `items_skipped` are filled in by the *callers* of the
/// scheduling primitives (the decomposition sweeps), which are the only
/// layer that knows whether an index was real work or an idle flag-check:
/// under frontier scheduling `items_skipped` stays 0 by construction, while
/// the full-scan baseline accumulates one skip per idle r-clique visited.
#[derive(Clone, Debug, Default)]
pub struct SchedulerStats {
    /// Number of chunks each worker processed.
    pub chunks_per_worker: Vec<usize>,
    /// Work items actually recomputed.
    pub items_processed: u64,
    /// Work items visited but skipped (idle under the notification flags).
    pub items_skipped: u64,
}

impl SchedulerStats {
    /// Stats with only chunk telemetry (item counters zero).
    pub fn from_chunks(chunks_per_worker: Vec<usize>) -> Self {
        SchedulerStats { chunks_per_worker, ..Default::default() }
    }

    /// Max/min chunk-count imbalance ratio (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let max = self.chunks_per_worker.iter().copied().max().unwrap_or(0);
        let min = self.chunks_per_worker.iter().copied().min().unwrap_or(0);
        if min == 0 {
            if max == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            max as f64 / min as f64
        }
    }

    /// Folds another run's telemetry into this one (chunk counts add
    /// index-wise; item counters add).
    pub fn merge(&mut self, other: &SchedulerStats) {
        if self.chunks_per_worker.len() < other.chunks_per_worker.len() {
            self.chunks_per_worker.resize(other.chunks_per_worker.len(), 0);
        }
        for (a, &b) in self.chunks_per_worker.iter_mut().zip(&other.chunks_per_worker) {
            *a += b;
        }
        self.items_processed += other.items_processed;
        self.items_skipped += other.items_skipped;
    }

    /// Total chunks across workers.
    pub fn total_chunks(&self) -> usize {
        self.chunks_per_worker.iter().sum()
    }
}

/// A concurrent dedup-on-insert worklist for frontier scheduling.
///
/// Holds ids from a fixed universe `0..universe`. Membership is tracked by
/// an [`AtomicBitset`], so [`FrontierQueue::push`] is an O(1) test-and-set:
/// an id already scheduled (bit set) is not enqueued twice. Ids accumulate
/// in a fixed-capacity array via a relaxed bump pointer — the capacity is
/// the universe size, which dedup makes sufficient by construction.
///
/// The intended epoch protocol (asynchronous frontier sweeps):
///
/// 1. workers pop items from a *drained snapshot* of the previous epoch,
///    call [`FrontierQueue::unmark`] on each before recomputing it, and
///    [`FrontierQueue::push`] every neighbor whose value changed;
/// 2. after the epoch barrier, [`FrontierQueue::drain_into`] moves the
///    accumulated ids into the next snapshot (bits stay set — they mean
///    "scheduled", and the ids are still scheduled, just in the new epoch).
///
/// An id woken while it still awaits processing in the current epoch keeps
/// its bit and is *not* re-enqueued: the pending visit will observe the
/// newer τ values, exactly the paper's notification semantics.
#[derive(Debug)]
pub struct FrontierQueue {
    items: Vec<AtomicU32>,
    tail: AtomicUsize,
    queued: AtomicBitset,
}

impl FrontierQueue {
    /// Empty queue over ids `0..universe`, no bits set.
    pub fn new(universe: usize) -> Self {
        FrontierQueue {
            items: (0..universe).map(|_| AtomicU32::new(0)).collect(),
            tail: AtomicUsize::new(0),
            queued: AtomicBitset::new(universe, false),
        }
    }

    /// Universe size (also the queue capacity).
    #[inline]
    pub fn universe(&self) -> usize {
        self.items.len()
    }

    /// Number of ids currently enqueued.
    #[inline]
    pub fn len(&self) -> usize {
        self.tail.load(Ordering::Relaxed).min(self.items.len())
    }

    /// True when nothing is enqueued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `id` unless already scheduled. Returns whether it was
    /// enqueued now.
    #[inline]
    pub fn push(&self, id: u32) -> bool {
        debug_assert!((id as usize) < self.universe());
        if self.queued.set(id as usize) {
            return false; // already scheduled
        }
        let slot = self.tail.fetch_add(1, Ordering::Relaxed);
        debug_assert!(slot < self.items.len(), "FrontierQueue overflow — dedup invariant broken");
        self.items[slot].store(id, Ordering::Relaxed);
        true
    }

    /// Clears `id`'s scheduled bit (call when a worker starts processing
    /// it). Returns the previous value.
    #[inline]
    pub fn unmark(&self, id: u32) -> bool {
        self.queued.clear(id as usize)
    }

    /// Whether `id` is currently scheduled.
    #[inline]
    pub fn is_marked(&self, id: u32) -> bool {
        self.queued.get(id as usize)
    }

    /// Moves all enqueued ids into `out` (appending) and resets the queue's
    /// buffer. Scheduled bits are left set — the drained ids remain
    /// scheduled, now owned by the caller's epoch snapshot.
    ///
    /// Requires external synchronization (call between epochs, after the
    /// worker barrier), which is the natural structure of the sweep loop.
    pub fn drain_into(&self, out: &mut Vec<u32>) {
        let n = self.len();
        out.reserve(n);
        for slot in &self.items[..n] {
            out.push(slot.load(Ordering::Relaxed));
        }
        self.tail.store(0, Ordering::Relaxed);
    }
}

/// Runs `f` over `0..n` in parallel chunks. `f` must be `Sync` (it is shared
/// by reference across workers) and is invoked with disjoint ranges covering
/// `0..n` exactly once.
pub fn parallel_for_chunks<F>(n: usize, cfg: ParallelConfig, f: F) -> SchedulerStats
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    parallel_for_chunks_with(n, cfg, || (), |(), r| f(r))
}

/// Like [`parallel_for_chunks`] but with per-worker state created by `init`
/// (e.g. a scratch `HBuffer`), passed mutably to every chunk the worker
/// claims.
pub fn parallel_for_chunks_with<S, I, F>(
    n: usize,
    cfg: ParallelConfig,
    init: I,
    f: F,
) -> SchedulerStats
where
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, std::ops::Range<usize>) + Sync,
{
    parallel_for_chunks_collect(n, cfg, init, f).0
}

/// Like [`parallel_for_chunks_with`], but hands each worker's final state
/// back to the caller (one entry per worker that ran; sequential runs
/// return exactly one). This is the lock-free accumulation primitive: a
/// worker appends to its own state on the hot path and the caller merges
/// the returned states after the barrier — no shared mutex, no atomics
/// beyond chunk handout.
pub fn parallel_for_chunks_collect<S, I, F>(
    n: usize,
    cfg: ParallelConfig,
    init: I,
    f: F,
) -> (SchedulerStats, Vec<S>)
where
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, std::ops::Range<usize>) + Sync,
{
    hdsd_telemetry::span!("parallel.chunks");
    let threads = cfg.threads.max(1);
    let chunk = cfg.chunk.max(1);
    if n == 0 {
        return (SchedulerStats::from_chunks(vec![0; threads]), Vec::new());
    }
    if threads == 1 {
        let mut s = init();
        let mut done = 0usize;
        let mut chunks = 0usize;
        while done < n {
            let hi = (done + chunk).min(n);
            f(&mut s, done..hi);
            done = hi;
            chunks += 1;
        }
        return (SchedulerStats::from_chunks(vec![chunks]), vec![s]);
    }

    match cfg.policy {
        #[allow(clippy::needless_range_loop)]
        Policy::Dynamic => {
            let next = AtomicUsize::new(0);
            let counters: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
            let states = std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(threads);
                for t in 0..threads {
                    let next = &next;
                    let counter = &counters[t];
                    let init = &init;
                    let f = &f;
                    handles.push(scope.spawn(move || {
                        let mut s = init();
                        loop {
                            let lo = next.fetch_add(chunk, Ordering::Relaxed);
                            if lo >= n {
                                break;
                            }
                            let hi = (lo + chunk).min(n);
                            f(&mut s, lo..hi);
                            counter.fetch_add(1, Ordering::Relaxed);
                        }
                        s
                    }));
                }
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
            });
            (
                SchedulerStats::from_chunks(
                    counters.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                ),
                states,
            )
        }
        #[allow(clippy::needless_range_loop)]
        Policy::Static => {
            let per = n.div_ceil(threads);
            let counters: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
            let states = std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(threads);
                for t in 0..threads {
                    let lo = (t * per).min(n);
                    let hi = ((t + 1) * per).min(n);
                    let counter = &counters[t];
                    let init = &init;
                    let f = &f;
                    handles.push(scope.spawn(move || {
                        let mut s = init();
                        let mut at = lo;
                        while at < hi {
                            let end = (at + chunk).min(hi);
                            f(&mut s, at..end);
                            at = end;
                            counter.fetch_add(1, Ordering::Relaxed);
                        }
                        s
                    }));
                }
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
            });
            (
                SchedulerStats::from_chunks(
                    counters.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                ),
                states,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    fn sum_check(threads: usize, policy: Policy, n: usize, chunk: usize) {
        let cfg = ParallelConfig { threads, chunk, policy };
        let total = AtomicU64::new(0);
        let calls = AtomicUsize::new(0);
        parallel_for_chunks(n, cfg, |r| {
            let mut s = 0u64;
            for i in r {
                s += i as u64;
            }
            total.fetch_add(s, Ordering::Relaxed);
            calls.fetch_add(1, Ordering::Relaxed);
        });
        let expect = (n as u64).saturating_sub(1) * n as u64 / 2;
        assert_eq!(total.load(Ordering::Relaxed), expect, "threads={threads} {policy:?}");
        let expected_calls = match policy {
            // Static chunks each stripe separately, so count per stripe.
            Policy::Static if threads > 1 && n > 0 => {
                let per = n.div_ceil(threads);
                (0..threads)
                    .map(|t| {
                        let lo = (t * per).min(n);
                        let hi = ((t + 1) * per).min(n);
                        (hi - lo).div_ceil(chunk.max(1))
                    })
                    .sum()
            }
            _ => n.div_ceil(chunk.max(1)),
        };
        assert_eq!(calls.load(Ordering::Relaxed), expected_calls);
    }

    #[test]
    fn covers_index_space_exactly_once() {
        for &threads in &[1usize, 2, 4, 7] {
            for &policy in &[Policy::Dynamic, Policy::Static] {
                for &n in &[0usize, 1, 5, 100, 1001] {
                    sum_check(threads, policy, n, 16);
                }
            }
        }
    }

    #[test]
    fn chunk_of_one_works() {
        sum_check(3, Policy::Dynamic, 50, 1);
        sum_check(3, Policy::Static, 50, 1);
    }

    #[test]
    fn collect_returns_every_workers_state() {
        for &(threads, policy) in
            &[(1usize, Policy::Dynamic), (4, Policy::Dynamic), (3, Policy::Static)]
        {
            let cfg = ParallelConfig { threads, chunk: 8, policy };
            let (_, states) =
                parallel_for_chunks_collect(1000, cfg, Vec::new, |local: &mut Vec<usize>, r| {
                    local.extend(r)
                });
            assert_eq!(states.len(), threads, "{policy:?}");
            let mut all: Vec<usize> = states.into_iter().flatten().collect();
            all.sort_unstable();
            // Every index appears exactly once across the worker states.
            assert_eq!(all, (0..1000).collect::<Vec<_>>(), "{policy:?} threads={threads}");
        }
        // n == 0: no worker ran, no states to merge.
        let (_, states) = parallel_for_chunks_collect(
            0,
            ParallelConfig::with_threads(4),
            Vec::new,
            |local: &mut Vec<usize>, r| local.extend(r),
        );
        assert!(states.is_empty());
    }

    #[test]
    fn per_worker_state_is_reused() {
        // Each worker counts its own chunks in local state; stats must agree.
        let cfg = ParallelConfig { threads: 4, chunk: 8, policy: Policy::Dynamic };
        let seen = AtomicUsize::new(0);
        let stats = parallel_for_chunks_with(
            1000,
            cfg,
            || 0usize,
            |local, r| {
                *local += 1;
                seen.fetch_add(r.len(), Ordering::Relaxed);
            },
        );
        assert_eq!(seen.load(Ordering::Relaxed), 1000);
        let total_chunks: usize = stats.chunks_per_worker.iter().sum();
        assert_eq!(total_chunks, 1000usize.div_ceil(8));
    }

    #[test]
    fn static_policy_stripes_are_contiguous() {
        use std::sync::Mutex;
        let cfg = ParallelConfig { threads: 3, chunk: 4, policy: Policy::Static };
        let ranges = Mutex::new(Vec::new());
        parallel_for_chunks(30, cfg, |r| {
            ranges.lock().unwrap().push(r);
        });
        let mut rs = ranges.into_inner().unwrap();
        rs.sort_by_key(|r| r.start);
        // Disjoint cover of 0..30.
        let mut at = 0;
        for r in rs {
            assert_eq!(r.start, at);
            at = r.end;
        }
        assert_eq!(at, 30);
    }

    #[test]
    fn imbalance_metric() {
        let s = SchedulerStats::from_chunks(vec![4, 2]);
        assert!((s.imbalance() - 2.0).abs() < 1e-12);
        let z = SchedulerStats::from_chunks(vec![0, 0]);
        assert_eq!(z.imbalance(), 1.0);
        let inf = SchedulerStats::from_chunks(vec![3, 0]);
        assert!(inf.imbalance().is_infinite());
    }

    #[test]
    fn frontier_queue_dedups_on_insert() {
        let q = FrontierQueue::new(16);
        assert!(q.is_empty());
        assert!(q.push(3));
        assert!(q.push(7));
        assert!(!q.push(3), "second push of a scheduled id must be a no-op");
        assert_eq!(q.len(), 2);
        assert!(q.is_marked(3) && q.is_marked(7) && !q.is_marked(0));
        let mut out = Vec::new();
        q.drain_into(&mut out);
        assert_eq!(out, vec![3, 7]);
        assert!(q.is_empty());
        // Bits survive the drain: the ids are still scheduled (caller owns
        // them now), so re-pushing is still deduped until unmark.
        assert!(!q.push(3));
        assert!(q.unmark(3));
        assert!(q.push(3));
    }

    #[test]
    fn frontier_queue_concurrent_pushes_never_duplicate() {
        let n = 4096usize;
        let q = FrontierQueue::new(n);
        // 4 threads race to push overlapping id ranges.
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let q = &q;
                scope.spawn(move || {
                    for i in 0..n {
                        if (i + t) % 2 == 0 {
                            q.push(i as u32);
                        }
                    }
                });
            }
        });
        let mut out = Vec::new();
        q.drain_into(&mut out);
        let total = out.len();
        out.sort_unstable();
        out.dedup();
        assert_eq!(out.len(), total, "duplicate ids escaped the dedup bitset");
        assert_eq!(out.len(), n, "every id pushed by some thread must appear once");
    }

    #[test]
    fn frontier_queue_epoch_protocol_round_trip() {
        let q = FrontierQueue::new(8);
        for id in [1u32, 5, 2] {
            q.push(id);
        }
        let mut current = Vec::new();
        q.drain_into(&mut current);
        // Epoch: process current, waking id+1 for even ids.
        for &id in &current {
            q.unmark(id);
            if id % 2 == 0 {
                q.push(id + 1);
            }
        }
        let mut next = Vec::new();
        q.drain_into(&mut next);
        assert_eq!(next, vec![3]);
    }

    #[test]
    fn scheduler_stats_merge_adds() {
        let mut a = SchedulerStats::from_chunks(vec![1, 2]);
        a.items_processed = 10;
        let mut b = SchedulerStats::from_chunks(vec![3, 4, 5]);
        b.items_processed = 7;
        b.items_skipped = 2;
        a.merge(&b);
        assert_eq!(a.chunks_per_worker, vec![4, 6, 5]);
        assert_eq!(a.items_processed, 17);
        assert_eq!(a.items_skipped, 2);
        assert_eq!(a.total_chunks(), 15);
    }

    #[test]
    fn borrows_caller_stack() {
        // The whole point of scoped threads: write into a caller-owned slice.
        let mut out = vec![0u32; 256];
        {
            let cells: Vec<std::sync::atomic::AtomicU32> =
                (0..256).map(|_| std::sync::atomic::AtomicU32::new(0)).collect();
            parallel_for_chunks(256, ParallelConfig::with_threads(4).chunk(16), |r| {
                for i in r {
                    cells[i].store(i as u32 * 2, Ordering::Relaxed);
                }
            });
            for (i, c) in cells.iter().enumerate() {
                out[i] = c.load(Ordering::Relaxed);
            }
        }
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 * 2));
    }
}
