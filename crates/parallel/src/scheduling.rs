//! Chunked parallel-for with static and dynamic scheduling.
//!
//! `parallel_for_chunks(n, cfg, f)` partitions `0..n` into chunks and runs
//! `f(range)` on worker threads. With [`Policy::Dynamic`] chunks are claimed
//! from a shared atomic counter (OpenMP `schedule(dynamic)`); with
//! [`Policy::Static`] each worker receives one contiguous stripe up front
//! (OpenMP `schedule(static)`), which reproduces the load-imbalance
//! pathology the paper describes for the notification mechanism.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::{AtomicBitset, ParallelConfig};

/// Scheduling policy for [`parallel_for_chunks`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// Chunks are claimed dynamically from a shared counter.
    Dynamic,
    /// The index space is split into `threads` contiguous stripes.
    Static,
}

/// Per-run scheduler telemetry, used by the scheduling ablation benches to
/// visualize load imbalance and to count useful vs wasted sweep work.
///
/// `items_processed` / `items_skipped` are filled in by the *callers* of the
/// scheduling primitives (the decomposition sweeps), which are the only
/// layer that knows whether an index was real work or an idle flag-check:
/// under frontier scheduling `items_skipped` stays 0 by construction, while
/// the full-scan baseline accumulates one skip per idle r-clique visited.
#[derive(Clone, Debug, Default)]
pub struct SchedulerStats {
    /// Number of chunks each worker processed.
    pub chunks_per_worker: Vec<usize>,
    /// Work items actually recomputed.
    pub items_processed: u64,
    /// Work items visited but skipped (idle under the notification flags).
    pub items_skipped: u64,
}

impl SchedulerStats {
    /// Stats with only chunk telemetry (item counters zero).
    pub fn from_chunks(chunks_per_worker: Vec<usize>) -> Self {
        SchedulerStats { chunks_per_worker, ..Default::default() }
    }

    /// Max/min chunk-count imbalance ratio (1.0 = perfectly balanced).
    pub fn imbalance(&self) -> f64 {
        let max = self.chunks_per_worker.iter().copied().max().unwrap_or(0);
        let min = self.chunks_per_worker.iter().copied().min().unwrap_or(0);
        if min == 0 {
            if max == 0 {
                1.0
            } else {
                f64::INFINITY
            }
        } else {
            max as f64 / min as f64
        }
    }

    /// Folds another run's telemetry into this one (chunk counts add
    /// index-wise; item counters add).
    pub fn merge(&mut self, other: &SchedulerStats) {
        if self.chunks_per_worker.len() < other.chunks_per_worker.len() {
            self.chunks_per_worker.resize(other.chunks_per_worker.len(), 0);
        }
        for (a, &b) in self.chunks_per_worker.iter_mut().zip(&other.chunks_per_worker) {
            *a += b;
        }
        self.items_processed += other.items_processed;
        self.items_skipped += other.items_skipped;
    }

    /// Total chunks across workers.
    pub fn total_chunks(&self) -> usize {
        self.chunks_per_worker.iter().sum()
    }
}

/// A concurrent dedup-on-insert worklist for frontier scheduling.
///
/// Holds ids from a fixed universe `0..universe`. Membership is tracked by
/// an [`AtomicBitset`], so [`FrontierQueue::push`] is an O(1) test-and-set:
/// an id already scheduled (bit set) is not enqueued twice. Ids accumulate
/// in a fixed-capacity array via a relaxed bump pointer — the capacity is
/// the universe size, which dedup makes sufficient by construction.
///
/// The intended epoch protocol (asynchronous frontier sweeps):
///
/// 1. workers pop items from a *drained snapshot* of the previous epoch,
///    call [`FrontierQueue::unmark`] on each before recomputing it, and
///    [`FrontierQueue::push`] every neighbor whose value changed;
/// 2. after the epoch barrier, [`FrontierQueue::drain_into`] moves the
///    accumulated ids into the next snapshot (bits stay set — they mean
///    "scheduled", and the ids are still scheduled, just in the new epoch).
///
/// An id woken while it still awaits processing in the current epoch keeps
/// its bit and is *not* re-enqueued: the pending visit will observe the
/// newer τ values, exactly the paper's notification semantics.
#[derive(Debug)]
pub struct FrontierQueue {
    items: Vec<AtomicU32>,
    tail: AtomicUsize,
    queued: AtomicBitset,
}

impl FrontierQueue {
    /// Empty queue over ids `0..universe`, no bits set.
    pub fn new(universe: usize) -> Self {
        FrontierQueue {
            items: (0..universe).map(|_| AtomicU32::new(0)).collect(),
            tail: AtomicUsize::new(0),
            queued: AtomicBitset::new(universe, false),
        }
    }

    /// Universe size (also the queue capacity).
    #[inline]
    pub fn universe(&self) -> usize {
        self.items.len()
    }

    /// Number of ids currently enqueued.
    #[inline]
    pub fn len(&self) -> usize {
        self.tail.load(Ordering::Relaxed).min(self.items.len())
    }

    /// True when nothing is enqueued.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedules `id` unless already scheduled. Returns whether it was
    /// enqueued now.
    #[inline]
    pub fn push(&self, id: u32) -> bool {
        debug_assert!((id as usize) < self.universe());
        if self.queued.set(id as usize) {
            return false; // already scheduled
        }
        let slot = self.tail.fetch_add(1, Ordering::Relaxed);
        debug_assert!(slot < self.items.len(), "FrontierQueue overflow — dedup invariant broken");
        self.items[slot].store(id, Ordering::Relaxed);
        true
    }

    /// Clears `id`'s scheduled bit (call when a worker starts processing
    /// it). Returns the previous value.
    #[inline]
    pub fn unmark(&self, id: u32) -> bool {
        self.queued.clear(id as usize)
    }

    /// Whether `id` is currently scheduled.
    #[inline]
    pub fn is_marked(&self, id: u32) -> bool {
        self.queued.get(id as usize)
    }

    /// Moves all enqueued ids into `out` (appending) and resets the queue's
    /// buffer. Scheduled bits are left set — the drained ids remain
    /// scheduled, now owned by the caller's epoch snapshot.
    ///
    /// Requires external synchronization (call between epochs, after the
    /// worker barrier), which is the natural structure of the sweep loop.
    pub fn drain_into(&self, out: &mut Vec<u32>) {
        let n = self.len();
        out.reserve(n);
        for slot in &self.items[..n] {
            out.push(slot.load(Ordering::Relaxed));
        }
        self.tail.store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// Barrier-free drain primitives
//
// The continuous-drain peel and the lock-free And worklist are built from the
// pieces below instead of `parallel_for_chunks`: persistent workers claim
// chunks from shared cursors/queues and only meet at explicit phase gates
// (peel) or run gate-free to quiescence (And). The companion paper's
// observation that stale reads are harmless is what lets every hot-path
// access stay relaxed; the few Release/Acquire pairs are annotated with the
// invariant they carry.
// ---------------------------------------------------------------------------

/// Slot value meaning "reserved but not yet published" in [`DrainQueue`].
const EMPTY_SLOT: u32 = u32::MAX;

/// A shared claim cursor over the index range `0..limit`.
///
/// Workers call [`ChunkCursor::claim`] to take the next contiguous chunk;
/// the claim is a single relaxed `fetch_add`, so the cursor is the cheapest
/// possible dynamic scheduler. [`ChunkCursor::reset`] rewinds it for the
/// next phase and requires external synchronization (the peel drain resets
/// it from the gate leader's critical section).
#[derive(Debug)]
pub struct ChunkCursor {
    next: AtomicUsize,
    limit: usize,
}

impl ChunkCursor {
    /// Cursor over `0..limit`, positioned at 0.
    pub fn new(limit: usize) -> Self {
        ChunkCursor { next: AtomicUsize::new(0), limit }
    }

    /// Claims up to `chunk` indices; `None` once the range is exhausted.
    #[inline]
    pub fn claim(&self, chunk: usize) -> Option<std::ops::Range<usize>> {
        let chunk = chunk.max(1);
        let lo = self.next.fetch_add(chunk, Ordering::Relaxed);
        if lo >= self.limit {
            return None;
        }
        Some(lo..(lo + chunk).min(self.limit))
    }

    /// Upper end of the claimable range.
    #[inline]
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Rewinds to 0. Caller must guarantee no concurrent claims (e.g. all
    /// workers parked at a [`PhaseGate`]).
    pub fn reset(&self) {
        self.next.store(0, Ordering::Relaxed);
    }
}

/// A fixed-capacity multi-producer multi-consumer drain queue for items that
/// are pushed **at most once** (the peel's push-exactly-once invariant: a
/// vertex enters the queue either from the threshold rescan or from the
/// unique CAS that lands its `k+1 → k` degree crossing — never both).
///
/// Push reserves a slot with a relaxed `fetch_add` on `tail` and publishes
/// the value with a Release store; consumers claim `[head, head+take)` slot
/// ranges by CAS and Acquire-read each slot, spinning across the short
/// reserve→publish window. Because every id is pushed at most once, a
/// capacity of the id universe can never overflow, and claimed slices are
/// stable forever — a consumer never contends with a producer for a slot.
///
/// Each slot also records the pushing worker, so consumers can count how
/// many of the items they drained were produced by another worker (the
/// "steal" telemetry of the work-stealing drain).
#[derive(Debug)]
pub struct DrainQueue {
    slots: Vec<AtomicU32>,
    owner: Vec<AtomicU32>,
    tail: AtomicUsize,
    head: AtomicUsize,
}

impl DrainQueue {
    /// Queue holding at most `capacity` pushes over ids `< u32::MAX`.
    pub fn new(capacity: usize) -> Self {
        DrainQueue {
            slots: (0..capacity).map(|_| AtomicU32::new(EMPTY_SLOT)).collect(),
            owner: (0..capacity).map(|_| AtomicU32::new(0)).collect(),
            tail: AtomicUsize::new(0),
            head: AtomicUsize::new(0),
        }
    }

    /// Publishes `id` (pushed by `worker`). Panics if the push-once
    /// invariant is broken (more pushes than capacity).
    #[inline]
    pub fn push(&self, id: u32, worker: u32) {
        debug_assert_ne!(id, EMPTY_SLOT);
        let slot = self.tail.fetch_add(1, Ordering::Relaxed);
        assert!(slot < self.slots.len(), "DrainQueue overflow — push-once invariant broken");
        self.owner[slot].store(worker, Ordering::Relaxed);
        // Release pairs with the Acquire in `read`: a consumer that sees the
        // id also sees the owner store above.
        self.slots[slot].store(id, Ordering::Release);
    }

    /// Number of slots reserved by pushers so far.
    #[inline]
    pub fn pushed(&self) -> usize {
        self.tail.load(Ordering::Relaxed).min(self.slots.len())
    }

    /// Number of slots claimed by consumers so far.
    #[inline]
    pub fn claimed(&self) -> usize {
        self.head.load(Ordering::Relaxed)
    }

    /// Whether any pushed slot is still unclaimed.
    #[inline]
    pub fn has_unclaimed(&self) -> bool {
        self.claimed() < self.pushed()
    }

    /// Claims up to `max` slots; returns the claimed slot range, or `None`
    /// when everything pushed so far is already claimed.
    #[inline]
    pub fn claim(&self, max: usize) -> Option<std::ops::Range<usize>> {
        let max = max.max(1);
        let mut h = self.head.load(Ordering::Relaxed);
        loop {
            let t = self.pushed();
            if h >= t {
                return None;
            }
            let take = (t - h).min(max);
            match self.head.compare_exchange_weak(h, h + take, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return Some(h..h + take),
                Err(now) => h = now,
            }
        }
    }

    /// Reads the id and pushing worker in a claimed `slot`, spinning across
    /// the pusher's reserve→publish window. Returns `None` only if `abort`
    /// is raised while waiting (a poisoned pusher died mid-publish).
    #[inline]
    pub fn read(&self, slot: usize, abort: &AtomicBool) -> Option<(u32, u32)> {
        loop {
            let v = self.slots[slot].load(Ordering::Acquire);
            if v != EMPTY_SLOT {
                return Some((v, self.owner[slot].load(Ordering::Relaxed)));
            }
            if abort.load(Ordering::Relaxed) {
                return None;
            }
            std::hint::spin_loop();
        }
    }

    /// Rewinds the queue to empty. Caller must guarantee no concurrent use.
    pub fn reset(&self) {
        for s in &self.slots {
            s.store(EMPTY_SLOT, Ordering::Relaxed);
        }
        self.tail.store(0, Ordering::Relaxed);
        self.head.store(0, Ordering::Relaxed);
    }
}

/// Bounded lock-free MPMC ring (Vyukov's sequence-number design), used for
/// worklists whose ids can be pushed *again* after being consumed — the And
/// frontier, where a processed r-clique may be re-woken. Capacity is rounded
/// up to a power of two.
#[derive(Debug)]
pub struct MpmcRing {
    seq: Vec<AtomicUsize>,
    vals: Vec<AtomicU32>,
    mask: usize,
    head: AtomicUsize,
    tail: AtomicUsize,
}

impl MpmcRing {
    /// Ring holding at least `capacity` items.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.max(2).next_power_of_two();
        MpmcRing {
            seq: (0..cap).map(AtomicUsize::new).collect(),
            vals: (0..cap).map(|_| AtomicU32::new(0)).collect(),
            mask: cap - 1,
            head: AtomicUsize::new(0),
            tail: AtomicUsize::new(0),
        }
    }

    /// Usable capacity.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.mask + 1
    }

    /// Enqueues `v`; `false` when the ring is full.
    #[inline]
    pub fn push(&self, v: u32) -> bool {
        let mut pos = self.tail.load(Ordering::Relaxed);
        loop {
            let cell = pos & self.mask;
            let seq = self.seq[cell].load(Ordering::Acquire);
            let diff = seq as isize - pos as isize;
            if diff == 0 {
                match self.tail.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        self.vals[cell].store(v, Ordering::Relaxed);
                        // Release publishes the value store above to the
                        // consumer's Acquire seq read.
                        self.seq[cell].store(pos + 1, Ordering::Release);
                        return true;
                    }
                    Err(now) => pos = now,
                }
            } else if diff < 0 {
                return false; // full
            } else {
                pos = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeues one item; `None` when empty.
    #[inline]
    pub fn pop(&self) -> Option<u32> {
        let mut pos = self.head.load(Ordering::Relaxed);
        loop {
            let cell = pos & self.mask;
            let seq = self.seq[cell].load(Ordering::Acquire);
            let diff = seq as isize - (pos + 1) as isize;
            if diff == 0 {
                match self.head.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let v = self.vals[cell].load(Ordering::Relaxed);
                        self.seq[cell].store(pos + self.mask + 1, Ordering::Release);
                        return Some(v);
                    }
                    Err(now) => pos = now,
                }
            } else if diff < 0 {
                return None; // empty
            } else {
                pos = self.head.load(Ordering::Relaxed);
            }
        }
    }

    /// Approximate emptiness (exact only when producers are quiescent).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Relaxed) >= self.tail.load(Ordering::Relaxed)
    }
}

/// [`MpmcRing`] plus a dedup bitset: the lock-free replacement for the
/// snapshot+sort epoch protocol of [`FrontierQueue`]. `push` is a no-op for
/// an id whose bit is already set; consumers `pop` continuously and `unmark`
/// before recomputing, exactly the paper's notification semantics but with
/// no epoch barrier. Because an id's bit stays set from push until its
/// consumer unmarks it *after* the pop, the ring holds at most one live
/// entry per id, so a universe-sized ring is never *logically* full. The
/// Vyukov protocol can still report full **transiently** when a push wraps
/// onto a slot whose consumer has claimed it but not yet recycled its
/// sequence number; `push` absorbs that window with a bounded spin (the
/// claiming consumer is lock-free and mid-`pop`, so the wait is short and
/// deadlock-free).
#[derive(Debug)]
pub struct ConcurrentWorklist {
    ring: MpmcRing,
    queued: AtomicBitset,
}

impl ConcurrentWorklist {
    /// Empty worklist over ids `0..universe`.
    pub fn new(universe: usize) -> Self {
        ConcurrentWorklist {
            ring: MpmcRing::with_capacity(universe.max(1)),
            queued: AtomicBitset::new(universe, false),
        }
    }

    /// Universe size.
    #[inline]
    pub fn universe(&self) -> usize {
        self.queued.len()
    }

    /// Schedules `id` unless already scheduled; returns whether it was
    /// enqueued now.
    #[inline]
    pub fn push(&self, id: u32) -> bool {
        debug_assert!((id as usize) < self.universe());
        if self.queued.set(id as usize) {
            return false; // already scheduled
        }
        // The dedup bit guarantees occupancy < capacity here, so a failed
        // ring push is the transient wrap-onto-a-mid-pop-slot window (see
        // the type docs): spin until the consumer recycles the slot.
        let mut spins = 0u32;
        while !self.ring.push(id) {
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
        true
    }

    /// Takes one scheduled id (its bit stays set until [`Self::unmark`]).
    #[inline]
    pub fn pop(&self) -> Option<u32> {
        self.ring.pop()
    }

    /// Clears `id`'s scheduled bit (call before recomputing it). Returns the
    /// previous value.
    #[inline]
    pub fn unmark(&self, id: u32) -> bool {
        self.queued.clear(id as usize)
    }

    /// Whether `id` is currently scheduled.
    #[inline]
    pub fn is_marked(&self, id: u32) -> bool {
        self.queued.get(id as usize)
    }
}

/// Exact termination detection for continuous drains, by quiescence
/// counting: work is **issued** (counter bumped before the item is
/// published to the queue) and **retired** (counter bumped after the item's
/// processing — including every follow-on issue it made — is complete).
///
/// `quiescent()` reads `retired` with Acquire *first*, then `issued`: both
/// counters are monotone and `retired ≤ issued` always holds, so observing
/// them equal proves every issued item was retired at some point between
/// the two reads — and since new work is only issued from in-flight items,
/// no work can appear afterwards. This sidesteps the classic lost-wakeup
/// race of idle-worker counting: there is no "idle" state to re-enter, just
/// two monotone counters.
#[derive(Debug, Default)]
pub struct QuiescenceCounter {
    issued: AtomicUsize,
    retired: AtomicUsize,
}

impl QuiescenceCounter {
    /// Fresh counter (zero issued, zero retired — trivially quiescent, which
    /// is the correct answer for empty input).
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` new work items. Must be called *before* the items become
    /// claimable by other workers.
    #[inline]
    pub fn issue(&self, n: usize) {
        self.issued.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` completed items. Release so that a `quiescent()` observer
    /// also observes everything the processing wrote (its κ stores and
    /// follow-on issues).
    #[inline]
    pub fn retire(&self, n: usize) {
        self.retired.fetch_add(n, Ordering::Release);
    }

    /// Exact check: all issued work has been retired.
    #[inline]
    pub fn quiescent(&self) -> bool {
        // Acquire on `retired` also fences the subsequent `issued` load from
        // moving earlier; see the struct docs for why this order is exact.
        let r = self.retired.load(Ordering::Acquire);
        let i = self.issued.load(Ordering::Relaxed);
        debug_assert!(r <= i);
        r == i
    }

    /// Total issued so far.
    #[inline]
    pub fn issued(&self) -> usize {
        self.issued.load(Ordering::Relaxed)
    }

    /// Rewinds both counters. Caller must guarantee no concurrent use.
    pub fn reset(&self) {
        self.issued.store(0, Ordering::Relaxed);
        self.retired.store(0, Ordering::Relaxed);
    }
}

/// A leader/follower phase gate for the peel drain's SCAN → DRAIN → SCAN
/// cycle: followers announce arrival and spin until the leader advances the
/// phase; the leader waits for all followers, runs its critical section
/// (merge scan results, advance the threshold, reset cursors), then
/// releases everyone. `abort` poisons the gate so a panicking worker can
/// never strand the rest of the team in a spin.
#[derive(Debug)]
pub struct PhaseGate {
    arrived: AtomicUsize,
    phase: AtomicUsize,
    parties: usize,
    abort: AtomicBool,
}

impl PhaseGate {
    /// Gate for `parties` workers (one of which acts as leader).
    pub fn new(parties: usize) -> Self {
        PhaseGate {
            arrived: AtomicUsize::new(0),
            phase: AtomicUsize::new(0),
            parties: parties.max(1),
            abort: AtomicBool::new(false),
        }
    }

    /// Follower: announce arrival and wait for the next phase. Returns
    /// `false` if the gate was aborted.
    pub fn arrive_and_wait(&self) -> bool {
        let p = self.phase.load(Ordering::Acquire);
        // AcqRel chains the followers' release sequence so the leader's
        // Acquire read of the final count sees every follower's prior work.
        self.arrived.fetch_add(1, Ordering::AcqRel);
        let mut spins = 0u32;
        loop {
            if self.phase.load(Ordering::Acquire) != p {
                return true;
            }
            if self.abort.load(Ordering::Relaxed) {
                return false;
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Leader: wait until every follower has arrived. Returns `false` if
    /// the gate was aborted while waiting.
    pub fn await_followers(&self) -> bool {
        let mut spins = 0u32;
        loop {
            if self.arrived.load(Ordering::Acquire) == self.parties - 1 {
                return true;
            }
            if self.abort.load(Ordering::Relaxed) {
                return false;
            }
            spins += 1;
            if spins.is_multiple_of(64) {
                std::thread::yield_now();
            } else {
                std::hint::spin_loop();
            }
        }
    }

    /// Leader: release the followers into the next phase. Release publishes
    /// everything the leader wrote in its critical section.
    pub fn advance(&self) {
        self.arrived.store(0, Ordering::Relaxed);
        self.phase.fetch_add(1, Ordering::Release);
    }

    /// Poisons the gate: every current and future wait returns `false`.
    pub fn poison(&self) {
        self.abort.store(true, Ordering::Release);
    }

    /// Whether the gate has been poisoned.
    pub fn poisoned(&self) -> bool {
        self.abort.load(Ordering::Relaxed)
    }

    /// The shared abort flag, for spins outside the gate (queue reads).
    pub fn abort_flag(&self) -> &AtomicBool {
        &self.abort
    }
}

/// Seeded schedule perturbation for the determinism harness: derives one
/// independent SplitMix64 stream per worker and uses it to vary claim-chunk
/// sizes and inject yields at claim/push points. The algorithms must
/// produce bit-identical results under every seed — that is the claim the
/// `parallel_determinism` test enforces.
#[derive(Clone, Copy, Debug)]
pub struct ScheduleJitter {
    seed: u64,
}

impl ScheduleJitter {
    /// Jitter source from a test seed.
    pub fn new(seed: u64) -> Self {
        ScheduleJitter { seed }
    }

    /// Independent per-worker stream.
    pub fn worker(&self, worker: usize) -> WorkerJitter {
        WorkerJitter { state: self.seed ^ (worker as u64 + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15) }
    }
}

/// One worker's jitter stream (SplitMix64).
#[derive(Clone, Debug)]
pub struct WorkerJitter {
    state: u64,
}

impl WorkerJitter {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A perturbed chunk size in `1..=max`.
    pub fn chunk(&mut self, max: usize) -> usize {
        1 + (self.next() as usize) % max.max(1)
    }

    /// Maybe yield/spin, perturbing the interleaving.
    pub fn maybe_yield(&mut self) {
        match self.next() % 8 {
            0 => std::thread::yield_now(),
            1 => {
                for _ in 0..32 {
                    std::hint::spin_loop();
                }
            }
            _ => {}
        }
    }
}

/// Where a [`DrainHooks`] callback fires inside a drain worker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DrainEvent {
    /// A chunk (queue or cursor) was claimed.
    Claim,
    /// One work item is about to be processed.
    Item,
    /// A follow-on item was pushed.
    Push,
    /// The worker passed a phase boundary.
    Phase,
}

/// Failpoint-style observation/delay hooks for the drain loops, in the
/// spirit of the WAL's `FailPoints`: tests install a callback that can
/// sleep, yield, or panic at chosen events to prove stale-read tolerance
/// and panic containment. Default is a no-op with a single branch on the
/// hot path.
#[derive(Clone, Default)]
pub struct DrainHooks(Option<Arc<dyn Fn(usize, DrainEvent) + Send + Sync>>);

impl std::fmt::Debug for DrainHooks {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() { "DrainHooks(set)" } else { "DrainHooks(none)" })
    }
}

impl DrainHooks {
    /// Installs a hook called with `(worker, event)`.
    pub fn with(f: impl Fn(usize, DrainEvent) + Send + Sync + 'static) -> Self {
        DrainHooks(Some(Arc::new(f)))
    }

    /// Fires the hook if installed.
    #[inline]
    pub fn fire(&self, worker: usize, event: DrainEvent) {
        if let Some(f) = &self.0 {
            f(worker, event);
        }
    }
}

/// Schedule-control bundle threaded through the drain entry points: an
/// optional seeded jitter plus optional hooks. `Default` is the production
/// configuration (no perturbation, no hooks).
#[derive(Clone, Debug, Default)]
pub struct DrainControl {
    /// Seeded schedule perturbation (None = natural schedule).
    pub jitter: Option<ScheduleJitter>,
    /// Event hooks (delay injection, panic injection, observation).
    pub hooks: DrainHooks,
}

impl DrainControl {
    /// Control with a seeded jitter and no hooks.
    pub fn seeded(seed: u64) -> Self {
        DrainControl { jitter: Some(ScheduleJitter::new(seed)), hooks: DrainHooks::default() }
    }

    /// Per-worker handle.
    pub fn worker(&self, worker: usize) -> WorkerControl {
        WorkerControl {
            jitter: self.jitter.as_ref().map(|j| j.worker(worker)),
            hooks: self.hooks.clone(),
            worker,
        }
    }
}

/// One worker's view of a [`DrainControl`]: owns the jitter stream, fires
/// hooks with the worker id attached.
#[derive(Debug)]
pub struct WorkerControl {
    jitter: Option<WorkerJitter>,
    hooks: DrainHooks,
    worker: usize,
}

impl WorkerControl {
    /// Fires the event hook and maybe injects a jittered yield.
    #[inline]
    pub fn on(&mut self, event: DrainEvent) {
        if let Some(j) = &mut self.jitter {
            j.maybe_yield();
        }
        self.hooks.fire(self.worker, event);
    }

    /// The claim size to use this round: `base`, or a jittered value in
    /// `1..=base` when a schedule perturbation is installed.
    #[inline]
    pub fn chunk(&mut self, base: usize) -> usize {
        match &mut self.jitter {
            Some(j) => j.chunk(base),
            None => base.max(1),
        }
    }

    /// This worker's index.
    #[inline]
    pub fn id(&self) -> usize {
        self.worker
    }
}

/// Runs `f` over `0..n` in parallel chunks. `f` must be `Sync` (it is shared
/// by reference across workers) and is invoked with disjoint ranges covering
/// `0..n` exactly once.
pub fn parallel_for_chunks<F>(n: usize, cfg: ParallelConfig, f: F) -> SchedulerStats
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    parallel_for_chunks_with(n, cfg, || (), |(), r| f(r))
}

/// Like [`parallel_for_chunks`] but with per-worker state created by `init`
/// (e.g. a scratch `HBuffer`), passed mutably to every chunk the worker
/// claims.
pub fn parallel_for_chunks_with<S, I, F>(
    n: usize,
    cfg: ParallelConfig,
    init: I,
    f: F,
) -> SchedulerStats
where
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, std::ops::Range<usize>) + Sync,
{
    parallel_for_chunks_collect(n, cfg, init, f).0
}

/// Like [`parallel_for_chunks_with`], but hands each worker's final state
/// back to the caller (one entry per worker that ran; sequential runs
/// return exactly one). This is the lock-free accumulation primitive: a
/// worker appends to its own state on the hot path and the caller merges
/// the returned states after the barrier — no shared mutex, no atomics
/// beyond chunk handout.
pub fn parallel_for_chunks_collect<S, I, F>(
    n: usize,
    cfg: ParallelConfig,
    init: I,
    f: F,
) -> (SchedulerStats, Vec<S>)
where
    S: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, std::ops::Range<usize>) + Sync,
{
    hdsd_telemetry::span!("parallel.chunks");
    let threads = cfg.threads.max(1);
    let chunk = cfg.chunk.max(1);
    if n == 0 {
        return (SchedulerStats::from_chunks(vec![0; threads]), Vec::new());
    }
    if threads == 1 {
        let mut s = init();
        let mut done = 0usize;
        let mut chunks = 0usize;
        while done < n {
            let hi = (done + chunk).min(n);
            f(&mut s, done..hi);
            done = hi;
            chunks += 1;
        }
        return (SchedulerStats::from_chunks(vec![chunks]), vec![s]);
    }

    match cfg.policy {
        #[allow(clippy::needless_range_loop)]
        Policy::Dynamic => {
            let next = AtomicUsize::new(0);
            let counters: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
            let states = std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(threads);
                for t in 0..threads {
                    let next = &next;
                    let counter = &counters[t];
                    let init = &init;
                    let f = &f;
                    handles.push(scope.spawn(move || {
                        let mut s = init();
                        loop {
                            let lo = next.fetch_add(chunk, Ordering::Relaxed);
                            if lo >= n {
                                break;
                            }
                            let hi = (lo + chunk).min(n);
                            f(&mut s, lo..hi);
                            counter.fetch_add(1, Ordering::Relaxed);
                        }
                        s
                    }));
                }
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
            });
            (
                SchedulerStats::from_chunks(
                    counters.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                ),
                states,
            )
        }
        #[allow(clippy::needless_range_loop)]
        Policy::Static => {
            let per = n.div_ceil(threads);
            let counters: Vec<AtomicUsize> = (0..threads).map(|_| AtomicUsize::new(0)).collect();
            let states = std::thread::scope(|scope| {
                let mut handles = Vec::with_capacity(threads);
                for t in 0..threads {
                    let lo = (t * per).min(n);
                    let hi = ((t + 1) * per).min(n);
                    let counter = &counters[t];
                    let init = &init;
                    let f = &f;
                    handles.push(scope.spawn(move || {
                        let mut s = init();
                        let mut at = lo;
                        while at < hi {
                            let end = (at + chunk).min(hi);
                            f(&mut s, at..end);
                            at = end;
                            counter.fetch_add(1, Ordering::Relaxed);
                        }
                        s
                    }));
                }
                handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
            });
            (
                SchedulerStats::from_chunks(
                    counters.iter().map(|c| c.load(Ordering::Relaxed)).collect(),
                ),
                states,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

    fn sum_check(threads: usize, policy: Policy, n: usize, chunk: usize) {
        let cfg = ParallelConfig { threads, chunk, policy };
        let total = AtomicU64::new(0);
        let calls = AtomicUsize::new(0);
        parallel_for_chunks(n, cfg, |r| {
            let mut s = 0u64;
            for i in r {
                s += i as u64;
            }
            total.fetch_add(s, Ordering::Relaxed);
            calls.fetch_add(1, Ordering::Relaxed);
        });
        let expect = (n as u64).saturating_sub(1) * n as u64 / 2;
        assert_eq!(total.load(Ordering::Relaxed), expect, "threads={threads} {policy:?}");
        let expected_calls = match policy {
            // Static chunks each stripe separately, so count per stripe.
            Policy::Static if threads > 1 && n > 0 => {
                let per = n.div_ceil(threads);
                (0..threads)
                    .map(|t| {
                        let lo = (t * per).min(n);
                        let hi = ((t + 1) * per).min(n);
                        (hi - lo).div_ceil(chunk.max(1))
                    })
                    .sum()
            }
            _ => n.div_ceil(chunk.max(1)),
        };
        assert_eq!(calls.load(Ordering::Relaxed), expected_calls);
    }

    #[test]
    fn covers_index_space_exactly_once() {
        for &threads in &[1usize, 2, 4, 7] {
            for &policy in &[Policy::Dynamic, Policy::Static] {
                for &n in &[0usize, 1, 5, 100, 1001] {
                    sum_check(threads, policy, n, 16);
                }
            }
        }
    }

    #[test]
    fn chunk_of_one_works() {
        sum_check(3, Policy::Dynamic, 50, 1);
        sum_check(3, Policy::Static, 50, 1);
    }

    #[test]
    fn collect_returns_every_workers_state() {
        for &(threads, policy) in
            &[(1usize, Policy::Dynamic), (4, Policy::Dynamic), (3, Policy::Static)]
        {
            let cfg = ParallelConfig { threads, chunk: 8, policy };
            let (_, states) =
                parallel_for_chunks_collect(1000, cfg, Vec::new, |local: &mut Vec<usize>, r| {
                    local.extend(r)
                });
            assert_eq!(states.len(), threads, "{policy:?}");
            let mut all: Vec<usize> = states.into_iter().flatten().collect();
            all.sort_unstable();
            // Every index appears exactly once across the worker states.
            assert_eq!(all, (0..1000).collect::<Vec<_>>(), "{policy:?} threads={threads}");
        }
        // n == 0: no worker ran, no states to merge.
        let (_, states) = parallel_for_chunks_collect(
            0,
            ParallelConfig::with_threads(4),
            Vec::new,
            |local: &mut Vec<usize>, r| local.extend(r),
        );
        assert!(states.is_empty());
    }

    #[test]
    fn per_worker_state_is_reused() {
        // Each worker counts its own chunks in local state; stats must agree.
        let cfg = ParallelConfig { threads: 4, chunk: 8, policy: Policy::Dynamic };
        let seen = AtomicUsize::new(0);
        let stats = parallel_for_chunks_with(
            1000,
            cfg,
            || 0usize,
            |local, r| {
                *local += 1;
                seen.fetch_add(r.len(), Ordering::Relaxed);
            },
        );
        assert_eq!(seen.load(Ordering::Relaxed), 1000);
        let total_chunks: usize = stats.chunks_per_worker.iter().sum();
        assert_eq!(total_chunks, 1000usize.div_ceil(8));
    }

    #[test]
    fn static_policy_stripes_are_contiguous() {
        use std::sync::Mutex;
        let cfg = ParallelConfig { threads: 3, chunk: 4, policy: Policy::Static };
        let ranges = Mutex::new(Vec::new());
        parallel_for_chunks(30, cfg, |r| {
            ranges.lock().unwrap().push(r);
        });
        let mut rs = ranges.into_inner().unwrap();
        rs.sort_by_key(|r| r.start);
        // Disjoint cover of 0..30.
        let mut at = 0;
        for r in rs {
            assert_eq!(r.start, at);
            at = r.end;
        }
        assert_eq!(at, 30);
    }

    #[test]
    fn imbalance_metric() {
        let s = SchedulerStats::from_chunks(vec![4, 2]);
        assert!((s.imbalance() - 2.0).abs() < 1e-12);
        let z = SchedulerStats::from_chunks(vec![0, 0]);
        assert_eq!(z.imbalance(), 1.0);
        let inf = SchedulerStats::from_chunks(vec![3, 0]);
        assert!(inf.imbalance().is_infinite());
    }

    #[test]
    fn frontier_queue_dedups_on_insert() {
        let q = FrontierQueue::new(16);
        assert!(q.is_empty());
        assert!(q.push(3));
        assert!(q.push(7));
        assert!(!q.push(3), "second push of a scheduled id must be a no-op");
        assert_eq!(q.len(), 2);
        assert!(q.is_marked(3) && q.is_marked(7) && !q.is_marked(0));
        let mut out = Vec::new();
        q.drain_into(&mut out);
        assert_eq!(out, vec![3, 7]);
        assert!(q.is_empty());
        // Bits survive the drain: the ids are still scheduled (caller owns
        // them now), so re-pushing is still deduped until unmark.
        assert!(!q.push(3));
        assert!(q.unmark(3));
        assert!(q.push(3));
    }

    #[test]
    fn frontier_queue_concurrent_pushes_never_duplicate() {
        let n = 4096usize;
        let q = FrontierQueue::new(n);
        // 4 threads race to push overlapping id ranges.
        std::thread::scope(|scope| {
            for t in 0..4usize {
                let q = &q;
                scope.spawn(move || {
                    for i in 0..n {
                        if (i + t) % 2 == 0 {
                            q.push(i as u32);
                        }
                    }
                });
            }
        });
        let mut out = Vec::new();
        q.drain_into(&mut out);
        let total = out.len();
        out.sort_unstable();
        out.dedup();
        assert_eq!(out.len(), total, "duplicate ids escaped the dedup bitset");
        assert_eq!(out.len(), n, "every id pushed by some thread must appear once");
    }

    #[test]
    fn frontier_queue_epoch_protocol_round_trip() {
        let q = FrontierQueue::new(8);
        for id in [1u32, 5, 2] {
            q.push(id);
        }
        let mut current = Vec::new();
        q.drain_into(&mut current);
        // Epoch: process current, waking id+1 for even ids.
        for &id in &current {
            q.unmark(id);
            if id % 2 == 0 {
                q.push(id + 1);
            }
        }
        let mut next = Vec::new();
        q.drain_into(&mut next);
        assert_eq!(next, vec![3]);
    }

    #[test]
    fn scheduler_stats_merge_adds() {
        let mut a = SchedulerStats::from_chunks(vec![1, 2]);
        a.items_processed = 10;
        let mut b = SchedulerStats::from_chunks(vec![3, 4, 5]);
        b.items_processed = 7;
        b.items_skipped = 2;
        a.merge(&b);
        assert_eq!(a.chunks_per_worker, vec![4, 6, 5]);
        assert_eq!(a.items_processed, 17);
        assert_eq!(a.items_skipped, 2);
        assert_eq!(a.total_chunks(), 15);
    }

    #[test]
    fn chunk_cursor_covers_range_exactly_once() {
        let cur = ChunkCursor::new(1000);
        let seen: Vec<AtomicUsize> = (0..1000).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let cur = &cur;
                let seen = &seen;
                scope.spawn(move || {
                    while let Some(r) = cur.claim(7) {
                        for i in r {
                            seen[i].fetch_add(1, Ordering::Relaxed);
                        }
                    }
                });
            }
        });
        assert!(seen.iter().all(|c| c.load(Ordering::Relaxed) == 1));
        assert!(cur.claim(7).is_none());
        cur.reset();
        assert_eq!(cur.claim(7), Some(0..7));
    }

    #[test]
    fn chunk_cursor_empty_and_single() {
        let empty = ChunkCursor::new(0);
        assert!(empty.claim(8).is_none());
        let one = ChunkCursor::new(1);
        assert_eq!(one.claim(8), Some(0..1));
        assert!(one.claim(8).is_none());
    }

    #[test]
    fn drain_queue_claims_each_push_once() {
        let n = 2048u32;
        let q = DrainQueue::new(n as usize);
        let abort = AtomicBool::new(false);
        let seen: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
        // 2 pushers, 2 claimers racing; claimers also count steals.
        let stolen = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for w in 0..2u32 {
                let q = &q;
                scope.spawn(move || {
                    for id in (w..n).step_by(2) {
                        q.push(id, w);
                    }
                });
            }
            for me in 2..4u32 {
                let q = &q;
                let abort = &abort;
                let seen = &seen;
                let stolen = &stolen;
                scope.spawn(move || loop {
                    match q.claim(5) {
                        Some(r) => {
                            for slot in r {
                                let (id, owner) = q.read(slot, abort).unwrap();
                                seen[id as usize].fetch_add(1, Ordering::Relaxed);
                                if owner != me {
                                    stolen.fetch_add(1, Ordering::Relaxed);
                                }
                            }
                        }
                        None => {
                            if q.pushed() == n as usize && !q.has_unclaimed() {
                                break;
                            }
                            std::thread::yield_now();
                        }
                    }
                });
            }
        });
        assert!(seen.iter().all(|c| c.load(Ordering::Relaxed) == 1), "each id claimed once");
        // Claimers never pushed, so every drained item counts as a steal.
        assert_eq!(stolen.load(Ordering::Relaxed), n as usize);
    }

    #[test]
    fn drain_queue_read_aborts_on_poison() {
        let q = DrainQueue::new(4);
        // Reserve a slot without publishing (simulates a pusher dying
        // between reserve and publish) by claiming against a manually
        // bumped tail.
        q.tail.store(1, Ordering::Relaxed);
        let abort = AtomicBool::new(false);
        std::thread::scope(|scope| {
            let q = &q;
            let abort = &abort;
            let h = scope.spawn(move || q.read(0, abort));
            std::thread::sleep(std::time::Duration::from_millis(5));
            abort.store(true, Ordering::Relaxed);
            assert_eq!(h.join().unwrap(), None);
        });
    }

    #[test]
    fn mpmc_ring_wraps_without_loss_or_duplication() {
        let ring = MpmcRing::with_capacity(8); // small: forces wraparound
        let total = 10_000u32;
        let counts: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
        let popped = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for p in 0..2u32 {
                let ring = &ring;
                scope.spawn(move || {
                    for v in (p..total).step_by(2) {
                        while !ring.push(v) {
                            std::hint::spin_loop();
                        }
                    }
                });
            }
            for _ in 0..2 {
                let ring = &ring;
                let counts = &counts;
                let popped = &popped;
                scope.spawn(move || loop {
                    if let Some(v) = ring.pop() {
                        counts[v as usize].fetch_add(1, Ordering::Relaxed);
                        popped.fetch_add(1, Ordering::Relaxed);
                    } else if popped.load(Ordering::Relaxed) == total as usize {
                        break;
                    } else {
                        std::hint::spin_loop();
                    }
                });
            }
        });
        assert!(counts.iter().all(|c| c.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn mpmc_ring_single_item_and_empty() {
        let ring = MpmcRing::with_capacity(1);
        assert!(ring.is_empty());
        assert_eq!(ring.pop(), None);
        assert!(ring.push(42));
        assert_eq!(ring.pop(), Some(42));
        assert_eq!(ring.pop(), None);
    }

    #[test]
    fn concurrent_worklist_dedups_and_allows_repush_after_unmark() {
        let wl = ConcurrentWorklist::new(16);
        assert!(wl.push(3));
        assert!(!wl.push(3), "push of a scheduled id must dedup");
        assert!(wl.is_marked(3));
        assert_eq!(wl.pop(), Some(3));
        // Bit still set after pop: a wake arriving now must not re-enqueue.
        assert!(!wl.push(3));
        assert!(wl.unmark(3));
        assert!(wl.push(3), "after unmark the id is schedulable again");
        assert_eq!(wl.pop(), Some(3));
    }

    #[test]
    fn concurrent_worklist_never_overflows_under_races() {
        let n = 512usize;
        let wl = ConcurrentWorklist::new(n);
        let processed = AtomicUsize::new(0);
        // Producers re-push aggressively; consumers pop/unmark. The dedup
        // bit bounds ring occupancy at `universe`, so no push may fail.
        std::thread::scope(|scope| {
            for _ in 0..2 {
                let wl = &wl;
                scope.spawn(move || {
                    for round in 0..50 {
                        for id in 0..n {
                            wl.push(((id + round) % n) as u32);
                        }
                    }
                });
            }
            for _ in 0..2 {
                let wl = &wl;
                let processed = &processed;
                scope.spawn(move || {
                    let mut idle = 0;
                    loop {
                        match wl.pop() {
                            Some(id) => {
                                idle = 0;
                                wl.unmark(id);
                                processed.fetch_add(1, Ordering::Relaxed);
                            }
                            None => {
                                idle += 1;
                                if idle > 10_000 {
                                    break;
                                }
                                std::thread::yield_now();
                            }
                        }
                    }
                });
            }
        });
        assert!(processed.load(Ordering::Relaxed) >= n);
    }

    #[test]
    fn quiescence_counter_empty_input_is_quiescent() {
        let q = QuiescenceCounter::new();
        assert!(q.quiescent(), "zero issued work is quiescent by definition");
        q.issue(1);
        assert!(!q.quiescent());
        q.retire(1);
        assert!(q.quiescent());
        q.reset();
        assert!(q.quiescent());
    }

    #[test]
    fn quiescence_counter_detects_termination_with_more_workers_than_items() {
        // 1 item, 4 workers: three workers find nothing and spin on the
        // counter; the counter must still converge to quiescent exactly when
        // the single item (and its follow-on) retires.
        let q = QuiescenceCounter::new();
        let work = MpmcRing::with_capacity(8);
        q.issue(1);
        work.push(7);
        let processed = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let q = &q;
                let work = &work;
                let processed = &processed;
                scope.spawn(move || loop {
                    if let Some(v) = work.pop() {
                        if v == 7 {
                            // follow-on work, issued before publication
                            q.issue(1);
                            work.push(9);
                        }
                        processed.fetch_add(1, Ordering::Relaxed);
                        q.retire(1);
                    } else if q.quiescent() {
                        break;
                    } else {
                        std::thread::yield_now();
                    }
                });
            }
        });
        assert_eq!(processed.load(Ordering::Relaxed), 2);
        assert!(q.quiescent());
        assert_eq!(q.issued(), 2);
    }

    #[test]
    fn phase_gate_cycles_and_publishes_leader_writes() {
        let parties = 4;
        let gate = PhaseGate::new(parties);
        let shared = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for w in 0..parties {
                let gate = &gate;
                let shared = &shared;
                scope.spawn(move || {
                    for round in 0..10usize {
                        if w == 0 {
                            assert!(gate.await_followers());
                            shared.store(round + 1, Ordering::Relaxed);
                            gate.advance();
                        } else {
                            assert!(gate.arrive_and_wait());
                            // Leader's critical-section write is visible.
                            assert_eq!(shared.load(Ordering::Relaxed), round + 1);
                        }
                    }
                });
            }
        });
        assert_eq!(shared.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn phase_gate_poison_unblocks_everyone() {
        let gate = PhaseGate::new(3);
        std::thread::scope(|scope| {
            let g = &gate;
            let h1 = scope.spawn(move || g.arrive_and_wait());
            let h2 = scope.spawn(move || g.await_followers());
            std::thread::sleep(std::time::Duration::from_millis(5));
            gate.poison();
            assert!(!h1.join().unwrap(), "poisoned follower must not hang");
            assert!(!h2.join().unwrap(), "poisoned leader must not hang");
        });
        assert!(gate.poisoned());
    }

    #[test]
    fn jitter_streams_are_deterministic_and_distinct() {
        let j = ScheduleJitter::new(42);
        let mut a1 = j.worker(0);
        let mut a2 = j.worker(0);
        let mut b = j.worker(1);
        let s1: Vec<usize> = (0..16).map(|_| a1.chunk(64)).collect();
        let s2: Vec<usize> = (0..16).map(|_| a2.chunk(64)).collect();
        let s3: Vec<usize> = (0..16).map(|_| b.chunk(64)).collect();
        assert_eq!(s1, s2, "same seed+worker must replay the same stream");
        assert_ne!(s1, s3, "workers get independent streams");
        assert!(s1.iter().all(|&c| (1..=64).contains(&c)));
    }

    #[test]
    fn drain_control_default_is_passthrough() {
        let ctl = DrainControl::default();
        let mut w = ctl.worker(2);
        assert_eq!(w.chunk(32), 32);
        w.on(DrainEvent::Claim); // no hook installed: must be a no-op
        assert_eq!(w.id(), 2);
        let fired = Arc::new(AtomicUsize::new(0));
        let f2 = fired.clone();
        let hooked = DrainControl {
            jitter: None,
            hooks: DrainHooks::with(move |_, _| {
                f2.fetch_add(1, Ordering::Relaxed);
            }),
        };
        hooked.worker(0).on(DrainEvent::Item);
        assert_eq!(fired.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn borrows_caller_stack() {
        // The whole point of scoped threads: write into a caller-owned slice.
        let mut out = vec![0u32; 256];
        {
            let cells: Vec<std::sync::atomic::AtomicU32> =
                (0..256).map(|_| std::sync::atomic::AtomicU32::new(0)).collect();
            parallel_for_chunks(256, ParallelConfig::with_threads(4).chunk(16), |r| {
                for i in r {
                    cells[i].store(i as u32 * 2, Ordering::Relaxed);
                }
            });
            for (i, c) in cells.iter().enumerate() {
                out[i] = c.load(Ordering::Relaxed);
            }
        }
        assert!(out.iter().enumerate().all(|(i, &v)| v == i as u32 * 2));
    }
}
