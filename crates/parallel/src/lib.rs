#![warn(missing_docs)]
//! # hdsd-parallel
//!
//! A deliberately small shared-memory parallel runtime standing in for the
//! paper's OpenMP setup. The paper's key implementation observation (§4.4)
//! is that *dynamic* scheduling — handing each idle thread the next chunk of
//! work — is required because the notification mechanism makes per-item cost
//! wildly non-uniform; static chunking strands threads on converged regions.
//! Both policies are provided so the benches can reproduce that ablation.
//!
//! The runtime is built on `std::thread::scope`, so worker closures may
//! borrow from the caller's stack; no `'static` bounds, no channels, no
//! executor. Synchronization uses atomics only.

pub mod scheduling;

pub use scheduling::{
    parallel_for_chunks, parallel_for_chunks_collect, parallel_for_chunks_with, ChunkCursor,
    ConcurrentWorklist, DrainControl, DrainEvent, DrainHooks, DrainQueue, FrontierQueue, MpmcRing,
    PhaseGate, Policy, QuiescenceCounter, ScheduleJitter, SchedulerStats, WorkerControl,
    WorkerJitter,
};

use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};

/// Resolves the worker-thread count: `HDSD_THREADS` env var when set and
/// positive, otherwise `std::thread::available_parallelism()`.
pub fn default_threads() -> usize {
    if let Ok(v) = std::env::var("HDSD_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n > 0 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Execution configuration shared by the parallel decomposition algorithms.
#[derive(Clone, Copy, Debug)]
pub struct ParallelConfig {
    /// Worker threads; 1 = run inline on the caller thread.
    pub threads: usize,
    /// Items per scheduling chunk.
    pub chunk: usize,
    /// Scheduling policy (dynamic is the paper's choice).
    pub policy: Policy,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        ParallelConfig { threads: default_threads(), chunk: 1024, policy: Policy::Dynamic }
    }
}

impl ParallelConfig {
    /// Sequential configuration (single thread).
    pub fn sequential() -> Self {
        ParallelConfig { threads: 1, ..Default::default() }
    }

    /// Configuration with `t` threads, default chunking.
    pub fn with_threads(t: usize) -> Self {
        ParallelConfig { threads: t.max(1), ..Default::default() }
    }

    /// Sets the chunk size.
    pub fn chunk(mut self, c: usize) -> Self {
        self.chunk = c.max(1);
        self
    }

    /// Sets the scheduling policy.
    pub fn policy(mut self, p: Policy) -> Self {
        self.policy = p;
        self
    }
}

/// A shared "anything changed?" flag with relaxed semantics, used for the
/// convergence check of the synchronous/asynchronous iterations.
#[derive(Default, Debug)]
pub struct ChangedFlag(AtomicBool);

impl ChangedFlag {
    /// New, unset flag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag.
    #[inline]
    pub fn set(&self) {
        self.0.store(true, Ordering::Relaxed);
    }

    /// Reads and clears.
    pub fn take(&self) -> bool {
        self.0.swap(false, Ordering::Relaxed)
    }

    /// Reads without clearing.
    pub fn get(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// A `Vec<AtomicU32>` wrapper for τ indices shared across asynchronous
/// workers. All accesses are relaxed: the algorithms tolerate stale reads
/// (a stale read only delays convergence; Theorem 1's monotone lower-bounded
/// descent still holds, which is why the paper's parallel AND is correct).
#[derive(Debug)]
pub struct AtomicU32Vec {
    data: Vec<AtomicU32>,
}

impl AtomicU32Vec {
    /// Builds from plain values.
    pub fn from_vec(v: Vec<u32>) -> Self {
        AtomicU32Vec { data: v.into_iter().map(AtomicU32::new).collect() }
    }

    /// Length.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Relaxed load.
    #[inline]
    pub fn get(&self, i: usize) -> u32 {
        self.data[i].load(Ordering::Relaxed)
    }

    /// Relaxed store.
    #[inline]
    pub fn set(&self, i: usize, v: u32) {
        self.data[i].store(v, Ordering::Relaxed);
    }

    /// Extracts plain values.
    pub fn into_vec(self) -> Vec<u32> {
        self.data.into_iter().map(|a| a.into_inner()).collect()
    }

    /// Copies out plain values.
    pub fn to_vec(&self) -> Vec<u32> {
        self.data.iter().map(|a| a.load(Ordering::Relaxed)).collect()
    }

    /// Copies all values into `out` (lengths must match).
    pub fn copy_to_slice(&self, out: &mut [u32]) {
        assert_eq!(out.len(), self.data.len());
        for (o, a) in out.iter_mut().zip(&self.data) {
            *o = a.load(Ordering::Relaxed);
        }
    }
}

/// A compact atomic bitset used by the notification mechanism's wake flags.
#[derive(Debug)]
pub struct AtomicBitset {
    words: Vec<AtomicU32>,
    len: usize,
}

impl AtomicBitset {
    /// All-bits-`value` bitset of length `len`.
    pub fn new(len: usize, value: bool) -> Self {
        let fill = if value { u32::MAX } else { 0 };
        let words = (0..len.div_ceil(32)).map(|_| AtomicU32::new(fill)).collect();
        AtomicBitset { words, len }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when the bitset has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Reads bit `i` (relaxed).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i / 32].load(Ordering::Relaxed) & (1 << (i % 32)) != 0
    }

    /// Sets bit `i` (relaxed), returning the previous value.
    #[inline]
    pub fn set(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let prev = self.words[i / 32].fetch_or(1 << (i % 32), Ordering::Relaxed);
        prev & (1 << (i % 32)) != 0
    }

    /// Clears bit `i` (relaxed), returning the previous value.
    #[inline]
    pub fn clear(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        let prev = self.words[i / 32].fetch_and(!(1 << (i % 32)), Ordering::Relaxed);
        prev & (1 << (i % 32)) != 0
    }

    /// Counts set bits (not atomic as a whole; fine for telemetry).
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.load(Ordering::Relaxed).count_ones() as usize).sum::<usize>()
            - self.padding_ones()
    }

    fn padding_ones(&self) -> usize {
        let tail = self.len % 32;
        if tail == 0 || self.words.is_empty() {
            return 0;
        }
        let last = self.words[self.words.len() - 1].load(Ordering::Relaxed);
        (last >> tail).count_ones() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn changed_flag_take_clears() {
        let f = ChangedFlag::new();
        assert!(!f.take());
        f.set();
        assert!(f.get());
        assert!(f.take());
        assert!(!f.take());
    }

    #[test]
    fn atomic_vec_round_trip() {
        let v = AtomicU32Vec::from_vec(vec![1, 2, 3]);
        v.set(1, 42);
        assert_eq!(v.get(1), 42);
        assert_eq!(v.to_vec(), vec![1, 42, 3]);
        assert_eq!(v.into_vec(), vec![1, 42, 3]);
    }

    #[test]
    fn bitset_basics() {
        let b = AtomicBitset::new(70, false);
        assert_eq!(b.count_ones(), 0);
        assert!(!b.set(0));
        assert!(b.set(0));
        b.set(69);
        assert!(b.get(69));
        assert_eq!(b.count_ones(), 2);
        assert!(b.clear(0));
        assert!(!b.get(0));
        assert_eq!(b.count_ones(), 1);
    }

    #[test]
    fn bitset_initially_true_counts_exact_len() {
        let b = AtomicBitset::new(33, true);
        assert_eq!(b.count_ones(), 33);
        b.clear(32);
        assert_eq!(b.count_ones(), 32);
    }

    #[test]
    fn default_threads_respects_env() {
        // Can't set env safely in parallel tests; just sanity-check bounds.
        assert!(default_threads() >= 1);
    }
}
