#![warn(missing_docs)]
//! # hdsd-hindex
//!
//! The h-index kernels at the heart of the local nucleus-decomposition
//! algorithms (Sarıyüce–Seshadhri–Pinar, PVLDB'18, §2.2 and §4.4).
//!
//! `H(K)` is the largest `h` such that at least `h` elements of the multiset
//! `K` are `≥ h`. The update operator of the paper computes, for every
//! r-clique `R`, the h-index of the ρ values of the s-cliques containing
//! `R`; iterating converges to the κ indices (core numbers for (1,2),
//! truss numbers for (2,3), …).
//!
//! Kernels:
//!
//! * [`h_index_sorted_ref`] — the textbook `O(n log n)` sort-based
//!   definition, kept as the reference for testing.
//! * [`HBuffer::compute`] — the paper's linear-time counting kernel
//!   (§4.4): values are clamped to the set size and bucket-counted, then a
//!   suffix scan finds `h`. The buffer is reusable, so hot loops never
//!   allocate after warm-up.
//! * [`StreamingH`] — push-style accumulator for call sites that produce
//!   values one at a time (on-the-fly s-clique enumeration).
//! * [`preserves_h`] — the paper's plateau shortcut for non-initial
//!   iterations: early-exits once `h` values `≥ h` have been seen, so
//!   re-checking a converged r-clique is `O(h)` instead of a full pass.

/// Reference `O(n log n)` h-index: sort descending, scan.
///
/// ```
/// use hdsd_hindex::h_index_sorted_ref;
/// assert_eq!(h_index_sorted_ref(&[3, 0, 6, 1, 5]), 3);
/// assert_eq!(h_index_sorted_ref(&[]), 0);
/// ```
pub fn h_index_sorted_ref(values: &[u32]) -> u32 {
    let mut v = values.to_vec();
    v.sort_unstable_by(|a, b| b.cmp(a));
    let mut h = 0u32;
    for (i, &x) in v.iter().enumerate() {
        if x as usize > i {
            h = i as u32 + 1;
        } else {
            break;
        }
    }
    h
}

/// Reusable counting buffer for linear-time h-index computation.
///
/// The h-index of `n` values is at most `n`, so every value is clamped to
/// `n` and bucket-counted; a suffix scan then locates the answer. The
/// internal buffer grows monotonically and is zeroed lazily after each
/// call, so repeated use is allocation-free once warmed up. Each worker
/// thread of the parallel algorithms owns one `HBuffer`.
#[derive(Default, Clone, Debug)]
pub struct HBuffer {
    counts: Vec<u32>,
}

impl HBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a buffer pre-sized for sets of up to `n` values.
    pub fn with_capacity(n: usize) -> Self {
        HBuffer { counts: vec![0; n + 1] }
    }

    /// Linear-time h-index of `values`.
    pub fn compute(&mut self, values: &[u32]) -> u32 {
        self.compute_iter(values.len(), values.iter().copied())
    }

    /// Linear-time h-index of an iterator whose length is known in advance.
    ///
    /// `len` must equal the number of items yielded; the h-index can never
    /// exceed it, which is what keeps the bucket array bounded.
    ///
    /// # Panics
    /// Panics (in every build mode) when the iterator yields a different
    /// number of items than `len`. The internal bucket array is restored to
    /// its clean state *before* panicking, so a caller that catches the
    /// unwind — or reuses a buffer shared across tests — can never observe
    /// corrupted counts in subsequent computations.
    pub fn compute_iter(&mut self, len: usize, values: impl Iterator<Item = u32>) -> u32 {
        if len == 0 {
            let yielded = values.count();
            assert_eq!(yielded, 0, "compute_iter: len is 0 but iterator yielded {yielded} items");
            return 0;
        }
        if self.counts.len() < len + 1 {
            self.counts.resize(len + 1, 0);
        }
        let cap = len as u32;
        let mut yielded = 0usize;
        for v in values {
            if yielded == len {
                // Over-long iterator: restore the buffer before reporting,
                // so the contract violation cannot poison later calls.
                for c in self.counts[..=len].iter_mut() {
                    *c = 0;
                }
                panic!("compute_iter: iterator yielded more than len = {len} items");
            }
            self.counts[v.min(cap) as usize] += 1;
            yielded += 1;
        }
        if yielded != len {
            for c in self.counts[..=len].iter_mut() {
                *c = 0;
            }
            panic!("compute_iter: iterator yielded {yielded} items, len said {len}");
        }
        // Suffix scan: h = largest i with (# values >= i) >= i.
        let mut at_least = 0u32;
        let mut h = 0u32;
        for i in (1..=len).rev() {
            at_least += self.counts[i];
            if at_least >= i as u32 {
                h = i as u32;
                break;
            }
        }
        for c in self.counts[..=len].iter_mut() {
            *c = 0;
        }
        h
    }

    /// Opens a push-style session for up to `cap` values. Used by the
    /// decomposition loops, where ρ values are produced by a callback-based
    /// container walk rather than an iterator.
    pub fn session(&mut self, cap: usize) -> HSession<'_> {
        if self.counts.len() < cap + 1 {
            self.counts.resize(cap + 1, 0);
        }
        HSession { buf: self, cap, pushed: 0 }
    }

    /// Fused ρ-min + h-index kernel over a flat (CSR) container slice.
    ///
    /// `others` is the packed other-member array of one r-clique: each
    /// consecutive `group` ids form one container (one s-clique), so the
    /// container count is `others.len() / group`. For every container the
    /// kernel computes `ρ = min τ(other)` and bucket-counts it in the same
    /// pass — no callback dispatch, no intermediate ρ buffer, one linear
    /// walk over contiguous memory. This is the hot inner loop of the
    /// flat-cache sweep path (see `hdsd-nucleus`'s container cache).
    ///
    /// # Panics
    /// Panics when `group == 0` or `others.len()` is not a multiple of
    /// `group`.
    pub fn fused_rho_h<F: Fn(u32) -> u32>(
        &mut self,
        others: &[u32],
        group: usize,
        tau_of: F,
    ) -> u32 {
        assert!(group > 0, "fused_rho_h: group must be positive");
        assert!(
            others.len().is_multiple_of(group),
            "fused_rho_h: slice length {} is not a multiple of group {group}",
            others.len()
        );
        let n = others.len() / group;
        if n == 0 {
            return 0;
        }
        if self.counts.len() < n + 1 {
            self.counts.resize(n + 1, 0);
        }
        let cap = n as u32;
        for container in others.chunks_exact(group) {
            let mut rho = u32::MAX;
            for &o in container {
                rho = rho.min(tau_of(o));
            }
            self.counts[rho.min(cap) as usize] += 1;
        }
        let mut at_least = 0u32;
        let mut h = 0u32;
        for i in (1..=n).rev() {
            at_least += self.counts[i];
            if at_least >= i as u32 {
                h = i as u32;
                break;
            }
        }
        for c in self.counts[..=n].iter_mut() {
            *c = 0;
        }
        h
    }
}

/// Fused ρ-min + plateau check over a flat (CSR) container slice: is the
/// h-index of the per-container ρ values at least `h`? Early-exits after
/// `h` qualifying containers, so re-checking a converged r-clique touches
/// `O(h · group)` contiguous words. Companion of [`HBuffer::fused_rho_h`]
/// (the §4.4 "preserve τ" shortcut, specialized for the flat layout).
pub fn fused_rho_preserves<F: Fn(u32) -> u32>(
    others: &[u32],
    group: usize,
    h: u32,
    tau_of: F,
) -> bool {
    assert!(group > 0, "fused_rho_preserves: group must be positive");
    if h == 0 {
        return true;
    }
    let mut qualifying = 0u32;
    for container in others.chunks_exact(group) {
        let mut rho = u32::MAX;
        for &o in container {
            rho = rho.min(tau_of(o));
        }
        if rho >= h {
            qualifying += 1;
            if qualifying >= h {
                return true;
            }
        }
    }
    false
}

/// In-progress h-index computation over a reusable [`HBuffer`].
///
/// Dropping a session without calling [`HSession::finish`] leaves the
/// buffer dirty only within `0..=cap`; `finish` (and only `finish`) resets
/// it, so sessions must always be finished. A debug assertion guards
/// against over-pushing.
pub struct HSession<'a> {
    buf: &'a mut HBuffer,
    cap: usize,
    pushed: usize,
}

impl HSession<'_> {
    /// Feeds one value (clamped at the session cap).
    #[inline]
    pub fn push(&mut self, v: u32) {
        debug_assert!(self.pushed < self.cap || self.cap == 0, "HSession over-pushed");
        self.buf.counts[(v.min(self.cap as u32)) as usize] += 1;
        self.pushed += 1;
    }

    /// Number of values pushed so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.pushed
    }

    /// True when nothing has been pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pushed == 0
    }

    /// Computes the h-index of the pushed values and resets the buffer.
    pub fn finish(self) -> u32 {
        let mut at_least = 0u32;
        let mut h = 0u32;
        let upper = self.cap.min(self.pushed);
        // Values clamped at cap; h cannot exceed pushed count.
        let mut i = self.cap;
        // Accumulate counts at indices > upper down to upper first.
        let mut tail = 0u32;
        while i > upper {
            tail += self.buf.counts[i];
            i -= 1;
        }
        at_least += tail;
        let mut j = upper;
        while j >= 1 {
            at_least += self.buf.counts[j];
            if at_least >= j as u32 {
                h = j as u32;
                break;
            }
            j -= 1;
        }
        for c in self.buf.counts[..=self.cap].iter_mut() {
            *c = 0;
        }
        h
    }
}

/// Push-style exact h-index accumulator.
///
/// This is the paper's §4.4 scheme with the "hashmap of items greater than
/// the current h" realized as a dense histogram clamped at a cap (exact,
/// because the final h-index never exceeds the number of pushed items as
/// long as `cap` is an upper bound on that count).
#[derive(Clone, Debug, Default)]
pub struct StreamingH {
    hist: Vec<u32>,
    seen: usize,
}

impl StreamingH {
    /// New accumulator; `cap` must upper-bound the number of pushes.
    pub fn with_cap(cap: usize) -> Self {
        StreamingH { hist: vec![0; cap + 1], seen: 0 }
    }

    /// Feeds one value.
    #[inline]
    pub fn push(&mut self, v: u32) {
        let cap = (self.hist.len() - 1) as u32;
        self.hist[v.min(cap) as usize] += 1;
        self.seen += 1;
    }

    /// Number of values pushed so far.
    #[inline]
    pub fn len(&self) -> usize {
        self.seen
    }

    /// True if nothing has been pushed.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.seen == 0
    }

    /// Finishes and returns the h-index of everything pushed.
    ///
    /// # Panics
    /// Debug-panics when more values were pushed than `cap` allows, since
    /// clamping could then under-report the index.
    pub fn finish(self) -> u32 {
        debug_assert!(
            self.seen < self.hist.len() || self.seen == 0,
            "StreamingH: pushed {} values into cap {}",
            self.seen,
            self.hist.len() - 1
        );
        let mut at_least = 0u32;
        for i in (1..self.hist.len()).rev() {
            at_least += self.hist[i];
            if at_least >= i as u32 {
                return i as u32;
            }
        }
        0
    }
}

/// The paper's plateau shortcut: is `H(values) >= h`? Early-exits after
/// seeing `h` qualifying values.
///
/// ```
/// use hdsd_hindex::preserves_h;
/// assert!(preserves_h([5, 5, 1, 5].into_iter(), 3));
/// assert!(!preserves_h([5, 5, 1, 2].into_iter(), 3));
/// assert!(preserves_h(std::iter::empty(), 0));
/// ```
pub fn preserves_h(values: impl Iterator<Item = u32>, h: u32) -> bool {
    if h == 0 {
        return true;
    }
    let mut qualifying = 0u32;
    for v in values {
        if v >= h {
            qualifying += 1;
            if qualifying >= h {
                return true;
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn reference_known_values() {
        assert_eq!(h_index_sorted_ref(&[]), 0);
        assert_eq!(h_index_sorted_ref(&[0]), 0);
        assert_eq!(h_index_sorted_ref(&[1]), 1);
        assert_eq!(h_index_sorted_ref(&[100]), 1);
        assert_eq!(h_index_sorted_ref(&[1, 1, 1]), 1);
        assert_eq!(h_index_sorted_ref(&[2, 2, 2]), 2);
        // Values from the paper's worked examples:
        assert_eq!(h_index_sorted_ref(&[4, 3, 3, 2]), 3); // truss toy, edge ab
        assert_eq!(h_index_sorted_ref(&[2, 3]), 2); // core toy, τ1(a)
        assert_eq!(h_index_sorted_ref(&[1, 2]), 1); // core toy, τ2(a)
    }

    #[test]
    fn buffer_matches_reference_small() {
        let mut buf = HBuffer::new();
        let cases: &[&[u32]] = &[
            &[],
            &[0],
            &[0, 0],
            &[5],
            &[1, 2, 3, 4, 5],
            &[5, 5, 5, 5, 5],
            &[3, 0, 6, 1, 5],
            &[u32::MAX, u32::MAX],
        ];
        for c in cases {
            assert_eq!(buf.compute(c), h_index_sorted_ref(c), "case {c:?}");
        }
    }

    #[test]
    fn buffer_reuse_is_clean() {
        let mut buf = HBuffer::new();
        assert_eq!(buf.compute(&[9, 9, 9, 9]), 4);
        assert_eq!(buf.compute(&[1]), 1);
        assert_eq!(buf.compute(&[]), 0);
        assert_eq!(buf.compute(&[2, 2]), 2);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut a = HBuffer::with_capacity(16);
        let mut b = HBuffer::new();
        let vals = [3u32, 1, 4, 1, 5];
        assert_eq!(a.compute(&vals), b.compute(&vals));
    }

    #[test]
    fn session_matches_compute() {
        let mut buf = HBuffer::new();
        let cases: &[&[u32]] = &[&[], &[0], &[5], &[1, 2, 3, 4, 5], &[9, 9, 9]];
        for c in cases {
            let mut s = buf.session(c.len());
            for &v in *c {
                s.push(v);
            }
            let h = s.finish();
            assert_eq!(h, h_index_sorted_ref(c), "case {c:?}");
            // buffer must be clean for the next use
            assert_eq!(buf.compute(&[1, 1]), 1);
        }
    }

    #[test]
    fn session_with_cap_larger_than_pushes() {
        let mut buf = HBuffer::new();
        let mut s = buf.session(100);
        for v in [7u32, 8, 9] {
            s.push(v);
        }
        assert_eq!(s.finish(), 3);
    }

    #[test]
    fn streaming_matches_reference() {
        let cases: &[&[u32]] = &[&[], &[7], &[1, 1, 1], &[4, 4, 4, 4], &[3, 1, 4, 1, 5, 9, 2, 6]];
        for c in cases {
            let mut s = StreamingH::with_cap(c.len());
            for &v in *c {
                s.push(v);
            }
            assert_eq!(s.len(), c.len());
            assert_eq!(s.finish(), h_index_sorted_ref(c), "case {c:?}");
        }
    }

    #[test]
    fn compute_iter_rejects_length_mismatch_without_corrupting_buffer() {
        // Under-long iterator: must panic, and the buffer must stay clean.
        let mut buf = HBuffer::new();
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            buf.compute_iter(5, [9u32, 9].into_iter())
        }));
        assert!(r.is_err(), "under-long iterator must be rejected");
        assert_eq!(buf.compute(&[1, 1]), 1, "buffer corrupted by failed call");

        // Over-long iterator: same contract.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            buf.compute_iter(2, [9u32, 9, 9, 9].into_iter())
        }));
        assert!(r.is_err(), "over-long iterator must be rejected");
        assert_eq!(buf.compute(&[3, 3, 3]), 3, "buffer corrupted by failed call");

        // len = 0 with a non-empty iterator is also a mismatch.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            buf.compute_iter(0, [1u32].into_iter())
        }));
        assert!(r.is_err());
        assert_eq!(buf.compute(&[2, 2]), 2);
    }

    fn rho_of(flat: &[u32], group: usize, tau: &[u32]) -> Vec<u32> {
        flat.chunks_exact(group)
            .map(|c| c.iter().map(|&o| tau[o as usize]).min().unwrap())
            .collect()
    }

    #[test]
    fn fused_rho_h_matches_two_pass_reference() {
        let tau = [4u32, 1, 7, 3, 5, 2, 6, 0];
        let mut buf = HBuffer::new();
        for group in 1..=3usize {
            // Containers over ids 0..8, several per test case.
            let flat: Vec<u32> = (0..24).map(|i| (i * 5 + 3) % 8).collect();
            let flat = &flat[..(24 / group) * group];
            let rhos = rho_of(flat, group, &tau);
            let expect = h_index_sorted_ref(&rhos);
            let got = buf.fused_rho_h(flat, group, |o| tau[o as usize]);
            assert_eq!(got, expect, "group {group}");
            // Buffer stays clean between calls.
            assert_eq!(buf.compute(&[1, 1]), 1);
        }
        assert_eq!(buf.fused_rho_h(&[], 2, |_| 0), 0);
    }

    #[test]
    fn fused_preserve_matches_definition() {
        let tau = [4u32, 1, 7, 3, 5, 2, 6, 0];
        for group in 1..=3usize {
            let flat: Vec<u32> = (0..24).map(|i| (i * 7 + 1) % 8).collect();
            let flat = &flat[..(24 / group) * group];
            let rhos = rho_of(flat, group, &tau);
            let h = h_index_sorted_ref(&rhos);
            assert!(fused_rho_preserves(flat, group, h, |o| tau[o as usize]));
            assert!(!fused_rho_preserves(flat, group, h + 1, |o| tau[o as usize]));
            assert!(fused_rho_preserves(flat, group, 0, |o| tau[o as usize]));
        }
    }

    #[test]
    fn preserves_h_agrees_with_definition() {
        let vals = [5u32, 2, 8, 8, 1, 3];
        let h = h_index_sorted_ref(&vals);
        assert!(preserves_h(vals.iter().copied(), h));
        assert!(!preserves_h(vals.iter().copied(), h + 1));
    }

    proptest! {
        #[test]
        fn prop_buffer_equals_reference(vals in proptest::collection::vec(0u32..50, 0..200)) {
            let mut buf = HBuffer::new();
            prop_assert_eq!(buf.compute(&vals), h_index_sorted_ref(&vals));
        }

        #[test]
        fn prop_streaming_equals_reference(vals in proptest::collection::vec(0u32..1000, 0..100)) {
            let mut s = StreamingH::with_cap(vals.len());
            for &v in &vals {
                s.push(v);
            }
            prop_assert_eq!(s.finish(), h_index_sorted_ref(&vals));
        }

        #[test]
        fn prop_h_at_most_len_and_max(vals in proptest::collection::vec(0u32..100, 0..100)) {
            let h = h_index_sorted_ref(&vals);
            prop_assert!(h as usize <= vals.len());
            prop_assert!(h <= vals.iter().copied().max().unwrap_or(0));
        }

        #[test]
        fn prop_monotone_in_values(
            vals in proptest::collection::vec(0u32..40, 1..60),
            bumps in proptest::collection::vec(0u32..5, 1..60),
        ) {
            // Raising values never lowers H — the monotonicity Theorem 1 leans on.
            let bumped: Vec<u32> =
                vals.iter().zip(bumps.iter().cycle()).map(|(&v, &b)| v + b).collect();
            prop_assert!(h_index_sorted_ref(&bumped) >= h_index_sorted_ref(&vals));
        }

        #[test]
        fn prop_preserves_iff_reference(
            vals in proptest::collection::vec(0u32..30, 0..60),
            h in 0u32..35,
        ) {
            let truth = h_index_sorted_ref(&vals) >= h;
            prop_assert_eq!(preserves_h(vals.iter().copied(), h), truth);
        }

        #[test]
        fn prop_adding_element_changes_h_by_at_most_one(
            vals in proptest::collection::vec(0u32..50, 0..100),
            extra in 0u32..60,
        ) {
            let h0 = h_index_sorted_ref(&vals);
            let mut v2 = vals.clone();
            v2.push(extra);
            let h1 = h_index_sorted_ref(&v2);
            prop_assert!(h1 == h0 || h1 == h0 + 1);
        }
    }
}
