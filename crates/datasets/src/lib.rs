#![warn(missing_docs)]
//! # hdsd-datasets
//!
//! Workload generation for the experiments.
//!
//! The paper evaluates on ten real-world graphs (its Table 3): internet
//! topology, social networks, trust and follower networks, web graphs and
//! Wikipedia. Those inputs aren't redistributable here, so this crate
//! provides
//!
//! * seeded **synthetic generators** whose degree/clustering shapes match
//!   the classes the paper draws from — R-MAT and Barabási–Albert for
//!   heavy-tailed social/web graphs, planted-partition and nested
//!   communities for graphs with strong hierarchical structure, plus
//!   Erdős–Rényi and Watts–Strogatz controls; and
//! * a [`registry`] mapping each paper dataset name (`fb`, `sse`, `tw`, …)
//!   to a deterministic stand-in at laptop scale, with a `--scale` factor
//!   for growing toward paper scale on bigger hardware.
//!
//! All generators are deterministic given a seed, so every experiment in
//! EXPERIMENTS.md is reproducible bit-for-bit.

pub mod generators;
pub mod registry;

pub use generators::{
    barabasi_albert, complete_graph, erdos_renyi_gnm, holme_kim, nested_communities,
    planted_partition, rmat, thin_edges, watts_strogatz, NestedCommunitySpec,
};
pub use registry::{Dataset, DatasetStats, ALL_DATASETS, CONVERGENCE_SET, SCALABILITY_SET};
