//! The paper's dataset registry (its Table 3) with synthetic stand-ins.
//!
//! Every dataset the evaluation uses is available by its paper short name.
//! Calling [`Dataset::generate`] produces a deterministic synthetic graph
//! whose *class* matches the original (heavy-tailed social graph, web
//! graph, trust network, …) at a laptop-friendly scale; `scale > 1.0`
//! grows each stand-in toward the original size on bigger machines. If the
//! original SNAP file is present on disk, [`Dataset::load_or_generate`]
//! prefers it, so the harness reproduces the paper's exact inputs when they
//! are available.

use hdsd_graph::{io, CsrGraph};
use std::path::Path;

use crate::generators::{holme_kim, rmat};

/// A named dataset from the paper's Table 3.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// as-skitter: internet topology (1.7M / 11.1M in the paper).
    Ask,
    /// facebook: NIPS ego networks (4K / 88.2K) — reproduced at full scale.
    Fb,
    /// soc-LiveJournal (4.8M / 68.5M).
    Slj,
    /// soc-orkut (2.9M / 106.3M).
    Ork,
    /// soc-sign-epinions: trust network (131.8K / 711.2K).
    Sse,
    /// soc-twitter-higgs: follower network (456.6K / 12.5M).
    Hg,
    /// twitter: follower network (81.3K / 1.3M).
    Tw,
    /// web-Google (916.4K / 4.3M).
    Wgo,
    /// web-NotreDame (325.7K / 1.1M).
    Wnd,
    /// wikipedia-200611 (3.1M / 37.0M).
    Wiki,
}

/// All ten datasets, in the paper's Table 3 order.
pub const ALL_DATASETS: [Dataset; 10] = [
    Dataset::Ask,
    Dataset::Fb,
    Dataset::Slj,
    Dataset::Ork,
    Dataset::Sse,
    Dataset::Hg,
    Dataset::Tw,
    Dataset::Wgo,
    Dataset::Wnd,
    Dataset::Wiki,
];

/// The five graphs of the paper's Figure 1a convergence plot.
pub const CONVERGENCE_SET: [Dataset; 5] =
    [Dataset::Fb, Dataset::Sse, Dataset::Tw, Dataset::Wnd, Dataset::Wiki];

/// The graphs of the paper's Figure 1b scalability plot (FRI/friendster is
/// not in Table 3; the paper's slot is filled by its closest stand-in SLJ).
pub const SCALABILITY_SET: [Dataset; 6] =
    [Dataset::Ask, Dataset::Slj, Dataset::Hg, Dataset::Ork, Dataset::Slj, Dataset::Wiki];

/// Paper-reported statistics (for EXPERIMENTS.md side-by-side reporting).
#[derive(Clone, Copy, Debug)]
pub struct DatasetStats {
    /// Vertices in the original graph.
    pub vertices: u64,
    /// Edges in the original graph.
    pub edges: u64,
    /// Triangles in the original graph.
    pub triangles: u64,
    /// Four-cliques in the original graph.
    pub k4: u64,
}

impl Dataset {
    /// Paper short name (Table 3).
    pub fn short_name(self) -> &'static str {
        match self {
            Dataset::Ask => "ask",
            Dataset::Fb => "fb",
            Dataset::Slj => "slj",
            Dataset::Ork => "ork",
            Dataset::Sse => "sse",
            Dataset::Hg => "hg",
            Dataset::Tw => "tw",
            Dataset::Wgo => "wgo",
            Dataset::Wnd => "wnd",
            Dataset::Wiki => "wiki",
        }
    }

    /// Full name as printed in the paper.
    pub fn full_name(self) -> &'static str {
        match self {
            Dataset::Ask => "as-skitter",
            Dataset::Fb => "facebook",
            Dataset::Slj => "soc-LiveJournal",
            Dataset::Ork => "soc-orkut",
            Dataset::Sse => "soc-sign-epinions",
            Dataset::Hg => "soc-twitter-higgs",
            Dataset::Tw => "twitter",
            Dataset::Wgo => "web-Google",
            Dataset::Wnd => "web-NotreDame",
            Dataset::Wiki => "wikipedia-200611",
        }
    }

    /// Parses a paper short name.
    pub fn from_short_name(s: &str) -> Option<Dataset> {
        ALL_DATASETS.iter().copied().find(|d| d.short_name() == s)
    }

    /// The statistics the paper reports for the *original* graph.
    pub fn paper_stats(self) -> DatasetStats {
        let (v, e, t, k) = match self {
            Dataset::Ask => (1_700_000, 11_100_000, 28_800_000, 148_800_000),
            Dataset::Fb => (4_000, 88_200, 1_600_000, 30_000_000),
            Dataset::Slj => (4_800_000, 68_500_000, 285_700_000, 9_900_000_000),
            Dataset::Ork => (2_900_000, 106_300_000, 524_600_000, 2_400_000_000),
            Dataset::Sse => (131_800, 711_200, 4_900_000, 58_600_000),
            Dataset::Hg => (456_600, 12_500_000, 83_000_000, 429_700_000),
            Dataset::Tw => (81_300, 1_300_000, 13_100_000, 104_900_000),
            Dataset::Wgo => (916_400, 4_300_000, 13_400_000, 39_900_000),
            Dataset::Wnd => (325_700, 1_100_000, 8_900_000, 231_900_000),
            Dataset::Wiki => (3_100_000, 37_000_000, 88_800_000, 162_900_000),
        };
        DatasetStats { vertices: v, edges: e, triangles: t, k4: k }
    }

    /// Deterministic synthetic stand-in. `scale = 1.0` is the default
    /// laptop size; larger values grow the vertex count proportionally
    /// while keeping the average degree of the model.
    pub fn generate(self, scale: f64) -> CsrGraph {
        let scale = scale.max(0.05);
        let n = |base: u32| -> u32 { ((base as f64 * scale) as u32).max(64) };
        let rmat_scale = |base_pow: u32| -> u32 {
            let target = (1u64 << base_pow) as f64 * scale;
            (target.log2().round() as u32).clamp(6, 26)
        };
        let seed = 0x5eed_0000 + self as u64;
        // Attachment models are thinned (each edge kept w.p. 0.72) so the
        // degree distribution gains the low-degree tail of real social
        // graphs; without it the k-core decomposition would be constant.
        let social = |nv: u32, m: u32, pt: f64| {
            crate::generators::thin_edges(&holme_kim(nv, m, pt, seed), 0.72, seed ^ 0xA5A5)
        };
        match self {
            // Internet topology: skewed, moderately clustered.
            Dataset::Ask => rmat(rmat_scale(14), 7, (0.57, 0.19, 0.19, 0.05), seed),
            // facebook is small enough to reproduce at its true scale:
            // 4K vertices, ~88K edges, very triangle-dense.
            Dataset::Fb => social(n(4_000), 31, 0.6),
            Dataset::Slj => rmat(rmat_scale(14), 14, (0.57, 0.19, 0.19, 0.05), seed),
            Dataset::Ork => social(n(10_000), 42, 0.4),
            Dataset::Sse => social(n(13_000), 7, 0.35),
            Dataset::Hg => social(n(9_000), 19, 0.45),
            Dataset::Tw => social(n(8_000), 22, 0.5),
            Dataset::Wgo => rmat(rmat_scale(14), 5, (0.6, 0.18, 0.18, 0.04), seed),
            Dataset::Wnd => rmat(rmat_scale(13), 4, (0.65, 0.15, 0.15, 0.05), seed),
            Dataset::Wiki => rmat(rmat_scale(15), 12, (0.55, 0.2, 0.2, 0.05), seed),
        }
    }

    /// Loads the original SNAP file from `data_dir/<full_name>.txt` when
    /// present, otherwise generates the stand-in.
    pub fn load_or_generate(self, data_dir: impl AsRef<Path>, scale: f64) -> CsrGraph {
        let path = data_dir.as_ref().join(format!("{}.txt", self.full_name()));
        if path.exists() {
            match io::read_edge_list(&path) {
                Ok(g) => return g,
                Err(e) => eprintln!(
                    "warning: failed to read {} ({}); falling back to synthetic stand-in",
                    path.display(),
                    e
                ),
            }
        }
        self.generate(scale)
    }

    /// Whether the (3,4) decomposition is run on this dataset in the
    /// default harness (K4 enumeration cost grows steeply with density).
    pub fn k34_feasible(self) -> bool {
        matches!(self, Dataset::Fb | Dataset::Sse | Dataset::Tw | Dataset::Wnd)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for d in ALL_DATASETS {
            assert_eq!(Dataset::from_short_name(d.short_name()), Some(d));
        }
        assert_eq!(Dataset::from_short_name("nope"), None);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = Dataset::Sse.generate(0.1);
        let b = Dataset::Sse.generate(0.1);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    fn scale_grows_graphs() {
        let small = Dataset::Tw.generate(0.05);
        let large = Dataset::Tw.generate(0.2);
        assert!(large.num_vertices() > small.num_vertices());
        assert!(large.num_edges() > small.num_edges());
    }

    #[test]
    fn fb_standin_matches_paper_scale() {
        let g = Dataset::Fb.generate(1.0);
        // the original: 4K vertices, 88.2K edges
        assert_eq!(g.num_vertices(), 4_000);
        let m = g.num_edges() as f64;
        assert!((70_000.0..110_000.0).contains(&m), "fb edges {m}");
    }

    #[test]
    fn all_standins_generate_at_tiny_scale() {
        for d in ALL_DATASETS {
            let g = d.generate(0.05);
            assert!(g.num_vertices() >= 64, "{}", d.short_name());
            assert!(g.num_edges() > 0, "{}", d.short_name());
        }
    }

    #[test]
    fn load_or_generate_falls_back() {
        let g = Dataset::Fb.load_or_generate("/nonexistent-dir", 0.05);
        assert!(g.num_edges() > 0);
    }
}
