//! Seeded random-graph generators.
//!
//! Everything returns a simple undirected [`CsrGraph`]; duplicate edges and
//! self loops produced by a model are dropped by the builder, so edge counts
//! are "up to" the nominal parameter for the random models (exact for
//! G(n,m) which retries).

use hdsd_graph::{CsrGraph, GraphBuilder, VertexId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Complete graph `K_n`.
pub fn complete_graph(n: u32) -> CsrGraph {
    let mut b = GraphBuilder::with_capacity((n as usize * (n as usize - 1)) / 2);
    for u in 0..n {
        for v in u + 1..n {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Erdős–Rényi `G(n, m)`: exactly `m` distinct edges, uniformly sampled.
///
/// # Panics
/// Panics if `m` exceeds the number of possible edges.
pub fn erdos_renyi_gnm(n: u32, m: usize, seed: u64) -> CsrGraph {
    let possible = n as u64 * (n as u64 - 1) / 2;
    assert!(m as u64 <= possible, "G(n,m): m={m} > n·(n−1)/2={possible}");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut set = std::collections::HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::with_capacity(m);
    while set.len() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if set.insert(key) {
            b.add_edge(key.0, key.1);
        }
    }
    b.with_num_vertices(n as usize).build()
}

/// Barabási–Albert preferential attachment: starts from a clique on
/// `m_attach + 1` vertices, then each new vertex attaches to `m_attach`
/// existing vertices chosen proportionally to degree (by sampling the
/// endpoint multiset). Produces heavy-tailed degree distributions like the
/// paper's social graphs.
pub fn barabasi_albert(n: u32, m_attach: u32, seed: u64) -> CsrGraph {
    assert!(m_attach >= 1, "BA: m_attach must be >= 1");
    assert!(n > m_attach, "BA: need n > m_attach");
    let mut rng = SmallRng::seed_from_u64(seed);
    // endpoint multiset: each edge contributes both endpoints
    let mut endpoints: Vec<VertexId> = Vec::new();
    let mut b = GraphBuilder::new();
    let seed_n = m_attach + 1;
    for u in 0..seed_n {
        for v in u + 1..seed_n {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    let mut targets: Vec<VertexId> = Vec::with_capacity(m_attach as usize);
    for v in seed_n..n {
        targets.clear();
        // sample m distinct targets by preferential attachment
        let mut guard = 0;
        while targets.len() < m_attach as usize {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
            guard += 1;
            if guard > 64 * m_attach {
                // fall back to uniform to escape tiny multisets
                let t = rng.gen_range(0..v);
                if !targets.contains(&t) {
                    targets.push(t);
                }
            }
        }
        for &t in &targets {
            b.add_edge(v, t);
            endpoints.push(v);
            endpoints.push(t);
        }
    }
    b.with_num_vertices(n as usize).build()
}

/// Holme–Kim model: Barabási–Albert preferential attachment with a *triad
/// formation* step — after a preferential link to `t`, each further link
/// attaches to a random neighbor of `t` with probability `p_triad`
/// (closing a triangle), else preferentially. Produces the heavy-tailed,
/// high-clustering profile of the paper's social networks, which is what
/// drives realistic truss/nucleus structure.
pub fn holme_kim(n: u32, m_attach: u32, p_triad: f64, seed: u64) -> CsrGraph {
    assert!(m_attach >= 1, "HK: m_attach must be >= 1");
    assert!(n > m_attach, "HK: need n > m_attach");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut endpoints: Vec<VertexId> = Vec::new();
    let mut adj: Vec<Vec<VertexId>> = vec![Vec::new(); n as usize];
    let mut b = GraphBuilder::new();
    let seed_n = m_attach + 1;
    let connect = |b: &mut GraphBuilder,
                   adj: &mut Vec<Vec<VertexId>>,
                   endpoints: &mut Vec<VertexId>,
                   u: VertexId,
                   v: VertexId| {
        b.add_edge(u, v);
        adj[u as usize].push(v);
        adj[v as usize].push(u);
        endpoints.push(u);
        endpoints.push(v);
    };
    for u in 0..seed_n {
        for v in u + 1..seed_n {
            connect(&mut b, &mut adj, &mut endpoints, u, v);
        }
    }
    let mut targets: Vec<VertexId> = Vec::with_capacity(m_attach as usize);
    for v in seed_n..n {
        targets.clear();
        let mut last_pref: Option<VertexId> = None;
        let mut guard = 0u32;
        while targets.len() < m_attach as usize {
            guard += 1;
            let use_triad =
                last_pref.is_some() && rng.gen::<f64>() < p_triad && guard < 8 * m_attach;
            let candidate = if use_triad {
                let t = last_pref.unwrap();
                let nbrs = &adj[t as usize];
                nbrs[rng.gen_range(0..nbrs.len())]
            } else {
                endpoints[rng.gen_range(0..endpoints.len())]
            };
            if candidate != v && !targets.contains(&candidate) {
                if !use_triad {
                    last_pref = Some(candidate);
                }
                targets.push(candidate);
            } else if guard >= 8 * m_attach {
                let t = rng.gen_range(0..v);
                if !targets.contains(&t) {
                    targets.push(t);
                }
            }
        }
        for &t in &targets {
            connect(&mut b, &mut adj, &mut endpoints, v, t);
        }
    }
    b.with_num_vertices(n as usize).build()
}

/// Keeps each edge independently with probability `keep`, preserving the
/// vertex set. Applied after the attachment models (whose minimum degree
/// is otherwise constant at the attachment parameter) so degree
/// distributions gain the low-degree tail real social graphs have —
/// without it, k-core decompositions of the stand-ins would be trivially
/// constant.
pub fn thin_edges(g: &CsrGraph, keep: f64, seed: u64) -> CsrGraph {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(g.num_edges());
    for &(u, v) in g.edges() {
        if rng.gen::<f64>() < keep {
            b.add_edge(u, v);
        }
    }
    b.with_num_vertices(g.num_vertices()).build()
}

/// R-MAT generator (Chakrabarti–Zhan–Faloutsos): recursively partitions the
/// adjacency matrix with probabilities `(a, b, c, d)`. `scale` gives
/// `n = 2^scale` vertices and `edge_factor·n` sampled edges (dedup shrinks
/// this). The default paper-style skew is `a=0.57, b=0.19, c=0.19, d=0.05`.
pub fn rmat(scale: u32, edge_factor: usize, probs: (f64, f64, f64, f64), seed: u64) -> CsrGraph {
    let (a, b, c, d) = probs;
    assert!((a + b + c + d - 1.0).abs() < 1e-9, "R-MAT probabilities must sum to 1");
    let n: u64 = 1 << scale;
    let m = n as usize * edge_factor;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(m);
    for _ in 0..m {
        let (mut lo_u, mut hi_u) = (0u64, n);
        let (mut lo_v, mut hi_v) = (0u64, n);
        while hi_u - lo_u > 1 {
            let r: f64 = rng.gen();
            let (top, left) = if r < a {
                (true, true)
            } else if r < a + b {
                (true, false)
            } else if r < a + b + c {
                (false, true)
            } else {
                (false, false)
            };
            let mid_u = (lo_u + hi_u) / 2;
            let mid_v = (lo_v + hi_v) / 2;
            if top {
                hi_u = mid_u;
            } else {
                lo_u = mid_u;
            }
            if left {
                hi_v = mid_v;
            } else {
                lo_v = mid_v;
            }
        }
        builder.add_edge(lo_u as VertexId, lo_v as VertexId);
    }
    builder.with_num_vertices(n as usize).build()
}

/// Watts–Strogatz small world: ring of `n` vertices each wired to `k/2`
/// neighbors on each side, then each edge rewired with probability `beta`.
pub fn watts_strogatz(n: u32, k: u32, beta: f64, seed: u64) -> CsrGraph {
    assert!(k >= 2 && k.is_multiple_of(2), "WS: k must be even and >= 2");
    assert!(n > k, "WS: need n > k");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::with_capacity(n as usize * k as usize / 2);
    for u in 0..n {
        for j in 1..=k / 2 {
            let v = (u + j) % n;
            if rng.gen::<f64>() < beta {
                // rewire to a uniform random target
                let mut t = rng.gen_range(0..n);
                let mut guard = 0;
                while t == u && guard < 16 {
                    t = rng.gen_range(0..n);
                    guard += 1;
                }
                b.add_edge(u, t);
            } else {
                b.add_edge(u, v);
            }
        }
    }
    b.with_num_vertices(n as usize).build()
}

/// Planted partition: `communities.len()` groups with the given sizes;
/// within-group edges appear with probability `p_in`, cross-group edges
/// with `p_out`. The classic workload for dense-subgraph discovery.
pub fn planted_partition(communities: &[u32], p_in: f64, p_out: f64, seed: u64) -> CsrGraph {
    let n: u32 = communities.iter().sum();
    let mut group = Vec::with_capacity(n as usize);
    for (g, &size) in communities.iter().enumerate() {
        group.extend(std::iter::repeat_n(g as u32, size as usize));
    }
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    for u in 0..n {
        for v in u + 1..n {
            let p = if group[u as usize] == group[v as usize] { p_in } else { p_out };
            if rng.gen::<f64>() < p {
                b.add_edge(u, v);
            }
        }
    }
    b.with_num_vertices(n as usize).build()
}

/// Specification of one level of [`nested_communities`].
#[derive(Clone, Copy, Debug)]
pub struct NestedCommunitySpec {
    /// Number of child blocks per parent block at this level.
    pub branching: u32,
    /// Edge probability *within* a block at this level (deeper = denser).
    pub p: f64,
}

/// Hierarchically nested communities: level 0 is the whole vertex set with
/// a background edge probability, each deeper level splits every block into
/// `branching` sub-blocks with a higher internal probability. Produces the
/// nested dense structure whose recovery motivates nucleus decomposition
/// (the paper's citation-network use case).
pub fn nested_communities(
    leaf_size: u32,
    levels: &[NestedCommunitySpec],
    background_p: f64,
    seed: u64,
) -> CsrGraph {
    let leaves: u32 = levels.iter().map(|l| l.branching).product();
    let n = leaves * leaf_size;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new();
    // For each pair, the effective probability is that of the deepest level
    // in which the two vertices share a block.
    let block_of = |v: u32, depth: usize| -> u32 {
        // width of blocks at `depth`: leaves/(prod of branchings up to depth) * leaf_size
        let blocks_at: u32 = levels[..depth].iter().map(|l| l.branching).product();
        let width = n / blocks_at.max(1);
        v / width.max(1)
    };
    for u in 0..n {
        for v in u + 1..n {
            let mut p = background_p;
            for depth in 1..=levels.len() {
                if block_of(u, depth) == block_of(v, depth) {
                    p = levels[depth - 1].p;
                } else {
                    break;
                }
            }
            if rng.gen::<f64>() < p {
                b.add_edge(u, v);
            }
        }
    }
    b.with_num_vertices(n as usize).build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsd_graph::density;

    #[test]
    fn complete_graph_edge_count() {
        let g = complete_graph(6);
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.num_edges(), 15);
        assert!((density(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn gnm_exact_edges_and_deterministic() {
        let g1 = erdos_renyi_gnm(100, 300, 7);
        let g2 = erdos_renyi_gnm(100, 300, 7);
        let g3 = erdos_renyi_gnm(100, 300, 8);
        assert_eq!(g1.num_edges(), 300);
        assert_eq!(g1.edges(), g2.edges());
        assert_ne!(g1.edges(), g3.edges());
    }

    #[test]
    #[should_panic(expected = "G(n,m)")]
    fn gnm_rejects_impossible_m() {
        erdos_renyi_gnm(3, 4, 0);
    }

    #[test]
    fn ba_is_connected_and_heavy_tailed() {
        let g = barabasi_albert(500, 3, 42);
        assert_eq!(g.num_vertices(), 500);
        let cc = hdsd_graph::connected_components(&g);
        assert_eq!(cc.num_components, 1);
        // the maximum degree should far exceed the attachment parameter
        assert!(g.max_degree() > 20, "max degree {}", g.max_degree());
    }

    #[test]
    fn rmat_shape() {
        let g = rmat(10, 8, (0.57, 0.19, 0.19, 0.05), 1);
        assert_eq!(g.num_vertices(), 1024);
        assert!(g.num_edges() > 2000); // dedup removes some of the 8192
                                       // skew check: the top-degree vertex dominates the median
        let mut degs: Vec<usize> = g.vertices().map(|v| g.degree(v)).collect();
        degs.sort_unstable();
        assert!(degs[degs.len() - 1] >= 10 * degs[degs.len() / 2].max(1));
    }

    #[test]
    fn ws_degree_regularity_without_rewiring() {
        let g = watts_strogatz(50, 4, 0.0, 3);
        assert!(g.vertices().all(|v| g.degree(v) == 4));
        let t = hdsd_graph::total_triangles(&g);
        assert!(t > 0, "ring lattice with k=4 has triangles");
    }

    #[test]
    fn planted_partition_is_denser_inside() {
        let g = planted_partition(&[30, 30], 0.5, 0.02, 5);
        let inside = (0..30u32).collect::<Vec<_>>();
        let sub = hdsd_graph::induced_subgraph(&g, &inside);
        assert!(sub.density() > 0.3);
        assert!(density(&g) < sub.density());
    }

    #[test]
    fn nested_communities_nest_densities() {
        let spec = [
            NestedCommunitySpec { branching: 2, p: 0.15 },
            NestedCommunitySpec { branching: 2, p: 0.7 },
        ];
        let g = nested_communities(10, &spec, 0.01, 9);
        assert_eq!(g.num_vertices(), 40);
        // leaf block 0..10 denser than top block 0..20 denser than graph
        let leaf = hdsd_graph::induced_subgraph(&g, &(0..10).collect::<Vec<_>>());
        let top = hdsd_graph::induced_subgraph(&g, &(0..20).collect::<Vec<_>>());
        assert!(leaf.density() > top.density());
        assert!(top.density() > density(&g));
    }

    #[test]
    fn thinning_keeps_vertices_and_removes_edges() {
        let g = holme_kim(300, 6, 0.5, 2);
        let t = thin_edges(&g, 0.5, 7);
        assert_eq!(t.num_vertices(), g.num_vertices());
        let ratio = t.num_edges() as f64 / g.num_edges() as f64;
        assert!((0.4..0.6).contains(&ratio), "keep ratio {ratio}");
        // determinism
        assert_eq!(thin_edges(&g, 0.5, 7).edges(), t.edges());
        // thinned graphs have degree variety below the attachment parameter
        let min_deg = t.vertices().map(|v| t.degree(v)).min().unwrap();
        assert!(min_deg < 6, "thinning must create a low-degree tail");
    }

    #[test]
    fn holme_kim_clusters_more_than_ba() {
        let hk = holme_kim(800, 5, 0.8, 13);
        let ba = barabasi_albert(800, 5, 13);
        let t_hk = hdsd_graph::total_triangles(&hk);
        let t_ba = hdsd_graph::total_triangles(&ba);
        assert!(t_hk > t_ba, "triad formation should add triangles: HK {t_hk} vs BA {t_ba}");
        let cc = hdsd_graph::connected_components(&hk);
        assert_eq!(cc.num_components, 1);
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(barabasi_albert(100, 2, 11).edges(), barabasi_albert(100, 2, 11).edges());
        assert_eq!(
            rmat(8, 4, (0.57, 0.19, 0.19, 0.05), 11).edges(),
            rmat(8, 4, (0.57, 0.19, 0.19, 0.05), 11).edges()
        );
        assert_eq!(watts_strogatz(60, 6, 0.2, 11).edges(), watts_strogatz(60, 6, 0.2, 11).edges());
        assert_eq!(
            planted_partition(&[20, 20], 0.4, 0.05, 11).edges(),
            planted_partition(&[20, 20], 0.4, 0.05, 11).edges()
        );
    }
}
