#![warn(missing_docs)]
//! # hdsd-service
//!
//! A long-lived query-serving engine over the nucleus decompositions —
//! the paper's §1/§6 query-driven, dynamic scenario as a process:
//!
//! * an [`Engine`] owns a graph plus resident per-space state (κ vectors,
//!   owned [`hdsd_nucleus::CachedSpace`]s, lazily-built hierarchies);
//! * point lookups are vector reads; budgeted estimates run the local
//!   algorithm with a Theorem-1 `lower ≤ κ ≤ estimate` interval; region
//!   queries materialize nuclei from the resident hierarchy;
//! * edge batches refresh κ with the candidate-lifted warm start
//!   ([`hdsd_nucleus::warm_tau_init_local`] + `and_resume_awake`) instead
//!   of recomputing, exactly;
//! * [`hdsd_nucleus::Snapshot`]s restart the engine without decomposing.
//!
//! Serving state is published in **epochs** ([`epoch`]): every update
//! builds the next immutable [`engine::EngineView`] off to the side and
//! publishes it through an [`EpochCell`] with one atomic swap, so any
//! number of reader threads answer wait-free from the epoch they pinned
//! while the single writer lane works.
//!
//! The `hdsd-serve` binary speaks a line-delimited JSON protocol
//! ([`protocol`]) over stdin/stdout or TCP — a poll-based multi-
//! connection loop with `--readers N` worker threads — with per-request
//! telemetry.
//!
//! Serving is crash-safe when opened over a durability directory
//! ([`recovery`]): update batches are appended to a checksummed
//! write-ahead log ([`wal`]) *before* they are applied, checkpoints are
//! atomic (temp file + rename, v4 trailer checksum), and startup recovery
//! replays the WAL tail through the warm incremental-update path — a torn
//! tail is detected and dropped, never partially applied.

pub mod engine;
pub mod epoch;
pub mod json;
pub mod overload;
pub mod protocol;
pub mod recovery;
pub mod wal;

pub use engine::{
    Engine, EngineConfig, EngineStats, EngineView, HierarchyRepairReport, NucleusSummary,
    RegionReport, SpaceRefresh, SpaceSel, SpaceStats, UpdateReport,
};
pub use epoch::{EpochCell, EpochReader};
pub use json::Json;
pub use overload::{Admission, BrownoutMode, OverloadSnapshot, OverloadState};
pub use protocol::{Handled, Server};
pub use recovery::{
    write_snapshot_atomic, CheckpointReport, Durability, DurableConfig, RecoveryReport,
    SNAPSHOT_FILE, WAL_FILE,
};
pub use wal::{
    is_injected_crash, read_wal, FailPoints, FsyncPolicy, WalContents, WalRecord, WalStats,
    WalWriter,
};
