//! The write-ahead update log.
//!
//! Every edge batch the daemon accepts is appended here **before** it is
//! applied to the engine, so a crash at any instant loses at most the
//! batches whose append had not reached the disk — never a half-applied
//! one. The format is deliberately dumb and self-checking:
//!
//! ```text
//! header:  "HDSDWAL1" (8 bytes)  generation (u64 LE)
//! record:  payload_len (u32 LE)  crc32(payload) (u32 LE)  payload
//! payload: seq (u64 LE)  n_insert (u32 LE)  n_remove (u32 LE)
//!          then n_insert + n_remove edges as (u32, u32) LE pairs
//! ```
//!
//! The CRC (hand-rolled IEEE, shared with the snapshot trailer in
//! [`hdsd_graph::io::Crc32`]) plus the strictly-incrementing `seq` make a
//! torn tail — the one legitimate corruption an append-only log can have
//! after a crash — detectable: [`read_wal`] stops at the first record
//! that is short, fails its checksum, or breaks the sequence, and reports
//! the dropped suffix instead of replaying garbage. `generation` counts
//! checkpoint rotations; it exists for operators reading `wal_stats`, not
//! for correctness.
//!
//! Replay is **idempotent**: `apply_edge_batch` treats inserting a
//! present edge and removing an absent one as no-ops and the vertex set
//! never shrinks, so replaying a suffix of batches the engine already
//! absorbed converges to the same state. That property is what makes the
//! crash window between "checkpoint renamed into place" and "WAL
//! truncated" safe — recovery may replay those batches twice.
//!
//! **Ordering against epoch publication** (see [`crate::epoch`]): the
//! append happens on the writer lane *before* the next
//! [`crate::EngineView`] is built, and the response is only written after
//! that view is published. So a batch visible to any reader is always in
//! the WAL, and recovery replays the log into epoch 0 of the restarted
//! process — readers re-pin from there.
//!
//! Fault injection: every filesystem side effect consults a [`FailPoints`]
//! hook first. In production the hook is [`FailPoints::none`] and
//! compiles down to an `Option` check; under the crash harness it can
//! make any append, fsync, or rotate die exactly like a `kill -9` at
//! that instant — after which the writer is dead for good, mirroring a
//! process that no longer exists.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use hdsd_graph::io::crc32;
use hdsd_graph::VertexId;

/// Magic prefix of a WAL file (the trailing `1` is the format version).
pub const WAL_MAGIC: &[u8; 8] = b"HDSDWAL1";

/// Fixed size of the file header (magic + generation).
pub const WAL_HEADER_BYTES: u64 = 16;

/// When appends are forced to stable storage.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every append: a positive reply means the batch is on
    /// disk. The durable default.
    Always,
    /// `fsync` once per `n` appended records (and at every checkpoint and
    /// shutdown). A crash can lose up to `n - 1` acknowledged batches.
    Batch(u32),
    /// Never `fsync` explicitly; the OS flushes on its own schedule.
    /// Survives process death, not power loss.
    Off,
}

impl FsyncPolicy {
    /// Parses the `--fsync` flag values: `always`, `batch`, `batch:N`
    /// (or `batch=N`), `off`.
    pub fn parse(s: &str) -> Option<FsyncPolicy> {
        match s {
            "always" => Some(FsyncPolicy::Always),
            "batch" => Some(FsyncPolicy::Batch(32)),
            "off" => Some(FsyncPolicy::Off),
            _ => {
                let n: u32 =
                    s.strip_prefix("batch=").or_else(|| s.strip_prefix("batch:"))?.parse().ok()?;
                (n > 0).then_some(FsyncPolicy::Batch(n))
            }
        }
    }

    /// Stable name for telemetry.
    pub fn name(self) -> String {
        match self {
            FsyncPolicy::Always => "always".to_string(),
            FsyncPolicy::Batch(n) => format!("batch={n}"),
            FsyncPolicy::Off => "off".to_string(),
        }
    }
}

/// Crash-point hook threaded through every durability side effect. The
/// function receives the crash-point name (e.g. `"wal.append.torn"`) and
/// returns true to simulate the process dying there. Cloning shares the
/// hook.
#[derive(Clone, Default)]
pub struct FailPoints(Option<Arc<dyn Fn(&'static str) -> bool + Send + Sync>>);

impl FailPoints {
    /// No fail points: every check is a cheap `None` test.
    pub fn none() -> FailPoints {
        FailPoints(None)
    }

    /// Installs a hook (test harnesses only).
    pub fn new(hook: impl Fn(&'static str) -> bool + Send + Sync + 'static) -> FailPoints {
        FailPoints(Some(Arc::new(hook)))
    }

    /// Fails with an injected-crash error when the hook fires at `point`.
    pub fn check(&self, point: &'static str) -> io::Result<()> {
        match &self.0 {
            Some(hook) if hook(point) => {
                Err(io::Error::other(format!("injected crash at {point}")))
            }
            _ => Ok(()),
        }
    }
}

impl std::fmt::Debug for FailPoints {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.0.is_some() { "FailPoints(armed)" } else { "FailPoints(none)" })
    }
}

/// Whether an error came from a [`FailPoints`] hook (the crash harness
/// distinguishes injected deaths from real I/O failures).
pub fn is_injected_crash(e: &io::Error) -> bool {
    e.to_string().contains("injected crash at ")
}

/// One replayable WAL record: an edge batch with its sequence number.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WalRecord {
    /// Position in the current generation, starting at 1.
    pub seq: u64,
    /// Edges inserted by the batch.
    pub insert: Vec<(VertexId, VertexId)>,
    /// Edges removed by the batch.
    pub remove: Vec<(VertexId, VertexId)>,
}

fn encode_payload(
    seq: u64,
    insert: &[(VertexId, VertexId)],
    remove: &[(VertexId, VertexId)],
) -> Vec<u8> {
    let mut p = Vec::with_capacity(16 + 8 * (insert.len() + remove.len()));
    p.extend_from_slice(&seq.to_le_bytes());
    p.extend_from_slice(&(insert.len() as u32).to_le_bytes());
    p.extend_from_slice(&(remove.len() as u32).to_le_bytes());
    for &(u, v) in insert.iter().chain(remove) {
        p.extend_from_slice(&u.to_le_bytes());
        p.extend_from_slice(&v.to_le_bytes());
    }
    p
}

fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
    if payload.len() < 16 {
        return None;
    }
    let seq = u64::from_le_bytes(payload[0..8].try_into().unwrap());
    let n_ins = u32::from_le_bytes(payload[8..12].try_into().unwrap()) as usize;
    let n_rm = u32::from_le_bytes(payload[12..16].try_into().unwrap()) as usize;
    if payload.len() != 16 + 8 * (n_ins + n_rm) {
        return None;
    }
    let mut edges = payload[16..]
        .chunks_exact(8)
        .map(|c| {
            (
                u32::from_le_bytes(c[0..4].try_into().unwrap()),
                u32::from_le_bytes(c[4..8].try_into().unwrap()),
            )
        })
        .collect::<Vec<_>>();
    let remove = edges.split_off(n_ins);
    Some(WalRecord { seq, insert: edges, remove })
}

/// What [`read_wal`] recovered from a log file.
#[derive(Clone, Debug, Default)]
pub struct WalContents {
    /// Generation stamped in the header.
    pub generation: u64,
    /// Valid records, in append order (`seq` = 1, 2, …).
    pub records: Vec<WalRecord>,
    /// Bytes of torn/corrupt tail dropped after the last valid record
    /// (0 for a cleanly closed log).
    pub torn_bytes: u64,
}

/// Reads a WAL file, stopping — not failing — at the first torn record:
/// a short frame, a checksum mismatch, an undecodable payload, or a
/// sequence break all mark the end of the valid prefix, and everything
/// after is reported as `torn_bytes`. A file that is not a WAL at all
/// (wrong magic) is an error, as is a file too short to hold the header:
/// header corruption means the base state is unknowable, unlike a torn
/// tail which is expected after a crash.
pub fn read_wal(path: &Path) -> io::Result<WalContents> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    if bytes.len() < WAL_HEADER_BYTES as usize || &bytes[..8] != WAL_MAGIC {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{} is not an hdsd WAL (bad or short header)", path.display()),
        ));
    }
    let generation = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let mut out = WalContents { generation, records: Vec::new(), torn_bytes: 0 };
    let mut at = WAL_HEADER_BYTES as usize;
    let mut expect_seq = 1u64;
    while at < bytes.len() {
        let valid = (|| {
            let frame = bytes.get(at..at + 8)?;
            let len = u32::from_le_bytes(frame[0..4].try_into().unwrap()) as usize;
            let stored_crc = u32::from_le_bytes(frame[4..8].try_into().unwrap());
            let payload = bytes.get(at + 8..at + 8 + len)?;
            if crc32(payload) != stored_crc {
                return None;
            }
            let rec = decode_payload(payload)?;
            // A duplicated or reordered record (e.g. a replayed sector)
            // breaks the strict sequence and ends the valid prefix.
            (rec.seq == expect_seq).then_some((rec, 8 + len))
        })();
        match valid {
            Some((rec, advance)) => {
                out.records.push(rec);
                expect_seq += 1;
                at += advance;
            }
            None => {
                out.torn_bytes = (bytes.len() - at) as u64;
                break;
            }
        }
    }
    Ok(out)
}

/// Point-in-time WAL telemetry for the `wal_stats` op.
#[derive(Clone, Debug)]
pub struct WalStats {
    /// Log file path.
    pub path: PathBuf,
    /// Current generation (bumped by every rotation).
    pub generation: u64,
    /// Records appended in this generation.
    pub records: u64,
    /// File size in bytes (header + records).
    pub bytes: u64,
    /// Appends acknowledged but not yet fsynced (0 under `always`).
    pub pending_sync: u64,
    /// Active fsync policy name.
    pub policy: String,
}

/// Append side of the log. One writer per daemon; the file is opened (or
/// created) at a given generation and appended to until rotated.
pub struct WalWriter {
    file: File,
    path: PathBuf,
    policy: FsyncPolicy,
    fail: FailPoints,
    generation: u64,
    next_seq: u64,
    bytes: u64,
    pending_sync: u64,
    /// Set when any operation failed (injected or real): the writer
    /// refuses all further work, like the dead process it is simulating.
    dead: bool,
}

impl WalWriter {
    /// Creates a fresh, empty log at `path` (truncating any old file)
    /// with the given generation stamp, and syncs the header.
    pub fn create(
        path: &Path,
        generation: u64,
        policy: FsyncPolicy,
        fail: FailPoints,
    ) -> io::Result<WalWriter> {
        let mut file = OpenOptions::new().write(true).create(true).truncate(true).open(path)?;
        file.write_all(WAL_MAGIC)?;
        file.write_all(&generation.to_le_bytes())?;
        file.sync_all()?;
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            policy,
            fail,
            generation,
            next_seq: 1,
            bytes: WAL_HEADER_BYTES,
            pending_sync: 0,
            dead: false,
        })
    }

    /// Reopens an existing log for appending after recovery validated it:
    /// the writer continues at `next_seq` past the `records` already
    /// present. Any torn tail must have been truncated away first.
    pub fn reopen(
        path: &Path,
        contents: &WalContents,
        policy: FsyncPolicy,
        fail: FailPoints,
    ) -> io::Result<WalWriter> {
        let file = OpenOptions::new().append(true).open(path)?;
        let bytes = file.metadata()?.len();
        Ok(WalWriter {
            file,
            path: path.to_path_buf(),
            policy,
            fail,
            generation: contents.generation,
            next_seq: contents.records.len() as u64 + 1,
            bytes,
            pending_sync: 0,
            dead: false,
        })
    }

    fn guard(&mut self, point: &'static str) -> io::Result<()> {
        if self.dead {
            return Err(io::Error::other("WAL writer is dead after an earlier failure"));
        }
        if let Err(e) = self.fail.check(point) {
            self.dead = true;
            return Err(e);
        }
        Ok(())
    }

    /// Appends one edge batch, returning its sequence number. The record
    /// is on disk (per the fsync policy) when this returns `Ok`; the
    /// caller applies the batch to the engine only after that.
    pub fn append(
        &mut self,
        insert: &[(VertexId, VertexId)],
        remove: &[(VertexId, VertexId)],
    ) -> io::Result<u64> {
        let t_append = std::time::Instant::now();
        hdsd_telemetry::span!("wal.append");
        self.guard("wal.append.before")?;
        let payload = encode_payload(self.next_seq, insert, remove);
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(&payload).to_le_bytes());
        frame.extend_from_slice(&payload);
        if self.fail.check("wal.append.torn").is_err() {
            // Simulate dying mid-write: half the frame reaches the file,
            // which a reader must detect and drop.
            let half = frame.len() / 2 + 1;
            let _ = self.file.write_all(&frame[..half.min(frame.len())]);
            let _ = self.file.sync_all();
            self.dead = true;
            return Err(io::Error::other("injected crash at wal.append.torn"));
        }
        if let Err(e) = self.file.write_all(&frame) {
            self.dead = true;
            return Err(e);
        }
        self.bytes += frame.len() as u64;
        self.pending_sync += 1;
        let reg = hdsd_telemetry::Registry::global();
        reg.counter("wal_records_total").inc();
        reg.counter("wal_appended_bytes_total").add(frame.len() as u64);
        match self.policy {
            FsyncPolicy::Always => self.sync("wal.fsync")?,
            FsyncPolicy::Batch(n) => {
                if self.pending_sync >= n as u64 {
                    self.sync("wal.fsync")?;
                }
            }
            FsyncPolicy::Off => {}
        }
        self.guard("wal.append.after")?;
        let seq = self.next_seq;
        self.next_seq += 1;
        reg.histogram("wal_append_micros").record(t_append.elapsed().as_micros() as u64);
        Ok(seq)
    }

    /// Forces pending appends to disk (checkpoints and graceful shutdown
    /// call this regardless of policy).
    pub fn sync(&mut self, point: &'static str) -> io::Result<()> {
        self.guard(point)?;
        hdsd_telemetry::span!("wal.fsync");
        let t_sync = std::time::Instant::now();
        if let Err(e) = self.file.sync_all() {
            self.dead = true;
            return Err(e);
        }
        self.pending_sync = 0;
        let reg = hdsd_telemetry::Registry::global();
        reg.counter("wal_fsyncs_total").inc();
        reg.histogram("wal_fsync_micros").record(t_sync.elapsed().as_micros() as u64);
        Ok(())
    }

    /// Starts the next generation after a successful checkpoint: the log
    /// is truncated back to a fresh header and `seq` restarts at 1.
    pub fn rotate(&mut self) -> io::Result<()> {
        self.guard("wal.rotate")?;
        let next_gen = self.generation + 1;
        let res = (|| {
            self.file.set_len(0)?;
            use std::io::Seek;
            self.file.seek(io::SeekFrom::Start(0))?;
            self.file.write_all(WAL_MAGIC)?;
            self.file.write_all(&next_gen.to_le_bytes())?;
            self.file.sync_all()
        })();
        if let Err(e) = res {
            self.dead = true;
            return Err(e);
        }
        self.generation = next_gen;
        self.next_seq = 1;
        self.bytes = WAL_HEADER_BYTES;
        self.pending_sync = 0;
        hdsd_telemetry::Registry::global().counter("wal_rotations_total").inc();
        Ok(())
    }

    /// Current telemetry.
    pub fn stats(&self) -> WalStats {
        WalStats {
            path: self.path.clone(),
            generation: self.generation,
            records: self.next_seq - 1,
            bytes: self.bytes,
            pending_sync: self.pending_sync,
            policy: self.policy.name(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hdsd_wal_unit_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn append_read_round_trip() {
        let path = tmp("roundtrip.wal");
        let mut w = WalWriter::create(&path, 7, FsyncPolicy::Always, FailPoints::none()).unwrap();
        assert_eq!(w.append(&[(0, 1), (2, 3)], &[]).unwrap(), 1);
        assert_eq!(w.append(&[], &[(0, 1)]).unwrap(), 2);
        assert_eq!(w.append(&[(5, 9)], &[(2, 3)]).unwrap(), 3);
        let c = read_wal(&path).unwrap();
        assert_eq!(c.generation, 7);
        assert_eq!(c.torn_bytes, 0);
        assert_eq!(c.records.len(), 3);
        assert_eq!(c.records[0].insert, vec![(0, 1), (2, 3)]);
        assert_eq!(c.records[1].remove, vec![(0, 1)]);
        assert_eq!(c.records[2].seq, 3);
        // Reopen continues the sequence.
        let mut w2 = WalWriter::reopen(&path, &c, FsyncPolicy::Always, FailPoints::none()).unwrap();
        assert_eq!(w2.append(&[(1, 2)], &[]).unwrap(), 4);
        assert_eq!(read_wal(&path).unwrap().records.len(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn torn_tail_is_dropped_not_fatal() {
        let path = tmp("torn.wal");
        let mut w = WalWriter::create(&path, 1, FsyncPolicy::Always, FailPoints::none()).unwrap();
        w.append(&[(0, 1)], &[]).unwrap();
        w.append(&[(1, 2)], &[]).unwrap();
        let full = std::fs::read(&path).unwrap();
        // Every truncation point: a valid prefix of whole records comes
        // back, the incomplete rest is dropped and accounted for.
        for cut in WAL_HEADER_BYTES as usize..full.len() {
            std::fs::write(&path, &full[..cut]).unwrap();
            let c = read_wal(&path).unwrap();
            assert!(c.records.len() < 2, "cut {cut} returned a record it cannot have");
            for (i, r) in c.records.iter().enumerate() {
                assert_eq!(r.seq, i as u64 + 1);
                assert_eq!(r.insert, vec![(i as u32, i as u32 + 1)]);
            }
            let boundary = (full.len() - WAL_HEADER_BYTES as usize) / 2 + WAL_HEADER_BYTES as usize;
            if cut != WAL_HEADER_BYTES as usize && cut != boundary {
                assert!(c.torn_bytes > 0, "cut {cut} mid-record must report a torn tail");
            }
        }
        // Shorter than the header, or bad magic: an error, not a guess.
        std::fs::write(&path, &full[..8]).unwrap();
        assert!(read_wal(&path).is_err());
        std::fs::write(&path, b"NOTAWAL!xxxxxxxx").unwrap();
        assert!(read_wal(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn rotation_resets_generation_and_seq() {
        let path = tmp("rotate.wal");
        let mut w = WalWriter::create(&path, 3, FsyncPolicy::Batch(8), FailPoints::none()).unwrap();
        w.append(&[(0, 1)], &[]).unwrap();
        assert_eq!(w.stats().pending_sync, 1);
        w.sync("wal.fsync").unwrap();
        assert_eq!(w.stats().pending_sync, 0);
        w.rotate().unwrap();
        let s = w.stats();
        assert_eq!((s.generation, s.records, s.bytes), (4, 0, WAL_HEADER_BYTES));
        assert_eq!(w.append(&[(7, 8)], &[]).unwrap(), 1);
        let c = read_wal(&path).unwrap();
        assert_eq!(c.generation, 4);
        assert_eq!(c.records.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn failpoints_kill_the_writer_for_good() {
        let path = tmp("failpoint.wal");
        let fp = FailPoints::new(|p| p == "wal.fsync");
        let mut w = WalWriter::create(&path, 1, FsyncPolicy::Always, fp).unwrap();
        let err = w.append(&[(0, 1)], &[]).unwrap_err();
        assert!(is_injected_crash(&err), "{err}");
        // Dead writer stays dead, whatever the point.
        let err2 = w.append(&[(1, 2)], &[]).unwrap_err();
        assert!(!is_injected_crash(&err2));
        assert!(w.rotate().is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always"), Some(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("batch"), Some(FsyncPolicy::Batch(32)));
        assert_eq!(FsyncPolicy::parse("batch=4"), Some(FsyncPolicy::Batch(4)));
        assert_eq!(FsyncPolicy::parse("batch:4"), Some(FsyncPolicy::Batch(4)));
        assert_eq!(FsyncPolicy::parse("off"), Some(FsyncPolicy::Off));
        assert_eq!(FsyncPolicy::parse("batch=0"), None);
        assert_eq!(FsyncPolicy::parse("batch:0"), None);
        assert_eq!(FsyncPolicy::parse("sometimes"), None);
    }
}
