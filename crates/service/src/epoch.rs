//! RCU-style epoch publication: the primitive behind wait-free reads.
//!
//! An [`EpochCell`] holds the current immutable engine view behind an
//! `Arc`. A single writer lane builds the *next* view off to the side
//! (the splice/repair delta machinery already produces it as a fresh
//! value) and [`EpochCell::publish`]es it with one atomic version bump.
//! Readers hold an [`EpochReader`] each and [`pin`](EpochReader::pin) a
//! view per request:
//!
//! * **Fast path** (steady state, no publication since the last pin):
//!   one `Acquire` load of the version counter, then the locally cached
//!   `Arc` is returned — no lock, no shared-cacheline write, wait-free.
//! * **Refresh path** (the version moved): the reader briefly takes the
//!   cell's mutex to clone the new `Arc`. The writer only ever holds
//!   that mutex for the duration of an `Arc` pointer swap — never across
//!   engine work — so the refresh is bounded by a pointer copy, not by
//!   an update, a splice, or a checkpoint.
//!
//! Old epochs stay alive exactly as long as some reader still pins them
//! (plain `Arc` reclamation — no epochs-with-grace-periods machinery is
//! needed because readers hold strong references, not raw pointers).
//!
//! ## Invariants
//!
//! 1. **Epoch immutability**: a published `T` is never mutated; updates
//!    replace the whole `Arc`. (Interior `OnceLock` caches inside the
//!    view — the lazily built hierarchy index — are monotonic fill-once
//!    values and do not change any answer a reader could observe twice.)
//! 2. **Monotonic versions**: `publish` returns 1, 2, 3, ... in order;
//!    version 0 is the initial (recovered) view, so startup recovery
//!    always "replays into epoch 0".
//! 3. **Coherent pins**: the `(view, version)` pair a pin returns was
//!    published together — the version is re-read under the same lock
//!    that swapped the `Arc`.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// The publication point: an atomically versioned `Arc<T>` slot.
///
/// Cheap to share (`Arc<EpochCell<T>>`); spawn one [`EpochReader`] per
/// reader thread with [`EpochCell::reader`].
pub struct EpochCell<T> {
    /// Bumped with `Release` *after* the new `Arc` is in place; readers
    /// check it with `Acquire` to decide whether their cache is current.
    version: AtomicU64,
    /// The current view. The mutex is held only for `Arc` clone/swap —
    /// never across engine work — so waiting on it is bounded by a
    /// pointer copy.
    current: Mutex<Arc<T>>,
}

impl<T> EpochCell<T> {
    /// Wraps the initial view as epoch 0.
    pub fn new(initial: Arc<T>) -> EpochCell<T> {
        EpochCell { version: AtomicU64::new(0), current: Mutex::new(initial) }
    }

    /// Publishes `next` as the new current epoch and returns its version.
    ///
    /// Safe under concurrent publishers (the version read-modify-write
    /// happens under the slot mutex), though the service runs a single
    /// writer lane in practice.
    pub fn publish(&self, next: Arc<T>) -> u64 {
        let mut slot = self.current.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *slot = next;
        // Relaxed load is sufficient: all writers serialize on the mutex.
        let v = self.version.load(Ordering::Relaxed) + 1;
        self.version.store(v, Ordering::Release);
        v
    }

    /// The current epoch version (0 until the first publish).
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Clones the current `(view, version)` pair coherently.
    pub fn load(&self) -> (Arc<T>, u64) {
        let slot = self.current.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        // Read the version while still holding the lock so the pair is
        // the one some single publish installed.
        (Arc::clone(&slot), self.version.load(Ordering::Relaxed))
    }

    /// A new reader, pinned to the current epoch.
    pub fn reader(self: &Arc<Self>) -> EpochReader<T> {
        let (cached, cached_version) = self.load();
        EpochReader { cell: Arc::clone(self), cached, cached_version }
    }
}

/// A per-thread read handle caching the last pinned epoch.
///
/// Not `Clone` on purpose: each reader thread owns one (the cache is the
/// whole point), minted from the shared cell via [`EpochCell::reader`].
pub struct EpochReader<T> {
    cell: Arc<EpochCell<T>>,
    cached: Arc<T>,
    cached_version: u64,
}

impl<T> EpochReader<T> {
    /// Pins the current epoch: wait-free when nothing was published since
    /// the last pin, otherwise one bounded `Arc` refresh. Returns the
    /// pinned view and its version.
    pub fn pin(&mut self) -> (&Arc<T>, u64) {
        if self.cell.version.load(Ordering::Acquire) != self.cached_version {
            let (view, version) = self.cell.load();
            self.cached = view;
            self.cached_version = version;
        }
        (&self.cached, self.cached_version)
    }

    /// Epochs published since this reader last pinned (0 = current).
    pub fn lag(&self) -> u64 {
        self.cell.version().saturating_sub(self.cached_version)
    }

    /// The version this reader last pinned.
    pub fn pinned_version(&self) -> u64 {
        self.cached_version
    }

    /// The shared cell (to mint sibling readers or publish).
    pub fn cell(&self) -> &Arc<EpochCell<T>> {
        &self.cell
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_bumps_versions_monotonically() {
        let cell = Arc::new(EpochCell::new(Arc::new(10u32)));
        assert_eq!(cell.version(), 0);
        assert_eq!(cell.publish(Arc::new(11)), 1);
        assert_eq!(cell.publish(Arc::new(12)), 2);
        let (v, ver) = cell.load();
        assert_eq!((*v, ver), (12, 2));
    }

    #[test]
    fn pin_is_cached_until_a_publish_moves_the_version() {
        let cell = Arc::new(EpochCell::new(Arc::new(1u32)));
        let mut r = cell.reader();
        let (v, ver) = r.pin();
        assert_eq!((**v, ver), (1, 0));
        assert_eq!(r.lag(), 0);
        cell.publish(Arc::new(2));
        assert_eq!(r.lag(), 1, "lag visible before the next pin");
        let (v, ver) = r.pin();
        assert_eq!((**v, ver), (2, 1));
        assert_eq!(r.lag(), 0);
    }

    #[test]
    fn old_epochs_survive_while_pinned_and_free_after() {
        let first = Arc::new(7u32);
        let weak = Arc::downgrade(&first);
        let cell = Arc::new(EpochCell::new(first));
        let mut r = cell.reader();
        r.pin();
        cell.publish(Arc::new(8));
        // The reader still pins epoch 0: the old view must stay alive.
        assert!(weak.upgrade().is_some());
        r.pin(); // moves to epoch 1, dropping the last strong ref
        assert!(weak.upgrade().is_none(), "unpinned epoch is reclaimed");
    }

    #[test]
    fn readers_only_ever_observe_published_pairs() {
        // Hammer pin() from several threads while a writer publishes
        // values tagged with their own version; every observed pair must
        // be self-consistent.
        let cell = Arc::new(EpochCell::new(Arc::new((0u64, 0u64))));
        let stop = Arc::new(AtomicU64::new(0));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut r = cell.reader();
                    let mut last = 0u64;
                    while stop.load(Ordering::Acquire) == 0 {
                        let (view, ver) = r.pin();
                        assert_eq!(view.0, ver, "pinned pair must be coherent");
                        assert!(ver >= last, "epochs must be monotonic per reader");
                        last = ver;
                    }
                })
            })
            .collect();
        for i in 1..=200u64 {
            cell.publish(Arc::new((i, i)));
        }
        stop.store(1, Ordering::Release);
        for t in readers {
            t.join().unwrap();
        }
        assert_eq!(cell.version(), 200);
    }
}
