//! Durability: atomic checkpoints plus WAL-tail replay.
//!
//! A durable daemon owns one directory:
//!
//! ```text
//! <dir>/engine.snap       newest complete checkpoint (HDSDSNAP v4)
//! <dir>/engine.snap.tmp   checkpoint in flight (ignored by recovery)
//! <dir>/updates.wal       batches accepted since that checkpoint
//! ```
//!
//! The invariant, maintained at every instant a crash can strike:
//! **`engine.snap` is always a complete, checksummed snapshot, and every
//! acknowledged batch is either inside it or in `updates.wal`.** Writes
//! that could violate it are ordered so a crash only ever loses the
//! *newest* work, never corrupts the base:
//!
//! 1. appends go to the WAL (synced per policy) *before* the engine
//!    applies them — [`crate::wal`];
//! 2. checkpoints write the snapshot to `engine.snap.tmp`, fsync it,
//!    rename it over `engine.snap`, fsync the directory, and only then
//!    rotate the WAL. A crash before the rename leaves the old
//!    snapshot + full WAL; after the rename but before the rotation it
//!    leaves the new snapshot + a stale WAL whose replay is idempotent
//!    (see the [`crate::wal`] module docs) — both recover exactly.
//!
//! Recovery ([`Durability::open`]) is the warm path the paper's locality
//! argument makes cheap: load the snapshot (adopting κ and hierarchies —
//! no re-peel), then replay the WAL tail through `Engine::update`'s
//! incremental refresh. Nothing is re-decomposed unless there is no
//! checkpoint at all.

use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use hdsd_graph::VertexId;
use hdsd_nucleus::{read_snapshot, write_snapshot, LocalConfig, Snapshot};

use crate::engine::Engine;
use crate::wal::{read_wal, FailPoints, FsyncPolicy, WalStats, WalWriter};

/// Snapshot filename inside the durability directory.
pub const SNAPSHOT_FILE: &str = "engine.snap";
/// WAL filename inside the durability directory.
pub const WAL_FILE: &str = "updates.wal";

/// Syncs a directory so a rename performed inside it is itself durable.
/// (Opening a directory read-only and `fsync`ing it is the POSIX idiom;
/// on platforms where that fails the rename is still atomic, just not
/// power-loss durable, so the error is ignored there.)
fn sync_dir(dir: &Path) -> io::Result<()> {
    #[cfg(unix)]
    {
        File::open(dir)?.sync_all()
    }
    #[cfg(not(unix))]
    {
        let _ = dir;
        Ok(())
    }
}

/// Writes `snap` to `path` atomically: temp file in the same directory,
/// flush + fsync, rename over the target, fsync the directory. Readers
/// never observe a torn file — they see the old snapshot or the new one.
/// `fail` threads the crash-point hook through each step.
pub fn write_snapshot_atomic(snap: &Snapshot, path: &Path, fail: &FailPoints) -> io::Result<()> {
    let tmp = path.with_extension("snap.tmp");
    let res = (|| {
        let mut out = BufWriter::new(File::create(&tmp)?);
        if fail.check("ckpt.temp.torn").is_err() {
            // Simulate dying mid-write: a truncated, checksum-less prefix
            // is left behind where the *temp* file is — the real target
            // is untouched, which is the entire point of the temp file.
            let _ = out.write_all(&b"HDSDSNAP\x04\x00\x00\x00partial"[..]);
            let _ = out.flush();
            return Err(io::Error::other("injected crash at ckpt.temp.torn"));
        }
        write_snapshot(snap, &mut out)?;
        out.flush()?;
        fail.check("ckpt.fsync")?;
        out.get_ref().sync_all()?;
        fail.check("ckpt.rename.before")?;
        fs::rename(&tmp, path)?;
        sync_dir(path.parent().unwrap_or(Path::new(".")))?;
        fail.check("ckpt.rename.after")?;
        Ok(())
    })();
    if res.is_err() {
        // Best effort: don't leave the temp file around on failure (the
        // injected post-rename crash has already moved it).
        let _ = fs::remove_file(&tmp);
    }
    res
}

/// Configuration of a durability directory.
#[derive(Clone, Debug)]
pub struct DurableConfig {
    /// Directory holding snapshot + WAL (created if missing).
    pub dir: PathBuf,
    /// When WAL appends reach stable storage.
    pub policy: FsyncPolicy,
    /// Crash-point hook ([`FailPoints::none`] in production).
    pub failpoints: FailPoints,
}

/// What [`Durability::open`] did to bring the engine up.
#[derive(Clone, Debug)]
pub struct RecoveryReport {
    /// A checkpoint was found and loaded (κ adopted, nothing re-peeled).
    pub snapshot_loaded: bool,
    /// The engine was built from scratch (fresh directory only — a
    /// corrupt snapshot is a loud error, never a silent cold start).
    pub cold_start: bool,
    /// WAL records replayed through the warm update path.
    pub replayed: u64,
    /// Torn bytes dropped from the WAL tail (crash evidence).
    pub torn_bytes: u64,
    /// WAL generation now being written.
    pub generation: u64,
    /// Wall time of the whole open (load + replay + fresh checkpoint).
    pub wall_us: u64,
}

/// The durable state a serving process owns: the WAL writer plus the
/// checkpoint paths, with the recovery report kept for telemetry.
pub struct Durability {
    dir: PathBuf,
    policy: FsyncPolicy,
    fail: FailPoints,
    wal: WalWriter,
    report: RecoveryReport,
    /// Checkpoints taken since open (telemetry).
    checkpoints: u64,
}

/// Result of one checkpoint: sizes for the response/telemetry.
#[derive(Clone, Debug)]
pub struct CheckpointReport {
    /// Snapshot path written.
    pub path: PathBuf,
    /// Spaces serialized.
    pub spaces: usize,
    /// Snapshot size in bytes.
    pub snapshot_bytes: u64,
    /// WAL bytes dropped by the post-checkpoint rotation.
    pub wal_bytes_truncated: u64,
    /// New WAL generation.
    pub generation: u64,
}

impl Durability {
    /// Opens (or initializes) a durability directory and returns the
    /// recovered engine:
    ///
    /// * snapshot present → load it (warm: κ and hierarchies adopted),
    ///   replay the WAL tail through [`Engine::update`], then take a
    ///   fresh checkpoint and rotate the WAL so the next crash replays
    ///   only its own tail;
    /// * empty directory → build a fresh engine via `fresh`, seed the
    ///   first checkpoint, start generation 1;
    /// * WAL without snapshot, or a corrupt/torn snapshot → a loud
    ///   error. The base state is unknowable and guessing would serve
    ///   silently wrong κ — the operator decides (restore a snapshot or
    ///   wipe the directory), not the daemon.
    pub fn open(
        cfg: DurableConfig,
        local: LocalConfig,
        fresh: impl FnOnce() -> Result<Engine, String>,
    ) -> Result<(Engine, Durability, RecoveryReport), String> {
        let start = Instant::now();
        fs::create_dir_all(&cfg.dir).map_err(|e| format!("create {:?}: {e}", cfg.dir))?;
        let snap_path = cfg.dir.join(SNAPSHOT_FILE);
        let wal_path = cfg.dir.join(WAL_FILE);
        // A dangling temp file is debris from a checkpoint that never
        // renamed; it must not shadow the real state.
        let _ = fs::remove_file(snap_path.with_extension("snap.tmp"));

        let have_snap = snap_path.exists();
        let have_wal = wal_path.exists();
        let mut report = RecoveryReport {
            snapshot_loaded: false,
            cold_start: false,
            replayed: 0,
            torn_bytes: 0,
            generation: 1,
            wall_us: 0,
        };

        let mut engine = if have_snap {
            let file = File::open(&snap_path)
                .map_err(|e| format!("open snapshot {}: {e}", snap_path.display()))?;
            let snap = read_snapshot(&mut BufReader::new(file))
                .map_err(|e| format!("recovery: snapshot {}: {e}", snap_path.display()))?;
            report.snapshot_loaded = true;
            Engine::from_snapshot(snap, local)?
        } else if have_wal {
            return Err(format!(
                "recovery: {} has a WAL but no snapshot — the log's base state is unknown; \
                 restore {} or clear the directory",
                cfg.dir.display(),
                SNAPSHOT_FILE
            ));
        } else {
            report.cold_start = true;
            fresh()?
        };

        if have_snap && have_wal {
            hdsd_telemetry::span!("recover.replay");
            let contents = read_wal(&wal_path)
                .map_err(|e| format!("recovery: WAL {}: {e}", wal_path.display()))?;
            report.torn_bytes = contents.torn_bytes;
            // The warm replay path: each record runs the same incremental
            // refresh a live request would — no re-decomposition. Records
            // the engine already absorbed (checkpoint renamed, rotation
            // lost) re-apply as no-ops.
            for rec in &contents.records {
                engine.update(&rec.insert, &rec.remove);
                report.replayed += 1;
            }
            report.generation = contents.generation;
        }

        // Fold the replayed tail (or the fresh engine) into a checkpoint
        // and start a clean generation: bounds double-replay after the
        // next crash and verifies the directory is writable up front.
        write_snapshot_atomic(&engine.to_snapshot(), &snap_path, &cfg.failpoints)
            .map_err(|e| format!("recovery: checkpoint {}: {e}", snap_path.display()))?;
        report.generation += 1;
        let wal =
            WalWriter::create(&wal_path, report.generation, cfg.policy, cfg.failpoints.clone())
                .map_err(|e| format!("recovery: WAL {}: {e}", wal_path.display()))?;
        report.wall_us = start.elapsed().as_micros() as u64;

        let reg = hdsd_telemetry::Registry::global();
        reg.gauge("recovery_replayed_records").set(report.replayed);
        reg.gauge("recovery_torn_bytes").set(report.torn_bytes);
        reg.gauge("recovery_wall_micros").set(report.wall_us);

        let dur = Durability {
            dir: cfg.dir,
            policy: cfg.policy,
            fail: cfg.failpoints,
            wal,
            report: report.clone(),
            checkpoints: 0,
        };
        Ok((engine, dur, report))
    }

    /// Appends one batch to the WAL (fsynced per policy). Must be called
    /// — and must succeed — before the batch touches the engine.
    pub fn append(
        &mut self,
        insert: &[(VertexId, VertexId)],
        remove: &[(VertexId, VertexId)],
    ) -> io::Result<u64> {
        self.wal.append(insert, remove)
    }

    /// Takes an atomic checkpoint of `engine` and rotates the WAL. On
    /// any error the WAL keeps its records — nothing acknowledged is
    /// dropped until the snapshot is safely in place. Reads the engine's
    /// current epoch zero-copy (`&Engine`): checkpointing never blocks or
    /// mutates serving state beyond the WAL rotation.
    pub fn checkpoint(&mut self, engine: &Engine) -> io::Result<CheckpointReport> {
        let t_ckpt = Instant::now();
        hdsd_telemetry::span!("ckpt.checkpoint");
        self.wal.sync("ckpt.wal.sync")?;
        let snap_path = self.dir.join(SNAPSHOT_FILE);
        let snap = {
            hdsd_telemetry::span!("ckpt.snapshot");
            engine.to_snapshot()
        };
        let spaces = snap.spaces.len();
        {
            hdsd_telemetry::span!("ckpt.write");
            write_snapshot_atomic(&snap, &snap_path, &self.fail)?;
        }
        let wal_bytes_truncated = self.wal.stats().bytes - crate::wal::WAL_HEADER_BYTES;
        self.wal.rotate()?;
        self.checkpoints += 1;
        let snapshot_bytes = fs::metadata(&snap_path).map(|m| m.len()).unwrap_or(0);
        let reg = hdsd_telemetry::Registry::global();
        reg.counter("checkpoints_total").inc();
        reg.gauge("checkpoint_bytes").set(snapshot_bytes);
        reg.histogram("checkpoint_micros").record(t_ckpt.elapsed().as_micros() as u64);
        Ok(CheckpointReport {
            path: snap_path,
            spaces,
            snapshot_bytes,
            wal_bytes_truncated,
            generation: self.wal.stats().generation,
        })
    }

    /// Forces pending WAL appends to disk (graceful-shutdown path).
    pub fn sync(&mut self) -> io::Result<()> {
        self.wal.sync("wal.fsync")
    }

    /// WAL telemetry for the `wal_stats` op.
    pub fn wal_stats(&self) -> WalStats {
        self.wal.stats()
    }

    /// The recovery report from `open` (telemetry).
    pub fn recovery(&self) -> &RecoveryReport {
        &self.report
    }

    /// Checkpoints taken since open.
    pub fn checkpoints_taken(&self) -> u64 {
        self.checkpoints
    }

    /// The durability directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The active fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{EngineConfig, SpaceSel};

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("hdsd_recovery_{}_{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn cfg(dir: &Path) -> DurableConfig {
        DurableConfig {
            dir: dir.to_path_buf(),
            policy: FsyncPolicy::Always,
            failpoints: FailPoints::none(),
        }
    }

    fn fresh_engine() -> Result<Engine, String> {
        Ok(Engine::new(
            hdsd_datasets::holme_kim(40, 3, 0.5, 9),
            &EngineConfig {
                spaces: vec![SpaceSel::Core, SpaceSel::Truss],
                local: LocalConfig::sequential(),
            },
        ))
    }

    #[test]
    fn fresh_open_then_replay_after_unclean_death() {
        let dir = tmpdir("replay");
        let (mut engine, mut dur, rep) =
            Durability::open(cfg(&dir), LocalConfig::sequential(), fresh_engine).unwrap();
        assert!(rep.cold_start && !rep.snapshot_loaded);
        // Accepted batches: WAL first, then apply — then "die" by dropping
        // without a checkpoint.
        for b in [(0u32, 20u32), (1, 21), (2, 22)] {
            dur.append(&[b], &[]).unwrap();
            engine.update(&[b], &[]);
        }
        let kappa: Vec<u32> = engine.kappa_vector(SpaceSel::Core).unwrap().to_vec();
        drop((engine, dur));

        let (rec, dur2, rep2) = Durability::open(cfg(&dir), LocalConfig::sequential(), || {
            Err("must not cold start".into())
        })
        .unwrap();
        assert!(rep2.snapshot_loaded && !rep2.cold_start);
        assert_eq!(rep2.replayed, 3);
        assert_eq!(rec.kappa_vector(SpaceSel::Core).unwrap(), &kappa[..]);
        // Recovery folded the tail into a fresh checkpoint: a third open
        // replays nothing.
        drop(dur2);
        let (_e, _d, rep3) = Durability::open(cfg(&dir), LocalConfig::sequential(), || {
            Err("must not cold start".into())
        })
        .unwrap();
        assert_eq!(rep3.replayed, 0);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_rotates_and_bounds_replay() {
        let dir = tmpdir("checkpoint");
        let (mut engine, mut dur, _) =
            Durability::open(cfg(&dir), LocalConfig::sequential(), fresh_engine).unwrap();
        dur.append(&[(0, 30)], &[]).unwrap();
        engine.update(&[(0, 30)], &[]);
        let ck = dur.checkpoint(&engine).unwrap();
        assert!(ck.wal_bytes_truncated > 0);
        dur.append(&[(1, 31)], &[]).unwrap();
        engine.update(&[(1, 31)], &[]);
        drop((engine, dur));
        let (_rec, _dur2, rep) = Durability::open(cfg(&dir), LocalConfig::sequential(), || {
            Err("must not cold start".into())
        })
        .unwrap();
        // Only the post-checkpoint batch replays.
        assert_eq!(rep.replayed, 1);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn wal_without_snapshot_is_refused() {
        let dir = tmpdir("orphan_wal");
        fs::create_dir_all(&dir).unwrap();
        let mut w =
            WalWriter::create(&dir.join(WAL_FILE), 1, FsyncPolicy::Always, FailPoints::none())
                .unwrap();
        w.append(&[(0, 1)], &[]).unwrap();
        drop(w);
        let err = Durability::open(cfg(&dir), LocalConfig::sequential(), fresh_engine)
            .err()
            .expect("orphan WAL must refuse to open");
        assert!(err.contains("no snapshot"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_snapshot_is_a_loud_error_not_a_cold_start() {
        let dir = tmpdir("corrupt_snap");
        let (_e, _d, _) =
            Durability::open(cfg(&dir), LocalConfig::sequential(), fresh_engine).unwrap();
        drop((_e, _d));
        // Flip one payload byte: the v4 trailer must catch it and recovery
        // must surface the error instead of quietly rebuilding.
        let snap_path = dir.join(SNAPSHOT_FILE);
        let mut bytes = fs::read(&snap_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x10;
        fs::write(&snap_path, &bytes).unwrap();
        let err = Durability::open(cfg(&dir), LocalConfig::sequential(), || {
            Err("must not cold start".into())
        })
        .err()
        .expect("corrupt snapshot must fail the open");
        assert!(err.contains("snapshot"), "{err}");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn atomic_write_crash_points_leave_a_loadable_target() {
        let dir = tmpdir("atomic");
        fs::create_dir_all(&dir).unwrap();
        let snap_of = |edges: &[(u32, u32)]| {
            let g = hdsd_graph::graph_from_edges(edges.iter().copied());
            Engine::new(g, &EngineConfig::default()).to_snapshot()
        };
        let path = dir.join(SNAPSHOT_FILE);
        write_snapshot_atomic(&snap_of(&[(0, 1)]), &path, &FailPoints::none()).unwrap();
        let good = fs::read(&path).unwrap();
        // Crashing before the rename leaves the old file bit-identical.
        for point in ["ckpt.temp.torn", "ckpt.fsync", "ckpt.rename.before"] {
            let fp = FailPoints::new(move |p| p == point);
            let bigger = snap_of(&[(0, 1), (1, 2), (0, 2)]);
            assert!(write_snapshot_atomic(&bigger, &path, &fp).is_err());
            assert_eq!(fs::read(&path).unwrap(), good, "{point} damaged the target");
            assert!(!path.with_extension("snap.tmp").exists(), "{point} left debris");
        }
        // Crashing after the rename leaves the new file complete.
        let fp = FailPoints::new(|p| p == "ckpt.rename.after");
        assert!(write_snapshot_atomic(&snap_of(&[(0, 1), (1, 2)]), &path, &fp).is_err());
        let back = read_snapshot(&mut BufReader::new(File::open(&path).unwrap())).unwrap();
        assert_eq!(back.graph.num_edges(), 2);
        fs::remove_dir_all(&dir).ok();
    }
}
