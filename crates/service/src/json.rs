//! Minimal JSON for the line-delimited protocol.
//!
//! The workspace is dependency-free by policy (everything external is
//! vendored), so the service speaks JSON through this small value type:
//! a recursive-descent parser for requests and a `Display`-based writer
//! for responses. Object key order is preserved, numbers are `f64`
//! (protocol values are small ids/counts, well inside the exact-integer
//! range), and strings support the standard escape set.

use std::fmt;

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (ids and counts in this protocol are exact below 2⁵³).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, key order preserved.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document, requiring it to span the whole input.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), at: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.at));
        }
        Ok(v)
    }

    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a `usize`.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|x| x as usize)
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(xs) => Some(xs),
            _ => None,
        }
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u32> for Json {
    fn from(x: u32) -> Json {
        Json::Num(x as f64)
    }
}

impl From<u64> for Json {
    fn from(x: u64) -> Json {
        Json::Num(x as f64)
    }
}

impl From<usize> for Json {
    fn from(x: usize) -> Json {
        Json::Num(x as f64)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Num(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> FromIterator<T> for Json {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Json {
        Json::Arr(iter.into_iter().map(Into::into).collect())
    }
}

/// Builds an object from `(key, value)` pairs — the response constructor.
pub fn obj<const N: usize>(members: [(&str, Json); N]) -> Json {
    Json::Obj(members.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.at) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.at += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.at))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.at))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            Some(b) => Err(format!("unexpected {:?} at byte {}", b as char, self.at)),
            None => Err("unexpected end of input".to_string()),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(out));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.at)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            out.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(out));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.at)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    let esc = self.peek().ok_or("unterminated escape")?;
                    self.at += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let cp = self.hex4()?;
                            // Surrogate halves are only valid as a
                            // high+low escape pair; anything else is a
                            // parse error (never arithmetic on an
                            // unvalidated low half — a non-surrogate
                            // second escape would underflow `lo - 0xDC00`).
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                if !self.bytes[self.at..].starts_with(b"\\u") {
                                    return Err(format!(
                                        "lone high surrogate \\u{cp:04x} (expected a \\u low \
                                         surrogate escape)"
                                    ));
                                }
                                self.at += 2;
                                let lo = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(format!(
                                        "invalid surrogate pair \\u{cp:04x}\\u{lo:04x}"
                                    ));
                                }
                                char::from_u32(0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00))
                            } else if (0xDC00..0xE000).contains(&cp) {
                                return Err(format!("lone low surrogate \\u{cp:04x}"));
                            } else {
                                char::from_u32(cp)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(format!("invalid \\u escape {cp:#x}")),
                            }
                        }
                        other => {
                            return Err(format!("bad escape '\\{}'", other as char));
                        }
                    }
                }
                Some(b) if b < 0x20 => return Err("raw control character in string".to_string()),
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so this
                    // char boundary arithmetic is safe).
                    let rest = &self.bytes[self.at..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        if self.at + 4 > self.bytes.len() {
            return Err("truncated \\u escape".to_string());
        }
        let s = std::str::from_utf8(&self.bytes[self.at..self.at + 4])
            .map_err(|_| "bad \\u escape".to_string())?;
        let v = u32::from_str_radix(s, 16).map_err(|_| "bad \\u escape".to_string())?;
        self.at += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.at += 1;
        }
        if self.peek() == Some(b'.') {
            self.at += 1;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.at += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).unwrap();
        let x = text.parse::<f64>().map_err(|e| format!("bad number {text:?}: {e}"))?;
        // Overflowing exponents parse to ±inf, which `Display` would emit
        // as non-JSON; reject them so every accepted value re-serializes.
        if !x.is_finite() {
            return Err(format!("number {text:?} out of range"));
        }
        Ok(Json::Num(x))
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(x) => {
                if x.fract() == 0.0 && x.abs() < 9e15 {
                    write!(f, "{}", *x as i64)
                } else {
                    write!(f, "{x}")
                }
            }
            Json::Str(s) => write_escaped(f, s),
            Json::Arr(xs) => {
                f.write_str("[")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{x}")?;
                }
                f.write_str("]")
            }
            Json::Obj(members) => {
                f.write_str("{")?;
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write_escaped(f, k)?;
                    write!(f, ":{v}")?;
                }
                f.write_str("}")
            }
        }
    }
}

fn write_escaped(f: &mut fmt::Formatter<'_>, s: &str) -> fmt::Result {
    f.write_str("\"")?;
    for c in s.chars() {
        match c {
            '"' => f.write_str("\\\"")?,
            '\\' => f.write_str("\\\\")?,
            '\n' => f.write_str("\\n")?,
            '\r' => f.write_str("\\r")?,
            '\t' => f.write_str("\\t")?,
            c if (c as u32) < 0x20 => write!(f, "\\u{:04x}", c as u32)?,
            c => write!(f, "{c}")?,
        }
    }
    f.write_str("\"")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_requests() {
        let v = Json::parse(r#"{"op":"kappa","space":"core","id":5}"#).unwrap();
        assert_eq!(v.get("op").unwrap().as_str(), Some("kappa"));
        assert_eq!(v.get("id").unwrap().as_usize(), Some(5));
        let v = Json::parse(r#"{"edges":[[0,1],[2,3]],"flag":true,"x":null}"#).unwrap();
        assert_eq!(v.get("edges").unwrap().as_array().unwrap().len(), 2);
        assert_eq!(v.get("flag").unwrap().as_bool(), Some(true));
        assert_eq!(v.get("x"), Some(&Json::Null));
    }

    #[test]
    fn round_trips_through_display() {
        for text in [
            r#"{"a":1,"b":[true,false,null],"c":"hi \"there\"\n","d":-2.5}"#,
            r#"[1,2,3]"#,
            r#""unicode: \u00e9 and \ud83d\ude00""#,
        ] {
            let v = Json::parse(text).unwrap();
            let back = Json::parse(&v.to_string()).unwrap();
            assert_eq!(v, back, "{text}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        for text in ["{", "[1,", r#"{"a"}"#, "tru", "1 2", "\"\\q\"", ""] {
            assert!(Json::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn surrogate_escapes() {
        // A valid pair decodes to one astral scalar.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".to_string()));
        // A lone high surrogate (end of string or non-escape after it).
        assert!(Json::parse(r#""\ud800""#).is_err());
        assert!(Json::parse(r#""\ud800A""#).is_err());
        // A lone low surrogate.
        assert!(Json::parse(r#""\udc00""#).is_err());
        // High surrogate followed by a \u escape that is not a low half
        // (the historical `lo - 0xDC00` underflow).
        assert!(Json::parse(r#""\ud800\u0041""#).is_err());
        // High followed by another high.
        assert!(Json::parse(r#""\ud800\ud800""#).is_err());
        // Non-surrogate escapes are unaffected.
        assert_eq!(Json::parse(r#""é""#).unwrap(), Json::Str("é".to_string()));
    }

    #[test]
    fn overflowing_numbers_are_rejected() {
        // f64-overflowing exponents would round-trip as the non-JSON
        // token `inf`; the parser must refuse them up front (found by the
        // byte-mutation fuzz suite).
        for text in ["1e999999999", "-1e999999999", "01e999999999"] {
            assert!(Json::parse(text).is_err(), "{text:?} should be out of range");
        }
        assert_eq!(Json::parse("1e308").unwrap().as_f64(), Some(1e308));
    }

    #[test]
    fn integer_accessors_reject_fractions() {
        let v = Json::parse("2.5").unwrap();
        assert_eq!(v.as_u64(), None);
        assert_eq!(Json::parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
    }
}
