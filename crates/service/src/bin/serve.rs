//! `hdsd-serve` — the query-serving daemon.
//!
//! ```text
//! hdsd-serve [--graph FILE | --snapshot FILE | --synthetic N,M,P,SEED | --demo]
//!            [--spaces core,truss,34] [--threads N] [--listen ADDR:PORT]
//!            [--durable DIR] [--fsync always|batch:N|off] [--debug-ops]
//!            [--metrics-addr ADDR:PORT] [--trace-slow-ms N]
//!            [--log-format text|json]
//!
//!   --graph FILE       SNAP-style edge list to serve
//!   --snapshot FILE    binary snapshot (fast restart: graph + κ + hierarchy)
//!   --synthetic SPEC   Holme–Kim generator, e.g. 20000,8,0.5,7
//!   --demo             tiny fixed graph (two K4s sharing an edge + tail)
//!   --spaces LIST      resident decompositions    (default core,truss)
//!   --threads N        refresh sweep threads      (default 1)
//!   --listen ADDR      serve TCP instead of stdin (e.g. 127.0.0.1:7171)
//!   --durable DIR      crash-safe serving: WAL + atomic checkpoints in DIR.
//!                      On restart the newest checkpoint is loaded and the
//!                      WAL tail replayed; the other input flags only seed
//!                      an empty directory.
//!   --fsync POLICY     WAL sync policy (default always)
//!   --debug-ops        enable the debug_panic op (fault drills)
//!   --metrics-addr A   serve the metrics registry as Prometheus text
//!                      exposition over HTTP at A (e.g. 127.0.0.1:9901)
//!   --trace-slow-ms N  trace every request; responses slower than N ms
//!                      carry their span tree and enter the slow-query log
//!   --log-format F     stderr log format: text (default) or json
//! ```
//!
//! Protocol: one JSON request per line, one JSON response per line — see
//! `hdsd_service::protocol`. `{"op":"shutdown"}` stops the server; under
//! `--durable`, SIGTERM/SIGINT also stop it gracefully (drain + final
//! checkpoint), and `kill -9` is recovered from on the next start.

use std::io::{BufRead, BufReader, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use hdsd_nucleus::{read_snapshot, LocalConfig};
use hdsd_service::{
    Durability, DurableConfig, Engine, EngineConfig, FailPoints, FsyncPolicy, Server, SpaceSel,
};
use hdsd_telemetry::{error, info, log, warn};

/// Set by the SIGTERM/SIGINT handler; polled by the serve loops.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    // Minimal libc-free signal(2) binding: the handler only flips an
    // atomic, which is async-signal-safe.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => {}
        Err(e) => {
            error!("serve", "{e}");
            std::process::exit(2);
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut graph_path = None;
    let mut snapshot_path = None;
    let mut synthetic = None;
    let mut demo = false;
    let mut spaces = vec![SpaceSel::Core, SpaceSel::Truss];
    let mut threads = 1usize;
    let mut listen = None;
    let mut durable_dir: Option<String> = None;
    let mut fsync = FsyncPolicy::Always;
    let mut debug_ops = false;
    let mut metrics_addr: Option<String> = None;
    let mut trace_slow_ms: Option<u64> = None;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--graph" => graph_path = Some(value(&mut i)?),
            "--snapshot" => snapshot_path = Some(value(&mut i)?),
            "--synthetic" => synthetic = Some(value(&mut i)?),
            "--demo" => demo = true,
            "--spaces" => {
                spaces = value(&mut i)?
                    .split(',')
                    .map(|s| {
                        SpaceSel::parse(s.trim())
                            .ok_or_else(|| format!("unknown space {s:?} (core|truss|34)"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--threads" => {
                threads = value(&mut i)?.parse().map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--listen" => listen = Some(value(&mut i)?),
            "--durable" => durable_dir = Some(value(&mut i)?),
            "--fsync" => {
                let v = value(&mut i)?;
                fsync = FsyncPolicy::parse(&v)
                    .ok_or_else(|| format!("bad --fsync {v:?} (always|batch:N|off)"))?;
            }
            "--debug-ops" => debug_ops = true,
            "--metrics-addr" => metrics_addr = Some(value(&mut i)?),
            "--trace-slow-ms" => {
                trace_slow_ms =
                    Some(value(&mut i)?.parse().map_err(|e| format!("bad --trace-slow-ms: {e}"))?);
            }
            "--log-format" => {
                let v = value(&mut i)?;
                let f = log::parse_format(&v)
                    .ok_or_else(|| format!("bad --log-format {v:?} (text|json)"))?;
                log::set_format(f);
            }
            "--help" | "-h" => {
                eprintln!("see the module docs at the top of src/bin/serve.rs");
                return Ok(());
            }
            other => return Err(format!("unknown flag {other:?} (see --help)")),
        }
        i += 1;
    }

    let local =
        if threads <= 1 { LocalConfig::sequential() } else { LocalConfig::with_threads(threads) };
    let cfg = EngineConfig { spaces, local };

    // Builds the engine from the input flags — the normal startup path,
    // and the seed for an empty durability directory.
    let build_engine = move || -> Result<Engine, String> {
        if let Some(path) = snapshot_path {
            let file = std::fs::File::open(&path).map_err(|e| format!("open {path:?}: {e}"))?;
            let snap = read_snapshot(&mut std::io::BufReader::new(file))
                .map_err(|e| format!("read snapshot {path:?}: {e}"))?;
            return Engine::from_snapshot(snap, cfg.local);
        }
        let graph = if let Some(path) = graph_path {
            hdsd_graph::read_edge_list(&path).map_err(|e| format!("read {path:?}: {e}"))?
        } else if let Some(spec) = synthetic {
            let parts: Vec<&str> = spec.split(',').collect();
            if parts.len() != 4 {
                return Err("--synthetic wants N,M_ATTACH,P_TRIAD,SEED".to_string());
            }
            let n: u32 = parts[0].trim().parse().map_err(|e| format!("bad N: {e}"))?;
            let m: u32 = parts[1].trim().parse().map_err(|e| format!("bad M: {e}"))?;
            let p: f64 = parts[2].trim().parse().map_err(|e| format!("bad P: {e}"))?;
            let seed: u64 = parts[3].trim().parse().map_err(|e| format!("bad SEED: {e}"))?;
            hdsd_datasets::holme_kim(n, m, p, seed)
        } else if demo {
            hdsd_graph::graph_from_edges([
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (2, 4),
                (2, 5),
                (3, 4),
                (3, 5),
                (4, 5),
                (5, 6),
            ])
        } else {
            return Err("no input: pass --graph, --snapshot, --synthetic or --demo (see --help)"
                .to_string());
        };
        Ok(Engine::new(graph, &cfg))
    };

    let mut server = match durable_dir {
        Some(dir) => {
            let dcfg = DurableConfig {
                dir: dir.clone().into(),
                policy: fsync,
                failpoints: FailPoints::none(),
            };
            let (engine, dur, rep) = Durability::open(dcfg, local, build_engine)?;
            info!(
                "serve",
                "durable in {dir:?} ({})",
                if rep.cold_start {
                    "fresh directory"
                } else {
                    "recovered from checkpoint — κ adopted, nothing re-peeled"
                };
                "replayed" => rep.replayed,
                "torn_bytes" => rep.torn_bytes,
                "generation" => rep.generation,
                "recovery_micros" => rep.wall_us,
            );
            Server::with_durability(engine, dur)
        }
        None => Server::new(build_engine()?),
    };
    if debug_ops {
        server.enable_debug_ops();
    }
    server.set_trace_slow_us(trace_slow_ms.map(|ms| ms.saturating_mul(1000)));
    if let Some(addr) = metrics_addr {
        let bound = hdsd_telemetry::prometheus::serve_http(&addr)
            .map_err(|e| format!("bind --metrics-addr {addr}: {e}"))?;
        info!("serve", "metrics exporter listening"; "addr" => bound);
    }

    {
        let s = server.engine_mut().stats();
        info!(
            "serve",
            "{} vertices, {} edges; resident: {}",
            s.vertices,
            s.edges,
            s.spaces
                .iter()
                .map(|sp| format!(
                    "{}({} cliques, max κ {}, build {} µs, peel {} µs)",
                    sp.space, sp.cliques, sp.max_kappa, sp.build_us, sp.peel_us
                ))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    install_signal_handlers();
    match listen {
        None => serve_stdio(server),
        Some(addr) => serve_tcp(server, &addr),
    }
}

/// Final drain: flush the WAL and fold the engine into a checkpoint so
/// the next start replays nothing. Failures are reported, not fatal —
/// the WAL still holds every acknowledged batch.
fn drain(server: &mut Server, why: &str) {
    if !server.is_durable() {
        return;
    }
    match server.drain_and_checkpoint() {
        Ok(()) => info!("serve", "{why}: checkpointed"),
        Err(e) => error!("serve", "{why}: final checkpoint failed ({e}); WAL retained"),
    }
}

fn serve_stdio(mut server: Server) -> Result<(), String> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        if SHUTDOWN.load(Ordering::SeqCst) {
            break;
        }
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let h = server.handle_line(&line);
        writeln!(out, "{}", h.response)
            .and_then(|_| out.flush())
            .map_err(|e| format!("stdout: {e}"))?;
        if h.shutdown {
            // The shutdown op already checkpointed under --durable.
            return Ok(());
        }
    }
    drain(&mut server, "shutdown (EOF/signal)");
    Ok(())
}

fn serve_tcp(server: Server, addr: &str) -> Result<(), String> {
    let listener = std::net::TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    info!("serve", "listening"; "addr" => listener.local_addr().map_err(|e| e.to_string())?);
    // Nonblocking accepts: the loop wakes regularly to observe the stop
    // flag (shutdown op) and SHUTDOWN (signals) even with no clients.
    listener.set_nonblocking(true).map_err(|e| format!("set_nonblocking: {e}"))?;
    let server = Arc::new(Mutex::new(server));
    let stop = Arc::new(AtomicBool::new(false));
    loop {
        if stop.load(Ordering::SeqCst) || SHUTDOWN.load(Ordering::SeqCst) {
            break;
        }
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(std::time::Duration::from_millis(25));
                continue;
            }
            Err(e) => {
                warn!("serve", "accept failed: {e}");
                continue;
            }
        };
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        // Workers are detached, not joined: a client idling in a
        // line-read must not keep the daemon alive after shutdown —
        // returning from this function exits the process and drops every
        // open connection.
        std::thread::spawn(move || {
            let mut writer = match stream.try_clone() {
                Ok(w) => w,
                Err(e) => {
                    warn!("serve", "clone stream failed: {e}");
                    return;
                }
            };
            for line in BufReader::new(stream).lines() {
                let line = match line {
                    Ok(l) => l,
                    Err(_) => break,
                };
                if line.trim().is_empty() {
                    continue;
                }
                if stop.load(Ordering::SeqCst) || SHUTDOWN.load(Ordering::SeqCst) {
                    break; // the server is already shutting down
                }
                // One request at a time across connections: the engine is
                // a single mutable resource (updates rewrite the graph).
                // A panic inside a handler is caught by handle_line, but
                // if one ever escapes (e.g. a poisoned-lock panic in a
                // dying thread), the next worker must not die with it:
                // take the engine back from a poisoned mutex.
                let h = server
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .handle_line(&line);
                if writeln!(writer, "{}", h.response).and_then(|_| writer.flush()).is_err() {
                    break;
                }
                if h.shutdown {
                    stop.store(true, Ordering::SeqCst);
                    return;
                }
            }
        });
    }
    // Signal path (the shutdown op already checkpointed in-band): take
    // the engine back — poisoned or not — and drain.
    if SHUTDOWN.load(Ordering::SeqCst) && !stop.load(Ordering::SeqCst) {
        let mut guard = server.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        drain(&mut guard, "shutdown (signal)");
    }
    Ok(())
}
