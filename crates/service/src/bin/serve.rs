//! `hdsd-serve` — the query-serving daemon.
//!
//! ```text
//! hdsd-serve [--graph FILE | --snapshot FILE | --synthetic N,M,P,SEED | --demo]
//!            [--spaces core,truss,34] [--threads N] [--listen ADDR:PORT]
//!
//!   --graph FILE       SNAP-style edge list to serve
//!   --snapshot FILE    binary snapshot (fast restart: graph + κ + hierarchy)
//!   --synthetic SPEC   Holme–Kim generator, e.g. 20000,8,0.5,7
//!   --demo             tiny fixed graph (two K4s sharing an edge + tail)
//!   --spaces LIST      resident decompositions    (default core,truss)
//!   --threads N        refresh sweep threads      (default 1)
//!   --listen ADDR      serve TCP instead of stdin (e.g. 127.0.0.1:7171)
//! ```
//!
//! Protocol: one JSON request per line, one JSON response per line — see
//! `hdsd_service::protocol`. `{"op":"shutdown"}` stops the server.

use std::io::{BufRead, BufReader, Write};
use std::sync::{Arc, Mutex};

use hdsd_nucleus::{read_snapshot, LocalConfig};
use hdsd_service::{Engine, EngineConfig, Server, SpaceSel};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("hdsd-serve: {e}");
            std::process::exit(2);
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut graph_path = None;
    let mut snapshot_path = None;
    let mut synthetic = None;
    let mut demo = false;
    let mut spaces = vec![SpaceSel::Core, SpaceSel::Truss];
    let mut threads = 1usize;
    let mut listen = None;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--graph" => graph_path = Some(value(&mut i)?),
            "--snapshot" => snapshot_path = Some(value(&mut i)?),
            "--synthetic" => synthetic = Some(value(&mut i)?),
            "--demo" => demo = true,
            "--spaces" => {
                spaces = value(&mut i)?
                    .split(',')
                    .map(|s| {
                        SpaceSel::parse(s.trim())
                            .ok_or_else(|| format!("unknown space {s:?} (core|truss|34)"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--threads" => {
                threads = value(&mut i)?.parse().map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--listen" => listen = Some(value(&mut i)?),
            "--help" | "-h" => {
                eprintln!("see the module docs at the top of src/bin/serve.rs");
                return Ok(());
            }
            other => return Err(format!("unknown flag {other:?} (see --help)")),
        }
        i += 1;
    }

    let local =
        if threads <= 1 { LocalConfig::sequential() } else { LocalConfig::with_threads(threads) };
    let cfg = EngineConfig { spaces, local };

    let engine = if let Some(path) = snapshot_path {
        let file = std::fs::File::open(&path).map_err(|e| format!("open {path:?}: {e}"))?;
        let snap = read_snapshot(&mut std::io::BufReader::new(file))
            .map_err(|e| format!("read snapshot {path:?}: {e}"))?;
        Engine::from_snapshot(snap, local)?
    } else {
        let graph = if let Some(path) = graph_path {
            hdsd_graph::read_edge_list(&path).map_err(|e| format!("read {path:?}: {e}"))?
        } else if let Some(spec) = synthetic {
            let parts: Vec<&str> = spec.split(',').collect();
            if parts.len() != 4 {
                return Err("--synthetic wants N,M_ATTACH,P_TRIAD,SEED".to_string());
            }
            let n: u32 = parts[0].trim().parse().map_err(|e| format!("bad N: {e}"))?;
            let m: u32 = parts[1].trim().parse().map_err(|e| format!("bad M: {e}"))?;
            let p: f64 = parts[2].trim().parse().map_err(|e| format!("bad P: {e}"))?;
            let seed: u64 = parts[3].trim().parse().map_err(|e| format!("bad SEED: {e}"))?;
            hdsd_datasets::holme_kim(n, m, p, seed)
        } else if demo {
            hdsd_graph::graph_from_edges([
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (2, 4),
                (2, 5),
                (3, 4),
                (3, 5),
                (4, 5),
                (5, 6),
            ])
        } else {
            return Err("no input: pass --graph, --snapshot, --synthetic or --demo (see --help)"
                .to_string());
        };
        Engine::new(graph, &cfg)
    };

    {
        let s = engine.stats();
        eprintln!(
            "hdsd-serve: {} vertices, {} edges; resident: {}",
            s.vertices,
            s.edges,
            s.spaces
                .iter()
                .map(|sp| format!(
                    "{}({} cliques, max κ {}, build {} µs, peel {} µs)",
                    sp.space, sp.cliques, sp.max_kappa, sp.build_us, sp.peel_us
                ))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    let server = Server::new(engine);
    match listen {
        None => serve_stdio(server),
        Some(addr) => serve_tcp(server, &addr),
    }
}

fn serve_stdio(mut server: Server) -> Result<(), String> {
    let stdin = std::io::stdin();
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = line.map_err(|e| format!("stdin: {e}"))?;
        if line.trim().is_empty() {
            continue;
        }
        let h = server.handle_line(&line);
        writeln!(out, "{}", h.response)
            .and_then(|_| out.flush())
            .map_err(|e| format!("stdout: {e}"))?;
        if h.shutdown {
            break;
        }
    }
    Ok(())
}

fn serve_tcp(server: Server, addr: &str) -> Result<(), String> {
    let listener = std::net::TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    eprintln!("hdsd-serve: listening on {}", listener.local_addr().map_err(|e| e.to_string())?);
    let server = Arc::new(Mutex::new(server));
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    for conn in listener.incoming() {
        if stop.load(std::sync::atomic::Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(e) => {
                eprintln!("hdsd-serve: accept: {e}");
                continue;
            }
        };
        let server = Arc::clone(&server);
        let stop = Arc::clone(&stop);
        // Workers are detached, not joined: a client idling in a
        // line-read must not keep the daemon alive after shutdown —
        // returning from this function exits the process and drops every
        // open connection.
        std::thread::spawn(move || {
            let mut writer = match stream.try_clone() {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("hdsd-serve: clone stream: {e}");
                    return;
                }
            };
            for line in BufReader::new(stream).lines() {
                let line = match line {
                    Ok(l) => l,
                    Err(_) => break,
                };
                if line.trim().is_empty() {
                    continue;
                }
                if stop.load(std::sync::atomic::Ordering::SeqCst) {
                    break; // another connection already shut the server down
                }
                // One request at a time across connections: the engine is
                // a single mutable resource (updates rewrite the graph).
                let h = server.lock().expect("engine lock").handle_line(&line);
                if writeln!(writer, "{}", h.response).and_then(|_| writer.flush()).is_err() {
                    break;
                }
                if h.shutdown {
                    stop.store(true, std::sync::atomic::Ordering::SeqCst);
                    // Nudge the accept loop so it observes the stop flag.
                    if let Ok(addr) = writer.local_addr() {
                        let _ = std::net::TcpStream::connect(addr);
                    }
                    return;
                }
            }
        });
    }
    Ok(())
}
