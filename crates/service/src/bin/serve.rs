//! `hdsd-serve` — the query-serving daemon.
//!
//! ```text
//! hdsd-serve [--graph FILE | --snapshot FILE | --synthetic N,M,P,SEED | --demo]
//!            [--spaces core,truss,34] [--threads N] [--listen ADDR:PORT]
//!            [--readers N] [--durable DIR] [--fsync always|batch:N|off]
//!            [--debug-ops] [--metrics-addr ADDR:PORT] [--trace-slow-ms N]
//!            [--log-format text|json] [--max-inflight N]
//!            [--brownout off|auto|0|1|2]
//!
//!   --graph FILE       SNAP-style edge list to serve
//!   --snapshot FILE    binary snapshot (fast restart: graph + κ + hierarchy)
//!   --synthetic SPEC   Holme–Kim generator, e.g. 20000,8,0.5,7
//!   --demo             tiny fixed graph (two K4s sharing an edge + tail)
//!   --spaces LIST      resident decompositions    (default core,truss)
//!   --threads N        refresh sweep threads      (default 1)
//!   --listen ADDR      serve TCP instead of stdin (e.g. 127.0.0.1:7171)
//!   --readers N        request worker threads for --listen (default 4).
//!                      Each worker owns an epoch reader; reads from any
//!                      number of connections run wait-free while updates
//!                      serialize on the single writer lane.
//!   --durable DIR      crash-safe serving: WAL + atomic checkpoints in DIR.
//!                      On restart the newest checkpoint is loaded and the
//!                      WAL tail replayed; the other input flags only seed
//!                      an empty directory.
//!   --fsync POLICY     WAL sync policy (default always)
//!   --debug-ops        enable the debug_panic op (fault drills)
//!   --metrics-addr A   serve the metrics registry as Prometheus text
//!                      exposition over HTTP at A (e.g. 127.0.0.1:9901)
//!   --trace-slow-ms N  trace every request; responses slower than N ms
//!                      carry their span tree and enter the slow-query log
//!   --log-format F     stderr log format: text (default) or json
//!   --max-inflight N   global in-flight request budget for --listen
//!                      (default 256, 0 = unlimited). When full, expensive
//!                      ops are shed with {"ok":false,"error":"overloaded",
//!                      "retry_after_ms":N}; cheap ops keep queueing up to
//!                      a small multiple of the budget. Per connection, at
//!                      most 32 requests are in flight — beyond that the
//!                      server stops reading that socket (TCP backpressure)
//!   --brownout MODE    degradation controller: auto (default) follows
//!                      queue pressure and recent p99, off never degrades,
//!                      0|1|2 pins a tier (see docs/PROTOCOL.md)
//! ```
//!
//! Protocol: one JSON request per line, one JSON response per line — see
//! `hdsd_service::protocol`. `{"op":"shutdown"}` stops the server; under
//! `--durable`, SIGTERM/SIGINT also stop it gracefully (drain + final
//! checkpoint), and `kill -9` is recovered from on the next start.
//!
//! The TCP front-end is a poll-based (nonblocking, dependency-free)
//! connection loop: one acceptor/IO thread owns every socket and its
//! per-connection read/write buffers; complete request lines are handed
//! to `--readers N` worker threads (each holding its own epoch-reader
//! `Server` handle, connections pinned round-robin so per-connection
//! response order is preserved) and responses flow back through a channel
//! to the IO thread's write buffers. N clients issue concurrent reads
//! while an update stream churns — readers never block on the writer.

use std::io::{BufRead, Read, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::time::{Duration, Instant};

use hdsd_nucleus::{read_snapshot, CancelToken, LocalConfig};
use hdsd_service::overload::{is_expensive_op, is_shed_exempt_op};
use hdsd_service::{
    Admission, BrownoutMode, Durability, DurableConfig, Engine, EngineConfig, FailPoints,
    FsyncPolicy, OverloadState, Server, SpaceSel,
};
use hdsd_telemetry::{error, info, log, warn};

/// Set by the SIGTERM/SIGINT handler; polled by the serve loops.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" fn on_signal(_sig: i32) {
        SHUTDOWN.store(true, Ordering::SeqCst);
    }
    // Minimal libc-free signal(2) binding: the handler only flips an
    // atomic, which is async-signal-safe.
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => {}
        Err(e) => {
            error!("serve", "{e}");
            std::process::exit(2);
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut graph_path = None;
    let mut snapshot_path = None;
    let mut synthetic = None;
    let mut demo = false;
    let mut spaces = vec![SpaceSel::Core, SpaceSel::Truss];
    let mut threads = 1usize;
    let mut listen = None;
    let mut readers = 4usize;
    let mut durable_dir: Option<String> = None;
    let mut fsync = FsyncPolicy::Always;
    let mut debug_ops = false;
    let mut metrics_addr: Option<String> = None;
    let mut trace_slow_ms: Option<u64> = None;
    let mut max_inflight = 256u64;
    let mut brownout = BrownoutMode::Auto;

    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        let value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i).cloned().ok_or_else(|| format!("{flag} needs a value"))
        };
        match flag {
            "--graph" => graph_path = Some(value(&mut i)?),
            "--snapshot" => snapshot_path = Some(value(&mut i)?),
            "--synthetic" => synthetic = Some(value(&mut i)?),
            "--demo" => demo = true,
            "--spaces" => {
                spaces = value(&mut i)?
                    .split(',')
                    .map(|s| {
                        SpaceSel::parse(s.trim())
                            .ok_or_else(|| format!("unknown space {s:?} (core|truss|34)"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            "--threads" => {
                threads = value(&mut i)?.parse().map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--listen" => listen = Some(value(&mut i)?),
            "--readers" => {
                readers = value(&mut i)?.parse().map_err(|e| format!("bad --readers: {e}"))?;
                if readers == 0 {
                    return Err("--readers must be at least 1".to_string());
                }
            }
            "--durable" => durable_dir = Some(value(&mut i)?),
            "--fsync" => {
                let v = value(&mut i)?;
                fsync = FsyncPolicy::parse(&v)
                    .ok_or_else(|| format!("bad --fsync {v:?} (always|batch:N|off)"))?;
            }
            "--debug-ops" => debug_ops = true,
            "--metrics-addr" => metrics_addr = Some(value(&mut i)?),
            "--trace-slow-ms" => {
                trace_slow_ms =
                    Some(value(&mut i)?.parse().map_err(|e| format!("bad --trace-slow-ms: {e}"))?);
            }
            "--log-format" => {
                let v = value(&mut i)?;
                let f = log::parse_format(&v)
                    .ok_or_else(|| format!("bad --log-format {v:?} (text|json)"))?;
                log::set_format(f);
            }
            "--max-inflight" => {
                max_inflight =
                    value(&mut i)?.parse().map_err(|e| format!("bad --max-inflight: {e}"))?;
            }
            "--brownout" => {
                let v = value(&mut i)?;
                brownout = BrownoutMode::parse(&v)
                    .ok_or_else(|| format!("bad --brownout {v:?} (off|auto|0|1|2)"))?;
            }
            "--help" | "-h" => {
                eprintln!("see the module docs at the top of src/bin/serve.rs");
                return Ok(());
            }
            other => return Err(format!("unknown flag {other:?} (see --help)")),
        }
        i += 1;
    }

    let local =
        if threads <= 1 { LocalConfig::sequential() } else { LocalConfig::with_threads(threads) };
    let cfg = EngineConfig { spaces, local };

    // Builds the engine from the input flags — the normal startup path,
    // and the seed for an empty durability directory.
    let build_engine = move || -> Result<Engine, String> {
        if let Some(path) = snapshot_path {
            let file = std::fs::File::open(&path).map_err(|e| format!("open {path:?}: {e}"))?;
            let snap = read_snapshot(&mut std::io::BufReader::new(file))
                .map_err(|e| format!("read snapshot {path:?}: {e}"))?;
            return Engine::from_snapshot(snap, cfg.local);
        }
        let graph = if let Some(path) = graph_path {
            hdsd_graph::read_edge_list(&path).map_err(|e| format!("read {path:?}: {e}"))?
        } else if let Some(spec) = synthetic {
            let parts: Vec<&str> = spec.split(',').collect();
            if parts.len() != 4 {
                return Err("--synthetic wants N,M_ATTACH,P_TRIAD,SEED".to_string());
            }
            let n: u32 = parts[0].trim().parse().map_err(|e| format!("bad N: {e}"))?;
            let m: u32 = parts[1].trim().parse().map_err(|e| format!("bad M: {e}"))?;
            let p: f64 = parts[2].trim().parse().map_err(|e| format!("bad P: {e}"))?;
            let seed: u64 = parts[3].trim().parse().map_err(|e| format!("bad SEED: {e}"))?;
            hdsd_datasets::holme_kim(n, m, p, seed)
        } else if demo {
            hdsd_graph::graph_from_edges([
                (0, 1),
                (0, 2),
                (0, 3),
                (1, 2),
                (1, 3),
                (2, 3),
                (2, 4),
                (2, 5),
                (3, 4),
                (3, 5),
                (4, 5),
                (5, 6),
            ])
        } else {
            return Err("no input: pass --graph, --snapshot, --synthetic or --demo (see --help)"
                .to_string());
        };
        Ok(Engine::new(graph, &cfg))
    };

    let mut server = match durable_dir {
        Some(dir) => {
            let dcfg = DurableConfig {
                dir: dir.clone().into(),
                policy: fsync,
                failpoints: FailPoints::none(),
            };
            let (engine, dur, rep) = Durability::open(dcfg, local, build_engine)?;
            info!(
                "serve",
                "durable in {dir:?} ({})",
                if rep.cold_start {
                    "fresh directory"
                } else {
                    "recovered from checkpoint — κ adopted, nothing re-peeled"
                };
                "replayed" => rep.replayed,
                "torn_bytes" => rep.torn_bytes,
                "generation" => rep.generation,
                "recovery_micros" => rep.wall_us,
            );
            Server::with_durability(engine, dur)
        }
        None => Server::new(build_engine()?),
    };
    if debug_ops {
        server.enable_debug_ops();
    }
    server.set_trace_slow_us(trace_slow_ms.map(|ms| ms.saturating_mul(1000)));
    {
        let overload = server.overload();
        overload.set_max_inflight(max_inflight);
        overload.set_mode(brownout);
        overload.recompute_tier();
    }
    if let Some(addr) = metrics_addr {
        let bound = hdsd_telemetry::prometheus::serve_http(&addr)
            .map_err(|e| format!("bind --metrics-addr {addr}: {e}"))?;
        info!("serve", "metrics exporter listening"; "addr" => bound);
    }

    {
        let s = server.engine_stats();
        info!(
            "serve",
            "{} vertices, {} edges; resident: {}",
            s.vertices,
            s.edges,
            s.spaces
                .iter()
                .map(|sp| format!(
                    "{}({} cliques, max κ {}, build {} µs, peel {} µs)",
                    sp.space, sp.cliques, sp.max_kappa, sp.build_us, sp.peel_us
                ))
                .collect::<Vec<_>>()
                .join(", ")
        );
    }

    install_signal_handlers();
    match listen {
        None => serve_stdio(server),
        Some(addr) => serve_tcp(server, &addr, readers),
    }
}

/// Final drain: flush the WAL and fold the engine into a checkpoint so
/// the next start replays nothing. Failures are reported, not fatal —
/// the WAL still holds every acknowledged batch.
fn drain(server: &mut Server, why: &str) {
    if !server.is_durable() {
        return;
    }
    match server.drain_and_checkpoint() {
        Ok(()) => info!("serve", "{why}: checkpointed"),
        Err(e) => error!("serve", "{why}: final checkpoint failed ({e}); WAL retained"),
    }
}

fn serve_stdio(mut server: Server) -> Result<(), String> {
    // Blocking stdin reads are not reliably interrupted by SIGTERM (libc
    // installs handlers with SA_RESTART), so a dedicated thread owns the
    // blocking reads and the serving loop polls SHUTDOWN between lines
    // delivered over a channel. The thread may still be parked in read(2)
    // when the loop exits; process exit reclaims it.
    let (line_tx, line_rx) = mpsc::channel::<std::io::Result<String>>();
    std::thread::Builder::new()
        .name("hdsd-stdin".to_string())
        .spawn(move || {
            let stdin = std::io::stdin();
            for line in stdin.lock().lines() {
                let failed = line.is_err();
                if line_tx.send(line).is_err() || failed {
                    break;
                }
            }
        })
        .map_err(|e| format!("spawn stdin reader: {e}"))?;

    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    loop {
        if SHUTDOWN.load(Ordering::SeqCst) {
            break;
        }
        let line = match line_rx.recv_timeout(Duration::from_millis(50)) {
            Ok(line) => line.map_err(|e| format!("stdin: {e}"))?,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break, // EOF
        };
        if line.trim().is_empty() {
            continue;
        }
        let h = server.handle_line(&line);
        writeln!(out, "{}", h.response)
            .and_then(|_| out.flush())
            .map_err(|e| format!("stdout: {e}"))?;
        if h.shutdown {
            // The shutdown op already checkpointed under --durable.
            return Ok(());
        }
    }
    drain(&mut server, "shutdown (EOF/signal)");
    Ok(())
}

/// A request line may not exceed this many bytes. A connection whose
/// read buffer holds this much without a newline is dropped — otherwise
/// a client streaming a newline-free line grows the buffer without
/// bound.
const MAX_LINE_BYTES: usize = 1024 * 1024;

/// Stop reading new requests from a connection whose unflushed response
/// bytes exceed this high-water mark. A client that pipelines requests
/// while never reading responses stalls (its kernel socket buffers fill,
/// then its reads stop, then its writes block) instead of growing
/// `write_buf` without bound.
const WRITE_HIGH_WATER: usize = 4 * 1024 * 1024;

/// Per-connection in-flight quota: once this many requests from one
/// connection are dispatched and unanswered, the IO loop stops reading
/// that socket — plain TCP backpressure on the one flooding client,
/// invisible to everyone else.
const PER_CONN_QUOTA: usize = 32;

/// A request line routed to a worker, tagged with its connection slot
/// and that slot's generation at dispatch time.
struct Job {
    conn: usize,
    gen: u64,
    line: String,
    /// The connection's cancel flag, raised when it is reaped: a worker
    /// drops a not-yet-started job for a dead client at dequeue, and a
    /// running kernel aborts at its next chunk boundary.
    cancel: Arc<AtomicBool>,
    /// `Some(retry_after_ms)` when admission shed this request: the
    /// worker answers the pre-rendered `overloaded` error without
    /// touching the engine. Shed verdicts ride the same queue as real
    /// jobs so per-connection response order is preserved.
    shed: Option<u64>,
}

/// A worker's answer, routed back to the connection's write buffer.
struct Resp {
    conn: usize,
    gen: u64,
    response: String,
}

/// One live TCP connection owned by the IO loop.
struct Conn {
    stream: std::net::TcpStream,
    /// Unique id for this connection's tenancy of its slot. Slots are
    /// reused after a connection dies — possibly with responses still in
    /// flight from the workers — so every `Job`/`Resp` carries the
    /// generation and the response sweep drops answers whose generation
    /// no longer matches the slot's occupant. Without this, a late
    /// response for a reaped connection would be delivered to whichever
    /// client was accepted into the recycled slot.
    gen: u64,
    /// Bytes received but not yet terminated by `\n`.
    read_buf: Vec<u8>,
    /// Response bytes accepted by the kernel lazily (nonblocking flush).
    write_buf: Vec<u8>,
    /// Worker this connection is pinned to (round-robin at accept).
    /// Pinning keeps per-connection responses in request order without
    /// any sequencing machinery: an mpsc channel is FIFO per sender, and
    /// one worker drains its queue in order.
    worker: usize,
    /// Requests dispatched to the worker and not yet answered.
    pending: usize,
    /// Raised when this connection is reaped; every dispatched job
    /// carries a clone, so in-flight work for a dead client stops
    /// instead of running to completion.
    cancel: Arc<AtomicBool>,
    eof: bool,
    dead: bool,
}

impl Conn {
    /// Pull whatever the kernel has; returns up to `max_lines` complete
    /// request lines (the per-connection quota — the surplus stays in
    /// `read_buf` for the next sweep). Sets `eof`/`dead` as a side
    /// effect.
    fn pump_read(&mut self, max_lines: usize) -> Vec<String> {
        let mut tmp = [0u8; 16 * 1024];
        loop {
            // Bound how much one sweep buffers: a flooding client leaves
            // its surplus in the kernel socket buffer until the next
            // sweep, so `read_buf` stays O(MAX_LINE_BYTES).
            if self.read_buf.len() > MAX_LINE_BYTES {
                break;
            }
            match self.stream.read(&mut tmp) {
                Ok(0) => {
                    self.eof = true;
                    break;
                }
                Ok(n) => self.read_buf.extend_from_slice(&tmp[..n]),
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        let mut lines = Vec::new();
        while lines.len() < max_lines {
            let Some(pos) = self.read_buf.iter().position(|&b| b == b'\n') else { break };
            let raw: Vec<u8> = self.read_buf.drain(..=pos).collect();
            match std::str::from_utf8(&raw) {
                Ok(s) if s.trim().is_empty() => {}
                Ok(s) => lines.push(s.trim_end_matches(['\n', '\r']).to_string()),
                Err(_) => {
                    // The protocol is JSON text; a client sending raw
                    // bytes gets dropped rather than a garbled parse.
                    self.dead = true;
                    return lines;
                }
            }
        }
        if self.read_buf.len() > MAX_LINE_BYTES && !self.read_buf.contains(&b'\n') {
            // Quota-deferred complete lines are fine (drained next
            // sweep); an oversized newline-free residue is one request
            // line over the limit.
            self.dead = true;
        }
        lines
    }

    /// Push buffered response bytes; stops at WouldBlock.
    fn pump_write(&mut self) {
        while !self.write_buf.is_empty() {
            match self.stream.write(&self.write_buf) {
                Ok(0) => {
                    self.dead = true;
                    return;
                }
                Ok(n) => {
                    self.write_buf.drain(..n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    return;
                }
            }
        }
    }

    fn finished(&self) -> bool {
        self.dead || (self.eof && self.pending == 0 && self.write_buf.is_empty())
    }
}

/// Poll-based multi-connection serving: one IO thread owns the sockets,
/// `readers` worker threads each own a wait-free `Server` handle (shared
/// epoch cell + writer lane). No epoll and no async runtime — the loop
/// does nonblocking accept/read/write sweeps with a short idle sleep,
/// which keeps the binary dependency-free and the shutdown paths
/// (in-band `shutdown` op, SIGTERM/SIGINT) easy to observe.
fn serve_tcp(mut server: Server, addr: &str, readers: usize) -> Result<(), String> {
    let listener = std::net::TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
    info!(
        "serve",
        "listening";
        "addr" => listener.local_addr().map_err(|e| e.to_string())?,
        "readers" => readers,
    );
    listener.set_nonblocking(true).map_err(|e| format!("set_nonblocking: {e}"))?;

    let stop = Arc::new(AtomicBool::new(false));
    let overload: Arc<OverloadState> = server.overload();
    let (resp_tx, resp_rx) = mpsc::channel::<Resp>();
    let mut job_txs: Vec<mpsc::Sender<Job>> = Vec::with_capacity(readers);
    let mut workers = Vec::with_capacity(readers);
    for w in 0..readers {
        let (tx, rx) = mpsc::channel::<Job>();
        job_txs.push(tx);
        let mut handle = server.handle();
        let resp_tx = resp_tx.clone();
        let stop = Arc::clone(&stop);
        let overload = Arc::clone(&overload);
        let worker = std::thread::Builder::new()
            .name(format!("hdsd-reader-{w}"))
            .spawn(move || {
                // Drain the queue even during shutdown: every request the
                // IO loop dispatched gets its response flushed.
                while let Ok(job) = rx.recv() {
                    // Shed verdict: answer the structured error without
                    // touching the engine. It rode the queue only so the
                    // connection's response order is preserved; it was
                    // never admitted, so no overload accounting here.
                    if let Some(retry_after_ms) = job.shed {
                        let response = format!(
                            "{{\"ok\":false,\"error\":\"overloaded\",\
                             \"retry_after_ms\":{retry_after_ms},\"micros\":0}}"
                        );
                        if resp_tx.send(Resp { conn: job.conn, gen: job.gen, response }).is_err() {
                            break;
                        }
                        continue;
                    }
                    overload.job_dequeued();
                    // Dead connection: the IO loop raised the flag when it
                    // reaped the slot. Drop the job instead of burning a
                    // worker on an answer nobody will read (the response
                    // would be discarded by the generation check anyway).
                    if job.cancel.load(Ordering::Relaxed) {
                        overload.on_cancelled();
                        overload.job_done();
                        continue;
                    }
                    let token = CancelToken::with_flag(Arc::clone(&job.cancel));
                    let h = handle.handle_line_under(&job.line, &token);
                    overload.job_done();
                    if h.shutdown {
                        stop.store(true, Ordering::SeqCst);
                    }
                    if resp_tx
                        .send(Resp { conn: job.conn, gen: job.gen, response: h.response })
                        .is_err()
                    {
                        break;
                    }
                }
            })
            .map_err(|e| format!("spawn reader: {e}"))?;
        workers.push(worker);
    }
    drop(resp_tx); // the IO loop only receives

    let mut conns: Vec<Option<Conn>> = Vec::new();
    let mut next_worker = 0usize;
    let mut next_gen = 0u64;
    let mut stop_seen: Option<Instant> = None;
    let mut shutdown_op = false;
    let mut last_tick = Instant::now();
    loop {
        let mut progressed = false;
        // Brownout controller tick: re-evaluate the degradation tier from
        // queue pressure and the recent p99 about 10×/s.
        if last_tick.elapsed() >= Duration::from_millis(100) {
            overload.recompute_tier();
            last_tick = Instant::now();
        }
        let stopping = stop.load(Ordering::SeqCst) || SHUTDOWN.load(Ordering::SeqCst);
        if let (Some(_), None) = (stopping.then_some(()), stop_seen) {
            stop_seen = Some(Instant::now());
            shutdown_op = stop.load(Ordering::SeqCst);
        }

        // Accept sweep (drains the backlog) — until shutdown begins.
        if !stopping {
            loop {
                match listener.accept() {
                    Ok((s, _)) => {
                        if let Err(e) = s.set_nonblocking(true) {
                            warn!("serve", "set_nonblocking on accepted stream failed: {e}");
                            continue;
                        }
                        let conn = Conn {
                            stream: s,
                            gen: next_gen,
                            read_buf: Vec::new(),
                            write_buf: Vec::new(),
                            worker: next_worker,
                            pending: 0,
                            cancel: Arc::new(AtomicBool::new(false)),
                            eof: false,
                            dead: false,
                        };
                        next_gen += 1;
                        next_worker = (next_worker + 1) % readers;
                        let slot = conns.iter().position(Option::is_none);
                        match slot {
                            Some(i) => conns[i] = Some(conn),
                            None => conns.push(Some(conn)),
                        }
                        progressed = true;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) => {
                        warn!("serve", "accept failed: {e}");
                        break;
                    }
                }
            }
        }

        // Read sweep: new requests go to each connection's worker. During
        // shutdown nothing new is dispatched — in-flight work drains.
        if !stopping {
            for (id, slot) in conns.iter_mut().enumerate() {
                let Some(conn) = slot else { continue };
                // Backpressure: a client that pipelines without reading
                // responses gets no further reads until its write buffer
                // drains below the high-water mark.
                if conn.write_buf.len() >= WRITE_HIGH_WATER {
                    continue;
                }
                // Per-connection quota: leave the surplus in the socket.
                let budget = PER_CONN_QUOTA.saturating_sub(conn.pending);
                if budget == 0 {
                    continue;
                }
                for line in conn.pump_read(budget) {
                    // Admission control. A shed verdict still rides the
                    // worker queue (as a no-work job) so the connection's
                    // responses stay in request order.
                    let shed = match overload
                        .try_admit(is_expensive_op(&line), is_shed_exempt_op(&line))
                    {
                        Admission::Admit => None,
                        Admission::Shed { retry_after_ms } => Some(retry_after_ms),
                    };
                    let job = Job {
                        conn: id,
                        gen: conn.gen,
                        line,
                        cancel: Arc::clone(&conn.cancel),
                        shed,
                    };
                    if job_txs[conn.worker].send(job).is_ok() {
                        conn.pending += 1;
                        progressed = true;
                    }
                }
            }
        }

        // Response sweep: worker answers into write buffers. A response
        // whose generation doesn't match the slot's current occupant
        // belongs to a connection that was reaped while the request was
        // in flight — dropped, never delivered to the slot's new tenant.
        while let Ok(r) = resp_rx.try_recv() {
            progressed = true;
            if let Some(Some(conn)) = conns.get_mut(r.conn) {
                if conn.gen != r.gen {
                    continue;
                }
                conn.pending = conn.pending.saturating_sub(1);
                conn.write_buf.extend_from_slice(r.response.as_bytes());
                conn.write_buf.push(b'\n');
            }
        }

        // Write sweep + reap.
        let mut inflight = 0usize;
        for slot in conns.iter_mut() {
            let Some(conn) = slot else { continue };
            if !conn.write_buf.is_empty() {
                let before = conn.write_buf.len();
                conn.pump_write();
                if conn.write_buf.len() != before {
                    progressed = true;
                }
            }
            if conn.finished() {
                // Cancel this client's in-flight work: queued jobs are
                // dropped at dequeue, a running kernel aborts at its next
                // chunk boundary.
                conn.cancel.store(true, Ordering::Relaxed);
                *slot = None;
                progressed = true;
            } else {
                inflight += conn.pending + conn.write_buf.len();
            }
        }

        if stopping {
            // Leave once every dispatched request is answered and
            // flushed, or after a short deadline (a stalled client must
            // not wedge shutdown — the WAL already holds every
            // acknowledged batch).
            let deadline_passed = stop_seen.is_some_and(|t| t.elapsed() > Duration::from_secs(3));
            if inflight == 0 || deadline_passed {
                if deadline_passed {
                    // Abandoning the stragglers: raise every cancel flag
                    // so queued jobs are dropped and running kernels
                    // abort, letting the workers drain quickly.
                    for conn in conns.iter().flatten() {
                        conn.cancel.store(true, Ordering::Relaxed);
                    }
                }
                break;
            }
        }
        if !progressed {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    // Closing the job channels ends the workers once their queues drain.
    drop(job_txs);
    for w in workers {
        let _ = w.join();
    }
    // Signal path only — the in-band shutdown op already checkpointed.
    if !shutdown_op {
        drain(&mut server, "shutdown (signal)");
    }
    Ok(())
}
