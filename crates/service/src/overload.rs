//! Overload state shared by the admission-control loop and the protocol
//! layer: in-flight accounting, shed/degrade/cancel counters, and the
//! brownout controller that maps load to a degradation tier.
//!
//! ## Admission
//!
//! The dispatch loop (`serve.rs`) calls [`OverloadState::try_admit`] for
//! every extracted request line *before* enqueueing it to a reader
//! worker. Admission is judged against a bounded global in-flight budget
//! (`--max-inflight`): once the budget is full, **expensive** ops are
//! shed immediately with a structured `overloaded` error carrying
//! `retry_after_ms`, while **cheap** ops keep queueing up to a small
//! multiple of the budget (they drain in microseconds and shedding them
//! would only force a retry storm). `shutdown` is never shed. The
//! per-connection quota lives in the dispatch loop itself: a connection
//! stops having lines extracted while its pending count is at the quota,
//! which turns into plain TCP backpressure on that client alone.
//!
//! ## Brownout
//!
//! [`OverloadState::recompute_tier`] maps queue pressure and the p99 of
//! *recently completed* requests (the delta of the cumulative
//! `request_micros` histograms between two calls) to a tier:
//!
//! | tier | meaning |
//! |------|---------|
//! | 0    | normal — every op answers exactly |
//! | 1    | cold-hierarchy `region`/`node` answer a budgeted Theorem-1 estimate (`degraded:true`) instead of materializing |
//! | 2    | `kappa` also answers the estimate interval |
//!
//! Tier transitions use asymmetric thresholds (enter high, exit low) so
//! the controller does not flap at a boundary. `--brownout off` pins
//! tier 0; `--brownout 1|2` pins a tier for drills and tests.
//!
//! Everything here is lock-free on the hot path (atomics + registry
//! handles); only the p99 window keeps a mutex, taken once per
//! controller tick, never per request.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use hdsd_telemetry::{Counter, Gauge, HistogramSnapshot, MetricSnapshot, Registry};

/// Queue-depth multiple up to which cheap ops still queue when the
/// in-flight budget is exhausted.
const CHEAP_HEADROOM: u64 = 4;

/// Assumed drain cost per queued request when computing `retry_after_ms`.
const DRAIN_MS_PER_JOB: u64 = 2;

/// Bounds on the `retry_after_ms` hint.
const RETRY_AFTER_MIN_MS: u64 = 25;
const RETRY_AFTER_MAX_MS: u64 = 5_000;

/// Brownout tier enter/exit thresholds: queue pressure (in-flight as a
/// fraction of the budget) and recent p99 (µs). Enter is deliberately
/// higher than exit so a reading hovering at the boundary cannot flap
/// the tier every tick.
const TIER1_ENTER_PRESSURE: f64 = 0.50;
const TIER1_EXIT_PRESSURE: f64 = 0.30;
const TIER2_ENTER_PRESSURE: f64 = 0.90;
const TIER2_EXIT_PRESSURE: f64 = 0.70;
const TIER1_ENTER_P99_US: u64 = 250_000;
const TIER1_EXIT_P99_US: u64 = 100_000;
const TIER2_ENTER_P99_US: u64 = 1_000_000;
const TIER2_EXIT_P99_US: u64 = 500_000;

/// How `--brownout` was configured.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BrownoutMode {
    /// Never degrade (tier pinned to 0).
    Off,
    /// Tier follows queue pressure and recent p99 (the default).
    Auto,
    /// Tier pinned to a fixed value (drills, tests).
    Forced(u8),
}

impl BrownoutMode {
    /// Parses the `--brownout` flag value: `off`, `auto`, or a tier.
    pub fn parse(s: &str) -> Option<BrownoutMode> {
        match s {
            "off" => Some(BrownoutMode::Off),
            "auto" => Some(BrownoutMode::Auto),
            "0" => Some(BrownoutMode::Forced(0)),
            "1" => Some(BrownoutMode::Forced(1)),
            "2" => Some(BrownoutMode::Forced(2)),
            _ => None,
        }
    }
}

/// Encoding of [`BrownoutMode`] in one atomic: 0 off, 1 auto, 2+t forced.
fn encode_mode(m: BrownoutMode) -> u64 {
    match m {
        BrownoutMode::Off => 0,
        BrownoutMode::Auto => 1,
        BrownoutMode::Forced(t) => 2 + t as u64,
    }
}

fn decode_mode(v: u64) -> BrownoutMode {
    match v {
        0 => BrownoutMode::Off,
        1 => BrownoutMode::Auto,
        t => BrownoutMode::Forced((t - 2) as u8),
    }
}

/// The admission verdict for one request line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Enqueue it; in-flight and queue-depth accounting already bumped.
    Admit,
    /// Refuse it with the `overloaded` error; nothing was bumped.
    Shed {
        /// Client back-off hint, computed from the current queue depth.
        retry_after_ms: u64,
    },
}

/// Point-in-time overload accounting for the `stats` op.
#[derive(Debug, Clone, Copy)]
pub struct OverloadSnapshot {
    /// Requests admitted but not yet answered (queued + executing).
    pub inflight: u64,
    /// Requests admitted but not yet picked up by a reader worker.
    pub queue_depth: u64,
    /// Configured global in-flight budget (0 = unlimited).
    pub max_inflight: u64,
    /// Current brownout tier (0 = exact, 1 = degrade region, 2 = + kappa).
    pub tier: u64,
    /// Total requests refused with the `overloaded` error.
    pub shed: u64,
    /// Total requests answered with a degraded (estimate) result.
    pub degraded: u64,
    /// Total requests cancelled (deadline, disconnect, or shutdown).
    pub cancelled: u64,
}

/// The p99 window: the previous cumulative `request_micros` merge, so
/// each controller tick sees only requests completed since the last.
struct P99Window {
    last: HistogramSnapshot,
}

/// Shared overload state. One per serving process, `Arc`-shared between
/// the dispatch loop (admission, gauges) and every protocol handle
/// (degradation decisions, cancel accounting, `stats`).
pub struct OverloadState {
    /// Requests admitted but not yet answered (queued + executing).
    inflight: AtomicI64,
    /// Requests admitted but not yet picked up by a reader worker.
    queued: AtomicI64,
    /// Global in-flight budget; 0 means unlimited (admission disabled).
    max_inflight: AtomicU64,
    mode: AtomicU64,
    tier: AtomicU64,
    shed: Arc<Counter>,
    degraded: Arc<Counter>,
    cancelled: Arc<Counter>,
    inflight_gauge: Arc<Gauge>,
    depth_gauge: Arc<Gauge>,
    tier_gauge: Arc<Gauge>,
    window: Mutex<P99Window>,
}

impl OverloadState {
    /// Creates the state and registers its gauges/counters in the global
    /// metrics registry (so they appear in `metrics` and the Prometheus
    /// surface from the first scrape, all zero).
    pub fn new() -> Arc<OverloadState> {
        let reg = Registry::global();
        Arc::new(OverloadState {
            inflight: AtomicI64::new(0),
            queued: AtomicI64::new(0),
            max_inflight: AtomicU64::new(0),
            mode: AtomicU64::new(encode_mode(BrownoutMode::Auto)),
            tier: AtomicU64::new(0),
            shed: reg.counter("requests_shed_total"),
            degraded: reg.counter("requests_degraded_total"),
            cancelled: reg.counter("requests_cancelled_total"),
            inflight_gauge: reg.gauge("inflight_requests"),
            depth_gauge: reg.gauge("queue_depth"),
            tier_gauge: reg.gauge("brownout_tier"),
            window: Mutex::new(P99Window { last: HistogramSnapshot::empty() }),
        })
    }

    /// Sets the global in-flight budget (0 disables admission control).
    pub fn set_max_inflight(&self, n: u64) {
        self.max_inflight.store(n, Ordering::Relaxed);
    }

    /// The configured global in-flight budget (0 = unlimited).
    pub fn max_inflight(&self) -> u64 {
        self.max_inflight.load(Ordering::Relaxed)
    }

    /// Sets the brownout controller mode (`--brownout`).
    pub fn set_mode(&self, m: BrownoutMode) {
        self.mode.store(encode_mode(m), Ordering::Relaxed);
    }

    /// The configured brownout controller mode.
    pub fn mode(&self) -> BrownoutMode {
        decode_mode(self.mode.load(Ordering::Relaxed))
    }

    fn clamped(v: i64) -> u64 {
        v.max(0) as u64
    }

    /// Current in-flight count (queued + executing).
    pub fn inflight(&self) -> u64 {
        Self::clamped(self.inflight.load(Ordering::Relaxed))
    }

    /// Current queued-but-not-executing count.
    pub fn queue_depth(&self) -> u64 {
        Self::clamped(self.queued.load(Ordering::Relaxed))
    }

    /// Admission check for one extracted request line. On `Admit` the
    /// in-flight and queue-depth accounting is already bumped — the
    /// caller MUST pair it with [`OverloadState::job_dequeued`] (worker
    /// picked it up) and [`OverloadState::job_done`] (response produced
    /// or job dropped), in that order.
    ///
    /// `expensive` is the dispatch loop's op classification; `shed_exempt`
    /// marks ops that must never be shed (`shutdown`).
    pub fn try_admit(&self, expensive: bool, shed_exempt: bool) -> Admission {
        let max = self.max_inflight.load(Ordering::Relaxed);
        if max == 0 || shed_exempt {
            self.admit_one();
            return Admission::Admit;
        }
        let cur = self.inflight();
        let limit = if expensive { max } else { max.saturating_mul(CHEAP_HEADROOM) };
        if cur < limit {
            self.admit_one();
            Admission::Admit
        } else {
            self.shed.inc();
            Admission::Shed { retry_after_ms: self.retry_after_ms() }
        }
    }

    fn admit_one(&self) {
        let inflight = self.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        let queued = self.queued.fetch_add(1, Ordering::Relaxed) + 1;
        self.inflight_gauge.set(Self::clamped(inflight));
        self.depth_gauge.set(Self::clamped(queued));
    }

    /// A worker pulled the job off its queue (it is now executing, or
    /// about to be dropped as dead — either way no longer queued).
    pub fn job_dequeued(&self) {
        let queued = self.queued.fetch_sub(1, Ordering::Relaxed) - 1;
        self.depth_gauge.set(Self::clamped(queued));
    }

    /// The job produced its response (or was dropped): it no longer
    /// counts against the in-flight budget.
    pub fn job_done(&self) {
        let inflight = self.inflight.fetch_sub(1, Ordering::Relaxed) - 1;
        self.inflight_gauge.set(Self::clamped(inflight));
    }

    /// The back-off hint for a shed response: the estimated time for the
    /// current queue to drain, bounded so clients neither hammer nor
    /// give up.
    pub fn retry_after_ms(&self) -> u64 {
        (self.inflight() * DRAIN_MS_PER_JOB).clamp(RETRY_AFTER_MIN_MS, RETRY_AFTER_MAX_MS)
    }

    /// Counts a request answered in degraded (estimate) form.
    pub fn on_degraded(&self) {
        self.degraded.inc();
    }

    /// Counts a request abandoned before producing a real answer: a job
    /// dropped at dequeue because its connection died, or an op cut off
    /// mid-computation by its deadline / disconnect flag.
    pub fn on_cancelled(&self) {
        self.cancelled.inc();
    }

    /// Counts a request shed outside [`OverloadState::try_admit`]
    /// (tests and alternative dispatch loops).
    pub fn on_shed(&self) {
        self.shed.inc();
    }

    /// Current brownout tier (0 = exact answers everywhere).
    pub fn tier(&self) -> u64 {
        self.tier.load(Ordering::Relaxed)
    }

    /// Whether cold-hierarchy `region`/`node` should degrade to estimates.
    pub fn degrade_region(&self) -> bool {
        self.tier() >= 1
    }

    /// Whether `kappa` should degrade to the estimate interval.
    pub fn degrade_kappa(&self) -> bool {
        self.tier() >= 2
    }

    /// Recomputes the brownout tier from queue pressure and the p99 of
    /// requests completed since the previous call. Called at a steady
    /// cadence by the dispatch loop (roughly every 100 ms); requests
    /// never pay for it.
    pub fn recompute_tier(&self) -> u64 {
        let tier = match self.mode() {
            BrownoutMode::Off => 0,
            BrownoutMode::Forced(t) => t as u64,
            BrownoutMode::Auto => {
                let max = self.max_inflight.load(Ordering::Relaxed);
                let pressure = if max == 0 { 0.0 } else { self.inflight() as f64 / max as f64 };
                let p99 = self.recent_p99_micros();
                let prev = self.tier();
                // Enter on the high thresholds, leave on the low ones
                // (hysteresis: a tier holds itself until pressure AND
                // p99 drop below its exit thresholds).
                let enters = |press: f64, lat: u64| pressure >= press || p99 >= lat;
                if enters(TIER2_ENTER_PRESSURE, TIER2_ENTER_P99_US)
                    || (prev >= 2 && enters(TIER2_EXIT_PRESSURE, TIER2_EXIT_P99_US))
                {
                    2
                } else if enters(TIER1_ENTER_PRESSURE, TIER1_ENTER_P99_US)
                    || (prev >= 1 && enters(TIER1_EXIT_PRESSURE, TIER1_EXIT_P99_US))
                {
                    1
                } else {
                    0
                }
            }
        };
        self.tier.store(tier, Ordering::Relaxed);
        self.tier_gauge.set(tier);
        tier
    }

    /// p99 latency (µs) of requests completed since the previous call:
    /// the quantile of the bucket-wise delta between the current and the
    /// previously seen merge of every `request_micros{op=...}` histogram.
    /// Returns 0 when nothing completed in the window.
    pub fn recent_p99_micros(&self) -> u64 {
        let mut merged = HistogramSnapshot::empty();
        for (name, m) in Registry::global().snapshot() {
            if name.starts_with("request_micros") {
                if let MetricSnapshot::Histogram(h) = m {
                    merged.merge(&h);
                }
            }
        }
        let mut window = self.window.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let delta = subtract(&merged, &window.last);
        window.last = merged;
        delta.quantile(0.99)
    }

    /// Point-in-time accounting for the `stats` op.
    pub fn snapshot(&self) -> OverloadSnapshot {
        OverloadSnapshot {
            inflight: self.inflight(),
            queue_depth: self.queue_depth(),
            max_inflight: self.max_inflight(),
            tier: self.tier(),
            shed: self.shed.get(),
            degraded: self.degraded.get(),
            cancelled: self.cancelled.get(),
        }
    }
}

/// Bucket-wise histogram difference (`a - b`, saturating): the requests
/// recorded in `a` but not yet in `b`. `max` is inherited from `a` — an
/// upper bound for the delta, which only tightens the quantile clamp.
fn subtract(a: &HistogramSnapshot, b: &HistogramSnapshot) -> HistogramSnapshot {
    let mut out = HistogramSnapshot::empty();
    out.count = a.count.saturating_sub(b.count);
    out.sum = a.sum.saturating_sub(b.sum);
    out.max = a.max;
    for (i, slot) in out.buckets.iter_mut().enumerate() {
        *slot = a.buckets[i].saturating_sub(*b.buckets.get(i).unwrap_or(&0));
    }
    out
}

/// The dispatch loop's op classification, by sniffing the raw request
/// line without a full JSON parse: ops that can do graph-proportional
/// work (hierarchy materialization, exploration, updates, snapshots)
/// are expensive; bounded-cost ops are cheap and keep queueing under
/// load. Unknown and unparseable lines are cheap — they are answered
/// with an error in microseconds.
pub fn is_expensive_op(line: &str) -> bool {
    matches!(
        sniff_op(line),
        Some(
            "region"
                | "nuclei"
                | "node"
                | "estimate"
                | "update"
                | "insert"
                | "remove"
                | "save"
                | "checkpoint"
        )
    )
}

/// Ops the admission gate must never shed.
pub fn is_shed_exempt_op(line: &str) -> bool {
    sniff_op(line) == Some("shutdown")
}

/// Extracts the value of the top-level `"op"` field from a raw request
/// line with a scan, not a parse: finds `"op"` followed by `:` and a
/// quoted string. Misclassification is harmless — admission classes only
/// pick which budget applies; the real parse happens in the worker.
pub fn sniff_op(line: &str) -> Option<&str> {
    let key = line.find("\"op\"")?;
    let rest = &line[key + 4..];
    let colon = rest.find(':')?;
    let rest = rest[colon + 1..].trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(&rest[..end])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sniffs_ops_from_raw_lines() {
        assert_eq!(sniff_op(r#"{"op":"region","space":"core"}"#), Some("region"));
        assert_eq!(sniff_op(r#"{ "op" : "stats" }"#), Some("stats"));
        assert_eq!(sniff_op(r#"{"space":"core","op":"kappa"}"#), Some("kappa"));
        assert_eq!(sniff_op("not json"), None);
        assert_eq!(sniff_op(r#"{"op":12}"#), None);
        assert!(is_expensive_op(r#"{"op":"region"}"#));
        assert!(!is_expensive_op(r#"{"op":"stats"}"#));
        assert!(!is_expensive_op("garbage"));
        assert!(is_shed_exempt_op(r#"{"op":"shutdown"}"#));
    }

    #[test]
    fn admission_budget_sheds_expensive_and_queues_cheap() {
        let st = OverloadState::new();
        st.set_max_inflight(2);
        assert_eq!(st.try_admit(true, false), Admission::Admit);
        assert_eq!(st.try_admit(true, false), Admission::Admit);
        // Budget full: expensive sheds, cheap still queues, shutdown passes.
        assert!(matches!(st.try_admit(true, false), Admission::Shed { .. }));
        assert_eq!(st.try_admit(false, false), Admission::Admit);
        assert_eq!(st.try_admit(true, true), Admission::Admit);
        assert_eq!(st.inflight(), 4);
        assert_eq!(st.queue_depth(), 4);
        // Cheap ops hit their own (larger) ceiling too.
        for _ in 0..CHEAP_HEADROOM * 2 {
            let _ = st.try_admit(false, false);
        }
        assert!(matches!(st.try_admit(false, false), Admission::Shed { .. }));
        // Draining restores admission.
        let drain = st.inflight();
        for _ in 0..drain {
            st.job_dequeued();
            st.job_done();
        }
        assert_eq!(st.inflight(), 0);
        assert_eq!(st.queue_depth(), 0);
        assert_eq!(st.try_admit(true, false), Admission::Admit);
        st.job_dequeued();
        st.job_done();
    }

    #[test]
    fn retry_after_scales_with_depth_and_is_bounded() {
        let st = OverloadState::new();
        st.set_max_inflight(1);
        assert_eq!(st.retry_after_ms(), RETRY_AFTER_MIN_MS);
        for _ in 0..10_000 {
            st.admit_one();
        }
        assert_eq!(st.retry_after_ms(), RETRY_AFTER_MAX_MS);
        for _ in 0..10_000 {
            st.job_dequeued();
            st.job_done();
        }
    }

    #[test]
    fn forced_and_off_modes_pin_the_tier() {
        let st = OverloadState::new();
        st.set_mode(BrownoutMode::Forced(2));
        assert_eq!(st.recompute_tier(), 2);
        assert!(st.degrade_kappa() && st.degrade_region());
        st.set_mode(BrownoutMode::Off);
        assert_eq!(st.recompute_tier(), 0);
        assert!(!st.degrade_region());
        assert_eq!(BrownoutMode::parse("auto"), Some(BrownoutMode::Auto));
        assert_eq!(BrownoutMode::parse("off"), Some(BrownoutMode::Off));
        assert_eq!(BrownoutMode::parse("1"), Some(BrownoutMode::Forced(1)));
        assert_eq!(BrownoutMode::parse("warp"), None);
    }

    #[test]
    fn auto_tier_follows_queue_pressure_with_hysteresis() {
        let st = OverloadState::new();
        st.set_mode(BrownoutMode::Auto);
        st.set_max_inflight(100);
        // Other tests in this process record into the global
        // `request_micros` histograms; draining the window right before
        // each recompute keeps its p99 delta effectively empty so only
        // queue pressure drives the tier here.
        let tick = |st: &OverloadState| {
            let _ = st.recent_p99_micros();
            st.recompute_tier()
        };
        assert_eq!(tick(&st), 0);
        for _ in 0..60 {
            st.admit_one();
        }
        assert_eq!(tick(&st), 1, "60% pressure enters tier 1");
        for _ in 0..35 {
            st.admit_one();
        }
        assert_eq!(tick(&st), 2, "95% pressure enters tier 2");
        for _ in 0..20 {
            st.job_dequeued();
            st.job_done();
        }
        assert_eq!(tick(&st), 2, "75% pressure holds tier 2 (hysteresis)");
        for _ in 0..35 {
            st.job_dequeued();
            st.job_done();
        }
        assert_eq!(tick(&st), 1, "40% pressure drops to tier 1, holds it");
        for _ in 0..40 {
            st.job_dequeued();
            st.job_done();
        }
        assert_eq!(tick(&st), 0, "idle returns to tier 0");
    }

    #[test]
    fn histogram_subtract_is_the_window_delta() {
        let mut a = HistogramSnapshot::empty();
        let mut b = HistogramSnapshot::empty();
        a.count = 10;
        a.sum = 1000;
        a.max = 500;
        a.buckets[3] = 4;
        a.buckets[9] = 6;
        b.count = 4;
        b.sum = 200;
        b.buckets[3] = 4;
        let d = subtract(&a, &b);
        assert_eq!(d.count, 6);
        assert_eq!(d.sum, 800);
        assert_eq!(d.buckets[3], 0);
        assert_eq!(d.buckets[9], 6);
    }
}
