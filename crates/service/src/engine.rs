//! The long-lived serving engine: one graph, per-space resident
//! decomposition state, and the request operations of the protocol.
//!
//! The engine answers the paper's §1/§6 query-driven scenario without
//! global recomputation:
//!
//! * **exact lookups** read the resident κ vectors (O(1));
//! * **budgeted estimates** run [`local_estimate_opts`] on an owned
//!   [`CachedSpace`], returning the Theorem-1 interval
//!   `lower ≤ κ(q) ≤ estimate` plus exploration telemetry;
//! * **region queries** resolve against a lazily-built resident
//!   [`Hierarchy`] (Sarıyüce–Pınar's "keep the nucleus forest as the
//!   index" idea);
//! * **edge batches** splice the CSR, the shared triangle substrate and
//!   every space snapshot ([`hdsd_graph::delta`],
//!   [`hdsd_nucleus::delta`]), then refresh κ with the warm-started,
//!   candidate-lifted resume ([`refresh_resume_of_within`]) — nothing is rebuilt
//!   or re-enumerated globally;
//! * **snapshots** serialize graph + κ + hierarchies for fast restart.
//!
//! ## Epoch immutability
//!
//! Since PR 8 the resident state lives in an immutable, `Arc`-shared
//! [`EngineView`]: every read operation is `&self` on the view, and
//! [`Engine::update`] never mutates the current view — it builds the
//! *next* view off to the side (reusing the splice/repair delta
//! machinery plus cheap `Arc` adoption for anything untouched) and swaps
//! the engine's `Arc` over. The serving layer publishes that new view
//! through an [`crate::epoch::EpochCell`], so concurrent readers keep
//! answering from the epoch they pinned — wait-free, bit-stable — while
//! the writer works. The one piece of interior mutability is the
//! hierarchy index's `OnceLock`: a monotonic fill-once cache that lets
//! the *first* region query of an epoch materialize the forest without
//! `&mut` (every later reader of that epoch sees the identical index).

use std::sync::{Arc, OnceLock};
use std::time::Instant;

use hdsd_graph::{apply_edge_batch, triangle_delta, CsrGraph, TriangleList, VertexId, NO_ID};
use hdsd_nucleus::hierarchy::NucleusDensity;
use hdsd_nucleus::{
    build_hierarchy, build_hierarchy_within, core_space_delta, local_estimate_opts,
    nucleus34_space_delta, peel, refresh_resume_of_within, truss_space_delta, CachedSpace,
    CancelToken, Cancelled, CliqueSpace, CoreSpace, Hierarchy, LocalConfig, Nucleus34Space,
    QueryEstimate, QueryOptions, Snapshot, SpaceSnapshot, TrussSpace,
};
use hdsd_telemetry::{labeled, span, Registry};

/// Which decomposition a request addresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpaceSel {
    /// (1,2): k-core over vertices.
    Core,
    /// (2,3): k-truss over edges.
    Truss,
    /// (3,4): nucleus over triangles.
    Nucleus34,
}

impl SpaceSel {
    /// Parses the protocol's space names.
    pub fn parse(name: &str) -> Option<SpaceSel> {
        match name {
            "core" | "12" => Some(SpaceSel::Core),
            "truss" | "23" => Some(SpaceSel::Truss),
            "nucleus34" | "34" => Some(SpaceSel::Nucleus34),
            _ => None,
        }
    }

    /// Protocol name.
    pub fn name(self) -> &'static str {
        match self {
            SpaceSel::Core => "core",
            SpaceSel::Truss => "truss",
            SpaceSel::Nucleus34 => "nucleus34",
        }
    }

    /// The `(r, s)` pair.
    pub fn rs(self) -> (u32, u32) {
        match self {
            SpaceSel::Core => (1, 2),
            SpaceSel::Truss => (2, 3),
            SpaceSel::Nucleus34 => (3, 4),
        }
    }

    /// Whether this space is built over the triangle substrate.
    fn needs_triangles(self) -> bool {
        !matches!(self, SpaceSel::Core)
    }

    fn build_cached(self, graph: &CsrGraph, triangles: Option<&TriangleList>) -> CachedSpace {
        match (self, triangles) {
            (SpaceSel::Core, _) => CachedSpace::build(&CoreSpace::new(graph)),
            (SpaceSel::Truss, Some(tl)) => {
                CachedSpace::build(&TrussSpace::with_triangles(graph, tl))
            }
            (SpaceSel::Truss, None) => CachedSpace::build(&TrussSpace::on_the_fly(graph)),
            (SpaceSel::Nucleus34, Some(tl)) => {
                CachedSpace::build(&Nucleus34Space::with_triangles(graph, tl))
            }
            (SpaceSel::Nucleus34, None) => CachedSpace::build(&Nucleus34Space::on_the_fly(graph)),
        }
    }
}

/// Engine construction options.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Decompositions to keep resident. The (3,4) space costs the most to
    /// build; enable it when the workload asks for it.
    pub spaces: Vec<SpaceSel>,
    /// Sweep configuration for refreshes.
    pub local: LocalConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            spaces: vec![SpaceSel::Core, SpaceSel::Truss],
            local: LocalConfig::sequential(),
        }
    }
}

/// Hierarchy plus the clique → node index used by region queries. Both
/// halves are `Arc`'d so a snapshot/checkpoint shares them zero-copy and
/// a repaired forest moves to the next epoch without cloning the nodes.
#[derive(Clone)]
struct HierarchyIndex {
    forest: Arc<Hierarchy>,
    /// For each r-clique, the node whose `own_cliques` contains it
    /// (`u32::MAX` for cliques in no nucleus).
    node_of: Arc<Vec<u32>>,
}

impl HierarchyIndex {
    fn build(space: &CachedSpace, kappa: &[u32]) -> Self {
        Self::from_forest(Arc::new(build_hierarchy(space, kappa)), space.num_cliques())
    }

    /// [`HierarchyIndex::build`] under a cancellation token: the s-clique
    /// scan and union–find passes abort at their chunk boundaries.
    fn build_within(
        space: &CachedSpace,
        kappa: &[u32],
        cancel: &CancelToken,
    ) -> Result<Self, Cancelled> {
        let forest = build_hierarchy_within(space, kappa, cancel)?;
        Ok(Self::from_forest(Arc::new(forest), space.num_cliques()))
    }

    /// Wraps an existing forest (freshly built or repaired) with the
    /// clique → node inverted index.
    fn from_forest(forest: Arc<Hierarchy>, num_cliques: usize) -> Self {
        let node_of = Arc::new(forest.clique_to_node(num_cliques));
        HierarchyIndex { forest, node_of }
    }
}

/// One space's immutable resident state inside an [`EngineView`]: the
/// container snapshot and κ vector are `Arc`'d rows shared across epochs
/// (and into checkpoints), never refreshed in place.
struct SpaceView {
    sel: SpaceSel,
    cached: Arc<CachedSpace>,
    kappa: Arc<Vec<u32>>,
    /// Lazily materialized hierarchy index. `OnceLock` (not `Option`) so
    /// the first region/nuclei query of an epoch can fill it through
    /// `&self` — concurrent readers race benignly (first fill wins, all
    /// see the same index) and the writer checks `get()` at update time
    /// to decide whether the next epoch inherits a repaired forest.
    hierarchy: OnceLock<HierarchyIndex>,
    /// Wall time of the cold space materialization (snapshot build) at
    /// startup; 0 when the state was adopted from a snapshot restore.
    build_us: u64,
    /// Wall time of the cold exact peel at startup; 0 on snapshot restore
    /// (κ is adopted, nothing is peeled).
    peel_us: u64,
}

impl SpaceView {
    fn fresh(sel: SpaceSel, graph: &CsrGraph, triangles: Option<&TriangleList>) -> SpaceView {
        let t_build = Instant::now();
        let cached = {
            span!("space.build");
            sel.build_cached(graph, triangles)
        };
        let build_us = t_build.elapsed().as_micros() as u64;
        // `peel` sees the snapshot's resident flat rows (`as_flat`) and
        // runs the monomorphized flat engine — the cold-start hot path.
        let t_peel = Instant::now();
        let pr = {
            span!("space.peel");
            peel(&cached)
        };
        let peel_us = t_peel.elapsed().as_micros() as u64;
        // The peel's work counters used to be computed and dropped here;
        // flow them into the registry so a running daemon exposes them.
        let reg = Registry::global();
        let lbl = [("space", sel.name())];
        reg.counter(&labeled("peel_containers_scanned_total", &lbl))
            .add(pr.stats.containers_scanned);
        reg.counter(&labeled("peel_dead_containers_total", &lbl)).add(pr.stats.dead_containers);
        reg.counter(&labeled("peel_bucket_moves_total", &lbl)).add(pr.stats.bucket_moves);
        reg.histogram(&labeled("space_build_micros", &lbl)).record(build_us);
        reg.histogram(&labeled("space_peel_micros", &lbl)).record(peel_us);
        SpaceView {
            sel,
            cached: Arc::new(cached),
            kappa: Arc::new(pr.kappa),
            hierarchy: OnceLock::new(),
            build_us,
            peel_us,
        }
    }

    /// The resident hierarchy index, materializing it on first use. Safe
    /// under concurrent readers: `OnceLock` serializes initializers and
    /// every caller sees the same index for the lifetime of this epoch.
    fn ensure_hierarchy(&self) -> &HierarchyIndex {
        self.hierarchy.get_or_init(|| HierarchyIndex::build(&self.cached, &self.kappa))
    }

    /// [`SpaceView::ensure_hierarchy`] under a cancellation token. The
    /// cancellable build runs *outside* the `OnceLock` initializer (an
    /// initializer cannot fail), so two racing cold builds may both do the
    /// work and one result is discarded — the same benign race the
    /// fill-once cache already tolerates between readers. A cancelled
    /// build leaves the lock empty: the next query simply retries.
    fn ensure_hierarchy_under(&self, cancel: &CancelToken) -> Result<&HierarchyIndex, Cancelled> {
        if let Some(hi) = self.hierarchy.get() {
            return Ok(hi);
        }
        let built = HierarchyIndex::build_within(&self.cached, &self.kappa, cancel)?;
        Ok(self.hierarchy.get_or_init(|| built))
    }
}

/// Summary of one nucleus (a hierarchy node).
#[derive(Clone, Debug)]
pub struct NucleusSummary {
    /// Node id in the resident hierarchy.
    pub node: u32,
    /// Threshold k of the nucleus.
    pub k: u32,
    /// Total r-cliques inside (own + descendants).
    pub size: usize,
}

/// A materialized dense region around a query clique.
#[derive(Clone, Debug)]
pub struct RegionReport {
    /// Hierarchy node id.
    pub node: u32,
    /// Threshold k (equals κ of the query clique).
    pub k: u32,
    /// r-cliques in the region.
    pub size: usize,
    /// The region's vertex set.
    pub vertices: Vec<VertexId>,
    /// Density summary of the induced subgraph.
    pub density: NucleusDensity,
}

/// Telemetry of one space's incremental hierarchy repair.
#[derive(Clone, Copy, Debug)]
pub struct HierarchyRepairReport {
    /// Wall time of the repair (detach + bounded union–find + graft).
    pub repair_us: u64,
    /// Maximal untouched subtrees grafted back without reconstruction.
    pub preserved_subtrees: usize,
    /// Old forest nodes reused verbatim.
    pub preserved_nodes: usize,
    /// Nodes rebuilt by the bounded union–find pass.
    pub rebuilt_nodes: usize,
    /// r-cliques in the dirty set after closure.
    pub dirty_cliques: usize,
    /// s-cliques re-enumerated (a cold rebuild scans all of them).
    pub scanned_scliques: usize,
    /// True when the repair bailed out to a cold rebuild (no preservable
    /// subtree — typical for the core space's broad shallow forest).
    pub full_rebuild: bool,
}

/// Telemetry of one space's warm refresh.
#[derive(Clone, Debug)]
pub struct SpaceRefresh {
    /// Space name.
    pub space: &'static str,
    /// Sweeps the resumed run needed (including certification).
    pub sweeps: usize,
    /// r-clique recomputations across the refresh.
    pub processed: u64,
    /// Cliques seeded awake (batch-perturbed).
    pub awake: usize,
    /// Surviving cliques lifted by the candidate traversal.
    pub lifted: usize,
    /// Wall time of the space snapshot splice (container-cache patch).
    pub splice_us: u64,
    /// Wall time of the warm κ refresh (candidate lift + resumed sweeps).
    pub refresh_us: u64,
    /// Incremental hierarchy repair telemetry, when a forest was resident
    /// (`None` when the space had no hierarchy built yet — nothing to
    /// repair, and nothing is invalidated either).
    pub hierarchy_repair: Option<HierarchyRepairReport>,
}

/// Result of applying one edge batch.
#[derive(Clone, Debug)]
pub struct UpdateReport {
    /// Edges actually inserted (after dedup).
    pub inserted: u32,
    /// Edges actually removed.
    pub removed: u32,
    /// Wall time of the shared substrate delta (CSR splice + triangle
    /// maintenance) before any space refresh.
    pub graph_delta_us: u64,
    /// Per-space refresh telemetry.
    pub spaces: Vec<SpaceRefresh>,
    /// Total wall time spent repairing resident hierarchies (all spaces);
    /// 0 when no forest was resident. Before PR 4 this cost was paid as a
    /// full rebuild by the next `region`/`nuclei` query instead.
    pub hierarchy_repair_us: u64,
    /// Wall time of the whole update (substrate delta + all refreshes).
    pub wall_us: u64,
}

/// Point-in-time statistics of one resident space.
#[derive(Clone, Debug)]
pub struct SpaceStats {
    /// Space name (`core` / `truss` / `nucleus34`).
    pub space: String,
    /// r-clique count.
    pub cliques: usize,
    /// Maximum κ.
    pub max_kappa: u32,
    /// Whether a hierarchy forest is resident.
    pub hierarchy_resident: bool,
    /// Cold-start snapshot materialization time (0 on snapshot restore).
    pub build_us: u64,
    /// Cold-start exact peel time (0 on snapshot restore — κ is adopted).
    pub peel_us: u64,
}

/// Point-in-time engine statistics.
#[derive(Clone, Debug)]
pub struct EngineStats {
    /// Vertices in the current graph.
    pub vertices: usize,
    /// Edges in the current graph.
    pub edges: usize,
    /// Edge batches applied since construction/restore.
    pub updates_applied: u64,
    /// Per-space statistics, including the cold-start cost split.
    pub spaces: Vec<SpaceStats>,
}

/// One immutable epoch of resident serving state: the graph, the shared
/// triangle substrate, and every configured space's containers, κ vector
/// and (lazily filled) hierarchy index.
///
/// Views are published through an [`crate::epoch::EpochCell`] and shared
/// by `Arc` across reader threads; **nothing in a view is ever mutated
/// after publication** (the hierarchy `OnceLock` fills once, monotonic).
/// Every query method is therefore `&self` and safe to call from any
/// number of threads concurrently.
pub struct EngineView {
    graph: Arc<CsrGraph>,
    /// Maintained triangle substrate, resident whenever a triangle-based
    /// space is configured. Shared by the truss and (3,4) states and
    /// spliced (not rebuilt) on every update.
    triangles: Option<Arc<TriangleList>>,
    spaces: Vec<SpaceView>,
    updates_applied: u64,
}

impl EngineView {
    /// The graph of this epoch.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Configured spaces.
    pub fn spaces(&self) -> Vec<SpaceSel> {
        self.spaces.iter().map(|s| s.sel).collect()
    }

    fn state(&self, sel: SpaceSel) -> Result<&SpaceView, String> {
        self.spaces
            .iter()
            .find(|s| s.sel == sel)
            .ok_or_else(|| format!("space {:?} not resident (enable it at startup)", sel.name()))
    }

    /// Exact κ of r-clique `id` (a resident-vector read).
    pub fn kappa_of(&self, sel: SpaceSel, id: usize) -> Result<u32, String> {
        let st = self.state(sel)?;
        st.kappa.get(id).copied().ok_or_else(|| format!("clique id {id} out of range"))
    }

    /// Number of r-cliques in a space.
    pub fn num_cliques(&self, sel: SpaceSel) -> Result<usize, String> {
        Ok(self.state(sel)?.cached.num_cliques())
    }

    /// The full resident κ vector of a space.
    pub fn kappa_vector(&self, sel: SpaceSel) -> Result<&[u32], String> {
        Ok(&self.state(sel)?.kappa)
    }

    /// The vertices of r-clique `id`.
    pub fn clique_vertices(&self, sel: SpaceSel, id: usize) -> Result<Vec<VertexId>, String> {
        let st = self.state(sel)?;
        if id >= st.cached.num_cliques() {
            return Err(format!("clique id {id} out of range"));
        }
        Ok(st.cached.clique_vertices(id).to_vec())
    }

    /// Resolves an r-clique by its vertex set (vertex for core, endpoint
    /// pair for truss, triangle for (3,4)). Truss and (3,4) lookups go
    /// straight to the resident substrate — no identity index to build or
    /// invalidate.
    pub fn resolve(&self, sel: SpaceSel, vertices: &[VertexId]) -> Result<usize, String> {
        let expect_r = sel.rs().0 as usize;
        if vertices.len() != expect_r {
            return Err(format!(
                "space {:?} addresses {expect_r}-cliques, got {} vertices",
                sel.name(),
                vertices.len()
            ));
        }
        match sel {
            SpaceSel::Core => {
                let v = vertices[0] as usize;
                if v < self.state(sel)?.cached.num_cliques() {
                    Ok(v)
                } else {
                    Err(format!("vertex {v} out of range"))
                }
            }
            SpaceSel::Truss => {
                self.state(sel)?;
                self.graph
                    .edge_id(vertices[0], vertices[1])
                    .map(|e| e as usize)
                    .ok_or_else(|| format!("edge ({}, {}) not in graph", vertices[0], vertices[1]))
            }
            SpaceSel::Nucleus34 => {
                self.state(sel)?;
                let mut sorted = vertices.to_vec();
                sorted.sort_unstable();
                let tl =
                    self.triangles.as_ref().expect("triangle substrate resident with (3,4) space");
                tl.triangle_id(&self.graph, sorted[0], sorted[1], sorted[2])
                    .map(|t| t as usize)
                    .ok_or_else(|| format!("triangle {sorted:?} not in graph"))
            }
        }
    }

    /// Budgeted local estimate with the Theorem-1 bound interval.
    pub fn estimate(
        &self,
        sel: SpaceSel,
        id: usize,
        opts: &QueryOptions,
    ) -> Result<QueryEstimate, String> {
        let st = self.state(sel)?;
        if id >= st.cached.num_cliques() {
            return Err(format!("clique id {id} out of range"));
        }
        Ok(local_estimate_opts(st.cached.as_ref(), id, opts))
    }

    /// The resident hierarchy forest of a space, building it if absent.
    /// The crash-recovery harness uses this to compare a recovered
    /// engine's forests against an uninterrupted reference.
    pub fn hierarchy_of(&self, sel: SpaceSel) -> Result<&Hierarchy, String> {
        let st = self.state(sel)?;
        Ok(&st.ensure_hierarchy().forest)
    }

    /// Whether the space's hierarchy index is already materialized in
    /// this epoch. Exact region answers are a tree walk when it is; when
    /// it is not, the first region query pays the full build — the cost
    /// the brownout controller avoids under load.
    pub fn hierarchy_resident(&self, sel: SpaceSel) -> Result<bool, String> {
        Ok(self.state(sel)?.hierarchy.get().is_some())
    }

    /// The maximal k-(r,s) nuclei at threshold `k`, largest first.
    pub fn nuclei_at(&self, sel: SpaceSel, k: u32) -> Result<Vec<NucleusSummary>, String> {
        self.nuclei_at_within(sel, k, None)
    }

    /// [`EngineView::nuclei_at`] under an optional wall-clock deadline:
    /// the request fails (instead of blocking the daemon) when the
    /// deadline passes before or during hierarchy materialization.
    pub fn nuclei_at_within(
        &self,
        sel: SpaceSel,
        k: u32,
        deadline: Option<Instant>,
    ) -> Result<Vec<NucleusSummary>, String> {
        self.nuclei_at_under(sel, k, &CancelToken::with_deadline(deadline))
    }

    /// [`EngineView::nuclei_at`] under a full cancellation token: beyond
    /// the deadline, a raised flag (client disconnect, load shed) aborts
    /// the hierarchy build mid-materialization at its chunk boundaries.
    pub fn nuclei_at_under(
        &self,
        sel: SpaceSel,
        k: u32,
        cancel: &CancelToken,
    ) -> Result<Vec<NucleusSummary>, String> {
        if cancel.is_armed() {
            cancel.check("before hierarchy lookup")?;
        }
        let st = self.state(sel)?;
        if st.cached.num_cliques() == 0 {
            // An empty space has an empty forest; answer without
            // materializing (and keeping resident) a trivial index.
            return Ok(Vec::new());
        }
        let hi = st.ensure_hierarchy_under(cancel)?;
        if cancel.is_armed() {
            cancel.check("after hierarchy materialization")?;
        }
        let mut out: Vec<NucleusSummary> = hi
            .forest
            .nuclei_at(k)
            .into_iter()
            .map(|node| NucleusSummary { node, k, size: hi.forest.nodes[node as usize].size })
            .collect();
        out.sort_by_key(|n| std::cmp::Reverse(n.size));
        Ok(out)
    }

    /// The densest region containing r-clique `id`: the maximal nucleus in
    /// which it first participates (its own node in the hierarchy).
    pub fn region_of(&self, sel: SpaceSel, id: usize) -> Result<RegionReport, String> {
        self.region_of_within(sel, id, None)
    }

    /// [`EngineView::region_of`] under an optional wall-clock deadline.
    pub fn region_of_within(
        &self,
        sel: SpaceSel,
        id: usize,
        deadline: Option<Instant>,
    ) -> Result<RegionReport, String> {
        self.region_of_under(sel, id, &CancelToken::with_deadline(deadline))
    }

    /// [`EngineView::region_of`] under a full cancellation token.
    pub fn region_of_under(
        &self,
        sel: SpaceSel,
        id: usize,
        cancel: &CancelToken,
    ) -> Result<RegionReport, String> {
        if cancel.is_armed() {
            cancel.check("before hierarchy lookup")?;
        }
        let st = self.state(sel)?;
        if st.cached.num_cliques() == 0 {
            // No cliques to address: stable error, no trivial index built.
            return Err(format!("clique id {id} out of range"));
        }
        if id >= st.cached.num_cliques() {
            return Err(format!("clique id {id} out of range"));
        }
        let hi = st.ensure_hierarchy_under(cancel)?;
        if cancel.is_armed() {
            cancel.check("after hierarchy materialization")?;
        }
        let node = hi.node_of[id];
        if node == u32::MAX {
            return Err(format!("clique {id} participates in no s-clique (no nucleus)"));
        }
        Ok(self.materialize_node(st, node))
    }

    /// A materialized hierarchy node by id (used by the `nuclei` op's
    /// drill-down).
    pub fn node_region(&self, sel: SpaceSel, node: u32) -> Result<RegionReport, String> {
        self.node_region_within(sel, node, None)
    }

    /// [`EngineView::node_region`] under an optional wall-clock deadline.
    pub fn node_region_within(
        &self,
        sel: SpaceSel,
        node: u32,
        deadline: Option<Instant>,
    ) -> Result<RegionReport, String> {
        self.node_region_under(sel, node, &CancelToken::with_deadline(deadline))
    }

    /// [`EngineView::node_region`] under a full cancellation token.
    pub fn node_region_under(
        &self,
        sel: SpaceSel,
        node: u32,
        cancel: &CancelToken,
    ) -> Result<RegionReport, String> {
        if cancel.is_armed() {
            cancel.check("before hierarchy lookup")?;
        }
        let st = self.state(sel)?;
        if st.cached.num_cliques() == 0 {
            return Err(format!("hierarchy node {node} out of range"));
        }
        let hi = st.ensure_hierarchy_under(cancel)?;
        if cancel.is_armed() {
            cancel.check("after hierarchy materialization")?;
        }
        if node as usize >= hi.forest.len() {
            return Err(format!("hierarchy node {node} out of range"));
        }
        Ok(self.materialize_node(st, node))
    }

    fn materialize_node(&self, st: &SpaceView, node: u32) -> RegionReport {
        let hi = st.hierarchy.get().expect("materialize_node follows ensure_hierarchy");
        let vertices = hi.forest.member_vertices(node, st.cached.as_ref());
        let density = hi.forest.node_density(node, st.cached.as_ref(), &self.graph);
        RegionReport {
            node,
            k: hi.forest.nodes[node as usize].k,
            size: hi.forest.nodes[node as usize].size,
            vertices,
            density,
        }
    }

    /// Serializes this epoch (building any missing hierarchy so the
    /// snapshot restores with the full serving index — forest plus its
    /// clique → node lookup — resident, no reconstruction on restart).
    ///
    /// Zero-copy: the snapshot **shares** the view's graph, κ vectors and
    /// forests by `Arc` instead of cloning them — a checkpoint of a
    /// multi-gigabyte engine allocates a handful of pointers.
    pub fn to_snapshot(&self) -> Snapshot {
        let spaces = self
            .spaces
            .iter()
            .map(|st| {
                let hi = st.ensure_hierarchy();
                SpaceSnapshot {
                    rs: st.sel.rs(),
                    kappa: Arc::clone(&st.kappa),
                    hierarchy: Some(Arc::clone(&hi.forest)),
                    node_of: Some(Arc::clone(&hi.node_of)),
                }
            })
            .collect();
        Snapshot { graph: Arc::clone(&self.graph), spaces }
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            vertices: self.graph.num_vertices(),
            edges: self.graph.num_edges(),
            updates_applied: self.updates_applied,
            spaces: self
                .spaces
                .iter()
                .map(|st| SpaceStats {
                    space: st.sel.name().to_string(),
                    cliques: st.cached.num_cliques(),
                    max_kappa: st.kappa.iter().copied().max().unwrap_or(0),
                    hierarchy_resident: st.hierarchy.get().is_some(),
                    build_us: st.build_us,
                    peel_us: st.peel_us,
                })
                .collect(),
        }
    }

    /// Publishes point-in-time graph size gauges to the global registry.
    fn publish_gauges(&self) {
        let reg = Registry::global();
        reg.gauge("graph_vertices").set(self.graph.num_vertices() as u64);
        reg.gauge("graph_edges").set(self.graph.num_edges() as u64);
    }
}

/// The long-lived query-serving engine: the single writer lane's handle
/// on the current [`EngineView`] plus the refresh configuration.
///
/// Reads delegate to the current view (and are `&self`); [`Engine::update`]
/// builds an entirely new view and swaps the engine's `Arc` — callers
/// holding an `Arc<EngineView>` from [`Engine::view`] keep reading the
/// epoch they hold.
///
/// # Examples
///
/// ```
/// use hdsd_service::{Engine, EngineConfig, SpaceSel};
///
/// // A triangle: every vertex sits in a 2-core.
/// let g = hdsd_graph::graph_from_edges([(0, 1), (0, 2), (1, 2)]);
/// let mut engine = Engine::new(g, &EngineConfig::default());
/// assert_eq!(engine.kappa_of(SpaceSel::Core, 0), Ok(2));
///
/// // Updates build the next epoch; the old view is unchanged.
/// let old = engine.view();
/// engine.update(&[(0, 3), (1, 3), (2, 3)], &[]); // close the K4
/// assert_eq!(old.kappa_of(SpaceSel::Core, 0), Ok(2));
/// assert_eq!(engine.kappa_of(SpaceSel::Core, 0), Ok(3));
/// ```
pub struct Engine {
    view: Arc<EngineView>,
    local: LocalConfig,
}

impl Engine {
    /// Builds the engine with a full decomposition of every configured
    /// space. The triangle substrate is enumerated once and shared.
    pub fn new(graph: CsrGraph, cfg: &EngineConfig) -> Engine {
        let triangles = cfg
            .spaces
            .iter()
            .any(|s| s.needs_triangles())
            .then(|| Arc::new(TriangleList::build(&graph)));
        let spaces = cfg
            .spaces
            .iter()
            .map(|&sel| SpaceView::fresh(sel, &graph, triangles.as_deref()))
            .collect();
        let view = EngineView { graph: Arc::new(graph), triangles, spaces, updates_applied: 0 };
        view.publish_gauges();
        Engine { view: Arc::new(view), local: cfg.local }
    }

    /// The current view (epoch) as a shareable handle. The serving layer
    /// publishes this through an [`crate::epoch::EpochCell`] after every
    /// update; tests and benches read it directly.
    pub fn view(&self) -> Arc<EngineView> {
        Arc::clone(&self.view)
    }

    /// The current graph.
    pub fn graph(&self) -> &CsrGraph {
        self.view.graph()
    }

    /// Configured spaces.
    pub fn spaces(&self) -> Vec<SpaceSel> {
        self.view.spaces()
    }

    /// Exact κ of r-clique `id` (a resident-vector read).
    pub fn kappa_of(&self, sel: SpaceSel, id: usize) -> Result<u32, String> {
        self.view.kappa_of(sel, id)
    }

    /// Number of r-cliques in a space.
    pub fn num_cliques(&self, sel: SpaceSel) -> Result<usize, String> {
        self.view.num_cliques(sel)
    }

    /// The full resident κ vector of a space.
    pub fn kappa_vector(&self, sel: SpaceSel) -> Result<&[u32], String> {
        self.view.kappa_vector(sel)
    }

    /// The vertices of r-clique `id`.
    pub fn clique_vertices(&self, sel: SpaceSel, id: usize) -> Result<Vec<VertexId>, String> {
        self.view.clique_vertices(sel, id)
    }

    /// Resolves an r-clique by its vertex set. See [`EngineView::resolve`].
    pub fn resolve(&self, sel: SpaceSel, vertices: &[VertexId]) -> Result<usize, String> {
        self.view.resolve(sel, vertices)
    }

    /// Budgeted local estimate with the Theorem-1 bound interval.
    pub fn estimate(
        &self,
        sel: SpaceSel,
        id: usize,
        opts: &QueryOptions,
    ) -> Result<QueryEstimate, String> {
        self.view.estimate(sel, id, opts)
    }

    /// The resident hierarchy forest of a space, building it if absent.
    pub fn hierarchy_of(&self, sel: SpaceSel) -> Result<&Hierarchy, String> {
        self.view.hierarchy_of(sel)
    }

    /// The maximal k-(r,s) nuclei at threshold `k`, largest first.
    pub fn nuclei_at(&self, sel: SpaceSel, k: u32) -> Result<Vec<NucleusSummary>, String> {
        self.view.nuclei_at(sel, k)
    }

    /// [`Engine::nuclei_at`] under an optional wall-clock deadline.
    pub fn nuclei_at_within(
        &self,
        sel: SpaceSel,
        k: u32,
        deadline: Option<Instant>,
    ) -> Result<Vec<NucleusSummary>, String> {
        self.view.nuclei_at_within(sel, k, deadline)
    }

    /// The densest region containing r-clique `id`.
    pub fn region_of(&self, sel: SpaceSel, id: usize) -> Result<RegionReport, String> {
        self.view.region_of(sel, id)
    }

    /// [`Engine::region_of`] under an optional wall-clock deadline.
    pub fn region_of_within(
        &self,
        sel: SpaceSel,
        id: usize,
        deadline: Option<Instant>,
    ) -> Result<RegionReport, String> {
        self.view.region_of_within(sel, id, deadline)
    }

    /// A materialized hierarchy node by id.
    pub fn node_region(&self, sel: SpaceSel, node: u32) -> Result<RegionReport, String> {
        self.view.node_region(sel, node)
    }

    /// [`Engine::node_region`] under an optional wall-clock deadline.
    pub fn node_region_within(
        &self,
        sel: SpaceSel,
        node: u32,
        deadline: Option<Instant>,
    ) -> Result<RegionReport, String> {
        self.view.node_region_within(sel, node, deadline)
    }

    /// Applies an edge batch by building the **next epoch off to the
    /// side**: the CSR, the triangle substrate, and every resident space
    /// snapshot are spliced into fresh values, κ is refreshed via the
    /// candidate-lifted warm start with stale values carried positionally
    /// through the id remaps, and resident hierarchies are **repaired**
    /// ([`Hierarchy::repair`]) instead of invalidated. The current view is
    /// never touched — readers holding it keep answering bit-identically
    /// — and on return `self.view` is the new epoch, ready to publish.
    ///
    /// This is a deliberately read-optimized trade: forest maintenance
    /// (including the cold build the repair degrades to when nothing is
    /// preservable, `full_rebuild` — routine for the core space's shallow
    /// forest) is paid here, at update time, keeping every subsequent
    /// region query rebuild-free. Update-heavy workloads that never touch
    /// `region`/`nuclei` simply never make a hierarchy resident and pay
    /// none of it. Everything else scales with the perturbation; nothing
    /// outside the forests is rebuilt globally.
    ///
    /// A region query racing the update may fill the *old* epoch's
    /// hierarchy `OnceLock` after this writer checked it; the new epoch
    /// then simply starts without that forest resident and the next
    /// region query rebuilds it lazily — stale-read tolerance, never a
    /// torn forest.
    pub fn update(
        &mut self,
        insert: &[(VertexId, VertexId)],
        remove: &[(VertexId, VertexId)],
    ) -> UpdateReport {
        self.update_within(insert, remove, &CancelToken::none())
            .expect("an unarmed token never cancels")
    }

    /// [`Engine::update`] under a cancellation token, threaded into every
    /// space's warm κ refresh (the dominant cost). Because the next epoch
    /// is built entirely off to the side, a mid-update trip is trivially
    /// sound: the partial next view is dropped, `self.view` still points
    /// at the old epoch, and readers never observe anything in between.
    ///
    /// Durability note: callers that append to a WAL **before** applying
    /// must only pass tokens that cannot trip here (or re-apply on
    /// restart) — an update cancelled after its WAL append would replay on
    /// recovery. The protocol layer therefore checks deadlines before the
    /// WAL append and hands this method an unarmed token for durable ops.
    pub fn update_within(
        &mut self,
        insert: &[(VertexId, VertexId)],
        remove: &[(VertexId, VertexId)],
        cancel: &CancelToken,
    ) -> Result<UpdateReport, Cancelled> {
        if cancel.is_armed() {
            cancel.check("before update")?;
        }
        let start = Instant::now();
        let old = &self.view;
        let (new_graph, ed, td) = {
            span!("update.graph_delta");
            let (new_graph, ed) = apply_edge_batch(&old.graph, insert, remove);
            let td = old.triangles.as_deref().map(|tl| triangle_delta(tl, &new_graph, &ed));
            (new_graph, ed, td)
        };
        let graph_delta_us = start.elapsed().as_micros() as u64;
        let ins_ends = ed.inserted_endpoints(&new_graph);
        let rm_ends = ed.removed_endpoints(&old.graph);

        let mut reports = Vec::with_capacity(old.spaces.len());
        let mut new_spaces = Vec::with_capacity(old.spaces.len());
        let mut hierarchy_repair_us = 0u64;
        for st in old.spaces.iter() {
            let t_splice = Instant::now();
            let splice_span = hdsd_telemetry::trace::Span::enter("update.splice");
            let sd = match st.sel {
                SpaceSel::Core => core_space_delta(&new_graph, old.graph.num_vertices()),
                SpaceSel::Truss => truss_space_delta(
                    &st.cached,
                    old.triangles.as_deref().unwrap(),
                    &new_graph,
                    &ed,
                    td.as_ref().unwrap(),
                ),
                SpaceSel::Nucleus34 => nucleus34_space_delta(
                    &st.cached,
                    &old.graph,
                    old.triangles.as_deref().unwrap(),
                    &new_graph,
                    &ed,
                    td.as_ref().unwrap(),
                ),
            };
            drop(splice_span);
            let splice_us = t_splice.elapsed().as_micros() as u64;
            let t_refresh = Instant::now();
            let stale_of: Vec<Option<u32>> = sd
                .new_to_old
                .iter()
                .map(|&o| if o == NO_ID { None } else { Some(st.kappa[o as usize]) })
                .collect();
            let out = {
                span!("update.refresh");
                refresh_resume_of_within(
                    &stale_of,
                    &sd.cached,
                    &ins_ends,
                    &rm_ends,
                    ed.inserted(),
                    &self.local,
                    cancel,
                )?
            };
            let refresh_us = t_refresh.elapsed().as_micros() as u64;
            let old_num_cliques = st.cached.num_cliques();
            // The next epoch inherits a repaired forest iff this epoch has
            // one resident at this instant (see the race note above).
            let mut next_hierarchy = None;
            let hierarchy_repair = st.hierarchy.get().map(|hi| {
                let t_repair = Instant::now();
                span!("update.repair");
                let dirty = out.repair_dirty_seed(&stale_of);
                let (forest, stats) = hi.forest.repair(
                    &sd.cached,
                    &out.result.tau,
                    &sd.new_to_old,
                    old_num_cliques,
                    &dirty,
                );
                next_hierarchy =
                    Some(HierarchyIndex::from_forest(Arc::new(forest), sd.cached.num_cliques()));
                let repair_us = t_repair.elapsed().as_micros() as u64;
                hierarchy_repair_us += repair_us;
                HierarchyRepairReport {
                    repair_us,
                    preserved_subtrees: stats.preserved_subtrees,
                    preserved_nodes: stats.preserved_nodes,
                    rebuilt_nodes: stats.rebuilt_nodes,
                    dirty_cliques: stats.dirty_cliques,
                    scanned_scliques: stats.scanned_scliques,
                    full_rebuild: stats.full_rebuild,
                }
            });
            // Flow the scheduler/refresh counters (previously dropped with
            // the ConvergenceResult) into the registry, labeled by space.
            let reg = Registry::global();
            let lbl = [("space", st.sel.name())];
            reg.counter(&labeled("refresh_sweeps_total", &lbl)).add(out.result.sweeps as u64);
            reg.counter(&labeled("refresh_processed_total", &lbl))
                .add(out.result.total_processed());
            reg.counter(&labeled("refresh_skipped_total", &lbl))
                .add(out.result.scheduler.items_skipped);
            reg.counter(&labeled("refresh_awake_total", &lbl)).add(out.awake as u64);
            reg.counter(&labeled("refresh_lifted_total", &lbl)).add(out.lifted as u64);
            reg.histogram(&labeled("update_splice_micros", &lbl)).record(splice_us);
            reg.histogram(&labeled("update_refresh_micros", &lbl)).record(refresh_us);
            if let Some(hr) = &hierarchy_repair {
                reg.histogram(&labeled("hierarchy_repair_micros", &lbl)).record(hr.repair_us);
                reg.counter(&labeled("repair_preserved_nodes_total", &lbl))
                    .add(hr.preserved_nodes as u64);
                reg.counter(&labeled("repair_rebuilt_nodes_total", &lbl))
                    .add(hr.rebuilt_nodes as u64);
                reg.counter(&labeled("repair_full_rebuilds_total", &lbl))
                    .add(hr.full_rebuild as u64);
            }
            reports.push(SpaceRefresh {
                space: st.sel.name(),
                sweeps: out.result.sweeps,
                processed: out.result.total_processed(),
                awake: out.awake,
                lifted: out.lifted,
                splice_us,
                refresh_us,
                hierarchy_repair,
            });
            let hierarchy = OnceLock::new();
            if let Some(hi) = next_hierarchy {
                let _ = hierarchy.set(hi);
            }
            new_spaces.push(SpaceView {
                sel: st.sel,
                cached: Arc::new(sd.cached),
                kappa: Arc::new(out.result.tau),
                hierarchy,
                build_us: st.build_us,
                peel_us: st.peel_us,
            });
        }
        let triangles = match td {
            Some(td) => Some(Arc::new(td.list)),
            None => old.triangles.clone(),
        };
        let next = EngineView {
            graph: Arc::new(new_graph),
            triangles,
            spaces: new_spaces,
            updates_applied: old.updates_applied + 1,
        };
        let wall_us = start.elapsed().as_micros() as u64;
        let reg = Registry::global();
        reg.counter("updates_applied_total").inc();
        reg.histogram("update_wall_micros").record(wall_us);
        reg.histogram("update_graph_delta_micros").record(graph_delta_us);
        next.publish_gauges();
        self.view = Arc::new(next);
        Ok(UpdateReport {
            inserted: ed.inserted(),
            removed: ed.removed(),
            graph_delta_us,
            spaces: reports,
            hierarchy_repair_us,
            wall_us,
        })
    }

    /// Serializes the current epoch zero-copy. See
    /// [`EngineView::to_snapshot`].
    pub fn to_snapshot(&self) -> Snapshot {
        self.view.to_snapshot()
    }

    /// Restores an engine from a snapshot: spaces are re-materialized from
    /// the graph (cheap relative to decomposing), κ and hierarchies are
    /// adopted as-is — `Arc`-shared with the snapshot, not copied — after
    /// a length check.
    pub fn from_snapshot(snap: Snapshot, local: LocalConfig) -> Result<Engine, String> {
        let needs_tri = snap.spaces.iter().any(|sp| sp.rs != (1, 2));
        let triangles = needs_tri.then(|| Arc::new(TriangleList::build(&snap.graph)));
        let mut spaces = Vec::with_capacity(snap.spaces.len());
        for sp in snap.spaces {
            let sel = match sp.rs {
                (1, 2) => SpaceSel::Core,
                (2, 3) => SpaceSel::Truss,
                (3, 4) => SpaceSel::Nucleus34,
                other => return Err(format!("snapshot contains unknown space {other:?}")),
            };
            let t_build = Instant::now();
            let cached = sel.build_cached(&snap.graph, triangles.as_deref());
            let build_us = t_build.elapsed().as_micros() as u64;
            if cached.num_cliques() != sp.kappa.len() {
                return Err(format!(
                    "snapshot κ length {} does not match rebuilt {} space ({} cliques)",
                    sp.kappa.len(),
                    sel.name(),
                    cached.num_cliques()
                ));
            }
            // v3 snapshots carry the clique → node index (validated by the
            // reader); adopt it directly and fall back to the derivation
            // scan only when absent.
            let index = match (sp.hierarchy, sp.node_of) {
                (Some(forest), Some(node_of)) => Some(HierarchyIndex { forest, node_of }),
                (Some(forest), None) => Some(HierarchyIndex::from_forest(forest, sp.kappa.len())),
                (None, _) => None,
            };
            let hierarchy = OnceLock::new();
            if let Some(hi) = index {
                let _ = hierarchy.set(hi);
            }
            // κ is adopted, nothing is peeled: that is the point of
            // restoring from a snapshot, and peel_us = 0 records it.
            spaces.push(SpaceView {
                sel,
                cached: Arc::new(cached),
                kappa: sp.kappa,
                hierarchy,
                build_us,
                peel_us: 0,
            });
        }
        let view = EngineView { graph: snap.graph, triangles, spaces, updates_applied: 0 };
        view.publish_gauges();
        Ok(Engine { view: Arc::new(view), local })
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> EngineStats {
        self.view.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsd_graph::graph_from_edges;

    fn demo_graph() -> CsrGraph {
        // Two K4s sharing the edge (2,3), plus a tail 5-6.
        graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (2, 4),
            (2, 5),
            (3, 4),
            (3, 5),
            (4, 5),
            (5, 6),
        ])
    }

    fn full_config() -> EngineConfig {
        EngineConfig {
            spaces: vec![SpaceSel::Core, SpaceSel::Truss, SpaceSel::Nucleus34],
            local: LocalConfig::sequential(),
        }
    }

    #[test]
    fn lookups_match_peeling_across_spaces() {
        let g = hdsd_datasets::holme_kim(120, 4, 0.5, 3);
        let engine = Engine::new(g.clone(), &full_config());
        assert_eq!(engine.kappa_of(SpaceSel::Core, 5).unwrap(), peel(&CoreSpace::new(&g)).kappa[5]);
        let kt = peel(&TrussSpace::precomputed(&g)).kappa;
        for e in [0usize, 17, 80] {
            assert_eq!(engine.kappa_of(SpaceSel::Truss, e).unwrap(), kt[e]);
        }
        // Vertex-addressed resolution agrees with id-addressed lookups.
        let (u, v) = g.edges()[17];
        let id = engine.resolve(SpaceSel::Truss, &[u, v]).unwrap();
        assert_eq!(id, 17);
        assert!(engine.kappa_of(SpaceSel::Truss, 1 << 20).is_err());
        assert!(engine.resolve(SpaceSel::Truss, &[0]).is_err());
    }

    #[test]
    fn estimates_bracket_exact_kappa() {
        let g = hdsd_datasets::holme_kim(150, 5, 0.5, 11);
        let engine = Engine::new(g.clone(), &EngineConfig::default());
        let exact = peel(&CoreSpace::new(&g)).kappa;
        for q in [0usize, 40, 90] {
            let est = engine
                .estimate(
                    SpaceSel::Core,
                    q,
                    &QueryOptions {
                        iterations: 3,
                        budget: Some(500),
                        lower_bound: true,
                        deadline: None,
                    },
                )
                .unwrap();
            assert!(est.lower <= exact[q] && exact[q] <= est.estimate, "vertex {q}");
        }
    }

    #[test]
    fn region_and_nuclei_come_from_the_resident_hierarchy() {
        let engine = Engine::new(demo_graph(), &full_config());
        // Vertex 6 has κ=1; its densest region is the whole 1-core.
        let r = engine.region_of(SpaceSel::Core, 6).unwrap();
        assert_eq!(r.k, 1);
        assert_eq!(r.vertices.len(), 7);
        // Vertex 0's region: the 3-core spanning both K4s.
        let r0 = engine.region_of(SpaceSel::Core, 0).unwrap();
        assert_eq!(r0.k, 3);
        assert_eq!(r0.vertices, vec![0, 1, 2, 3, 4, 5]);
        // Truss: the K4s share edge (2,3), so triangle connectivity fuses
        // them into a single 2-truss spanning all six clique vertices.
        let e01 = engine.graph().edge_id(0, 1).unwrap() as usize;
        let rt = engine.region_of(SpaceSel::Truss, e01).unwrap();
        assert_eq!(rt.k, 2);
        assert_eq!(rt.vertices, vec![0, 1, 2, 3, 4, 5]);
        let nuclei = engine.nuclei_at(SpaceSel::Truss, 2).unwrap();
        assert_eq!(nuclei.len(), 1);
        let drill = engine.node_region(SpaceSel::Truss, nuclei[0].node).unwrap();
        assert_eq!(drill.vertices.len(), 6);
        // The (3,4) nuclei do NOT merge across the shared edge (the
        // paper's Figure-3 point): two 1-(3,4) nuclei.
        let n34 = engine.nuclei_at(SpaceSel::Nucleus34, 1).unwrap();
        assert_eq!(n34.len(), 2);
    }

    #[test]
    fn updates_keep_every_space_exact() {
        let g = hdsd_datasets::holme_kim(80, 4, 0.6, 17);
        let mut engine = Engine::new(g, &full_config());
        for round in 0..3u32 {
            let rm: Vec<(u32, u32)> = engine
                .graph()
                .edges()
                .iter()
                .copied()
                .skip(round as usize * 2)
                .step_by(37)
                .take(3)
                .collect();
            let ins: Vec<(u32, u32)> =
                (0..3).map(|i| (round * 5 + i, (round * 9 + 2 * i + 33) % 80)).collect();
            let report = engine.update(&ins, &rm);
            assert_eq!(report.spaces.len(), 3);
            let g2 = engine.graph().clone();
            assert_eq!(
                *engine.view().state(SpaceSel::Core).unwrap().kappa,
                peel(&CoreSpace::new(&g2)).kappa
            );
            assert_eq!(
                *engine.view().state(SpaceSel::Truss).unwrap().kappa,
                peel(&TrussSpace::precomputed(&g2)).kappa
            );
            assert_eq!(
                *engine.view().state(SpaceSel::Nucleus34).unwrap().kappa,
                peel(&Nucleus34Space::precomputed(&g2)).kappa
            );
            // Region queries still work against the refreshed state.
            let _ = engine.region_of(SpaceSel::Core, 0).unwrap();
        }
        assert_eq!(engine.stats().updates_applied, 3);
    }

    #[test]
    fn updates_repair_resident_hierarchies_instead_of_invalidating() {
        let g = hdsd_datasets::holme_kim(90, 4, 0.5, 41);
        let mut engine = Engine::new(g, &full_config());
        // Make every hierarchy resident, then update: the forests must
        // stay resident (repaired, not dropped) and match cold rebuilds.
        for sel in [SpaceSel::Core, SpaceSel::Truss, SpaceSel::Nucleus34] {
            let _ = engine.nuclei_at(sel, 1).unwrap();
        }
        for round in 0..3u32 {
            let rm: Vec<(u32, u32)> = engine
                .graph()
                .edges()
                .iter()
                .copied()
                .skip(round as usize)
                .step_by(31)
                .take(3)
                .collect();
            let ins: Vec<(u32, u32)> =
                (0..3).map(|i| (round * 7 + i, (round * 13 + 3 * i + 40) % 90)).collect();
            let report = engine.update(&ins, &rm);
            for s in &report.spaces {
                assert!(
                    s.hierarchy_repair.is_some(),
                    "{}: resident hierarchy was not repaired",
                    s.space
                );
            }
            for sel in [SpaceSel::Core, SpaceSel::Truss, SpaceSel::Nucleus34] {
                let view = engine.view();
                let st = view.state(sel).unwrap();
                let hi = st.hierarchy.get().expect("hierarchy must stay resident");
                hdsd_nucleus::assert_forest_eq(
                    &hi.forest,
                    &build_hierarchy(st.cached.as_ref(), &st.kappa),
                );
                // The inverted index matches the repaired forest.
                assert_eq!(*hi.node_of, hi.forest.clique_to_node(st.cached.num_cliques()));
            }
        }
        assert!(engine.stats().spaces.iter().all(|s| s.hierarchy_resident));
    }

    #[test]
    fn updates_skip_repair_when_no_hierarchy_is_resident() {
        let g = hdsd_datasets::holme_kim(60, 4, 0.5, 8);
        let mut engine = Engine::new(g, &full_config());
        let report = engine.update(&[(0, 30)], &[]);
        assert_eq!(report.hierarchy_repair_us, 0);
        assert!(report.spaces.iter().all(|s| s.hierarchy_repair.is_none()));
        // Lazily built afterwards, the hierarchy serves the updated graph.
        let r = engine.region_of(SpaceSel::Core, 0).unwrap();
        assert!(r.k >= 1);
    }

    #[test]
    fn empty_graph_queries_return_stable_responses() {
        let g = hdsd_graph::graph_from_edges([]);
        let engine = Engine::new(g, &full_config());
        for sel in [SpaceSel::Core, SpaceSel::Truss, SpaceSel::Nucleus34] {
            assert!(engine.nuclei_at(sel, 1).unwrap().is_empty());
            assert!(engine.region_of(sel, 0).unwrap_err().contains("out of range"));
            assert!(engine.node_region(sel, 0).unwrap_err().contains("out of range"));
        }
        // The early returns never materialized a trivial index.
        assert!(engine.stats().spaces.iter().all(|s| !s.hierarchy_resident));
    }

    #[test]
    fn snapshot_restore_adopts_the_persisted_clique_index() {
        let g = hdsd_datasets::holme_kim(70, 4, 0.5, 51);
        let engine = Engine::new(g, &full_config());
        let _ = engine.region_of(SpaceSel::Truss, 0).unwrap();
        let snap = engine.to_snapshot();
        for sp in &snap.spaces {
            let node_of = sp.node_of.as_deref().expect("v3 snapshots carry the index");
            assert_eq!(node_of, &sp.hierarchy.as_ref().unwrap().clique_to_node(sp.kappa.len()));
        }
        let back = Engine::from_snapshot(snap, LocalConfig::sequential()).unwrap();
        let (ev, bv) = (engine.view(), back.view());
        for sel in [SpaceSel::Core, SpaceSel::Truss, SpaceSel::Nucleus34] {
            let (a, b) = (ev.state(sel).unwrap(), bv.state(sel).unwrap());
            assert_eq!(
                a.hierarchy.get().unwrap().node_of,
                b.hierarchy.get().unwrap().node_of,
                "{}",
                sel.name()
            );
        }
    }

    #[test]
    fn stats_split_cold_start_into_build_and_peel() {
        // Large enough that every space's build and peel cross the 1 µs
        // timer resolution.
        let g = hdsd_datasets::holme_kim(1500, 6, 0.5, 29);
        let engine = Engine::new(g, &full_config());
        let fresh = engine.stats();
        assert!(fresh.spaces.iter().all(|s| s.build_us > 0), "{fresh:?}");
        assert!(fresh.spaces.iter().all(|s| s.peel_us > 0), "{fresh:?}");
        // A restored engine re-materializes spaces (build_us measured) but
        // adopts κ — the whole point of snapshots — so peel_us is 0.
        let snap = engine.to_snapshot();
        let back = Engine::from_snapshot(snap, LocalConfig::sequential()).unwrap();
        let restored = back.stats();
        assert!(restored.spaces.iter().all(|s| s.build_us > 0), "{restored:?}");
        assert!(restored.spaces.iter().all(|s| s.peel_us == 0), "{restored:?}");
    }

    #[test]
    fn snapshot_restore_preserves_answers() {
        let g = hdsd_datasets::holme_kim(100, 4, 0.5, 23);
        let mut engine = Engine::new(g, &full_config());
        engine.update(&[(0, 50), (1, 51)], &[]);
        let _ = engine.region_of(SpaceSel::Core, 0).unwrap();
        let snap = engine.to_snapshot();
        let mut back = Engine::from_snapshot(snap, LocalConfig::sequential()).unwrap();
        assert_eq!(back.graph().edges(), engine.graph().edges());
        for sel in [SpaceSel::Core, SpaceSel::Truss, SpaceSel::Nucleus34] {
            assert_eq!(
                back.view().state(sel).unwrap().kappa,
                engine.view().state(sel).unwrap().kappa,
                "{}",
                sel.name()
            );
            // Hierarchies were serialized resident.
            assert!(back.view().state(sel).unwrap().hierarchy.get().is_some());
        }
        // And the restored engine keeps serving + updating.
        let r = back.region_of(SpaceSel::Core, 0).unwrap();
        assert_eq!(r.vertices, engine.region_of(SpaceSel::Core, 0).unwrap().vertices);
        back.update(&[(2, 60)], &[]);
        let g2 = back.graph().clone();
        assert_eq!(
            *back.view().state(SpaceSel::Core).unwrap().kappa,
            peel(&CoreSpace::new(&g2)).kappa
        );
    }

    #[test]
    fn old_views_survive_updates_bit_identically() {
        let g = hdsd_datasets::holme_kim(80, 4, 0.5, 13);
        let mut engine = Engine::new(g, &full_config());
        let old = engine.view();
        let old_kappa: Vec<u32> = old.kappa_vector(SpaceSel::Truss).unwrap().to_vec();
        let old_edges = old.graph().num_edges();
        engine.update(&[(0, 40), (1, 41)], &[]);
        engine.update(&[(2, 42)], &[]);
        // The pinned view still answers from its own epoch.
        assert_eq!(old.kappa_vector(SpaceSel::Truss).unwrap(), &old_kappa[..]);
        assert_eq!(old.graph().num_edges(), old_edges);
        assert_eq!(old.stats().updates_applied, 0);
        assert_eq!(engine.stats().updates_applied, 2);
        assert_ne!(engine.graph().num_edges(), old_edges);
    }
}
