//! The long-lived serving engine: one graph, per-space resident
//! decomposition state, and the request operations of the protocol.
//!
//! The engine answers the paper's §1/§6 query-driven scenario without
//! global recomputation:
//!
//! * **exact lookups** read the resident κ vectors (O(1));
//! * **budgeted estimates** run [`local_estimate_opts`] on an owned
//!   [`CachedSpace`], returning the Theorem-1 interval
//!   `lower ≤ κ(q) ≤ estimate` plus exploration telemetry;
//! * **region queries** resolve against a lazily-built resident
//!   [`Hierarchy`] (Sarıyüce–Pınar's "keep the nucleus forest as the
//!   index" idea);
//! * **edge batches** splice the CSR, the shared triangle substrate and
//!   every space snapshot ([`hdsd_graph::delta`],
//!   [`hdsd_nucleus::delta`]), then refresh κ with the warm-started,
//!   candidate-lifted resume ([`refresh_resume_of`]) — nothing is rebuilt
//!   or re-enumerated globally;
//! * **snapshots** serialize graph + κ + hierarchies for fast restart.

use std::time::Instant;

use hdsd_graph::{apply_edge_batch, triangle_delta, CsrGraph, TriangleList, VertexId, NO_ID};
use hdsd_nucleus::hierarchy::NucleusDensity;
use hdsd_nucleus::{
    build_hierarchy, core_space_delta, local_estimate_opts, nucleus34_space_delta, peel,
    refresh_resume_of, truss_space_delta, CachedSpace, CliqueSpace, CoreSpace, Hierarchy,
    LocalConfig, Nucleus34Space, QueryEstimate, QueryOptions, Snapshot, SpaceSnapshot, TrussSpace,
};
use hdsd_telemetry::{labeled, span, Registry};

/// Which decomposition a request addresses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpaceSel {
    /// (1,2): k-core over vertices.
    Core,
    /// (2,3): k-truss over edges.
    Truss,
    /// (3,4): nucleus over triangles.
    Nucleus34,
}

impl SpaceSel {
    /// Parses the protocol's space names.
    pub fn parse(name: &str) -> Option<SpaceSel> {
        match name {
            "core" | "12" => Some(SpaceSel::Core),
            "truss" | "23" => Some(SpaceSel::Truss),
            "nucleus34" | "34" => Some(SpaceSel::Nucleus34),
            _ => None,
        }
    }

    /// Protocol name.
    pub fn name(self) -> &'static str {
        match self {
            SpaceSel::Core => "core",
            SpaceSel::Truss => "truss",
            SpaceSel::Nucleus34 => "nucleus34",
        }
    }

    /// The `(r, s)` pair.
    pub fn rs(self) -> (u32, u32) {
        match self {
            SpaceSel::Core => (1, 2),
            SpaceSel::Truss => (2, 3),
            SpaceSel::Nucleus34 => (3, 4),
        }
    }

    /// Whether this space is built over the triangle substrate.
    fn needs_triangles(self) -> bool {
        !matches!(self, SpaceSel::Core)
    }

    fn build_cached(self, graph: &CsrGraph, triangles: Option<&TriangleList>) -> CachedSpace {
        match (self, triangles) {
            (SpaceSel::Core, _) => CachedSpace::build(&CoreSpace::new(graph)),
            (SpaceSel::Truss, Some(tl)) => {
                CachedSpace::build(&TrussSpace::with_triangles(graph, tl))
            }
            (SpaceSel::Truss, None) => CachedSpace::build(&TrussSpace::on_the_fly(graph)),
            (SpaceSel::Nucleus34, Some(tl)) => {
                CachedSpace::build(&Nucleus34Space::with_triangles(graph, tl))
            }
            (SpaceSel::Nucleus34, None) => CachedSpace::build(&Nucleus34Space::on_the_fly(graph)),
        }
    }
}

/// Engine construction options.
#[derive(Clone, Debug)]
pub struct EngineConfig {
    /// Decompositions to keep resident. The (3,4) space costs the most to
    /// build; enable it when the workload asks for it.
    pub spaces: Vec<SpaceSel>,
    /// Sweep configuration for refreshes.
    pub local: LocalConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            spaces: vec![SpaceSel::Core, SpaceSel::Truss],
            local: LocalConfig::sequential(),
        }
    }
}

/// Hierarchy plus the clique → node index used by region queries.
struct HierarchyIndex {
    forest: Hierarchy,
    /// For each r-clique, the node whose `own_cliques` contains it
    /// (`u32::MAX` for cliques in no nucleus).
    node_of: Vec<u32>,
}

impl HierarchyIndex {
    fn build(space: &CachedSpace, kappa: &[u32]) -> Self {
        Self::from_forest(build_hierarchy(space, kappa), space.num_cliques())
    }

    /// Wraps an existing forest (freshly built or repaired) with the
    /// clique → node inverted index.
    fn from_forest(forest: Hierarchy, num_cliques: usize) -> Self {
        let node_of = forest.clique_to_node(num_cliques);
        HierarchyIndex { forest, node_of }
    }
}

struct SpaceState {
    sel: SpaceSel,
    cached: CachedSpace,
    kappa: Vec<u32>,
    hierarchy: Option<HierarchyIndex>,
    /// Wall time of the cold space materialization (snapshot build) at
    /// startup; 0 when the state was adopted from a snapshot restore.
    build_us: u64,
    /// Wall time of the cold exact peel at startup; 0 on snapshot restore
    /// (κ is adopted, nothing is peeled).
    peel_us: u64,
}

impl SpaceState {
    fn fresh(sel: SpaceSel, graph: &CsrGraph, triangles: Option<&TriangleList>) -> SpaceState {
        let t_build = Instant::now();
        let cached = {
            span!("space.build");
            sel.build_cached(graph, triangles)
        };
        let build_us = t_build.elapsed().as_micros() as u64;
        // `peel` sees the snapshot's resident flat rows (`as_flat`) and
        // runs the monomorphized flat engine — the cold-start hot path.
        let t_peel = Instant::now();
        let pr = {
            span!("space.peel");
            peel(&cached)
        };
        let peel_us = t_peel.elapsed().as_micros() as u64;
        // The peel's work counters used to be computed and dropped here;
        // flow them into the registry so a running daemon exposes them.
        let reg = Registry::global();
        let lbl = [("space", sel.name())];
        reg.counter(&labeled("peel_containers_scanned_total", &lbl))
            .add(pr.stats.containers_scanned);
        reg.counter(&labeled("peel_dead_containers_total", &lbl)).add(pr.stats.dead_containers);
        reg.counter(&labeled("peel_bucket_moves_total", &lbl)).add(pr.stats.bucket_moves);
        reg.histogram(&labeled("space_build_micros", &lbl)).record(build_us);
        reg.histogram(&labeled("space_peel_micros", &lbl)).record(peel_us);
        SpaceState { sel, cached, kappa: pr.kappa, hierarchy: None, build_us, peel_us }
    }

    fn ensure_hierarchy(&mut self) -> &HierarchyIndex {
        if self.hierarchy.is_none() {
            self.hierarchy = Some(HierarchyIndex::build(&self.cached, &self.kappa));
        }
        self.hierarchy.as_ref().unwrap()
    }
}

/// Summary of one nucleus (a hierarchy node).
#[derive(Clone, Debug)]
pub struct NucleusSummary {
    /// Node id in the resident hierarchy.
    pub node: u32,
    /// Threshold k of the nucleus.
    pub k: u32,
    /// Total r-cliques inside (own + descendants).
    pub size: usize,
}

/// A materialized dense region around a query clique.
#[derive(Clone, Debug)]
pub struct RegionReport {
    /// Hierarchy node id.
    pub node: u32,
    /// Threshold k (equals κ of the query clique).
    pub k: u32,
    /// r-cliques in the region.
    pub size: usize,
    /// The region's vertex set.
    pub vertices: Vec<VertexId>,
    /// Density summary of the induced subgraph.
    pub density: NucleusDensity,
}

/// Telemetry of one space's incremental hierarchy repair.
#[derive(Clone, Copy, Debug)]
pub struct HierarchyRepairReport {
    /// Wall time of the repair (detach + bounded union–find + graft).
    pub repair_us: u64,
    /// Maximal untouched subtrees grafted back without reconstruction.
    pub preserved_subtrees: usize,
    /// Old forest nodes reused verbatim.
    pub preserved_nodes: usize,
    /// Nodes rebuilt by the bounded union–find pass.
    pub rebuilt_nodes: usize,
    /// r-cliques in the dirty set after closure.
    pub dirty_cliques: usize,
    /// s-cliques re-enumerated (a cold rebuild scans all of them).
    pub scanned_scliques: usize,
    /// True when the repair bailed out to a cold rebuild (no preservable
    /// subtree — typical for the core space's broad shallow forest).
    pub full_rebuild: bool,
}

/// Telemetry of one space's warm refresh.
#[derive(Clone, Debug)]
pub struct SpaceRefresh {
    /// Space name.
    pub space: &'static str,
    /// Sweeps the resumed run needed (including certification).
    pub sweeps: usize,
    /// r-clique recomputations across the refresh.
    pub processed: u64,
    /// Cliques seeded awake (batch-perturbed).
    pub awake: usize,
    /// Surviving cliques lifted by the candidate traversal.
    pub lifted: usize,
    /// Wall time of the space snapshot splice (container-cache patch).
    pub splice_us: u64,
    /// Wall time of the warm κ refresh (candidate lift + resumed sweeps).
    pub refresh_us: u64,
    /// Incremental hierarchy repair telemetry, when a forest was resident
    /// (`None` when the space had no hierarchy built yet — nothing to
    /// repair, and nothing is invalidated either).
    pub hierarchy_repair: Option<HierarchyRepairReport>,
}

/// Result of applying one edge batch.
#[derive(Clone, Debug)]
pub struct UpdateReport {
    /// Edges actually inserted (after dedup).
    pub inserted: u32,
    /// Edges actually removed.
    pub removed: u32,
    /// Wall time of the shared substrate delta (CSR splice + triangle
    /// maintenance) before any space refresh.
    pub graph_delta_us: u64,
    /// Per-space refresh telemetry.
    pub spaces: Vec<SpaceRefresh>,
    /// Total wall time spent repairing resident hierarchies (all spaces);
    /// 0 when no forest was resident. Before PR 4 this cost was paid as a
    /// full rebuild by the next `region`/`nuclei` query instead.
    pub hierarchy_repair_us: u64,
    /// Wall time of the whole update (substrate delta + all refreshes).
    pub wall_us: u64,
}

/// Point-in-time statistics of one resident space.
#[derive(Clone, Debug)]
pub struct SpaceStats {
    /// Space name (`core` / `truss` / `nucleus34`).
    pub space: String,
    /// r-clique count.
    pub cliques: usize,
    /// Maximum κ.
    pub max_kappa: u32,
    /// Whether a hierarchy forest is resident.
    pub hierarchy_resident: bool,
    /// Cold-start snapshot materialization time (0 on snapshot restore).
    pub build_us: u64,
    /// Cold-start exact peel time (0 on snapshot restore — κ is adopted).
    pub peel_us: u64,
}

/// Point-in-time engine statistics.
#[derive(Clone, Debug)]
pub struct EngineStats {
    /// Vertices in the current graph.
    pub vertices: usize,
    /// Edges in the current graph.
    pub edges: usize,
    /// Edge batches applied since construction/restore.
    pub updates_applied: u64,
    /// Per-space statistics, including the cold-start cost split.
    pub spaces: Vec<SpaceStats>,
}

/// The long-lived query-serving engine.
pub struct Engine {
    graph: CsrGraph,
    /// Maintained triangle substrate, resident whenever a triangle-based
    /// space is configured. Shared by the truss and (3,4) states and
    /// spliced (not rebuilt) on every update.
    triangles: Option<TriangleList>,
    states: Vec<SpaceState>,
    local: LocalConfig,
    updates_applied: u64,
}

impl Engine {
    /// Builds the engine with a full decomposition of every configured
    /// space. The triangle substrate is enumerated once and shared.
    pub fn new(graph: CsrGraph, cfg: &EngineConfig) -> Engine {
        let triangles =
            cfg.spaces.iter().any(|s| s.needs_triangles()).then(|| TriangleList::build(&graph));
        let states = cfg
            .spaces
            .iter()
            .map(|&sel| SpaceState::fresh(sel, &graph, triangles.as_ref()))
            .collect();
        let engine = Engine { graph, triangles, states, local: cfg.local, updates_applied: 0 };
        engine.publish_gauges();
        engine
    }

    /// The current graph.
    pub fn graph(&self) -> &CsrGraph {
        &self.graph
    }

    /// Configured spaces.
    pub fn spaces(&self) -> Vec<SpaceSel> {
        self.states.iter().map(|s| s.sel).collect()
    }

    fn state(&self, sel: SpaceSel) -> Result<&SpaceState, String> {
        self.states
            .iter()
            .find(|s| s.sel == sel)
            .ok_or_else(|| format!("space {:?} not resident (enable it at startup)", sel.name()))
    }

    fn state_mut(&mut self, sel: SpaceSel) -> Result<&mut SpaceState, String> {
        self.states
            .iter_mut()
            .find(|s| s.sel == sel)
            .ok_or_else(|| format!("space {:?} not resident (enable it at startup)", sel.name()))
    }

    /// Exact κ of r-clique `id` (a resident-vector read).
    pub fn kappa_of(&self, sel: SpaceSel, id: usize) -> Result<u32, String> {
        let st = self.state(sel)?;
        st.kappa.get(id).copied().ok_or_else(|| format!("clique id {id} out of range"))
    }

    /// Number of r-cliques in a space.
    pub fn num_cliques(&self, sel: SpaceSel) -> Result<usize, String> {
        Ok(self.state(sel)?.cached.num_cliques())
    }

    /// The full resident κ vector of a space.
    pub fn kappa_vector(&self, sel: SpaceSel) -> Result<&[u32], String> {
        Ok(&self.state(sel)?.kappa)
    }

    /// The vertices of r-clique `id`.
    pub fn clique_vertices(&self, sel: SpaceSel, id: usize) -> Result<Vec<VertexId>, String> {
        let st = self.state(sel)?;
        if id >= st.cached.num_cliques() {
            return Err(format!("clique id {id} out of range"));
        }
        Ok(st.cached.clique_vertices(id).to_vec())
    }

    /// Resolves an r-clique by its vertex set (vertex for core, endpoint
    /// pair for truss, triangle for (3,4)). Truss and (3,4) lookups go
    /// straight to the resident substrate — no identity index to build or
    /// invalidate.
    pub fn resolve(&self, sel: SpaceSel, vertices: &[VertexId]) -> Result<usize, String> {
        let expect_r = sel.rs().0 as usize;
        if vertices.len() != expect_r {
            return Err(format!(
                "space {:?} addresses {expect_r}-cliques, got {} vertices",
                sel.name(),
                vertices.len()
            ));
        }
        match sel {
            SpaceSel::Core => {
                let v = vertices[0] as usize;
                if v < self.state(sel)?.cached.num_cliques() {
                    Ok(v)
                } else {
                    Err(format!("vertex {v} out of range"))
                }
            }
            SpaceSel::Truss => {
                self.state(sel)?;
                self.graph
                    .edge_id(vertices[0], vertices[1])
                    .map(|e| e as usize)
                    .ok_or_else(|| format!("edge ({}, {}) not in graph", vertices[0], vertices[1]))
            }
            SpaceSel::Nucleus34 => {
                self.state(sel)?;
                let mut sorted = vertices.to_vec();
                sorted.sort_unstable();
                let tl =
                    self.triangles.as_ref().expect("triangle substrate resident with (3,4) space");
                tl.triangle_id(&self.graph, sorted[0], sorted[1], sorted[2])
                    .map(|t| t as usize)
                    .ok_or_else(|| format!("triangle {sorted:?} not in graph"))
            }
        }
    }

    /// Budgeted local estimate with the Theorem-1 bound interval.
    pub fn estimate(
        &self,
        sel: SpaceSel,
        id: usize,
        opts: &QueryOptions,
    ) -> Result<QueryEstimate, String> {
        let st = self.state(sel)?;
        if id >= st.cached.num_cliques() {
            return Err(format!("clique id {id} out of range"));
        }
        Ok(local_estimate_opts(&st.cached, id, opts))
    }

    /// Fails when `deadline` (if any) has already passed. Budgeted ops
    /// call this around their expensive stages (hierarchy materialization,
    /// region extraction) so a request-scoped `deadline_ms` bounds them
    /// the same way `budget` bounds estimates.
    fn check_deadline(deadline: Option<Instant>, stage: &str) -> Result<(), String> {
        match deadline {
            Some(d) if Instant::now() >= d => Err(format!("deadline exceeded ({stage})")),
            _ => Ok(()),
        }
    }

    /// The resident hierarchy forest of a space, building it if absent.
    /// The crash-recovery harness uses this to compare a recovered
    /// engine's forests against an uninterrupted reference.
    pub fn hierarchy_of(&mut self, sel: SpaceSel) -> Result<&Hierarchy, String> {
        let st = self.state_mut(sel)?;
        Ok(&st.ensure_hierarchy().forest)
    }

    /// The maximal k-(r,s) nuclei at threshold `k`, largest first.
    pub fn nuclei_at(&mut self, sel: SpaceSel, k: u32) -> Result<Vec<NucleusSummary>, String> {
        self.nuclei_at_within(sel, k, None)
    }

    /// [`Engine::nuclei_at`] under an optional wall-clock deadline: the
    /// request fails (instead of blocking the daemon) when the deadline
    /// passes before or during hierarchy materialization.
    pub fn nuclei_at_within(
        &mut self,
        sel: SpaceSel,
        k: u32,
        deadline: Option<Instant>,
    ) -> Result<Vec<NucleusSummary>, String> {
        Self::check_deadline(deadline, "before hierarchy lookup")?;
        let st = self.state_mut(sel)?;
        if st.cached.num_cliques() == 0 {
            // An empty space has an empty forest; answer without
            // materializing (and keeping resident) a trivial index.
            return Ok(Vec::new());
        }
        let hi = st.ensure_hierarchy();
        Self::check_deadline(deadline, "after hierarchy materialization")?;
        let mut out: Vec<NucleusSummary> = hi
            .forest
            .nuclei_at(k)
            .into_iter()
            .map(|node| NucleusSummary { node, k, size: hi.forest.nodes[node as usize].size })
            .collect();
        out.sort_by_key(|n| std::cmp::Reverse(n.size));
        Ok(out)
    }

    /// The densest region containing r-clique `id`: the maximal nucleus in
    /// which it first participates (its own node in the hierarchy).
    pub fn region_of(&mut self, sel: SpaceSel, id: usize) -> Result<RegionReport, String> {
        self.region_of_within(sel, id, None)
    }

    /// [`Engine::region_of`] under an optional wall-clock deadline.
    pub fn region_of_within(
        &mut self,
        sel: SpaceSel,
        id: usize,
        deadline: Option<Instant>,
    ) -> Result<RegionReport, String> {
        Self::check_deadline(deadline, "before hierarchy lookup")?;
        if self.state(sel)?.cached.num_cliques() == 0 {
            // No cliques to address: stable error, no trivial index built.
            return Err(format!("clique id {id} out of range"));
        }
        self.state_mut(sel)?.ensure_hierarchy();
        Self::check_deadline(deadline, "after hierarchy materialization")?;
        let st = self.state(sel)?;
        if id >= st.cached.num_cliques() {
            return Err(format!("clique id {id} out of range"));
        }
        let hi = st.hierarchy.as_ref().unwrap();
        let node = hi.node_of[id];
        if node == u32::MAX {
            return Err(format!("clique {id} participates in no s-clique (no nucleus)"));
        }
        Ok(self.materialize_node(st, node))
    }

    /// A materialized hierarchy node by id (used by the `nuclei` op's
    /// drill-down).
    pub fn node_region(&mut self, sel: SpaceSel, node: u32) -> Result<RegionReport, String> {
        self.node_region_within(sel, node, None)
    }

    /// [`Engine::node_region`] under an optional wall-clock deadline.
    pub fn node_region_within(
        &mut self,
        sel: SpaceSel,
        node: u32,
        deadline: Option<Instant>,
    ) -> Result<RegionReport, String> {
        Self::check_deadline(deadline, "before hierarchy lookup")?;
        if self.state(sel)?.cached.num_cliques() == 0 {
            return Err(format!("hierarchy node {node} out of range"));
        }
        self.state_mut(sel)?.ensure_hierarchy();
        Self::check_deadline(deadline, "after hierarchy materialization")?;
        let st = self.state(sel)?;
        if node as usize >= st.hierarchy.as_ref().unwrap().forest.len() {
            return Err(format!("hierarchy node {node} out of range"));
        }
        Ok(self.materialize_node(st, node))
    }

    fn materialize_node(&self, st: &SpaceState, node: u32) -> RegionReport {
        let hi = st.hierarchy.as_ref().unwrap();
        let vertices = hi.forest.member_vertices(node, &st.cached);
        let density = hi.forest.node_density(node, &st.cached, &self.graph);
        RegionReport {
            node,
            k: hi.forest.nodes[node as usize].k,
            size: hi.forest.nodes[node as usize].size,
            vertices,
            density,
        }
    }

    /// Applies an edge batch by splicing the CSR, the triangle substrate,
    /// and every resident space snapshot, then refreshes κ via the
    /// candidate-lifted warm start with stale values carried positionally
    /// through the id remaps. Resident hierarchies are **repaired** in
    /// place ([`Hierarchy::repair`]) instead of invalidated — untouched
    /// subtrees are grafted back and only the perturbed region re-runs the
    /// union–find, so the next `region`/`nuclei` query no longer pays a
    /// full forest rebuild. This is a deliberately read-optimized trade:
    /// forest maintenance (including the cold build the repair degrades to
    /// when nothing is preservable, `full_rebuild` — routine for the core
    /// space's shallow forest) is paid here, at update time, keeping every
    /// subsequent region query rebuild-free. Update-heavy workloads that
    /// never touch `region`/`nuclei` simply never make a hierarchy
    /// resident and pay none of it. Everything else scales with the
    /// perturbation; nothing outside the forests is rebuilt globally.
    pub fn update(
        &mut self,
        insert: &[(VertexId, VertexId)],
        remove: &[(VertexId, VertexId)],
    ) -> UpdateReport {
        let start = Instant::now();
        let (new_graph, ed, td) = {
            span!("update.graph_delta");
            let (new_graph, ed) = apply_edge_batch(&self.graph, insert, remove);
            let td = self.triangles.as_ref().map(|tl| triangle_delta(tl, &new_graph, &ed));
            (new_graph, ed, td)
        };
        let graph_delta_us = start.elapsed().as_micros() as u64;
        let ins_ends = ed.inserted_endpoints(&new_graph);
        let rm_ends = ed.removed_endpoints(&self.graph);

        let mut reports = Vec::with_capacity(self.states.len());
        let mut hierarchy_repair_us = 0u64;
        for st in self.states.iter_mut() {
            let t_splice = Instant::now();
            let splice_span = hdsd_telemetry::trace::Span::enter("update.splice");
            let sd = match st.sel {
                SpaceSel::Core => core_space_delta(&new_graph, self.graph.num_vertices()),
                SpaceSel::Truss => truss_space_delta(
                    &st.cached,
                    self.triangles.as_ref().unwrap(),
                    &new_graph,
                    &ed,
                    td.as_ref().unwrap(),
                ),
                SpaceSel::Nucleus34 => nucleus34_space_delta(
                    &st.cached,
                    &self.graph,
                    self.triangles.as_ref().unwrap(),
                    &new_graph,
                    &ed,
                    td.as_ref().unwrap(),
                ),
            };
            drop(splice_span);
            let splice_us = t_splice.elapsed().as_micros() as u64;
            let t_refresh = Instant::now();
            let stale_of: Vec<Option<u32>> = sd
                .new_to_old
                .iter()
                .map(|&o| if o == NO_ID { None } else { Some(st.kappa[o as usize]) })
                .collect();
            let out = {
                span!("update.refresh");
                refresh_resume_of(
                    &stale_of,
                    &sd.cached,
                    &ins_ends,
                    &rm_ends,
                    ed.inserted(),
                    &self.local,
                )
            };
            let refresh_us = t_refresh.elapsed().as_micros() as u64;
            let old_num_cliques = st.cached.num_cliques();
            let hierarchy_repair = st.hierarchy.take().map(|hi| {
                let t_repair = Instant::now();
                span!("update.repair");
                let dirty = out.repair_dirty_seed(&stale_of);
                let (forest, stats) = hi.forest.repair(
                    &sd.cached,
                    &out.result.tau,
                    &sd.new_to_old,
                    old_num_cliques,
                    &dirty,
                );
                st.hierarchy = Some(HierarchyIndex::from_forest(forest, sd.cached.num_cliques()));
                let repair_us = t_repair.elapsed().as_micros() as u64;
                hierarchy_repair_us += repair_us;
                HierarchyRepairReport {
                    repair_us,
                    preserved_subtrees: stats.preserved_subtrees,
                    preserved_nodes: stats.preserved_nodes,
                    rebuilt_nodes: stats.rebuilt_nodes,
                    dirty_cliques: stats.dirty_cliques,
                    scanned_scliques: stats.scanned_scliques,
                    full_rebuild: stats.full_rebuild,
                }
            });
            // Flow the scheduler/refresh counters (previously dropped with
            // the ConvergenceResult) into the registry, labeled by space.
            let reg = Registry::global();
            let lbl = [("space", st.sel.name())];
            reg.counter(&labeled("refresh_sweeps_total", &lbl)).add(out.result.sweeps as u64);
            reg.counter(&labeled("refresh_processed_total", &lbl))
                .add(out.result.total_processed());
            reg.counter(&labeled("refresh_skipped_total", &lbl))
                .add(out.result.scheduler.items_skipped);
            reg.counter(&labeled("refresh_awake_total", &lbl)).add(out.awake as u64);
            reg.counter(&labeled("refresh_lifted_total", &lbl)).add(out.lifted as u64);
            reg.histogram(&labeled("update_splice_micros", &lbl)).record(splice_us);
            reg.histogram(&labeled("update_refresh_micros", &lbl)).record(refresh_us);
            if let Some(hr) = &hierarchy_repair {
                reg.histogram(&labeled("hierarchy_repair_micros", &lbl)).record(hr.repair_us);
                reg.counter(&labeled("repair_preserved_nodes_total", &lbl))
                    .add(hr.preserved_nodes as u64);
                reg.counter(&labeled("repair_rebuilt_nodes_total", &lbl))
                    .add(hr.rebuilt_nodes as u64);
                reg.counter(&labeled("repair_full_rebuilds_total", &lbl))
                    .add(hr.full_rebuild as u64);
            }
            reports.push(SpaceRefresh {
                space: st.sel.name(),
                sweeps: out.result.sweeps,
                processed: out.result.total_processed(),
                awake: out.awake,
                lifted: out.lifted,
                splice_us,
                refresh_us,
                hierarchy_repair,
            });
            st.cached = sd.cached;
            st.kappa = out.result.tau;
        }
        if let Some(td) = td {
            self.triangles = Some(td.list);
        }
        self.graph = new_graph;
        self.updates_applied += 1;
        let wall_us = start.elapsed().as_micros() as u64;
        let reg = Registry::global();
        reg.counter("updates_applied_total").inc();
        reg.histogram("update_wall_micros").record(wall_us);
        reg.histogram("update_graph_delta_micros").record(graph_delta_us);
        self.publish_gauges();
        UpdateReport {
            inserted: ed.inserted(),
            removed: ed.removed(),
            graph_delta_us,
            spaces: reports,
            hierarchy_repair_us,
            wall_us,
        }
    }

    /// Publishes point-in-time graph size gauges to the global registry.
    fn publish_gauges(&self) {
        let reg = Registry::global();
        reg.gauge("graph_vertices").set(self.graph.num_vertices() as u64);
        reg.gauge("graph_edges").set(self.graph.num_edges() as u64);
    }

    /// Serializes the engine (building any missing hierarchy so the
    /// snapshot restores with the full serving index — forest plus its
    /// clique → node lookup — resident, no reconstruction on restart).
    pub fn to_snapshot(&mut self) -> Snapshot {
        let spaces = self
            .states
            .iter_mut()
            .map(|st| {
                st.ensure_hierarchy();
                SpaceSnapshot {
                    rs: st.sel.rs(),
                    kappa: st.kappa.clone(),
                    hierarchy: st.hierarchy.as_ref().map(|h| h.forest.clone()),
                    node_of: st.hierarchy.as_ref().map(|h| h.node_of.clone()),
                }
            })
            .collect();
        Snapshot { graph: self.graph.clone(), spaces }
    }

    /// Restores an engine from a snapshot: spaces are re-materialized from
    /// the graph (cheap relative to decomposing), κ and hierarchies are
    /// adopted as-is after a length check.
    pub fn from_snapshot(snap: Snapshot, local: LocalConfig) -> Result<Engine, String> {
        let needs_tri = snap.spaces.iter().any(|sp| sp.rs != (1, 2));
        let triangles = needs_tri.then(|| TriangleList::build(&snap.graph));
        let mut states = Vec::with_capacity(snap.spaces.len());
        for sp in snap.spaces {
            let sel = match sp.rs {
                (1, 2) => SpaceSel::Core,
                (2, 3) => SpaceSel::Truss,
                (3, 4) => SpaceSel::Nucleus34,
                other => return Err(format!("snapshot contains unknown space {other:?}")),
            };
            let t_build = Instant::now();
            let cached = sel.build_cached(&snap.graph, triangles.as_ref());
            let build_us = t_build.elapsed().as_micros() as u64;
            if cached.num_cliques() != sp.kappa.len() {
                return Err(format!(
                    "snapshot κ length {} does not match rebuilt {} space ({} cliques)",
                    sp.kappa.len(),
                    sel.name(),
                    cached.num_cliques()
                ));
            }
            // v3 snapshots carry the clique → node index (validated by the
            // reader); adopt it directly and fall back to the derivation
            // scan only when absent.
            let hierarchy = match (sp.hierarchy, sp.node_of) {
                (Some(forest), Some(node_of)) => Some(HierarchyIndex { forest, node_of }),
                (Some(forest), None) => Some(HierarchyIndex::from_forest(forest, sp.kappa.len())),
                (None, _) => None,
            };
            // κ is adopted, nothing is peeled: that is the point of
            // restoring from a snapshot, and peel_us = 0 records it.
            states.push(SpaceState {
                sel,
                cached,
                kappa: sp.kappa,
                hierarchy,
                build_us,
                peel_us: 0,
            });
        }
        let engine = Engine { graph: snap.graph, triangles, states, local, updates_applied: 0 };
        engine.publish_gauges();
        Ok(engine)
    }

    /// Point-in-time statistics.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            vertices: self.graph.num_vertices(),
            edges: self.graph.num_edges(),
            updates_applied: self.updates_applied,
            spaces: self
                .states
                .iter()
                .map(|st| SpaceStats {
                    space: st.sel.name().to_string(),
                    cliques: st.cached.num_cliques(),
                    max_kappa: st.kappa.iter().copied().max().unwrap_or(0),
                    hierarchy_resident: st.hierarchy.is_some(),
                    build_us: st.build_us,
                    peel_us: st.peel_us,
                })
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hdsd_graph::graph_from_edges;

    fn demo_graph() -> CsrGraph {
        // Two K4s sharing the edge (2,3), plus a tail 5-6.
        graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (2, 4),
            (2, 5),
            (3, 4),
            (3, 5),
            (4, 5),
            (5, 6),
        ])
    }

    fn full_config() -> EngineConfig {
        EngineConfig {
            spaces: vec![SpaceSel::Core, SpaceSel::Truss, SpaceSel::Nucleus34],
            local: LocalConfig::sequential(),
        }
    }

    #[test]
    fn lookups_match_peeling_across_spaces() {
        let g = hdsd_datasets::holme_kim(120, 4, 0.5, 3);
        let engine = Engine::new(g.clone(), &full_config());
        assert_eq!(engine.kappa_of(SpaceSel::Core, 5).unwrap(), peel(&CoreSpace::new(&g)).kappa[5]);
        let kt = peel(&TrussSpace::precomputed(&g)).kappa;
        for e in [0usize, 17, 80] {
            assert_eq!(engine.kappa_of(SpaceSel::Truss, e).unwrap(), kt[e]);
        }
        // Vertex-addressed resolution agrees with id-addressed lookups.
        let (u, v) = g.edges()[17];
        let id = engine.resolve(SpaceSel::Truss, &[u, v]).unwrap();
        assert_eq!(id, 17);
        assert!(engine.kappa_of(SpaceSel::Truss, 1 << 20).is_err());
        assert!(engine.resolve(SpaceSel::Truss, &[0]).is_err());
    }

    #[test]
    fn estimates_bracket_exact_kappa() {
        let g = hdsd_datasets::holme_kim(150, 5, 0.5, 11);
        let engine = Engine::new(g.clone(), &EngineConfig::default());
        let exact = peel(&CoreSpace::new(&g)).kappa;
        for q in [0usize, 40, 90] {
            let est = engine
                .estimate(
                    SpaceSel::Core,
                    q,
                    &QueryOptions {
                        iterations: 3,
                        budget: Some(500),
                        lower_bound: true,
                        deadline: None,
                    },
                )
                .unwrap();
            assert!(est.lower <= exact[q] && exact[q] <= est.estimate, "vertex {q}");
        }
    }

    #[test]
    fn region_and_nuclei_come_from_the_resident_hierarchy() {
        let mut engine = Engine::new(demo_graph(), &full_config());
        // Vertex 6 has κ=1; its densest region is the whole 1-core.
        let r = engine.region_of(SpaceSel::Core, 6).unwrap();
        assert_eq!(r.k, 1);
        assert_eq!(r.vertices.len(), 7);
        // Vertex 0's region: the 3-core spanning both K4s.
        let r0 = engine.region_of(SpaceSel::Core, 0).unwrap();
        assert_eq!(r0.k, 3);
        assert_eq!(r0.vertices, vec![0, 1, 2, 3, 4, 5]);
        // Truss: the K4s share edge (2,3), so triangle connectivity fuses
        // them into a single 2-truss spanning all six clique vertices.
        let e01 = engine.graph().edge_id(0, 1).unwrap() as usize;
        let rt = engine.region_of(SpaceSel::Truss, e01).unwrap();
        assert_eq!(rt.k, 2);
        assert_eq!(rt.vertices, vec![0, 1, 2, 3, 4, 5]);
        let nuclei = engine.nuclei_at(SpaceSel::Truss, 2).unwrap();
        assert_eq!(nuclei.len(), 1);
        let drill = engine.node_region(SpaceSel::Truss, nuclei[0].node).unwrap();
        assert_eq!(drill.vertices.len(), 6);
        // The (3,4) nuclei do NOT merge across the shared edge (the
        // paper's Figure-3 point): two 1-(3,4) nuclei.
        let n34 = engine.nuclei_at(SpaceSel::Nucleus34, 1).unwrap();
        assert_eq!(n34.len(), 2);
    }

    #[test]
    fn updates_keep_every_space_exact() {
        let g = hdsd_datasets::holme_kim(80, 4, 0.6, 17);
        let mut engine = Engine::new(g, &full_config());
        for round in 0..3u32 {
            let rm: Vec<(u32, u32)> = engine
                .graph()
                .edges()
                .iter()
                .copied()
                .skip(round as usize * 2)
                .step_by(37)
                .take(3)
                .collect();
            let ins: Vec<(u32, u32)> =
                (0..3).map(|i| (round * 5 + i, (round * 9 + 2 * i + 33) % 80)).collect();
            let report = engine.update(&ins, &rm);
            assert_eq!(report.spaces.len(), 3);
            let g2 = engine.graph().clone();
            assert_eq!(
                engine.state(SpaceSel::Core).unwrap().kappa,
                peel(&CoreSpace::new(&g2)).kappa
            );
            assert_eq!(
                engine.state(SpaceSel::Truss).unwrap().kappa,
                peel(&TrussSpace::precomputed(&g2)).kappa
            );
            assert_eq!(
                engine.state(SpaceSel::Nucleus34).unwrap().kappa,
                peel(&Nucleus34Space::precomputed(&g2)).kappa
            );
            // Region queries still work against the refreshed state.
            let _ = engine.region_of(SpaceSel::Core, 0).unwrap();
        }
        assert_eq!(engine.stats().updates_applied, 3);
    }

    #[test]
    fn updates_repair_resident_hierarchies_instead_of_invalidating() {
        let g = hdsd_datasets::holme_kim(90, 4, 0.5, 41);
        let mut engine = Engine::new(g, &full_config());
        // Make every hierarchy resident, then update: the forests must
        // stay resident (repaired, not dropped) and match cold rebuilds.
        for sel in [SpaceSel::Core, SpaceSel::Truss, SpaceSel::Nucleus34] {
            let _ = engine.nuclei_at(sel, 1).unwrap();
        }
        for round in 0..3u32 {
            let rm: Vec<(u32, u32)> = engine
                .graph()
                .edges()
                .iter()
                .copied()
                .skip(round as usize)
                .step_by(31)
                .take(3)
                .collect();
            let ins: Vec<(u32, u32)> =
                (0..3).map(|i| (round * 7 + i, (round * 13 + 3 * i + 40) % 90)).collect();
            let report = engine.update(&ins, &rm);
            for s in &report.spaces {
                assert!(
                    s.hierarchy_repair.is_some(),
                    "{}: resident hierarchy was not repaired",
                    s.space
                );
            }
            for sel in [SpaceSel::Core, SpaceSel::Truss, SpaceSel::Nucleus34] {
                let st = engine.state(sel).unwrap();
                let hi = st.hierarchy.as_ref().expect("hierarchy must stay resident");
                hdsd_nucleus::assert_forest_eq(&hi.forest, &build_hierarchy(&st.cached, &st.kappa));
                // The inverted index matches the repaired forest.
                assert_eq!(hi.node_of, hi.forest.clique_to_node(st.cached.num_cliques()));
            }
        }
        assert!(engine.stats().spaces.iter().all(|s| s.hierarchy_resident));
    }

    #[test]
    fn updates_skip_repair_when_no_hierarchy_is_resident() {
        let g = hdsd_datasets::holme_kim(60, 4, 0.5, 8);
        let mut engine = Engine::new(g, &full_config());
        let report = engine.update(&[(0, 30)], &[]);
        assert_eq!(report.hierarchy_repair_us, 0);
        assert!(report.spaces.iter().all(|s| s.hierarchy_repair.is_none()));
        // Lazily built afterwards, the hierarchy serves the updated graph.
        let r = engine.region_of(SpaceSel::Core, 0).unwrap();
        assert!(r.k >= 1);
    }

    #[test]
    fn empty_graph_queries_return_stable_responses() {
        let g = hdsd_graph::graph_from_edges([]);
        let mut engine = Engine::new(g, &full_config());
        for sel in [SpaceSel::Core, SpaceSel::Truss, SpaceSel::Nucleus34] {
            assert!(engine.nuclei_at(sel, 1).unwrap().is_empty());
            assert!(engine.region_of(sel, 0).unwrap_err().contains("out of range"));
            assert!(engine.node_region(sel, 0).unwrap_err().contains("out of range"));
        }
        // The early returns never materialized a trivial index.
        assert!(engine.stats().spaces.iter().all(|s| !s.hierarchy_resident));
    }

    #[test]
    fn snapshot_restore_adopts_the_persisted_clique_index() {
        let g = hdsd_datasets::holme_kim(70, 4, 0.5, 51);
        let mut engine = Engine::new(g, &full_config());
        let _ = engine.region_of(SpaceSel::Truss, 0).unwrap();
        let snap = engine.to_snapshot();
        for sp in &snap.spaces {
            let node_of = sp.node_of.as_ref().expect("v3 snapshots carry the index");
            assert_eq!(node_of, &sp.hierarchy.as_ref().unwrap().clique_to_node(sp.kappa.len()));
        }
        let back = Engine::from_snapshot(snap, LocalConfig::sequential()).unwrap();
        for sel in [SpaceSel::Core, SpaceSel::Truss, SpaceSel::Nucleus34] {
            let (a, b) = (engine.state(sel).unwrap(), back.state(sel).unwrap());
            assert_eq!(
                a.hierarchy.as_ref().unwrap().node_of,
                b.hierarchy.as_ref().unwrap().node_of,
                "{}",
                sel.name()
            );
        }
    }

    #[test]
    fn stats_split_cold_start_into_build_and_peel() {
        // Large enough that every space's build and peel cross the 1 µs
        // timer resolution.
        let g = hdsd_datasets::holme_kim(1500, 6, 0.5, 29);
        let mut engine = Engine::new(g, &full_config());
        let fresh = engine.stats();
        assert!(fresh.spaces.iter().all(|s| s.build_us > 0), "{fresh:?}");
        assert!(fresh.spaces.iter().all(|s| s.peel_us > 0), "{fresh:?}");
        // A restored engine re-materializes spaces (build_us measured) but
        // adopts κ — the whole point of snapshots — so peel_us is 0.
        let snap = engine.to_snapshot();
        let back = Engine::from_snapshot(snap, LocalConfig::sequential()).unwrap();
        let restored = back.stats();
        assert!(restored.spaces.iter().all(|s| s.build_us > 0), "{restored:?}");
        assert!(restored.spaces.iter().all(|s| s.peel_us == 0), "{restored:?}");
    }

    #[test]
    fn snapshot_restore_preserves_answers() {
        let g = hdsd_datasets::holme_kim(100, 4, 0.5, 23);
        let mut engine = Engine::new(g, &full_config());
        engine.update(&[(0, 50), (1, 51)], &[]);
        let _ = engine.region_of(SpaceSel::Core, 0).unwrap();
        let snap = engine.to_snapshot();
        let mut back = Engine::from_snapshot(snap, LocalConfig::sequential()).unwrap();
        assert_eq!(back.graph().edges(), engine.graph().edges());
        for sel in [SpaceSel::Core, SpaceSel::Truss, SpaceSel::Nucleus34] {
            assert_eq!(
                back.state(sel).unwrap().kappa,
                engine.state(sel).unwrap().kappa,
                "{}",
                sel.name()
            );
            // Hierarchies were serialized resident.
            assert!(back.state(sel).unwrap().hierarchy.is_some());
        }
        // And the restored engine keeps serving + updating.
        let r = back.region_of(SpaceSel::Core, 0).unwrap();
        assert_eq!(r.vertices, engine.region_of(SpaceSel::Core, 0).unwrap().vertices);
        back.update(&[(2, 60)], &[]);
        let g2 = back.graph().clone();
        assert_eq!(back.state(SpaceSel::Core).unwrap().kappa, peel(&CoreSpace::new(&g2)).kappa);
    }
}
