//! The line-delimited JSON request protocol.
//!
//! One request per line in, one response per line out, over stdin/stdout
//! or a TCP connection. Every response carries `"ok"` plus per-request
//! telemetry (`micros`, and op-specific counters: sweeps for updates,
//! explored cliques for estimates).
//!
//! ```text
//! → {"op":"kappa","space":"core","id":4}
//! ← {"ok":true,"space":"core","id":4,"kappa":3,"vertices":[4],"micros":12}
//! → {"op":"estimate","space":"truss","vertices":[0,1],"iterations":3,"budget":4096}
//! ← {"ok":true,"estimate":2,"lower":2,"interval":[2,2],...}
//! → {"op":"update","insert":[[7,9]],"remove":[[0,3]]}
//! ← {"ok":true,"inserted":1,"removed":1,"spaces":[{"space":"core","sweeps":3,...}],...}
//! ```
//!
//! Ops: `stats`, `kappa`, `estimate`, `nuclei`, `region`, `node`,
//! `insert`, `remove`, `update`, `save`, `checkpoint`, `wal_stats`,
//! `shutdown` (plus `debug_panic` when debug ops are enabled).
//!
//! ## Durability
//!
//! When the server is opened over a durability directory (`--durable DIR`),
//! every `insert`/`remove`/`update` batch is appended to the write-ahead
//! log and fsynced per policy *before* the engine applies it; the response
//! then carries the batch's `wal_seq`. `checkpoint` folds the engine into
//! an atomic snapshot (temp file + rename) and truncates the WAL;
//! `wal_stats` reports log telemetry plus the startup recovery report.
//! `save` writes a point-in-time snapshot to an arbitrary path with the
//! same temp-file + rename + fsync discipline.
//!
//! ## Deadlines
//!
//! `estimate`, `region`, `node`, and `nuclei` requests may carry
//! `"deadline_ms": N`. Estimates degrade gracefully (exploration stops and
//! the response is marked `"truncated":true`); hierarchy-backed ops answer
//! a clean `deadline exceeded` error instead of blocking the connection on
//! an expensive materialization.
//!
//! Every request is additionally hardened: a panicking handler is caught
//! and answered with `{"ok":false,"error":"internal panic: ..."}`, and the
//! server keeps serving.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use hdsd_graph::VertexId;
use hdsd_nucleus::QueryOptions;

use crate::engine::{Engine, RegionReport, SpaceSel};
use crate::json::{obj, Json};
use crate::recovery::Durability;
use crate::wal::FailPoints;

/// Stateful request handler wrapping an [`Engine`], optionally backed by
/// a durability directory (WAL + checkpoints).
pub struct Server {
    engine: Engine,
    durability: Option<Durability>,
    debug_ops: bool,
    started: Instant,
    requests: u64,
}

/// Renders a caught panic payload as a response error string.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string payload".to_string());
    format!("internal panic: {msg}")
}

/// A handled request: the response line plus whether to shut down.
pub struct Handled {
    /// Response JSON (no trailing newline).
    pub response: String,
    /// True when the request asked the server to stop.
    pub shutdown: bool,
}

impl Server {
    /// Wraps an engine (no durability: updates live only in memory).
    pub fn new(engine: Engine) -> Server {
        Server { engine, durability: None, debug_ops: false, started: Instant::now(), requests: 0 }
    }

    /// Wraps a recovered engine together with its durability state: every
    /// accepted update batch is WAL-logged before it is applied.
    pub fn with_durability(engine: Engine, durability: Durability) -> Server {
        Server {
            engine,
            durability: Some(durability),
            debug_ops: false,
            started: Instant::now(),
            requests: 0,
        }
    }

    /// Enables the `debug_panic` op (fault drills and tests only).
    pub fn enable_debug_ops(&mut self) {
        self.debug_ops = true;
    }

    /// Whether this server runs over a durability directory.
    pub fn is_durable(&self) -> bool {
        self.durability.is_some()
    }

    /// Flushes pending WAL appends and takes an atomic checkpoint — the
    /// graceful-shutdown path (signal handlers, EOF). No-op without
    /// durability.
    pub fn drain_and_checkpoint(&mut self) -> Result<(), String> {
        if let Some(d) = self.durability.as_mut() {
            d.sync().map_err(|e| format!("WAL sync: {e}"))?;
            d.checkpoint(&mut self.engine).map_err(|e| format!("checkpoint: {e}"))?;
        }
        Ok(())
    }

    /// The wrapped engine (for tests and benches).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Handles one request line, returning the response line. A handler
    /// panic is contained here: the client gets `{"ok":false}` with the
    /// panic message and the server keeps serving.
    pub fn handle_line(&mut self, line: &str) -> Handled {
        let start = Instant::now();
        self.requests += 1;
        let outcome = catch_unwind(AssertUnwindSafe(|| self.dispatch(line)))
            .unwrap_or_else(|payload| Err(panic_message(&*payload)));
        let (mut response, shutdown) = match outcome {
            Ok((fields, shutdown)) => {
                let mut members = vec![("ok".to_string(), Json::Bool(true))];
                if let Json::Obj(rest) = fields {
                    members.extend(rest);
                }
                (Json::Obj(members), shutdown)
            }
            Err(e) => (obj([("ok", Json::Bool(false)), ("error", e.into())]), false),
        };
        if let Json::Obj(members) = &mut response {
            members.push(("micros".to_string(), (start.elapsed().as_micros() as u64).into()));
        }
        Handled { response: response.to_string(), shutdown }
    }

    fn dispatch(&mut self, line: &str) -> Result<(Json, bool), String> {
        let req = Json::parse(line.trim()).map_err(|e| format!("bad JSON: {e}"))?;
        let op = req
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing string field \"op\"".to_string())?;
        let fields = match op {
            "stats" => self.stats(),
            "kappa" => self.kappa(&req)?,
            "estimate" => self.estimate(&req)?,
            "nuclei" => self.nuclei(&req)?,
            "region" => self.region(&req)?,
            "node" => self.node(&req)?,
            "insert" => self.update(Some(&req), None)?,
            "remove" => self.update(None, Some(&req))?,
            "update" => self.update(Some(&req), Some(&req))?,
            "save" => self.save(&req)?,
            "checkpoint" => self.checkpoint_op()?,
            "wal_stats" => self.wal_stats_op()?,
            "debug_panic" if self.debug_ops => panic!("debug_panic op fired"),
            "shutdown" => {
                let mut fields = vec![("bye".to_string(), true.into())];
                if self.durability.is_some() {
                    self.drain_and_checkpoint()?;
                    fields.push(("checkpointed".to_string(), true.into()));
                }
                return Ok((Json::Obj(fields), true));
            }
            other => return Err(format!("unknown op {other:?}")),
        };
        Ok((fields, false))
    }

    fn space_of(&self, req: &Json) -> Result<SpaceSel, String> {
        let name = req
            .get("space")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing string field \"space\"".to_string())?;
        SpaceSel::parse(name).ok_or_else(|| format!("unknown space {name:?} (core|truss|34)"))
    }

    /// Resolves the addressed clique: `"id"` directly, or `"vertices"`
    /// (vertex / edge endpoints / triangle) through the engine's index.
    fn clique_of(&mut self, req: &Json, sel: SpaceSel) -> Result<usize, String> {
        if let Some(id) = req.get("id") {
            return id.as_usize().ok_or_else(|| "\"id\" must be a non-negative integer".into());
        }
        if let Some(vs) = req.get("vertices") {
            let vs = vs.as_array().ok_or("\"vertices\" must be an array")?;
            let verts: Option<Vec<VertexId>> =
                vs.iter().map(|v| v.as_u64().map(|x| x as VertexId)).collect();
            let verts = verts.ok_or("\"vertices\" must contain non-negative integers")?;
            return self.engine.resolve(sel, &verts);
        }
        Err("request needs \"id\" or \"vertices\"".to_string())
    }

    fn stats(&self) -> Json {
        let s = self.engine.stats();
        obj([
            ("vertices", s.vertices.into()),
            ("edges", s.edges.into()),
            ("updates_applied", s.updates_applied.into()),
            ("requests", self.requests.into()),
            ("uptime_ms", (self.started.elapsed().as_millis() as u64).into()),
            (
                "spaces",
                s.spaces
                    .iter()
                    .map(|sp| {
                        obj([
                            ("space", sp.space.as_str().into()),
                            ("cliques", sp.cliques.into()),
                            ("max_kappa", sp.max_kappa.into()),
                            ("hierarchy_resident", sp.hierarchy_resident.into()),
                            ("build_micros", sp.build_us.into()),
                            ("peel_micros", sp.peel_us.into()),
                        ])
                    })
                    .collect(),
            ),
        ])
    }

    fn kappa(&mut self, req: &Json) -> Result<Json, String> {
        let sel = self.space_of(req)?;
        let id = self.clique_of(req, sel)?;
        let kappa = self.engine.kappa_of(sel, id)?;
        let vertices = self.engine.clique_vertices(sel, id)?;
        Ok(obj([
            ("space", sel.name().into()),
            ("id", id.into()),
            ("kappa", kappa.into()),
            ("vertices", vertices.into_iter().collect()),
        ]))
    }

    /// Parses an optional `"deadline_ms"` field into an absolute instant.
    fn deadline_of(req: &Json) -> Option<Instant> {
        req.get("deadline_ms")
            .and_then(Json::as_u64)
            .map(|ms| Instant::now() + Duration::from_millis(ms))
    }

    fn estimate(&mut self, req: &Json) -> Result<Json, String> {
        let sel = self.space_of(req)?;
        let id = self.clique_of(req, sel)?;
        let opts = QueryOptions {
            iterations: req.get("iterations").and_then(Json::as_usize).unwrap_or(3),
            budget: req.get("budget").and_then(Json::as_usize),
            lower_bound: req.get("lower_bound").and_then(Json::as_bool).unwrap_or(true),
            deadline: Self::deadline_of(req),
        };
        let est = self.engine.estimate(sel, id, &opts)?;
        Ok(obj([
            ("space", sel.name().into()),
            ("id", id.into()),
            ("estimate", est.estimate.into()),
            ("lower", est.lower.into()),
            ("interval", [est.lower, est.estimate].into_iter().collect()),
            ("degree", est.degree.into()),
            ("explored", est.explored.into()),
            ("iterations", est.iterations.into()),
            ("truncated", est.truncated.into()),
        ]))
    }

    fn nuclei(&mut self, req: &Json) -> Result<Json, String> {
        let sel = self.space_of(req)?;
        let k = req
            .get("k")
            .and_then(Json::as_u64)
            .ok_or_else(|| "missing integer field \"k\"".to_string())? as u32;
        let limit = req.get("limit").and_then(Json::as_usize).unwrap_or(32);
        let nuclei = self.engine.nuclei_at_within(sel, k, Self::deadline_of(req))?;
        let total = nuclei.len();
        Ok(obj([
            ("space", sel.name().into()),
            ("k", k.into()),
            ("total", total.into()),
            (
                "nuclei",
                nuclei
                    .into_iter()
                    .take(limit)
                    .map(|n| {
                        obj([("node", n.node.into()), ("k", n.k.into()), ("size", n.size.into())])
                    })
                    .collect(),
            ),
        ]))
    }

    fn region_json(r: RegionReport, sel: SpaceSel, max_vertices: usize) -> Json {
        let total = r.vertices.len();
        obj([
            ("space", sel.name().into()),
            ("node", r.node.into()),
            ("k", r.k.into()),
            ("size", r.size.into()),
            ("num_vertices", total.into()),
            ("vertices", r.vertices.into_iter().take(max_vertices).collect()),
            ("edges", r.density.edges.into()),
            ("density", r.density.density.into()),
        ])
    }

    fn region(&mut self, req: &Json) -> Result<Json, String> {
        let sel = self.space_of(req)?;
        let id = self.clique_of(req, sel)?;
        let max_vertices = req.get("max_vertices").and_then(Json::as_usize).unwrap_or(64);
        let r = self.engine.region_of_within(sel, id, Self::deadline_of(req))?;
        Ok(Self::region_json(r, sel, max_vertices))
    }

    fn node(&mut self, req: &Json) -> Result<Json, String> {
        let sel = self.space_of(req)?;
        let node = req
            .get("node")
            .and_then(Json::as_u64)
            .ok_or_else(|| "missing integer field \"node\"".to_string())? as u32;
        let max_vertices = req.get("max_vertices").and_then(Json::as_usize).unwrap_or(64);
        let r = self.engine.node_region_within(sel, node, Self::deadline_of(req))?;
        Ok(Self::region_json(r, sel, max_vertices))
    }

    fn edges_field(req: &Json, field: &str) -> Result<Vec<(VertexId, VertexId)>, String> {
        let xs = match req.get(field) {
            None => return Ok(Vec::new()),
            Some(v) => v.as_array().ok_or(format!("\"{field}\" must be an array of [u, v]"))?,
        };
        xs.iter()
            .map(|pair| {
                let p = pair.as_array().filter(|p| p.len() == 2);
                match p {
                    Some([u, v]) => match (u.as_u64(), v.as_u64()) {
                        (Some(u), Some(v)) => Ok((u as VertexId, v as VertexId)),
                        _ => Err(format!("\"{field}\" entries must be integer pairs")),
                    },
                    _ => Err(format!("\"{field}\" entries must be [u, v] pairs")),
                }
            })
            .collect()
    }

    fn update(&mut self, ins_req: Option<&Json>, rm_req: Option<&Json>) -> Result<Json, String> {
        let insert = match ins_req {
            Some(req) => {
                let named = Self::edges_field(req, "insert")?;
                if named.is_empty() {
                    Self::edges_field(req, "edges")?
                } else {
                    named
                }
            }
            None => Vec::new(),
        };
        let remove = match rm_req {
            Some(req) => {
                let named = Self::edges_field(req, "remove")?;
                if named.is_empty() && ins_req.is_none() {
                    Self::edges_field(req, "edges")?
                } else {
                    named
                }
            }
            None => Vec::new(),
        };
        if insert.is_empty() && remove.is_empty() {
            return Err("empty update: provide \"insert\"/\"remove\" (or \"edges\")".to_string());
        }
        self.validate_batch(&insert, &remove)?;
        // Durable path: the batch reaches the log (synced per policy)
        // before the engine sees it. If the append fails, nothing was
        // applied and the client is told so in those words.
        let wal_seq = match self.durability.as_mut() {
            Some(d) => Some(
                d.append(&insert, &remove)
                    .map_err(|e| format!("WAL append failed; update NOT applied: {e}"))?,
            ),
            None => None,
        };
        let report = self.engine.update(&insert, &remove);
        let mut fields = obj([
            ("inserted", report.inserted.into()),
            ("removed", report.removed.into()),
            ("wall_micros", report.wall_us.into()),
            ("graph_delta_micros", report.graph_delta_us.into()),
            ("hierarchy_repair_micros", report.hierarchy_repair_us.into()),
            (
                "spaces",
                report
                    .spaces
                    .iter()
                    .map(|s| {
                        let mut fields = vec![
                            ("space".to_string(), s.space.into()),
                            ("sweeps".to_string(), s.sweeps.into()),
                            ("processed".to_string(), s.processed.into()),
                            ("awake".to_string(), s.awake.into()),
                            ("lifted".to_string(), s.lifted.into()),
                            ("splice_micros".to_string(), s.splice_us.into()),
                        ];
                        if let Some(hr) = &s.hierarchy_repair {
                            fields.push((
                                "hierarchy_repair".to_string(),
                                obj([
                                    ("repair_micros", hr.repair_us.into()),
                                    ("preserved_subtrees", hr.preserved_subtrees.into()),
                                    ("preserved_nodes", hr.preserved_nodes.into()),
                                    ("rebuilt_nodes", hr.rebuilt_nodes.into()),
                                    ("dirty_cliques", hr.dirty_cliques.into()),
                                    ("scanned_scliques", hr.scanned_scliques.into()),
                                    ("full_rebuild", hr.full_rebuild.into()),
                                ]),
                            ));
                        }
                        Json::Obj(fields)
                    })
                    .collect(),
            ),
        ]);
        if let (Some(seq), Json::Obj(members)) = (wal_seq, &mut fields) {
            members.push(("wal_seq".to_string(), seq.into()));
        }
        Ok(fields)
    }

    /// Rejects malformed batches before anything (WAL or engine) sees
    /// them: self-loops, duplicate edges within a batch, an edge both
    /// inserted and removed, and vertex ids far beyond the current graph
    /// (a garbage id would otherwise allocate per-vertex arrays to match
    /// it). Errors name the offending edge; nothing is partially applied.
    fn validate_batch(
        &self,
        insert: &[(VertexId, VertexId)],
        remove: &[(VertexId, VertexId)],
    ) -> Result<(), String> {
        /// New vertex ids a single insert batch may introduce.
        const MAX_VERTEX_GROWTH: u64 = 1 << 20;
        let n = self.engine.stats().vertices as u64;
        let cap = n + MAX_VERTEX_GROWTH;
        let mut seen = std::collections::HashSet::new();
        for (label, edges, limit) in [("insert", insert, cap), ("remove", remove, n)] {
            for &(u, v) in edges {
                if u == v {
                    return Err(format!("{label} edge [{u},{v}] is a self-loop"));
                }
                let big = u64::from(u.max(v));
                if big >= limit {
                    return Err(if label == "remove" {
                        format!(
                            "remove edge [{u},{v}]: vertex {big} is out of range \
                             (graph has {n} vertices)"
                        )
                    } else {
                        format!(
                            "insert edge [{u},{v}]: vertex {big} is out of range \
                             (graph has {n} vertices; one batch may introduce ids \
                             up to {})",
                            cap - 1
                        )
                    });
                }
                if !seen.insert((label, (u.min(v), u.max(v)))) {
                    return Err(format!("{label} edge [{u},{v}] appears twice in the batch"));
                }
            }
        }
        for &(u, v) in remove {
            if seen.contains(&("insert", (u.min(v), u.max(v)))) {
                return Err(format!("edge [{u},{v}] is both inserted and removed in one batch"));
            }
        }
        Ok(())
    }

    fn save(&mut self, req: &Json) -> Result<Json, String> {
        let path = req
            .get("path")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing string field \"path\"".to_string())?;
        let snap = self.engine.to_snapshot();
        crate::recovery::write_snapshot_atomic(
            &snap,
            std::path::Path::new(path),
            &FailPoints::none(),
        )
        .map_err(|e| format!("save {path:?}: {e}"))?;
        Ok(obj([("path", path.into()), ("spaces", snap.spaces.len().into())]))
    }

    fn checkpoint_op(&mut self) -> Result<Json, String> {
        let d = self
            .durability
            .as_mut()
            .ok_or_else(|| "durability disabled (start with --durable DIR)".to_string())?;
        let ck = d.checkpoint(&mut self.engine).map_err(|e| format!("checkpoint: {e}"))?;
        Ok(obj([
            ("path", ck.path.display().to_string().into()),
            ("spaces", ck.spaces.into()),
            ("snapshot_bytes", ck.snapshot_bytes.into()),
            ("wal_bytes_truncated", ck.wal_bytes_truncated.into()),
            ("generation", ck.generation.into()),
        ]))
    }

    fn wal_stats_op(&self) -> Result<Json, String> {
        let d = self
            .durability
            .as_ref()
            .ok_or_else(|| "durability disabled (start with --durable DIR)".to_string())?;
        let s = d.wal_stats();
        let r = d.recovery();
        Ok(obj([
            ("path", s.path.display().to_string().into()),
            ("generation", s.generation.into()),
            ("records", s.records.into()),
            ("bytes", s.bytes.into()),
            ("pending_sync", s.pending_sync.into()),
            ("policy", s.policy.into()),
            ("checkpoints", d.checkpoints_taken().into()),
            (
                "recovery",
                obj([
                    ("snapshot_loaded", r.snapshot_loaded.into()),
                    ("cold_start", r.cold_start.into()),
                    ("replayed", r.replayed.into()),
                    ("torn_bytes", r.torn_bytes.into()),
                    ("wall_micros", r.wall_us.into()),
                ]),
            ),
        ]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use hdsd_graph::graph_from_edges;
    use hdsd_nucleus::LocalConfig;

    fn demo_server() -> Server {
        let g = graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (2, 4),
            (2, 5),
            (3, 4),
            (3, 5),
            (4, 5),
            (5, 6),
        ]);
        let cfg = EngineConfig {
            spaces: vec![SpaceSel::Core, SpaceSel::Truss, SpaceSel::Nucleus34],
            local: LocalConfig::sequential(),
        };
        Server::new(Engine::new(g, &cfg))
    }

    fn ok(server: &mut Server, line: &str) -> Json {
        let h = server.handle_line(line);
        let v = Json::parse(&h.response).expect("response is valid JSON");
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{line} → {}", h.response);
        assert!(v.get("micros").is_some());
        v
    }

    #[test]
    fn scripted_session() {
        let mut s = demo_server();
        let v = ok(&mut s, r#"{"op":"stats"}"#);
        assert_eq!(v.get("edges").unwrap().as_u64(), Some(12));

        let v = ok(&mut s, r#"{"op":"kappa","space":"core","id":0}"#);
        assert_eq!(v.get("kappa").unwrap().as_u64(), Some(3));

        let v = ok(&mut s, r#"{"op":"kappa","space":"truss","vertices":[5,6]}"#);
        assert_eq!(v.get("kappa").unwrap().as_u64(), Some(0));

        let v = ok(&mut s, r#"{"op":"estimate","space":"core","id":6,"iterations":4}"#);
        assert_eq!(v.get("estimate").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("lower").unwrap().as_u64(), Some(1));

        let v = ok(&mut s, r#"{"op":"region","space":"core","id":0}"#);
        assert_eq!(v.get("k").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("num_vertices").unwrap().as_u64(), Some(6));

        let v = ok(&mut s, r#"{"op":"nuclei","space":"truss","k":2}"#);
        assert_eq!(v.get("total").unwrap().as_u64(), Some(1));
        let v = ok(&mut s, r#"{"op":"nuclei","space":"34","k":1}"#);
        assert_eq!(v.get("total").unwrap().as_u64(), Some(2));

        // Drop the tail edge: vertex 6 leaves every core.
        let v = ok(&mut s, r#"{"op":"remove","edges":[[5,6]]}"#);
        assert_eq!(v.get("removed").unwrap().as_u64(), Some(1));
        let v = ok(&mut s, r#"{"op":"kappa","space":"core","id":6}"#);
        assert_eq!(v.get("kappa").unwrap().as_u64(), Some(0));

        // Close the K5 over {0,1,2,3,4}: core numbers rise to 4.
        let v = ok(&mut s, r#"{"op":"update","insert":[[0,4],[1,4]],"remove":[]}"#);
        assert_eq!(v.get("inserted").unwrap().as_u64(), Some(2));
        let v = ok(&mut s, r#"{"op":"kappa","space":"core","id":4}"#);
        assert_eq!(v.get("kappa").unwrap().as_u64(), Some(4));

        let h = s.handle_line(r#"{"op":"shutdown"}"#);
        assert!(h.shutdown);
    }

    #[test]
    fn empty_graph_nuclei_and_region_have_stable_shapes() {
        let mut s = Server::new(Engine::new(
            hdsd_graph::graph_from_edges([]),
            &EngineConfig {
                spaces: vec![SpaceSel::Core, SpaceSel::Truss, SpaceSel::Nucleus34],
                local: LocalConfig::sequential(),
            },
        ));
        for space in ["core", "truss", "34"] {
            let h = s.handle_line(&format!(r#"{{"op":"nuclei","space":"{space}","k":1}}"#));
            // Pin the exact shape (micros excluded: it is the only
            // nondeterministic field and always the trailing member).
            let prefix = format!(
                r#"{{"ok":true,"space":"{}","k":1,"total":0,"nuclei":[],"micros":"#,
                SpaceSel::parse(space).unwrap().name()
            );
            assert!(h.response.starts_with(&prefix), "{space}: {}", h.response);
            let v = Json::parse(&h.response).unwrap();
            assert_eq!(v.get("total").unwrap().as_u64(), Some(0));
            assert_eq!(v.get("nuclei").unwrap().as_array(), Some(&[][..]));
        }
        // Region lookups against the empty graph fail cleanly...
        let h = s.handle_line(r#"{"op":"region","space":"core","id":0}"#);
        let v = Json::parse(&h.response).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert!(v.get("error").unwrap().as_str().unwrap().contains("out of range"));
        // ...and none of the above made a trivial hierarchy resident.
        let v = ok(&mut s, r#"{"op":"stats"}"#);
        for sp in v.get("spaces").unwrap().as_array().unwrap() {
            assert_eq!(sp.get("hierarchy_resident").and_then(Json::as_bool), Some(false));
        }
    }

    #[test]
    fn update_reports_hierarchy_repair_telemetry() {
        let mut s = demo_server();
        // No hierarchy resident yet: repair time is zero, no per-space blob.
        let v = ok(&mut s, r#"{"op":"update","insert":[[0,6]],"remove":[]}"#);
        assert_eq!(v.get("hierarchy_repair_micros").unwrap().as_u64(), Some(0));
        // Make the hierarchies resident, then update again.
        ok(&mut s, r#"{"op":"region","space":"core","id":0}"#);
        ok(&mut s, r#"{"op":"nuclei","space":"truss","k":1}"#);
        let v = ok(&mut s, r#"{"op":"update","insert":[[1,6]],"remove":[]}"#);
        assert!(v.get("hierarchy_repair_micros").unwrap().as_u64().is_some());
        let spaces = v.get("spaces").unwrap().as_array().unwrap();
        let by_name = |n: &str| {
            spaces.iter().find(|s| s.get("space").and_then(Json::as_str) == Some(n)).unwrap()
        };
        for name in ["core", "truss"] {
            let hr = by_name(name)
                .get("hierarchy_repair")
                .unwrap_or_else(|| panic!("{name} should report a repair: {}", v));
            assert!(hr.get("preserved_nodes").unwrap().as_u64().is_some());
            assert!(hr.get("scanned_scliques").unwrap().as_u64().is_some());
        }
        // The (3,4) hierarchy was never queried, so nothing was repaired.
        assert!(by_name("nucleus34").get("hierarchy_repair").is_none());
        // Region queries after a repaired update serve the new graph: the
        // region's threshold is the query vertex's (updated) κ.
        let kappa6 = ok(&mut s, r#"{"op":"kappa","space":"core","id":6}"#)
            .get("kappa")
            .unwrap()
            .as_u64()
            .unwrap();
        let region = ok(&mut s, r#"{"op":"region","space":"core","id":6}"#);
        assert_eq!(region.get("k").unwrap().as_u64(), Some(kappa6));
    }

    #[test]
    fn stats_response_pins_the_per_space_shape() {
        let mut s = demo_server();
        let v = ok(&mut s, r#"{"op":"stats"}"#);
        let spaces = v.get("spaces").unwrap().as_array().unwrap();
        assert_eq!(spaces.len(), 3);
        for sp in spaces {
            // Pin the exact member set and order: dashboards and the smoke
            // script key on this shape.
            let Json::Obj(members) = sp else { panic!("space stat must be an object") };
            let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(
                keys,
                [
                    "space",
                    "cliques",
                    "max_kappa",
                    "hierarchy_resident",
                    "build_micros",
                    "peel_micros"
                ],
                "{}",
                sp
            );
            assert!(sp.get("build_micros").unwrap().as_u64().is_some());
            assert!(sp.get("peel_micros").unwrap().as_u64().is_some());
        }
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut s = demo_server();
        for line in [
            "not json",
            r#"{"op":"nope"}"#,
            r#"{"op":"kappa","space":"core"}"#,
            r#"{"op":"kappa","space":"hyper","id":0}"#,
            r#"{"op":"kappa","space":"core","id":999}"#,
            r#"{"op":"update"}"#,
            r#"{"op":"kappa","space":"truss","vertices":[0,9]}"#,
        ] {
            let h = s.handle_line(line);
            let v = Json::parse(&h.response).unwrap();
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{line}");
            assert!(v.get("error").is_some(), "{line}");
            assert!(!h.shutdown);
        }
        // The server still answers after errors.
        ok(&mut s, r#"{"op":"stats"}"#);
    }

    fn err(server: &mut Server, line: &str) -> String {
        let h = server.handle_line(line);
        let v = Json::parse(&h.response).expect("response is valid JSON");
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{line} → {}", h.response);
        v.get("error").and_then(Json::as_str).expect("error field").to_string()
    }

    #[test]
    fn malformed_batches_are_rejected_before_the_engine() {
        let mut s = demo_server();
        let before = ok(&mut s, r#"{"op":"stats"}"#);
        let cases = [
            (r#"{"op":"update","insert":[[3,3]]}"#, "self-loop"),
            (r#"{"op":"update","insert":[[0,5],[5,0]]}"#, "twice"),
            (r#"{"op":"update","insert":[[0,4294000000]]}"#, "out of range"),
            (r#"{"op":"remove","edges":[[0,400]]}"#, "out of range"),
            (r#"{"op":"update","insert":[[0,6]],"remove":[[6,0]]}"#, "both inserted and removed"),
        ];
        for (line, needle) in cases {
            let e = err(&mut s, line);
            assert!(e.contains(needle), "{line}: {e}");
        }
        // Nothing was partially applied: graph unchanged, no update counted.
        let after = ok(&mut s, r#"{"op":"stats"}"#);
        for field in ["vertices", "edges", "updates_applied"] {
            assert_eq!(
                after.get(field).unwrap().as_u64(),
                before.get(field).unwrap().as_u64(),
                "{field} drifted"
            );
        }
    }

    #[test]
    fn panicking_request_is_answered_and_serving_continues() {
        let mut s = demo_server();
        // Hidden unless explicitly enabled.
        assert!(err(&mut s, r#"{"op":"debug_panic"}"#).contains("unknown op"));
        s.enable_debug_ops();
        let e = err(&mut s, r#"{"op":"debug_panic"}"#);
        assert!(e.contains("internal panic"), "{e}");
        // The very next request is served normally.
        let v = ok(&mut s, r#"{"op":"kappa","space":"core","id":0}"#);
        assert_eq!(v.get("kappa").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn durability_ops_require_a_durable_server() {
        let mut s = demo_server();
        for line in [r#"{"op":"checkpoint"}"#, r#"{"op":"wal_stats"}"#] {
            assert!(err(&mut s, line).contains("durability disabled"), "{line}");
        }
        // Updates still work, they just carry no wal_seq.
        let v = ok(&mut s, r#"{"op":"update","insert":[[0,6]]}"#);
        assert!(v.get("wal_seq").is_none());
    }

    #[test]
    fn expired_deadlines_degrade_estimates_and_fail_hierarchy_ops_cleanly() {
        let mut s = demo_server();
        // An already-expired deadline: the estimate still answers, marked
        // truncated, instead of exploring.
        let v = ok(&mut s, r#"{"op":"estimate","space":"core","id":0,"deadline_ms":0}"#);
        assert_eq!(v.get("truncated").and_then(Json::as_bool), Some(true));
        // Hierarchy-backed ops refuse up front rather than materializing.
        for line in [
            r#"{"op":"nuclei","space":"core","k":1,"deadline_ms":0}"#,
            r#"{"op":"region","space":"core","id":0,"deadline_ms":0}"#,
            r#"{"op":"node","space":"core","node":0,"deadline_ms":0}"#,
        ] {
            assert!(err(&mut s, line).contains("deadline exceeded"), "{line}");
        }
        // A generous deadline changes nothing.
        let v = ok(&mut s, r#"{"op":"region","space":"core","id":0,"deadline_ms":60000}"#);
        assert_eq!(v.get("k").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn durable_server_logs_checkpoints_and_recovers() {
        use crate::recovery::{Durability, DurableConfig};
        use crate::wal::{FailPoints, FsyncPolicy};
        let dir = std::env::temp_dir().join(format!("hdsd_proto_durable_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = || DurableConfig {
            dir: dir.clone(),
            policy: FsyncPolicy::Always,
            failpoints: FailPoints::none(),
        };
        let fresh = || {
            Ok(Engine::new(
                graph_from_edges([(0, 1), (0, 2), (1, 2), (2, 3)]),
                &EngineConfig::default(),
            ))
        };
        let (engine, dur, _) = Durability::open(cfg(), LocalConfig::sequential(), fresh).unwrap();
        let mut s = Server::with_durability(engine, dur);
        let v = ok(&mut s, r#"{"op":"update","insert":[[1,3],[0,3]]}"#);
        assert_eq!(v.get("wal_seq").unwrap().as_u64(), Some(1));
        let v = ok(&mut s, r#"{"op":"wal_stats"}"#);
        assert_eq!(v.get("records").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("policy").and_then(Json::as_str), Some("always"));
        let v = ok(&mut s, r#"{"op":"checkpoint"}"#);
        assert!(v.get("wal_bytes_truncated").unwrap().as_u64().unwrap() > 0);
        let v = ok(&mut s, r#"{"op":"update","insert":[[0,4],[1,4]]}"#);
        assert_eq!(v.get("wal_seq").unwrap().as_u64(), Some(1)); // fresh generation
        let kappa = ok(&mut s, r#"{"op":"kappa","space":"core","id":0}"#);
        let kappa = kappa.get("kappa").unwrap().as_u64().unwrap();
        drop(s); // unclean: no shutdown, no final checkpoint

        let (engine, dur, rep) =
            Durability::open(
                cfg(),
                LocalConfig::sequential(),
                || Err("must not cold start".into()),
            )
            .unwrap();
        assert!(rep.snapshot_loaded && rep.replayed == 1);
        let mut s = Server::with_durability(engine, dur);
        let v = ok(&mut s, r#"{"op":"kappa","space":"core","id":0}"#);
        assert_eq!(v.get("kappa").unwrap().as_u64(), Some(kappa));
        // Graceful shutdown checkpoints.
        let h = s.handle_line(r#"{"op":"shutdown"}"#);
        assert!(h.shutdown);
        assert!(h.response.contains("\"checkpointed\":true"), "{}", h.response);
        std::fs::remove_dir_all(&dir).ok();
    }
}
