//! The line-delimited JSON request protocol.
//!
//! One request per line in, one response per line out, over stdin/stdout
//! or a TCP connection. Every response carries `"ok"` plus per-request
//! telemetry (`micros`, and op-specific counters: sweeps for updates,
//! explored cliques for estimates).
//!
//! ```text
//! → {"op":"kappa","space":"core","id":4}
//! ← {"ok":true,"space":"core","id":4,"kappa":3,"vertices":[4],"micros":12}
//! → {"op":"estimate","space":"truss","vertices":[0,1],"iterations":3,"budget":4096}
//! ← {"ok":true,"estimate":2,"lower":2,"interval":[2,2],...}
//! → {"op":"update","insert":[[7,9]],"remove":[[0,3]]}
//! ← {"ok":true,"inserted":1,"removed":1,"spaces":[{"space":"core","sweeps":3,...}],...}
//! ```
//!
//! Ops: `stats`, `kappa`, `estimate`, `nuclei`, `region`, `node`,
//! `insert`, `remove`, `update`, `save`, `shutdown`.

use std::time::Instant;

use hdsd_graph::VertexId;
use hdsd_nucleus::{write_snapshot, QueryOptions};

use crate::engine::{Engine, RegionReport, SpaceSel};
use crate::json::{obj, Json};

/// Stateful request handler wrapping an [`Engine`].
pub struct Server {
    engine: Engine,
    started: Instant,
    requests: u64,
}

/// A handled request: the response line plus whether to shut down.
pub struct Handled {
    /// Response JSON (no trailing newline).
    pub response: String,
    /// True when the request asked the server to stop.
    pub shutdown: bool,
}

impl Server {
    /// Wraps an engine.
    pub fn new(engine: Engine) -> Server {
        Server { engine, started: Instant::now(), requests: 0 }
    }

    /// The wrapped engine (for tests and benches).
    pub fn engine_mut(&mut self) -> &mut Engine {
        &mut self.engine
    }

    /// Handles one request line, returning the response line.
    pub fn handle_line(&mut self, line: &str) -> Handled {
        let start = Instant::now();
        self.requests += 1;
        let (mut response, shutdown) = match self.dispatch(line) {
            Ok((fields, shutdown)) => {
                let mut members = vec![("ok".to_string(), Json::Bool(true))];
                if let Json::Obj(rest) = fields {
                    members.extend(rest);
                }
                (Json::Obj(members), shutdown)
            }
            Err(e) => (obj([("ok", Json::Bool(false)), ("error", e.into())]), false),
        };
        if let Json::Obj(members) = &mut response {
            members.push(("micros".to_string(), (start.elapsed().as_micros() as u64).into()));
        }
        Handled { response: response.to_string(), shutdown }
    }

    fn dispatch(&mut self, line: &str) -> Result<(Json, bool), String> {
        let req = Json::parse(line.trim()).map_err(|e| format!("bad JSON: {e}"))?;
        let op = req
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing string field \"op\"".to_string())?;
        let fields = match op {
            "stats" => self.stats(),
            "kappa" => self.kappa(&req)?,
            "estimate" => self.estimate(&req)?,
            "nuclei" => self.nuclei(&req)?,
            "region" => self.region(&req)?,
            "node" => self.node(&req)?,
            "insert" => self.update(Some(&req), None)?,
            "remove" => self.update(None, Some(&req))?,
            "update" => self.update(Some(&req), Some(&req))?,
            "save" => self.save(&req)?,
            "shutdown" => return Ok((obj([("bye", true.into())]), true)),
            other => return Err(format!("unknown op {other:?}")),
        };
        Ok((fields, false))
    }

    fn space_of(&self, req: &Json) -> Result<SpaceSel, String> {
        let name = req
            .get("space")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing string field \"space\"".to_string())?;
        SpaceSel::parse(name).ok_or_else(|| format!("unknown space {name:?} (core|truss|34)"))
    }

    /// Resolves the addressed clique: `"id"` directly, or `"vertices"`
    /// (vertex / edge endpoints / triangle) through the engine's index.
    fn clique_of(&mut self, req: &Json, sel: SpaceSel) -> Result<usize, String> {
        if let Some(id) = req.get("id") {
            return id.as_usize().ok_or_else(|| "\"id\" must be a non-negative integer".into());
        }
        if let Some(vs) = req.get("vertices") {
            let vs = vs.as_array().ok_or("\"vertices\" must be an array")?;
            let verts: Option<Vec<VertexId>> =
                vs.iter().map(|v| v.as_u64().map(|x| x as VertexId)).collect();
            let verts = verts.ok_or("\"vertices\" must contain non-negative integers")?;
            return self.engine.resolve(sel, &verts);
        }
        Err("request needs \"id\" or \"vertices\"".to_string())
    }

    fn stats(&self) -> Json {
        let s = self.engine.stats();
        obj([
            ("vertices", s.vertices.into()),
            ("edges", s.edges.into()),
            ("updates_applied", s.updates_applied.into()),
            ("requests", self.requests.into()),
            ("uptime_ms", (self.started.elapsed().as_millis() as u64).into()),
            (
                "spaces",
                s.spaces
                    .iter()
                    .map(|sp| {
                        obj([
                            ("space", sp.space.as_str().into()),
                            ("cliques", sp.cliques.into()),
                            ("max_kappa", sp.max_kappa.into()),
                            ("hierarchy_resident", sp.hierarchy_resident.into()),
                            ("build_micros", sp.build_us.into()),
                            ("peel_micros", sp.peel_us.into()),
                        ])
                    })
                    .collect(),
            ),
        ])
    }

    fn kappa(&mut self, req: &Json) -> Result<Json, String> {
        let sel = self.space_of(req)?;
        let id = self.clique_of(req, sel)?;
        let kappa = self.engine.kappa_of(sel, id)?;
        let vertices = self.engine.clique_vertices(sel, id)?;
        Ok(obj([
            ("space", sel.name().into()),
            ("id", id.into()),
            ("kappa", kappa.into()),
            ("vertices", vertices.into_iter().collect()),
        ]))
    }

    fn estimate(&mut self, req: &Json) -> Result<Json, String> {
        let sel = self.space_of(req)?;
        let id = self.clique_of(req, sel)?;
        let opts = QueryOptions {
            iterations: req.get("iterations").and_then(Json::as_usize).unwrap_or(3),
            budget: req.get("budget").and_then(Json::as_usize),
            lower_bound: req.get("lower_bound").and_then(Json::as_bool).unwrap_or(true),
        };
        let est = self.engine.estimate(sel, id, &opts)?;
        Ok(obj([
            ("space", sel.name().into()),
            ("id", id.into()),
            ("estimate", est.estimate.into()),
            ("lower", est.lower.into()),
            ("interval", [est.lower, est.estimate].into_iter().collect()),
            ("degree", est.degree.into()),
            ("explored", est.explored.into()),
            ("iterations", est.iterations.into()),
            ("truncated", est.truncated.into()),
        ]))
    }

    fn nuclei(&mut self, req: &Json) -> Result<Json, String> {
        let sel = self.space_of(req)?;
        let k = req
            .get("k")
            .and_then(Json::as_u64)
            .ok_or_else(|| "missing integer field \"k\"".to_string())? as u32;
        let limit = req.get("limit").and_then(Json::as_usize).unwrap_or(32);
        let nuclei = self.engine.nuclei_at(sel, k)?;
        let total = nuclei.len();
        Ok(obj([
            ("space", sel.name().into()),
            ("k", k.into()),
            ("total", total.into()),
            (
                "nuclei",
                nuclei
                    .into_iter()
                    .take(limit)
                    .map(|n| {
                        obj([("node", n.node.into()), ("k", n.k.into()), ("size", n.size.into())])
                    })
                    .collect(),
            ),
        ]))
    }

    fn region_json(r: RegionReport, sel: SpaceSel, max_vertices: usize) -> Json {
        let total = r.vertices.len();
        obj([
            ("space", sel.name().into()),
            ("node", r.node.into()),
            ("k", r.k.into()),
            ("size", r.size.into()),
            ("num_vertices", total.into()),
            ("vertices", r.vertices.into_iter().take(max_vertices).collect()),
            ("edges", r.density.edges.into()),
            ("density", r.density.density.into()),
        ])
    }

    fn region(&mut self, req: &Json) -> Result<Json, String> {
        let sel = self.space_of(req)?;
        let id = self.clique_of(req, sel)?;
        let max_vertices = req.get("max_vertices").and_then(Json::as_usize).unwrap_or(64);
        let r = self.engine.region_of(sel, id)?;
        Ok(Self::region_json(r, sel, max_vertices))
    }

    fn node(&mut self, req: &Json) -> Result<Json, String> {
        let sel = self.space_of(req)?;
        let node = req
            .get("node")
            .and_then(Json::as_u64)
            .ok_or_else(|| "missing integer field \"node\"".to_string())? as u32;
        let max_vertices = req.get("max_vertices").and_then(Json::as_usize).unwrap_or(64);
        let r = self.engine.node_region(sel, node)?;
        Ok(Self::region_json(r, sel, max_vertices))
    }

    fn edges_field(req: &Json, field: &str) -> Result<Vec<(VertexId, VertexId)>, String> {
        let xs = match req.get(field) {
            None => return Ok(Vec::new()),
            Some(v) => v.as_array().ok_or(format!("\"{field}\" must be an array of [u, v]"))?,
        };
        xs.iter()
            .map(|pair| {
                let p = pair.as_array().filter(|p| p.len() == 2);
                match p {
                    Some([u, v]) => match (u.as_u64(), v.as_u64()) {
                        (Some(u), Some(v)) => Ok((u as VertexId, v as VertexId)),
                        _ => Err(format!("\"{field}\" entries must be integer pairs")),
                    },
                    _ => Err(format!("\"{field}\" entries must be [u, v] pairs")),
                }
            })
            .collect()
    }

    fn update(&mut self, ins_req: Option<&Json>, rm_req: Option<&Json>) -> Result<Json, String> {
        let insert = match ins_req {
            Some(req) => {
                let named = Self::edges_field(req, "insert")?;
                if named.is_empty() {
                    Self::edges_field(req, "edges")?
                } else {
                    named
                }
            }
            None => Vec::new(),
        };
        let remove = match rm_req {
            Some(req) => {
                let named = Self::edges_field(req, "remove")?;
                if named.is_empty() && ins_req.is_none() {
                    Self::edges_field(req, "edges")?
                } else {
                    named
                }
            }
            None => Vec::new(),
        };
        if insert.is_empty() && remove.is_empty() {
            return Err("empty update: provide \"insert\"/\"remove\" (or \"edges\")".to_string());
        }
        let report = self.engine.update(&insert, &remove);
        Ok(obj([
            ("inserted", report.inserted.into()),
            ("removed", report.removed.into()),
            ("wall_micros", report.wall_us.into()),
            ("graph_delta_micros", report.graph_delta_us.into()),
            ("hierarchy_repair_micros", report.hierarchy_repair_us.into()),
            (
                "spaces",
                report
                    .spaces
                    .iter()
                    .map(|s| {
                        let mut fields = vec![
                            ("space".to_string(), s.space.into()),
                            ("sweeps".to_string(), s.sweeps.into()),
                            ("processed".to_string(), s.processed.into()),
                            ("awake".to_string(), s.awake.into()),
                            ("lifted".to_string(), s.lifted.into()),
                            ("splice_micros".to_string(), s.splice_us.into()),
                        ];
                        if let Some(hr) = &s.hierarchy_repair {
                            fields.push((
                                "hierarchy_repair".to_string(),
                                obj([
                                    ("repair_micros", hr.repair_us.into()),
                                    ("preserved_subtrees", hr.preserved_subtrees.into()),
                                    ("preserved_nodes", hr.preserved_nodes.into()),
                                    ("rebuilt_nodes", hr.rebuilt_nodes.into()),
                                    ("dirty_cliques", hr.dirty_cliques.into()),
                                    ("scanned_scliques", hr.scanned_scliques.into()),
                                    ("full_rebuild", hr.full_rebuild.into()),
                                ]),
                            ));
                        }
                        Json::Obj(fields)
                    })
                    .collect(),
            ),
        ]))
    }

    fn save(&mut self, req: &Json) -> Result<Json, String> {
        let path = req
            .get("path")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing string field \"path\"".to_string())?;
        let snap = self.engine.to_snapshot();
        let file = std::fs::File::create(path).map_err(|e| format!("create {path:?}: {e}"))?;
        let mut out = std::io::BufWriter::new(file);
        write_snapshot(&snap, &mut out).map_err(|e| format!("write {path:?}: {e}"))?;
        use std::io::Write as _;
        out.flush().map_err(|e| format!("flush {path:?}: {e}"))?;
        Ok(obj([("path", path.into()), ("spaces", snap.spaces.len().into())]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use hdsd_graph::graph_from_edges;
    use hdsd_nucleus::LocalConfig;

    fn demo_server() -> Server {
        let g = graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (2, 4),
            (2, 5),
            (3, 4),
            (3, 5),
            (4, 5),
            (5, 6),
        ]);
        let cfg = EngineConfig {
            spaces: vec![SpaceSel::Core, SpaceSel::Truss, SpaceSel::Nucleus34],
            local: LocalConfig::sequential(),
        };
        Server::new(Engine::new(g, &cfg))
    }

    fn ok(server: &mut Server, line: &str) -> Json {
        let h = server.handle_line(line);
        let v = Json::parse(&h.response).expect("response is valid JSON");
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{line} → {}", h.response);
        assert!(v.get("micros").is_some());
        v
    }

    #[test]
    fn scripted_session() {
        let mut s = demo_server();
        let v = ok(&mut s, r#"{"op":"stats"}"#);
        assert_eq!(v.get("edges").unwrap().as_u64(), Some(12));

        let v = ok(&mut s, r#"{"op":"kappa","space":"core","id":0}"#);
        assert_eq!(v.get("kappa").unwrap().as_u64(), Some(3));

        let v = ok(&mut s, r#"{"op":"kappa","space":"truss","vertices":[5,6]}"#);
        assert_eq!(v.get("kappa").unwrap().as_u64(), Some(0));

        let v = ok(&mut s, r#"{"op":"estimate","space":"core","id":6,"iterations":4}"#);
        assert_eq!(v.get("estimate").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("lower").unwrap().as_u64(), Some(1));

        let v = ok(&mut s, r#"{"op":"region","space":"core","id":0}"#);
        assert_eq!(v.get("k").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("num_vertices").unwrap().as_u64(), Some(6));

        let v = ok(&mut s, r#"{"op":"nuclei","space":"truss","k":2}"#);
        assert_eq!(v.get("total").unwrap().as_u64(), Some(1));
        let v = ok(&mut s, r#"{"op":"nuclei","space":"34","k":1}"#);
        assert_eq!(v.get("total").unwrap().as_u64(), Some(2));

        // Drop the tail edge: vertex 6 leaves every core.
        let v = ok(&mut s, r#"{"op":"remove","edges":[[5,6]]}"#);
        assert_eq!(v.get("removed").unwrap().as_u64(), Some(1));
        let v = ok(&mut s, r#"{"op":"kappa","space":"core","id":6}"#);
        assert_eq!(v.get("kappa").unwrap().as_u64(), Some(0));

        // Close the K5 over {0,1,2,3,4}: core numbers rise to 4.
        let v = ok(&mut s, r#"{"op":"update","insert":[[0,4],[1,4]],"remove":[]}"#);
        assert_eq!(v.get("inserted").unwrap().as_u64(), Some(2));
        let v = ok(&mut s, r#"{"op":"kappa","space":"core","id":4}"#);
        assert_eq!(v.get("kappa").unwrap().as_u64(), Some(4));

        let h = s.handle_line(r#"{"op":"shutdown"}"#);
        assert!(h.shutdown);
    }

    #[test]
    fn empty_graph_nuclei_and_region_have_stable_shapes() {
        let mut s = Server::new(Engine::new(
            hdsd_graph::graph_from_edges([]),
            &EngineConfig {
                spaces: vec![SpaceSel::Core, SpaceSel::Truss, SpaceSel::Nucleus34],
                local: LocalConfig::sequential(),
            },
        ));
        for space in ["core", "truss", "34"] {
            let h = s.handle_line(&format!(r#"{{"op":"nuclei","space":"{space}","k":1}}"#));
            // Pin the exact shape (micros excluded: it is the only
            // nondeterministic field and always the trailing member).
            let prefix = format!(
                r#"{{"ok":true,"space":"{}","k":1,"total":0,"nuclei":[],"micros":"#,
                SpaceSel::parse(space).unwrap().name()
            );
            assert!(h.response.starts_with(&prefix), "{space}: {}", h.response);
            let v = Json::parse(&h.response).unwrap();
            assert_eq!(v.get("total").unwrap().as_u64(), Some(0));
            assert_eq!(v.get("nuclei").unwrap().as_array(), Some(&[][..]));
        }
        // Region lookups against the empty graph fail cleanly...
        let h = s.handle_line(r#"{"op":"region","space":"core","id":0}"#);
        let v = Json::parse(&h.response).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert!(v.get("error").unwrap().as_str().unwrap().contains("out of range"));
        // ...and none of the above made a trivial hierarchy resident.
        let v = ok(&mut s, r#"{"op":"stats"}"#);
        for sp in v.get("spaces").unwrap().as_array().unwrap() {
            assert_eq!(sp.get("hierarchy_resident").and_then(Json::as_bool), Some(false));
        }
    }

    #[test]
    fn update_reports_hierarchy_repair_telemetry() {
        let mut s = demo_server();
        // No hierarchy resident yet: repair time is zero, no per-space blob.
        let v = ok(&mut s, r#"{"op":"update","insert":[[0,6]],"remove":[]}"#);
        assert_eq!(v.get("hierarchy_repair_micros").unwrap().as_u64(), Some(0));
        // Make the hierarchies resident, then update again.
        ok(&mut s, r#"{"op":"region","space":"core","id":0}"#);
        ok(&mut s, r#"{"op":"nuclei","space":"truss","k":1}"#);
        let v = ok(&mut s, r#"{"op":"update","insert":[[1,6]],"remove":[]}"#);
        assert!(v.get("hierarchy_repair_micros").unwrap().as_u64().is_some());
        let spaces = v.get("spaces").unwrap().as_array().unwrap();
        let by_name = |n: &str| {
            spaces.iter().find(|s| s.get("space").and_then(Json::as_str) == Some(n)).unwrap()
        };
        for name in ["core", "truss"] {
            let hr = by_name(name)
                .get("hierarchy_repair")
                .unwrap_or_else(|| panic!("{name} should report a repair: {}", v));
            assert!(hr.get("preserved_nodes").unwrap().as_u64().is_some());
            assert!(hr.get("scanned_scliques").unwrap().as_u64().is_some());
        }
        // The (3,4) hierarchy was never queried, so nothing was repaired.
        assert!(by_name("nucleus34").get("hierarchy_repair").is_none());
        // Region queries after a repaired update serve the new graph: the
        // region's threshold is the query vertex's (updated) κ.
        let kappa6 = ok(&mut s, r#"{"op":"kappa","space":"core","id":6}"#)
            .get("kappa")
            .unwrap()
            .as_u64()
            .unwrap();
        let region = ok(&mut s, r#"{"op":"region","space":"core","id":6}"#);
        assert_eq!(region.get("k").unwrap().as_u64(), Some(kappa6));
    }

    #[test]
    fn stats_response_pins_the_per_space_shape() {
        let mut s = demo_server();
        let v = ok(&mut s, r#"{"op":"stats"}"#);
        let spaces = v.get("spaces").unwrap().as_array().unwrap();
        assert_eq!(spaces.len(), 3);
        for sp in spaces {
            // Pin the exact member set and order: dashboards and the smoke
            // script key on this shape.
            let Json::Obj(members) = sp else { panic!("space stat must be an object") };
            let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(
                keys,
                [
                    "space",
                    "cliques",
                    "max_kappa",
                    "hierarchy_resident",
                    "build_micros",
                    "peel_micros"
                ],
                "{}",
                sp
            );
            assert!(sp.get("build_micros").unwrap().as_u64().is_some());
            assert!(sp.get("peel_micros").unwrap().as_u64().is_some());
        }
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut s = demo_server();
        for line in [
            "not json",
            r#"{"op":"nope"}"#,
            r#"{"op":"kappa","space":"core"}"#,
            r#"{"op":"kappa","space":"hyper","id":0}"#,
            r#"{"op":"kappa","space":"core","id":999}"#,
            r#"{"op":"update"}"#,
            r#"{"op":"kappa","space":"truss","vertices":[0,9]}"#,
        ] {
            let h = s.handle_line(line);
            let v = Json::parse(&h.response).unwrap();
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{line}");
            assert!(v.get("error").is_some(), "{line}");
            assert!(!h.shutdown);
        }
        // The server still answers after errors.
        ok(&mut s, r#"{"op":"stats"}"#);
    }
}
