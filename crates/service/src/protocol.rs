//! The line-delimited JSON request protocol.
//!
//! One request per line in, one response per line out, over stdin/stdout
//! or a TCP connection. Every response carries `"ok"` plus per-request
//! telemetry (`micros`, and op-specific counters: sweeps for updates,
//! explored cliques for estimates).
//!
//! ```text
//! → {"op":"kappa","space":"core","id":4}
//! ← {"ok":true,"space":"core","id":4,"kappa":3,"vertices":[4],"micros":12}
//! → {"op":"estimate","space":"truss","vertices":[0,1],"iterations":3,"budget":4096}
//! ← {"ok":true,"estimate":2,"lower":2,"interval":[2,2],...}
//! → {"op":"update","insert":[[7,9]],"remove":[[0,3]]}
//! ← {"ok":true,"inserted":1,"removed":1,"spaces":[{"space":"core","sweeps":3,...}],...}
//! ```
//!
//! Ops: `stats`, `kappa`, `estimate`, `nuclei`, `region`, `node`,
//! `insert`, `remove`, `update`, `save`, `checkpoint`, `wal_stats`,
//! `metrics`, `slow_log`, `shutdown` (plus `debug_panic` and
//! `debug_stall` when debug ops are enabled). The normative op-by-op
//! specification (schemas, error shapes, semantics) lives in
//! `docs/PROTOCOL.md`, whose examples are replayed against a live
//! engine by `tests/protocol_doc_examples.rs`.
//!
//! ## Epochs: the read/write split
//!
//! A [`Server`] is a cheap **handle**; [`Server::handle`] mints siblings
//! sharing one engine. Read ops (`stats`, `kappa`, `estimate`, `nuclei`,
//! `region`, `node`, `save`, `metrics`, `slow_log`) pin the handle's
//! current epoch ([`crate::epoch::EpochReader`]) and answer from that
//! immutable view — wait-free, any number of threads, never blocked by a
//! refresh. Mutating ops (`insert`/`remove`/`update`, `checkpoint`,
//! `shutdown`) serialize on the single writer lane, build the next epoch
//! off to the side, and publish it *before* acking, so a synchronous
//! client always reads its own writes. `update`-family responses and
//! `stats` carry the `epoch` field (the published / pinned epoch id).
//!
//! ## Timing fields on the wire
//!
//! Every duration crosses the wire in **microseconds** under a key that
//! ends in `micros` (`micros`, `build_micros`, `splice_micros`, ...).
//! Internally the same numbers live in Rust struct fields named with the
//! `_us` suffix (`build_us`, `splice_us`); the protocol layer is the only
//! place the rename happens, and `timing_keys_are_micros_only` pins the
//! complete set of emitted timing keys so a new field cannot drift into a
//! third convention (`_ms`, `_seconds`, bare names) unnoticed. The
//! sanctioned exceptions: the `stats` op's `uptime_seconds` (named with
//! its unit for the same reason) and `retry_after_ms` on `overloaded`
//! errors — a client back-off *hint* derived from queue depth, not a
//! measured duration.
//!
//! ## Telemetry
//!
//! Every request — including failed ones — is counted in the global
//! metrics registry (`requests_total`, `requests_failed_total`) and its
//! latency recorded in a per-op histogram (`request_micros{op=...}`).
//! Responses always carry `micros`, success or failure. The `metrics` op
//! returns the whole registry as JSON (the same data `--metrics-addr`
//! exposes as Prometheus text); `slow_log` returns the bounded in-memory
//! log of requests that exceeded the `--trace-slow-ms` threshold, each
//! with its recorded span tree. When tracing is armed, an over-threshold
//! response also carries its own `trace` array inline.
//!
//! ## Durability
//!
//! When the server is opened over a durability directory (`--durable DIR`),
//! every `insert`/`remove`/`update` batch is appended to the write-ahead
//! log and fsynced per policy *before* the engine applies it; the response
//! then carries the batch's `wal_seq`. `checkpoint` folds the engine into
//! an atomic snapshot (temp file + rename) and truncates the WAL;
//! `wal_stats` reports log telemetry plus the startup recovery report.
//! `save` writes a point-in-time snapshot to an arbitrary path with the
//! same temp-file + rename + fsync discipline.
//!
//! ## Deadlines, cancellation, and overload
//!
//! Any read or update op may carry `"deadline_ms": N`. The deadline is
//! carried as a [`CancelToken`] into the nucleus kernels and checked at
//! chunk boundaries (peel drain, And frontier sweeps, hierarchy
//! union-find batches), so work aborts *mid-computation* with bounded
//! overshoot and answers `deadline exceeded (<stage>)`, naming the stage
//! that stopped. Estimates degrade gracefully instead (exploration stops,
//! `"truncated":true`). The TCP front-end threads each connection's
//! disconnect flag through the same token, so work for a dead client
//! stops at its next chunk (`request cancelled (<stage>)`, counted in
//! `requests_cancelled_total`). Durable updates check the deadline only
//! *before* the WAL append — a logged batch is always applied.
//!
//! Under load, the dispatch loop sheds requests with
//! `{"ok":false,"error":"overloaded","retry_after_ms":N}` and a brownout
//! controller ([`crate::overload`]) degrades exact `kappa`/`region`
//! answers to budgeted Theorem-1 estimates marked `"degraded":true` —
//! see the "Overload & degradation" section of `docs/PROTOCOL.md`.
//!
//! Every request is additionally hardened: a panicking handler is caught
//! and answered with `{"ok":false,"error":"internal panic: ..."}`, and the
//! server keeps serving.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use hdsd_graph::VertexId;
use hdsd_nucleus::{CancelToken, QueryOptions};
use hdsd_telemetry::{counter_add, labeled, trace, Gauge, Histogram, MetricSnapshot, Registry};

use crate::engine::{Engine, EngineView, RegionReport, SpaceSel};
use crate::epoch::{EpochCell, EpochReader};
use crate::json::{obj, Json};
use crate::overload::OverloadState;
use crate::recovery::Durability;
use crate::wal::FailPoints;

/// Sentinel for "slow tracing disabled" in [`Shared::trace_slow_us`].
const TRACE_DISABLED: u64 = u64::MAX;

/// The error string of a shed request; [`Server::handle_line`] attaches
/// `retry_after_ms` to any failure carrying exactly this message, so the
/// dispatch loop and in-handler sheds produce one wire shape.
pub const OVERLOADED: &str = "overloaded";

/// Exploration budget of a brownout-degraded answer: small enough that a
/// degraded request is always cheap, large enough that the Theorem-1
/// interval is useful on real graphs.
const DEGRADED_BUDGET: usize = 512;

/// The single writer lane: the engine plus its durability state, behind
/// one mutex. Every mutating op (`insert`/`remove`/`update`,
/// `checkpoint`, `shutdown`) locks it, appends to the WAL *first*, builds
/// the next epoch through [`Engine::update`], and publishes it; read ops
/// never touch this lock.
struct WriterLane {
    engine: Engine,
    durability: Option<Durability>,
}

/// State shared by every [`Server`] handle of one serving process.
struct Shared {
    /// The epoch publication point: readers pin it, the writer lane
    /// publishes into it after every applied batch.
    cell: Arc<EpochCell<EngineView>>,
    writer: Mutex<WriterLane>,
    debug_ops: AtomicBool,
    started: Instant,
    requests: AtomicU64,
    failed: AtomicU64,
    /// Requests slower than this (µs) get their span tree attached and
    /// are pushed to the slow-query log; [`TRACE_DISABLED`] turns slow
    /// tracing off.
    trace_slow_us: AtomicU64,
    /// Whether this server runs over a durability directory (immutable
    /// for the process lifetime, so `stats` can answer without locking).
    durable: bool,
    /// Mirrors of the WAL's generation / record count, refreshed by the
    /// writer lane after every durable op so the read-lane `stats` op
    /// reports them without taking the writer lock.
    wal_generation: AtomicU64,
    wal_seq: AtomicU64,
    /// Overload accounting and the brownout tier, shared with the
    /// dispatch loop (which drives admission and the controller).
    overload: Arc<OverloadState>,
}

/// Stateful request handler wrapping an [`Engine`], optionally backed by
/// a durability directory (WAL + checkpoints).
///
/// A `Server` is a **handle**: [`Server::handle`] mints siblings that
/// share the engine, durability state, and request counters but own
/// their own epoch reader — one handle per connection-serving thread.
/// Read ops pin the handle's epoch and run wait-free; write ops
/// serialize on the shared writer lane and publish the next epoch.
pub struct Server {
    shared: Arc<Shared>,
    /// This handle's pinned-epoch reader (the wait-free read path).
    reader: EpochReader<EngineView>,
    /// Cached per-op latency histogram handles (op labels are a small
    /// closed set, so each registry lookup happens once per op).
    op_hist: HashMap<&'static str, Arc<Histogram>>,
    /// Cached registry handles for the epoch metadata metrics.
    epoch_gauge: Arc<Gauge>,
    lag_gauge: Arc<Gauge>,
    publish_hist: Arc<Histogram>,
}

/// Renders a caught panic payload as a response error string.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string payload".to_string());
    format!("internal panic: {msg}")
}

/// A handled request: the response line plus whether to shut down.
pub struct Handled {
    /// Response JSON (no trailing newline).
    pub response: String,
    /// True when the request asked the server to stop.
    pub shutdown: bool,
}

impl Server {
    /// Wraps an engine (no durability: updates live only in memory).
    pub fn new(engine: Engine) -> Server {
        Self::build(engine, None)
    }

    /// Wraps a recovered engine together with its durability state: every
    /// accepted update batch is WAL-logged before it is applied.
    pub fn with_durability(engine: Engine, durability: Durability) -> Server {
        Self::build(engine, Some(durability))
    }

    fn build(engine: Engine, durability: Option<Durability>) -> Server {
        let cell = Arc::new(EpochCell::new(engine.view()));
        let durable = durability.is_some();
        let (wal_generation, wal_seq) = durability
            .as_ref()
            .map(|d| {
                let w = d.wal_stats();
                (w.generation, w.records)
            })
            .unwrap_or((0, 0));
        let shared = Arc::new(Shared {
            cell,
            writer: Mutex::new(WriterLane { engine, durability }),
            debug_ops: AtomicBool::new(false),
            started: Instant::now(),
            requests: AtomicU64::new(0),
            failed: AtomicU64::new(0),
            trace_slow_us: AtomicU64::new(TRACE_DISABLED),
            durable,
            wal_generation: AtomicU64::new(wal_generation),
            wal_seq: AtomicU64::new(wal_seq),
            overload: OverloadState::new(),
        });
        Self::from_shared(shared)
    }

    fn from_shared(shared: Arc<Shared>) -> Server {
        let reader = shared.cell.reader();
        let reg = Registry::global();
        Server {
            reader,
            op_hist: HashMap::new(),
            epoch_gauge: reg.gauge("epoch_id"),
            lag_gauge: reg.gauge("reader_epoch_lag"),
            publish_hist: reg.histogram("epoch_publish_micros"),
            shared,
        }
    }

    /// Mints a sibling handle sharing this server's engine, durability
    /// lane, and counters, with its own epoch reader — one per
    /// connection-serving thread.
    pub fn handle(&self) -> Server {
        Self::from_shared(Arc::clone(&self.shared))
    }

    /// Enables the `debug_panic` op (fault drills and tests only).
    pub fn enable_debug_ops(&mut self) {
        self.shared.debug_ops.store(true, Ordering::Relaxed);
    }

    /// Arms slow-request tracing: requests slower than `us` microseconds
    /// return their span tree and land in the slow-query log. Also flips
    /// the process-wide span-recording switch. Applies to every handle of
    /// this server.
    pub fn set_trace_slow_us(&mut self, us: Option<u64>) {
        self.shared.trace_slow_us.store(us.unwrap_or(TRACE_DISABLED), Ordering::Relaxed);
        trace::set_enabled(us.is_some());
    }

    /// Whether this server runs over a durability directory.
    pub fn is_durable(&self) -> bool {
        self.shared.durable
    }

    /// The process-wide overload state shared by every handle: the
    /// dispatch loop configures the in-flight budget and brownout mode
    /// on it and ticks the controller; handlers consult the tier and
    /// count sheds/degrades/cancellations into it.
    pub fn overload(&self) -> Arc<OverloadState> {
        Arc::clone(&self.shared.overload)
    }

    /// The writer lane, with poisoning ignored: a panic mid-request is
    /// already contained by `handle_line`'s catch, and the lane's engine
    /// swaps views atomically (a poisoned lock never holds a torn epoch).
    fn write_lane(&self) -> MutexGuard<'_, WriterLane> {
        self.shared.writer.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Refreshes the lock-free WAL stats mirror after a durable op.
    fn refresh_wal_mirror(&self, lane: &WriterLane) {
        if let Some(d) = lane.durability.as_ref() {
            let w = d.wal_stats();
            self.shared.wal_generation.store(w.generation, Ordering::Relaxed);
            self.shared.wal_seq.store(w.records, Ordering::Relaxed);
        }
    }

    /// Flushes pending WAL appends and takes an atomic checkpoint — the
    /// graceful-shutdown path (signal handlers, EOF). No-op without
    /// durability.
    pub fn drain_and_checkpoint(&mut self) -> Result<(), String> {
        let mut lane = self.write_lane();
        let lane = &mut *lane;
        if let Some(d) = lane.durability.as_mut() {
            d.sync().map_err(|e| format!("WAL sync: {e}"))?;
            d.checkpoint(&lane.engine).map_err(|e| format!("checkpoint: {e}"))?;
        }
        self.refresh_wal_mirror(lane);
        Ok(())
    }

    /// Point-in-time statistics of the engine's current epoch (startup
    /// banners, tests).
    pub fn engine_stats(&mut self) -> crate::engine::EngineStats {
        self.reader.pin().0.stats()
    }

    /// Canonical metric label for a request's op: known ops map to
    /// themselves, unknown ops collapse to `"other"`, and unparseable
    /// requests (bad JSON, missing `op`) to `"invalid"` — a closed set, so
    /// a hostile client cannot grow the registry unboundedly.
    fn op_key(op: Option<&str>) -> &'static str {
        match op {
            None => "invalid",
            Some("stats") => "stats",
            Some("kappa") => "kappa",
            Some("estimate") => "estimate",
            Some("nuclei") => "nuclei",
            Some("region") => "region",
            Some("node") => "node",
            Some("insert") => "insert",
            Some("remove") => "remove",
            Some("update") => "update",
            Some("save") => "save",
            Some("checkpoint") => "checkpoint",
            Some("wal_stats") => "wal_stats",
            Some("metrics") => "metrics",
            Some("slow_log") => "slow_log",
            Some("debug_panic") => "debug_panic",
            Some("debug_stall") => "debug_stall",
            Some("shutdown") => "shutdown",
            Some(_) => "other",
        }
    }

    /// The per-op request-latency histogram, registered on first use.
    fn op_histogram(&mut self, op: &'static str) -> &Histogram {
        self.op_hist.entry(op).or_insert_with(|| {
            Registry::global().histogram(&labeled("request_micros", &[("op", op)]))
        })
    }

    /// Handles one request line, returning the response line. A handler
    /// panic is contained here: the client gets `{"ok":false}` with the
    /// panic message and the server keeps serving. Success or failure, the
    /// response carries `micros` and the request is counted in the per-op
    /// latency histogram.
    pub fn handle_line(&mut self, line: &str) -> Handled {
        self.handle_line_under(line, &CancelToken::none())
    }

    /// [`Server::handle_line`] under a connection-scoped cancellation
    /// token (the dispatch loop's disconnect/shed flag). Each op combines
    /// it with its own `deadline_ms`, so a dead client stops burning CPU
    /// at the next kernel chunk boundary instead of running to
    /// completion.
    pub fn handle_line_under(&mut self, line: &str, conn_cancel: &CancelToken) -> Handled {
        let start = Instant::now();
        let request_id = self.shared.requests.fetch_add(1, Ordering::Relaxed) + 1;
        let slow_us = self.shared.trace_slow_us.load(Ordering::Relaxed);
        let tracing = slow_us != TRACE_DISABLED && trace::enabled();
        if tracing {
            trace::begin();
        }
        let parsed = Json::parse(line.trim());
        let op = Self::op_key(match &parsed {
            Ok(req) => req.get("op").and_then(Json::as_str),
            Err(_) => None,
        });
        let outcome = match &parsed {
            Err(e) => Err(format!("bad JSON: {e}")),
            Ok(req) => catch_unwind(AssertUnwindSafe(|| self.dispatch(req, conn_cancel)))
                .unwrap_or_else(|payload| Err(panic_message(&*payload))),
        };
        let failed = outcome.is_err();
        let (mut response, shutdown) = match outcome {
            Ok((fields, shutdown)) => {
                let mut members = vec![("ok".to_string(), Json::Bool(true))];
                if let Json::Obj(rest) = fields {
                    members.extend(rest);
                }
                (Json::Obj(members), shutdown)
            }
            Err(e) => {
                if Self::is_cancellation(&e) {
                    self.shared.overload.on_cancelled();
                }
                let mut members = vec![
                    ("ok".to_string(), Json::Bool(false)),
                    ("error".to_string(), e.as_str().into()),
                ];
                if e == OVERLOADED {
                    members.push((
                        "retry_after_ms".to_string(),
                        self.shared.overload.retry_after_ms().into(),
                    ));
                }
                (Json::Obj(members), false)
            }
        };
        let micros = start.elapsed().as_micros() as u64;
        if let Json::Obj(members) = &mut response {
            members.push(("micros".to_string(), micros.into()));
        }
        counter_add!("requests_total", 1);
        if failed {
            self.shared.failed.fetch_add(1, Ordering::Relaxed);
            counter_add!("requests_failed_total", 1);
        }
        self.op_histogram(op).record(micros);
        if tracing {
            let tr = trace::take();
            if micros >= slow_us {
                if let Json::Obj(members) = &mut response {
                    members.push(("trace".to_string(), trace_json(&tr)));
                }
                trace::slow_log_push(request_id, op, micros, tr);
            }
        }
        Handled { response: response.to_string(), shutdown }
    }

    /// Whether an error string is a cooperative-cancellation outcome (a
    /// deadline or disconnect cutting the op off) rather than a client
    /// mistake — the messages are the pinned [`hdsd_nucleus::Cancelled`]
    /// renderings.
    fn is_cancellation(e: &str) -> bool {
        e.starts_with("deadline exceeded (") || e.starts_with("request cancelled (")
    }

    fn dispatch(&mut self, req: &Json, conn_cancel: &CancelToken) -> Result<(Json, bool), String> {
        let op = req
            .get("op")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing string field \"op\"".to_string())?;
        // The request's full cancellation scope: the connection's
        // disconnect/shed flag plus this request's own `deadline_ms`.
        let cancel = conn_cancel.clone().and_deadline(Self::deadline_of(req));
        // Write-lane ops: serialize on the writer mutex, publish an epoch.
        match op {
            "insert" => return Ok((self.update(Some(req), None, &cancel)?, false)),
            "remove" => return Ok((self.update(None, Some(req), &cancel)?, false)),
            "update" => return Ok((self.update(Some(req), Some(req), &cancel)?, false)),
            "checkpoint" => return Ok((self.checkpoint_op()?, false)),
            "wal_stats" => return Ok((self.wal_stats_op()?, false)),
            "shutdown" => {
                let mut fields = vec![("bye".to_string(), true.into())];
                if self.shared.durable {
                    self.drain_and_checkpoint()?;
                    fields.push(("checkpointed".to_string(), true.into()));
                }
                return Ok((Json::Obj(fields), true));
            }
            _ => {}
        }
        // Read-lane ops: pin this handle's epoch and answer from it —
        // wait-free with respect to the writer and every other reader.
        self.lag_gauge.set(self.reader.lag());
        let (view, epoch) = self.reader.pin();
        let view = Arc::clone(view);
        let fields = match op {
            "stats" => self.stats(&view, epoch),
            "kappa" => self.kappa(&view, req)?,
            "estimate" => Self::estimate(&view, req)?,
            "nuclei" => Self::nuclei(&view, req, &cancel)?,
            "region" => self.region(&view, req, &cancel)?,
            "node" => self.node(&view, req, &cancel)?,
            "save" => Self::save(&view, req)?,
            "metrics" => obj([("metrics", metrics_json(Registry::global()))]),
            "slow_log" => slow_log_json(),
            "debug_panic" if self.shared.debug_ops.load(Ordering::Relaxed) => {
                panic!("debug_panic op fired")
            }
            "debug_stall" if self.shared.debug_ops.load(Ordering::Relaxed) => {
                Self::debug_stall(req, &cancel)?
            }
            other => return Err(format!("unknown op {other:?}")),
        };
        Ok((fields, false))
    }

    /// `debug_stall` (debug ops only): occupies this reader worker for
    /// `ms` milliseconds, honoring cancellation — the chaos harness's
    /// stand-in for a request stuck in a slow kernel.
    fn debug_stall(req: &Json, cancel: &CancelToken) -> Result<Json, String> {
        let ms = req.get("ms").and_then(Json::as_u64).unwrap_or(100).min(10_000);
        let until = Instant::now() + Duration::from_millis(ms);
        let armed = cancel.is_armed();
        while Instant::now() < until {
            if armed {
                cancel.check("debug stall").map_err(String::from)?;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        Ok(obj([("stalled_ms", ms.into())]))
    }

    fn space_of(req: &Json) -> Result<SpaceSel, String> {
        let name = req
            .get("space")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing string field \"space\"".to_string())?;
        SpaceSel::parse(name).ok_or_else(|| format!("unknown space {name:?} (core|truss|34)"))
    }

    /// Resolves the addressed clique: `"id"` directly, or `"vertices"`
    /// (vertex / edge endpoints / triangle) through the pinned view's
    /// resident substrate.
    fn clique_of(view: &EngineView, req: &Json, sel: SpaceSel) -> Result<usize, String> {
        if let Some(id) = req.get("id") {
            return id.as_usize().ok_or_else(|| "\"id\" must be a non-negative integer".into());
        }
        if let Some(vs) = req.get("vertices") {
            let vs = vs.as_array().ok_or("\"vertices\" must be an array")?;
            let verts: Option<Vec<VertexId>> =
                vs.iter().map(|v| v.as_u64().map(|x| x as VertexId)).collect();
            let verts = verts.ok_or("\"vertices\" must contain non-negative integers")?;
            return view.resolve(sel, &verts);
        }
        Err("request needs \"id\" or \"vertices\"".to_string())
    }

    fn stats(&self, view: &EngineView, epoch: u64) -> Json {
        let s = view.stats();
        let mut members = vec![
            ("vertices".to_string(), s.vertices.into()),
            ("edges".to_string(), s.edges.into()),
            ("updates_applied".to_string(), s.updates_applied.into()),
            ("epoch".to_string(), epoch.into()),
            ("requests_total".to_string(), self.shared.requests.load(Ordering::Relaxed).into()),
            ("requests_failed".to_string(), self.shared.failed.load(Ordering::Relaxed).into()),
            ("uptime_seconds".to_string(), self.shared.started.elapsed().as_secs().into()),
        ];
        if self.shared.durable {
            members.push((
                "wal_generation".to_string(),
                self.shared.wal_generation.load(Ordering::Relaxed).into(),
            ));
            members
                .push(("wal_seq".to_string(), self.shared.wal_seq.load(Ordering::Relaxed).into()));
        }
        let o = self.shared.overload.snapshot();
        members.push((
            "overload".to_string(),
            obj([
                ("inflight", o.inflight.into()),
                ("queue_depth", o.queue_depth.into()),
                ("max_inflight", o.max_inflight.into()),
                ("brownout_tier", o.tier.into()),
                ("shed", o.shed.into()),
                ("degraded", o.degraded.into()),
                ("cancelled", o.cancelled.into()),
            ]),
        ));
        members.push((
            "spaces".to_string(),
            s.spaces
                .iter()
                .map(|sp| {
                    obj([
                        ("space", sp.space.as_str().into()),
                        ("cliques", sp.cliques.into()),
                        ("max_kappa", sp.max_kappa.into()),
                        ("hierarchy_resident", sp.hierarchy_resident.into()),
                        ("build_micros", sp.build_us.into()),
                        ("peel_micros", sp.peel_us.into()),
                    ])
                })
                .collect(),
        ));
        Json::Obj(members)
    }

    fn kappa(&self, view: &EngineView, req: &Json) -> Result<Json, String> {
        let sel = Self::space_of(req)?;
        let id = Self::clique_of(view, req, sel)?;
        // Brownout tier 2: the whole op family answers the budgeted
        // Theorem-1 interval, so overloaded clients observe one uniform
        // `degraded:true` contract and back off.
        if self.shared.overload.degrade_kappa() {
            return self.degraded_estimate(view, req, sel, id);
        }
        let kappa = view.kappa_of(sel, id)?;
        let vertices = view.clique_vertices(sel, id)?;
        Ok(obj([
            ("space", sel.name().into()),
            ("id", id.into()),
            ("kappa", kappa.into()),
            ("vertices", vertices.into_iter().collect()),
        ]))
    }

    /// The brownout answer: a budgeted Theorem-1 estimate in place of the
    /// exact or hierarchy-backed answer, marked `degraded:true` with its
    /// `[lower, estimate]` interval. Cost is bounded by
    /// [`DEGRADED_BUDGET`] regardless of graph size.
    fn degraded_estimate(
        &self,
        view: &EngineView,
        req: &Json,
        sel: SpaceSel,
        id: usize,
    ) -> Result<Json, String> {
        let opts = QueryOptions {
            iterations: 2,
            budget: Some(DEGRADED_BUDGET),
            lower_bound: true,
            deadline: Self::deadline_of(req),
        };
        let est = view.estimate(sel, id, &opts)?;
        self.shared.overload.on_degraded();
        Ok(obj([
            ("space", sel.name().into()),
            ("id", id.into()),
            ("degraded", true.into()),
            ("brownout_tier", self.shared.overload.tier().into()),
            ("estimate", est.estimate.into()),
            ("lower", est.lower.into()),
            ("interval", [est.lower, est.estimate].into_iter().collect()),
            ("explored", est.explored.into()),
            ("truncated", est.truncated.into()),
        ]))
    }

    /// Parses an optional `"deadline_ms"` field into an absolute instant.
    fn deadline_of(req: &Json) -> Option<Instant> {
        req.get("deadline_ms")
            .and_then(Json::as_u64)
            .map(|ms| Instant::now() + Duration::from_millis(ms))
    }

    fn estimate(view: &EngineView, req: &Json) -> Result<Json, String> {
        let sel = Self::space_of(req)?;
        let id = Self::clique_of(view, req, sel)?;
        let opts = QueryOptions {
            iterations: req.get("iterations").and_then(Json::as_usize).unwrap_or(3),
            budget: req.get("budget").and_then(Json::as_usize),
            lower_bound: req.get("lower_bound").and_then(Json::as_bool).unwrap_or(true),
            deadline: Self::deadline_of(req),
        };
        let est = view.estimate(sel, id, &opts)?;
        Ok(obj([
            ("space", sel.name().into()),
            ("id", id.into()),
            ("estimate", est.estimate.into()),
            ("lower", est.lower.into()),
            ("interval", [est.lower, est.estimate].into_iter().collect()),
            ("degree", est.degree.into()),
            ("explored", est.explored.into()),
            ("iterations", est.iterations.into()),
            ("truncated", est.truncated.into()),
        ]))
    }

    fn nuclei(view: &EngineView, req: &Json, cancel: &CancelToken) -> Result<Json, String> {
        let sel = Self::space_of(req)?;
        let k = req
            .get("k")
            .and_then(Json::as_u64)
            .ok_or_else(|| "missing integer field \"k\"".to_string())? as u32;
        let limit = req.get("limit").and_then(Json::as_usize).unwrap_or(32);
        let nuclei = view.nuclei_at_under(sel, k, cancel)?;
        let total = nuclei.len();
        Ok(obj([
            ("space", sel.name().into()),
            ("k", k.into()),
            ("total", total.into()),
            (
                "nuclei",
                nuclei
                    .into_iter()
                    .take(limit)
                    .map(|n| {
                        obj([("node", n.node.into()), ("k", n.k.into()), ("size", n.size.into())])
                    })
                    .collect(),
            ),
        ]))
    }

    fn region_json(r: RegionReport, sel: SpaceSel, max_vertices: usize) -> Json {
        let total = r.vertices.len();
        obj([
            ("space", sel.name().into()),
            ("node", r.node.into()),
            ("k", r.k.into()),
            ("size", r.size.into()),
            ("num_vertices", total.into()),
            ("vertices", r.vertices.into_iter().take(max_vertices).collect()),
            ("edges", r.density.edges.into()),
            ("density", r.density.density.into()),
        ])
    }

    fn region(&self, view: &EngineView, req: &Json, cancel: &CancelToken) -> Result<Json, String> {
        let sel = Self::space_of(req)?;
        let id = Self::clique_of(view, req, sel)?;
        let max_vertices = req.get("max_vertices").and_then(Json::as_usize).unwrap_or(64);
        // Brownout tier 1+: when the hierarchy is cold (the exact answer
        // would pay a full materialization), answer the budgeted
        // estimate instead. A resident hierarchy keeps answering exactly
        // — a tree walk is cheap at any tier.
        if self.shared.overload.degrade_region() && !view.hierarchy_resident(sel)? {
            return self.degraded_estimate(view, req, sel, id);
        }
        let r = view.region_of_under(sel, id, cancel)?;
        Ok(Self::region_json(r, sel, max_vertices))
    }

    fn node(&self, view: &EngineView, req: &Json, cancel: &CancelToken) -> Result<Json, String> {
        let sel = Self::space_of(req)?;
        let node = req
            .get("node")
            .and_then(Json::as_u64)
            .ok_or_else(|| "missing integer field \"node\"".to_string())? as u32;
        let max_vertices = req.get("max_vertices").and_then(Json::as_usize).unwrap_or(64);
        if self.shared.overload.degrade_region() && !view.hierarchy_resident(sel)? {
            // In the vertex (core) space the node is its own 1-clique, so
            // it has a budgeted estimate. Higher-r spaces have no cheap
            // vertex→clique mapping without the hierarchy: shed instead,
            // with the standard back-off hint.
            if sel == SpaceSel::Core {
                return self.degraded_estimate(view, req, sel, node as usize);
            }
            self.shared.overload.on_shed();
            return Err(OVERLOADED.to_string());
        }
        let r = view.node_region_under(sel, node, cancel)?;
        Ok(Self::region_json(r, sel, max_vertices))
    }

    fn edges_field(req: &Json, field: &str) -> Result<Vec<(VertexId, VertexId)>, String> {
        let xs = match req.get(field) {
            None => return Ok(Vec::new()),
            Some(v) => v.as_array().ok_or(format!("\"{field}\" must be an array of [u, v]"))?,
        };
        xs.iter()
            .map(|pair| {
                let p = pair.as_array().filter(|p| p.len() == 2);
                match p {
                    Some([u, v]) => match (u.as_u64(), v.as_u64()) {
                        (Some(u), Some(v)) => Ok((u as VertexId, v as VertexId)),
                        _ => Err(format!("\"{field}\" entries must be integer pairs")),
                    },
                    _ => Err(format!("\"{field}\" entries must be [u, v] pairs")),
                }
            })
            .collect()
    }

    fn update(
        &mut self,
        ins_req: Option<&Json>,
        rm_req: Option<&Json>,
        cancel: &CancelToken,
    ) -> Result<Json, String> {
        let insert = match ins_req {
            Some(req) => {
                let named = Self::edges_field(req, "insert")?;
                if named.is_empty() {
                    Self::edges_field(req, "edges")?
                } else {
                    named
                }
            }
            None => Vec::new(),
        };
        let remove = match rm_req {
            Some(req) => {
                let named = Self::edges_field(req, "remove")?;
                if named.is_empty() && ins_req.is_none() {
                    Self::edges_field(req, "edges")?
                } else {
                    named
                }
            }
            None => Vec::new(),
        };
        if insert.is_empty() && remove.is_empty() {
            return Err("empty update: provide \"insert\"/\"remove\" (or \"edges\")".to_string());
        }
        // Writer lane: one mutating request at a time. Readers keep
        // answering from their pinned epochs for the whole duration.
        let mut lane = self.write_lane();
        let lane = &mut *lane;
        Self::validate_batch(&lane.engine, &insert, &remove)?;
        // A request already past its deadline (or whose client is gone)
        // is refused *before* the WAL sees it. Once the batch is
        // appended it is durable and MUST be applied — a cancelled
        // post-append update would replay on recovery — so the engine
        // gets an unarmed token on the durable path. In-memory servers
        // keep the full token: a mid-update trip just drops the
        // unpublished next epoch.
        if cancel.is_armed() {
            cancel.check("before update").map_err(String::from)?;
        }
        // Durable path: the batch reaches the log (synced per policy)
        // before the engine sees it. If the append fails, nothing was
        // applied and the client is told so in those words.
        let wal_seq = match lane.durability.as_mut() {
            Some(d) => Some(
                d.append(&insert, &remove)
                    .map_err(|e| format!("WAL append failed; update NOT applied: {e}"))?,
            ),
            None => None,
        };
        let effective = if wal_seq.is_some() { CancelToken::none() } else { cancel.clone() };
        let t_publish = Instant::now();
        let report =
            lane.engine.update_within(&insert, &remove, &effective).map_err(String::from)?;
        // Publish before acking so this client (and anyone it tells)
        // observes its own write on the very next read.
        let epoch = self.shared.cell.publish(lane.engine.view());
        self.publish_hist.record(t_publish.elapsed().as_micros() as u64);
        self.epoch_gauge.set(epoch);
        self.refresh_wal_mirror(lane);
        let mut fields = obj([
            ("inserted", report.inserted.into()),
            ("removed", report.removed.into()),
            ("wall_micros", report.wall_us.into()),
            ("graph_delta_micros", report.graph_delta_us.into()),
            ("hierarchy_repair_micros", report.hierarchy_repair_us.into()),
            (
                "spaces",
                report
                    .spaces
                    .iter()
                    .map(|s| {
                        let mut fields = vec![
                            ("space".to_string(), s.space.into()),
                            ("sweeps".to_string(), s.sweeps.into()),
                            ("processed".to_string(), s.processed.into()),
                            ("awake".to_string(), s.awake.into()),
                            ("lifted".to_string(), s.lifted.into()),
                            ("splice_micros".to_string(), s.splice_us.into()),
                            ("refresh_micros".to_string(), s.refresh_us.into()),
                        ];
                        if let Some(hr) = &s.hierarchy_repair {
                            fields.push((
                                "hierarchy_repair".to_string(),
                                obj([
                                    ("repair_micros", hr.repair_us.into()),
                                    ("preserved_subtrees", hr.preserved_subtrees.into()),
                                    ("preserved_nodes", hr.preserved_nodes.into()),
                                    ("rebuilt_nodes", hr.rebuilt_nodes.into()),
                                    ("dirty_cliques", hr.dirty_cliques.into()),
                                    ("scanned_scliques", hr.scanned_scliques.into()),
                                    ("full_rebuild", hr.full_rebuild.into()),
                                ]),
                            ));
                        }
                        Json::Obj(fields)
                    })
                    .collect(),
            ),
        ]);
        if let Json::Obj(members) = &mut fields {
            if let Some(seq) = wal_seq {
                members.push(("wal_seq".to_string(), seq.into()));
            }
            members.push(("epoch".to_string(), epoch.into()));
        }
        Ok(fields)
    }

    /// Rejects malformed batches before anything (WAL or engine) sees
    /// them: self-loops, duplicate edges within a batch, an edge both
    /// inserted and removed, and vertex ids far beyond the current graph
    /// (a garbage id would otherwise allocate per-vertex arrays to match
    /// it). Errors name the offending edge; nothing is partially applied.
    fn validate_batch(
        engine: &Engine,
        insert: &[(VertexId, VertexId)],
        remove: &[(VertexId, VertexId)],
    ) -> Result<(), String> {
        /// New vertex ids a single insert batch may introduce.
        const MAX_VERTEX_GROWTH: u64 = 1 << 20;
        let n = engine.graph().num_vertices() as u64;
        let cap = n + MAX_VERTEX_GROWTH;
        let mut seen = std::collections::HashSet::new();
        for (label, edges, limit) in [("insert", insert, cap), ("remove", remove, n)] {
            for &(u, v) in edges {
                if u == v {
                    return Err(format!("{label} edge [{u},{v}] is a self-loop"));
                }
                let big = u64::from(u.max(v));
                if big >= limit {
                    return Err(if label == "remove" {
                        format!(
                            "remove edge [{u},{v}]: vertex {big} is out of range \
                             (graph has {n} vertices)"
                        )
                    } else {
                        format!(
                            "insert edge [{u},{v}]: vertex {big} is out of range \
                             (graph has {n} vertices; one batch may introduce ids \
                             up to {})",
                            cap - 1
                        )
                    });
                }
                if !seen.insert((label, (u.min(v), u.max(v)))) {
                    return Err(format!("{label} edge [{u},{v}] appears twice in the batch"));
                }
            }
        }
        for &(u, v) in remove {
            if seen.contains(&("insert", (u.min(v), u.max(v)))) {
                return Err(format!("edge [{u},{v}] is both inserted and removed in one batch"));
            }
        }
        Ok(())
    }

    /// `save` is a **read-lane** op since PR 8: the snapshot shares the
    /// pinned epoch's rows by `Arc` (zero-copy) and serializes them while
    /// updates keep flowing — the file is a consistent image of one epoch.
    fn save(view: &EngineView, req: &Json) -> Result<Json, String> {
        let path = req
            .get("path")
            .and_then(Json::as_str)
            .ok_or_else(|| "missing string field \"path\"".to_string())?;
        let snap = view.to_snapshot();
        crate::recovery::write_snapshot_atomic(
            &snap,
            std::path::Path::new(path),
            &FailPoints::none(),
        )
        .map_err(|e| format!("save {path:?}: {e}"))?;
        Ok(obj([("path", path.into()), ("spaces", snap.spaces.len().into())]))
    }

    fn checkpoint_op(&mut self) -> Result<Json, String> {
        let mut lane = self.write_lane();
        let lane = &mut *lane;
        let d = lane
            .durability
            .as_mut()
            .ok_or_else(|| "durability disabled (start with --durable DIR)".to_string())?;
        let ck = d.checkpoint(&lane.engine).map_err(|e| format!("checkpoint: {e}"))?;
        self.refresh_wal_mirror(lane);
        Ok(obj([
            ("path", ck.path.display().to_string().into()),
            ("spaces", ck.spaces.into()),
            ("snapshot_bytes", ck.snapshot_bytes.into()),
            ("wal_bytes_truncated", ck.wal_bytes_truncated.into()),
            ("generation", ck.generation.into()),
        ]))
    }

    fn wal_stats_op(&self) -> Result<Json, String> {
        let lane = self.write_lane();
        let d = lane
            .durability
            .as_ref()
            .ok_or_else(|| "durability disabled (start with --durable DIR)".to_string())?;
        let s = d.wal_stats();
        let r = d.recovery();
        let checkpoints = d.checkpoints_taken();
        Ok(obj([
            ("path", s.path.display().to_string().into()),
            ("generation", s.generation.into()),
            ("records", s.records.into()),
            ("bytes", s.bytes.into()),
            ("pending_sync", s.pending_sync.into()),
            ("policy", s.policy.into()),
            ("checkpoints", checkpoints.into()),
            (
                "recovery",
                obj([
                    ("snapshot_loaded", r.snapshot_loaded.into()),
                    ("cold_start", r.cold_start.into()),
                    ("replayed", r.replayed.into()),
                    ("torn_bytes", r.torn_bytes.into()),
                    ("wall_micros", r.wall_us.into()),
                ]),
            ),
        ]))
    }
}

/// Renders a recorded span tree as the protocol's `trace` array: one
/// object per span, parent-linked by array index (`-1` for roots), plus a
/// trailing `dropped` marker object when the per-request capacity was hit.
fn trace_json(tr: &trace::Trace) -> Json {
    let mut spans: Vec<Json> = tr
        .spans
        .iter()
        .map(|s| {
            obj([
                ("name", s.name.into()),
                ("start_micros", s.start_us.into()),
                ("dur_micros", s.dur_us.into()),
                ("parent", Json::Num(s.parent as f64)),
                ("thread", s.thread.into()),
            ])
        })
        .collect();
    if tr.dropped > 0 {
        spans.push(obj([("dropped", tr.dropped.into())]));
    }
    Json::Arr(spans)
}

/// Renders the metrics registry as the `metrics` op's response body: one
/// member per metric, sorted by name, each a typed object. Histograms
/// carry count/sum/max plus the log₂-bucket p50/p90/p99 estimates.
fn metrics_json(registry: &Registry) -> Json {
    Json::Obj(
        registry
            .snapshot()
            .into_iter()
            .map(|(name, m)| {
                let value = match m {
                    MetricSnapshot::Counter(v) => {
                        obj([("type", "counter".into()), ("value", v.into())])
                    }
                    MetricSnapshot::Gauge(v) => {
                        obj([("type", "gauge".into()), ("value", v.into())])
                    }
                    MetricSnapshot::Histogram(h) => obj([
                        ("type", "histogram".into()),
                        ("count", h.count.into()),
                        ("sum", h.sum.into()),
                        ("max", h.max.into()),
                        ("p50", h.quantile(0.5).into()),
                        ("p90", h.quantile(0.9).into()),
                        ("p99", h.quantile(0.99).into()),
                    ]),
                };
                (name, value)
            })
            .collect(),
    )
}

/// Renders the bounded slow-query log (oldest first).
fn slow_log_json() -> Json {
    Json::Obj(vec![(
        "entries".to_string(),
        trace::slow_log_snapshot()
            .iter()
            .map(|e| {
                obj([
                    ("seq", e.seq.into()),
                    ("request_id", e.request_id.into()),
                    ("op", e.op.as_str().into()),
                    ("micros", e.micros.into()),
                    ("trace", trace_json(&e.trace)),
                ])
            })
            .collect(),
    )])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use hdsd_graph::graph_from_edges;
    use hdsd_nucleus::LocalConfig;

    fn demo_server() -> Server {
        let g = graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3),
            (2, 4),
            (2, 5),
            (3, 4),
            (3, 5),
            (4, 5),
            (5, 6),
        ]);
        let cfg = EngineConfig {
            spaces: vec![SpaceSel::Core, SpaceSel::Truss, SpaceSel::Nucleus34],
            local: LocalConfig::sequential(),
        };
        Server::new(Engine::new(g, &cfg))
    }

    fn ok(server: &mut Server, line: &str) -> Json {
        let h = server.handle_line(line);
        let v = Json::parse(&h.response).expect("response is valid JSON");
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{line} → {}", h.response);
        assert!(v.get("micros").is_some());
        v
    }

    #[test]
    fn scripted_session() {
        let mut s = demo_server();
        let v = ok(&mut s, r#"{"op":"stats"}"#);
        assert_eq!(v.get("edges").unwrap().as_u64(), Some(12));

        let v = ok(&mut s, r#"{"op":"kappa","space":"core","id":0}"#);
        assert_eq!(v.get("kappa").unwrap().as_u64(), Some(3));

        let v = ok(&mut s, r#"{"op":"kappa","space":"truss","vertices":[5,6]}"#);
        assert_eq!(v.get("kappa").unwrap().as_u64(), Some(0));

        let v = ok(&mut s, r#"{"op":"estimate","space":"core","id":6,"iterations":4}"#);
        assert_eq!(v.get("estimate").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("lower").unwrap().as_u64(), Some(1));

        let v = ok(&mut s, r#"{"op":"region","space":"core","id":0}"#);
        assert_eq!(v.get("k").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("num_vertices").unwrap().as_u64(), Some(6));

        let v = ok(&mut s, r#"{"op":"nuclei","space":"truss","k":2}"#);
        assert_eq!(v.get("total").unwrap().as_u64(), Some(1));
        let v = ok(&mut s, r#"{"op":"nuclei","space":"34","k":1}"#);
        assert_eq!(v.get("total").unwrap().as_u64(), Some(2));

        // Drop the tail edge: vertex 6 leaves every core.
        let v = ok(&mut s, r#"{"op":"remove","edges":[[5,6]]}"#);
        assert_eq!(v.get("removed").unwrap().as_u64(), Some(1));
        let v = ok(&mut s, r#"{"op":"kappa","space":"core","id":6}"#);
        assert_eq!(v.get("kappa").unwrap().as_u64(), Some(0));

        // Close the K5 over {0,1,2,3,4}: core numbers rise to 4.
        let v = ok(&mut s, r#"{"op":"update","insert":[[0,4],[1,4]],"remove":[]}"#);
        assert_eq!(v.get("inserted").unwrap().as_u64(), Some(2));
        let v = ok(&mut s, r#"{"op":"kappa","space":"core","id":4}"#);
        assert_eq!(v.get("kappa").unwrap().as_u64(), Some(4));

        let h = s.handle_line(r#"{"op":"shutdown"}"#);
        assert!(h.shutdown);
    }

    #[test]
    fn empty_graph_nuclei_and_region_have_stable_shapes() {
        let mut s = Server::new(Engine::new(
            hdsd_graph::graph_from_edges([]),
            &EngineConfig {
                spaces: vec![SpaceSel::Core, SpaceSel::Truss, SpaceSel::Nucleus34],
                local: LocalConfig::sequential(),
            },
        ));
        for space in ["core", "truss", "34"] {
            let h = s.handle_line(&format!(r#"{{"op":"nuclei","space":"{space}","k":1}}"#));
            // Pin the exact shape (micros excluded: it is the only
            // nondeterministic field and always the trailing member).
            let prefix = format!(
                r#"{{"ok":true,"space":"{}","k":1,"total":0,"nuclei":[],"micros":"#,
                SpaceSel::parse(space).unwrap().name()
            );
            assert!(h.response.starts_with(&prefix), "{space}: {}", h.response);
            let v = Json::parse(&h.response).unwrap();
            assert_eq!(v.get("total").unwrap().as_u64(), Some(0));
            assert_eq!(v.get("nuclei").unwrap().as_array(), Some(&[][..]));
        }
        // Region lookups against the empty graph fail cleanly...
        let h = s.handle_line(r#"{"op":"region","space":"core","id":0}"#);
        let v = Json::parse(&h.response).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert!(v.get("error").unwrap().as_str().unwrap().contains("out of range"));
        // ...and none of the above made a trivial hierarchy resident.
        let v = ok(&mut s, r#"{"op":"stats"}"#);
        for sp in v.get("spaces").unwrap().as_array().unwrap() {
            assert_eq!(sp.get("hierarchy_resident").and_then(Json::as_bool), Some(false));
        }
    }

    #[test]
    fn update_reports_hierarchy_repair_telemetry() {
        let mut s = demo_server();
        // No hierarchy resident yet: repair time is zero, no per-space blob.
        let v = ok(&mut s, r#"{"op":"update","insert":[[0,6]],"remove":[]}"#);
        assert_eq!(v.get("hierarchy_repair_micros").unwrap().as_u64(), Some(0));
        // Make the hierarchies resident, then update again.
        ok(&mut s, r#"{"op":"region","space":"core","id":0}"#);
        ok(&mut s, r#"{"op":"nuclei","space":"truss","k":1}"#);
        let v = ok(&mut s, r#"{"op":"update","insert":[[1,6]],"remove":[]}"#);
        assert!(v.get("hierarchy_repair_micros").unwrap().as_u64().is_some());
        let spaces = v.get("spaces").unwrap().as_array().unwrap();
        let by_name = |n: &str| {
            spaces.iter().find(|s| s.get("space").and_then(Json::as_str) == Some(n)).unwrap()
        };
        for name in ["core", "truss"] {
            let hr = by_name(name)
                .get("hierarchy_repair")
                .unwrap_or_else(|| panic!("{name} should report a repair: {}", v));
            assert!(hr.get("preserved_nodes").unwrap().as_u64().is_some());
            assert!(hr.get("scanned_scliques").unwrap().as_u64().is_some());
        }
        // The (3,4) hierarchy was never queried, so nothing was repaired.
        assert!(by_name("nucleus34").get("hierarchy_repair").is_none());
        // Region queries after a repaired update serve the new graph: the
        // region's threshold is the query vertex's (updated) κ.
        let kappa6 = ok(&mut s, r#"{"op":"kappa","space":"core","id":6}"#)
            .get("kappa")
            .unwrap()
            .as_u64()
            .unwrap();
        let region = ok(&mut s, r#"{"op":"region","space":"core","id":6}"#);
        assert_eq!(region.get("k").unwrap().as_u64(), Some(kappa6));
    }

    #[test]
    fn stats_response_pins_the_per_space_shape() {
        let mut s = demo_server();
        let v = ok(&mut s, r#"{"op":"stats"}"#);
        let spaces = v.get("spaces").unwrap().as_array().unwrap();
        assert_eq!(spaces.len(), 3);
        for sp in spaces {
            // Pin the exact member set and order: dashboards and the smoke
            // script key on this shape.
            let Json::Obj(members) = sp else { panic!("space stat must be an object") };
            let keys: Vec<&str> = members.iter().map(|(k, _)| k.as_str()).collect();
            assert_eq!(
                keys,
                [
                    "space",
                    "cliques",
                    "max_kappa",
                    "hierarchy_resident",
                    "build_micros",
                    "peel_micros"
                ],
                "{}",
                sp
            );
            assert!(sp.get("build_micros").unwrap().as_u64().is_some());
            assert!(sp.get("peel_micros").unwrap().as_u64().is_some());
        }
    }

    #[test]
    fn errors_are_reported_not_fatal() {
        let mut s = demo_server();
        for line in [
            "not json",
            r#"{"op":"nope"}"#,
            r#"{"op":"kappa","space":"core"}"#,
            r#"{"op":"kappa","space":"hyper","id":0}"#,
            r#"{"op":"kappa","space":"core","id":999}"#,
            r#"{"op":"update"}"#,
            r#"{"op":"kappa","space":"truss","vertices":[0,9]}"#,
        ] {
            let h = s.handle_line(line);
            let v = Json::parse(&h.response).unwrap();
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{line}");
            assert!(v.get("error").is_some(), "{line}");
            assert!(!h.shutdown);
        }
        // The server still answers after errors.
        ok(&mut s, r#"{"op":"stats"}"#);
    }

    fn err(server: &mut Server, line: &str) -> String {
        let h = server.handle_line(line);
        let v = Json::parse(&h.response).expect("response is valid JSON");
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{line} → {}", h.response);
        v.get("error").and_then(Json::as_str).expect("error field").to_string()
    }

    #[test]
    fn malformed_batches_are_rejected_before_the_engine() {
        let mut s = demo_server();
        let before = ok(&mut s, r#"{"op":"stats"}"#);
        let cases = [
            (r#"{"op":"update","insert":[[3,3]]}"#, "self-loop"),
            (r#"{"op":"update","insert":[[0,5],[5,0]]}"#, "twice"),
            (r#"{"op":"update","insert":[[0,4294000000]]}"#, "out of range"),
            (r#"{"op":"remove","edges":[[0,400]]}"#, "out of range"),
            (r#"{"op":"update","insert":[[0,6]],"remove":[[6,0]]}"#, "both inserted and removed"),
        ];
        for (line, needle) in cases {
            let e = err(&mut s, line);
            assert!(e.contains(needle), "{line}: {e}");
        }
        // Nothing was partially applied: graph unchanged, no update counted.
        let after = ok(&mut s, r#"{"op":"stats"}"#);
        for field in ["vertices", "edges", "updates_applied"] {
            assert_eq!(
                after.get(field).unwrap().as_u64(),
                before.get(field).unwrap().as_u64(),
                "{field} drifted"
            );
        }
    }

    #[test]
    fn panicking_request_is_answered_and_serving_continues() {
        let mut s = demo_server();
        // Hidden unless explicitly enabled.
        assert!(err(&mut s, r#"{"op":"debug_panic"}"#).contains("unknown op"));
        s.enable_debug_ops();
        let e = err(&mut s, r#"{"op":"debug_panic"}"#);
        assert!(e.contains("internal panic"), "{e}");
        // The very next request is served normally.
        let v = ok(&mut s, r#"{"op":"kappa","space":"core","id":0}"#);
        assert_eq!(v.get("kappa").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn durability_ops_require_a_durable_server() {
        let mut s = demo_server();
        for line in [r#"{"op":"checkpoint"}"#, r#"{"op":"wal_stats"}"#] {
            assert!(err(&mut s, line).contains("durability disabled"), "{line}");
        }
        // Updates still work, they just carry no wal_seq.
        let v = ok(&mut s, r#"{"op":"update","insert":[[0,6]]}"#);
        assert!(v.get("wal_seq").is_none());
    }

    #[test]
    fn expired_deadlines_degrade_estimates_and_fail_hierarchy_ops_cleanly() {
        let mut s = demo_server();
        // An already-expired deadline: the estimate still answers, marked
        // truncated, instead of exploring.
        let v = ok(&mut s, r#"{"op":"estimate","space":"core","id":0,"deadline_ms":0}"#);
        assert_eq!(v.get("truncated").and_then(Json::as_bool), Some(true));
        // Hierarchy-backed ops refuse up front rather than materializing.
        for line in [
            r#"{"op":"nuclei","space":"core","k":1,"deadline_ms":0}"#,
            r#"{"op":"region","space":"core","id":0,"deadline_ms":0}"#,
            r#"{"op":"node","space":"core","node":0,"deadline_ms":0}"#,
        ] {
            assert!(err(&mut s, line).contains("deadline exceeded"), "{line}");
        }
        // A generous deadline changes nothing.
        let v = ok(&mut s, r#"{"op":"region","space":"core","id":0,"deadline_ms":60000}"#);
        assert_eq!(v.get("k").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn every_deadline_op_completes_or_names_the_stage() {
        let mut s = demo_server();
        s.enable_debug_ops();
        // Bounded ops answer within an expired deadline: the estimate
        // degrades (truncated interval), the lookups just answer.
        let v = ok(&mut s, r#"{"op":"estimate","space":"core","id":0,"deadline_ms":0}"#);
        assert_eq!(v.get("truncated").and_then(Json::as_bool), Some(true));
        ok(&mut s, r#"{"op":"kappa","space":"core","id":0,"deadline_ms":0}"#);
        ok(&mut s, r#"{"op":"stats","deadline_ms":0}"#);
        // Unbounded ops abort, each naming the stage that refused.
        for (line, stage) in [
            (r#"{"op":"nuclei","space":"core","k":1,"deadline_ms":0}"#, "before hierarchy lookup"),
            (r#"{"op":"region","space":"core","id":0,"deadline_ms":0}"#, "before hierarchy lookup"),
            (r#"{"op":"node","space":"core","node":0,"deadline_ms":0}"#, "before hierarchy lookup"),
            (r#"{"op":"update","insert":[[0,6]],"deadline_ms":0}"#, "before update"),
            (r#"{"op":"insert","edges":[[0,6]],"deadline_ms":0}"#, "before update"),
            (r#"{"op":"remove","edges":[[0,1]],"deadline_ms":0}"#, "before update"),
            (r#"{"op":"debug_stall","ms":5000,"deadline_ms":0}"#, "debug stall"),
        ] {
            let e = err(&mut s, line);
            assert_eq!(e, format!("deadline exceeded ({stage})"), "{line}");
        }
        // The refused updates applied nothing (the deadline is checked
        // before the WAL/engine see the batch).
        let v = ok(&mut s, r#"{"op":"stats"}"#);
        assert_eq!(v.get("updates_applied").unwrap().as_u64(), Some(0));
        // A generous deadline completes everywhere.
        let v = ok(&mut s, r#"{"op":"region","space":"core","id":0,"deadline_ms":60000}"#);
        assert_eq!(v.get("k").unwrap().as_u64(), Some(3));
        let v = ok(&mut s, r#"{"op":"update","insert":[[0,6]],"deadline_ms":60000}"#);
        assert_eq!(v.get("inserted").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn raised_connection_flag_cancels_and_is_counted() {
        let mut s = demo_server();
        let before = s.overload().snapshot().cancelled;
        let flag = Arc::new(AtomicBool::new(true));
        let token = CancelToken::with_flag(Arc::clone(&flag));
        let h = s.handle_line_under(r#"{"op":"region","space":"core","id":0}"#, &token);
        let v = Json::parse(&h.response).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
        assert_eq!(
            v.get("error").and_then(Json::as_str),
            Some("request cancelled (before hierarchy lookup)")
        );
        // The counter is a process-global metric, so concurrent tests may
        // add to it too — assert the delta, not the value.
        assert!(s.overload().snapshot().cancelled > before);
        // Lowering the flag restores service on the same connection scope.
        flag.store(false, Ordering::Relaxed);
        let h = s.handle_line_under(r#"{"op":"region","space":"core","id":0}"#, &token);
        assert!(h.response.contains("\"ok\":true"), "{}", h.response);
    }

    #[test]
    fn brownout_tiers_degrade_cold_queries_to_estimates() {
        use crate::overload::BrownoutMode;
        let mut s = demo_server();
        let overload = s.overload();
        overload.set_mode(BrownoutMode::Forced(1));
        overload.recompute_tier();
        // Tier 1: a cold-hierarchy region answers the budgeted Theorem-1
        // interval, marked degraded, instead of materializing.
        let v = ok(&mut s, r#"{"op":"region","space":"core","id":0}"#);
        assert_eq!(v.get("degraded").and_then(Json::as_bool), Some(true));
        let lower = v.get("lower").unwrap().as_u64().unwrap();
        let estimate = v.get("estimate").unwrap().as_u64().unwrap();
        assert!(lower <= estimate, "interval must be ordered");
        assert!(v.get("interval").unwrap().as_array().is_some());
        // ...and did not make the hierarchy resident as a side effect.
        let st = ok(&mut s, r#"{"op":"stats"}"#);
        let core = &st.get("spaces").unwrap().as_array().unwrap()[0];
        assert_eq!(core.get("hierarchy_resident").and_then(Json::as_bool), Some(false));
        // kappa stays exact at tier 1.
        let v = ok(&mut s, r#"{"op":"kappa","space":"core","id":0}"#);
        assert_eq!(v.get("kappa").unwrap().as_u64(), Some(3));
        // node in a higher-r space has no cheap estimate: it sheds with
        // the standard structured hint.
        let h = s.handle_line(r#"{"op":"node","space":"truss","node":0}"#);
        let v = Json::parse(&h.response).unwrap();
        assert_eq!(v.get("error").and_then(Json::as_str), Some("overloaded"));
        assert!(v.get("retry_after_ms").unwrap().as_u64().unwrap() > 0);
        // Tier 2 degrades kappa too: the interval replaces the exact value.
        overload.set_mode(BrownoutMode::Forced(2));
        overload.recompute_tier();
        let v = ok(&mut s, r#"{"op":"kappa","space":"core","id":0}"#);
        assert_eq!(v.get("degraded").and_then(Json::as_bool), Some(true));
        assert!(v.get("kappa").is_none());
        // A resident hierarchy keeps answering exactly at any tier: the
        // materialization, not the tree walk, is what brownout avoids.
        overload.set_mode(BrownoutMode::Off);
        overload.recompute_tier();
        ok(&mut s, r#"{"op":"region","space":"core","id":0}"#);
        overload.set_mode(BrownoutMode::Forced(2));
        overload.recompute_tier();
        let v = ok(&mut s, r#"{"op":"region","space":"core","id":0}"#);
        assert!(v.get("degraded").is_none());
        assert_eq!(v.get("k").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn durable_server_logs_checkpoints_and_recovers() {
        use crate::recovery::{Durability, DurableConfig};
        use crate::wal::{FailPoints, FsyncPolicy};
        let dir = std::env::temp_dir().join(format!("hdsd_proto_durable_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = || DurableConfig {
            dir: dir.clone(),
            policy: FsyncPolicy::Always,
            failpoints: FailPoints::none(),
        };
        let fresh = || {
            Ok(Engine::new(
                graph_from_edges([(0, 1), (0, 2), (1, 2), (2, 3)]),
                &EngineConfig::default(),
            ))
        };
        let (engine, dur, _) = Durability::open(cfg(), LocalConfig::sequential(), fresh).unwrap();
        let mut s = Server::with_durability(engine, dur);
        let v = ok(&mut s, r#"{"op":"update","insert":[[1,3],[0,3]]}"#);
        assert_eq!(v.get("wal_seq").unwrap().as_u64(), Some(1));
        let v = ok(&mut s, r#"{"op":"wal_stats"}"#);
        assert_eq!(v.get("records").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("policy").and_then(Json::as_str), Some("always"));
        let v = ok(&mut s, r#"{"op":"checkpoint"}"#);
        assert!(v.get("wal_bytes_truncated").unwrap().as_u64().unwrap() > 0);
        let v = ok(&mut s, r#"{"op":"update","insert":[[0,4],[1,4]]}"#);
        assert_eq!(v.get("wal_seq").unwrap().as_u64(), Some(1)); // fresh generation
        let kappa = ok(&mut s, r#"{"op":"kappa","space":"core","id":0}"#);
        let kappa = kappa.get("kappa").unwrap().as_u64().unwrap();
        drop(s); // unclean: no shutdown, no final checkpoint

        let (engine, dur, rep) =
            Durability::open(
                cfg(),
                LocalConfig::sequential(),
                || Err("must not cold start".into()),
            )
            .unwrap();
        assert!(rep.snapshot_loaded && rep.replayed == 1);
        let mut s = Server::with_durability(engine, dur);
        let v = ok(&mut s, r#"{"op":"kappa","space":"core","id":0}"#);
        assert_eq!(v.get("kappa").unwrap().as_u64(), Some(kappa));
        // Graceful shutdown checkpoints.
        let h = s.handle_line(r#"{"op":"shutdown"}"#);
        assert!(h.shutdown);
        assert!(h.response.contains("\"checkpointed\":true"), "{}", h.response);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Tests that arm slow-request tracing flip a process-global flag, so
    /// they serialize here instead of disarming each other under the
    /// parallel test harness.
    static TRACE_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn timing_keys_are_micros_only() {
        // The wire convention pinned by the module docs: every duration is
        // microseconds under a key ending in `micros`; `uptime_seconds` is
        // the only other time-typed key. The `metrics` op is excluded from
        // the walk — its members are registry names, not wire keys.
        fn collect_keys(v: &Json, keys: &mut std::collections::BTreeSet<String>) {
            match v {
                Json::Obj(members) => {
                    for (k, v) in members {
                        keys.insert(k.clone());
                        collect_keys(v, keys);
                    }
                }
                Json::Arr(items) => {
                    for v in items {
                        collect_keys(v, keys);
                    }
                }
                _ => {}
            }
        }
        let _guard = TRACE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut keys = std::collections::BTreeSet::new();
        let mut s = demo_server();
        s.set_trace_slow_us(Some(0)); // every response carries its span tree
        for line in [
            r#"{"op":"stats"}"#,
            r#"{"op":"kappa","space":"core","id":0}"#,
            r#"{"op":"estimate","space":"core","id":6,"iterations":2}"#,
            r#"{"op":"region","space":"core","id":0}"#,
            r#"{"op":"nuclei","space":"truss","k":1}"#,
            r#"{"op":"node","space":"core","node":0}"#,
            r#"{"op":"update","insert":[[0,6]],"remove":[]}"#,
            r#"{"op":"slow_log"}"#,
        ] {
            collect_keys(&ok(&mut s, line), &mut keys);
        }
        s.set_trace_slow_us(None);
        // Failure responses follow the same convention.
        let h = s.handle_line("not json");
        collect_keys(&Json::parse(&h.response).unwrap(), &mut keys);
        // Durable-only ops: wal_stats (recovery report) and checkpoint.
        {
            use crate::recovery::{Durability, DurableConfig};
            use crate::wal::{FailPoints, FsyncPolicy};
            let dir =
                std::env::temp_dir().join(format!("hdsd_proto_timing_{}", std::process::id()));
            let _ = std::fs::remove_dir_all(&dir);
            let cfg = DurableConfig {
                dir: dir.clone(),
                policy: FsyncPolicy::Always,
                failpoints: FailPoints::none(),
            };
            let fresh = || {
                Ok(Engine::new(
                    graph_from_edges([(0, 1), (1, 2), (0, 2)]),
                    &EngineConfig::default(),
                ))
            };
            let (engine, dur, _) = Durability::open(cfg, LocalConfig::sequential(), fresh).unwrap();
            let mut d = Server::with_durability(engine, dur);
            collect_keys(&ok(&mut d, r#"{"op":"wal_stats"}"#), &mut keys);
            collect_keys(&ok(&mut d, r#"{"op":"checkpoint"}"#), &mut keys);
            std::fs::remove_dir_all(&dir).ok();
        }
        // Overload shapes: the shed error and the degraded answer. The
        // shed response carries `retry_after_ms` — the one sanctioned
        // `_ms` key: a client back-off *hint*, not a server timing, so it
        // is deliberately not a `micros` key.
        {
            use crate::overload::BrownoutMode;
            let overload = s.overload();
            overload.set_mode(BrownoutMode::Forced(1));
            overload.recompute_tier();
            let h = s.handle_line(r#"{"op":"node","space":"34","node":0}"#);
            collect_keys(&Json::parse(&h.response).unwrap(), &mut keys);
            collect_keys(&ok(&mut s, r#"{"op":"region","space":"34","id":0}"#), &mut keys);
            overload.set_mode(BrownoutMode::Off);
            overload.recompute_tier();
        }

        let micros_keys: Vec<&str> =
            keys.iter().filter(|k| k.contains("micros")).map(String::as_str).collect();
        assert_eq!(
            micros_keys,
            [
                "build_micros",
                "dur_micros",
                "graph_delta_micros",
                "hierarchy_repair_micros",
                "micros",
                "peel_micros",
                "refresh_micros",
                "repair_micros",
                "splice_micros",
                "start_micros",
                "wall_micros",
            ],
            "the set of wire timing keys changed — update the module docs and this pin together"
        );
        for k in &keys {
            assert!(!k.ends_with("_us"), "{k}: durations cross the wire as `micros` keys only");
            assert!(
                !k.ends_with("_ms") || k == "retry_after_ms",
                "{k}: durations cross the wire as `micros` keys only \
                 (`retry_after_ms` is the one sanctioned exception — a \
                 client back-off hint, not a measured duration)"
            );
            if k.contains("seconds") {
                assert_eq!(k, "uptime_seconds");
            }
        }
        assert!(keys.contains("uptime_seconds"));
        assert!(keys.contains("retry_after_ms"));
    }

    #[test]
    fn metrics_op_returns_the_registry_with_pinned_shapes() {
        let mut s = demo_server();
        ok(&mut s, r#"{"op":"stats"}"#);
        let v = ok(&mut s, r#"{"op":"metrics"}"#);
        let m = v.get("metrics").expect("metrics member");
        let Json::Obj(members) = m else { panic!("metrics must be an object: {v}") };
        assert!(
            members.windows(2).all(|w| w[0].0 < w[1].0),
            "metrics must be sorted by name with no duplicates"
        );
        let counter = m.get("requests_total").expect("requests_total registered");
        assert_eq!(counter.get("type").and_then(Json::as_str), Some("counter"));
        assert!(counter.get("value").unwrap().as_u64().unwrap() >= 1);
        let hist = m.get(r#"request_micros{op="stats"}"#).expect("per-op request histogram");
        let Json::Obj(hm) = hist else { panic!("histogram must be an object") };
        let hist_keys: Vec<&str> = hm.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(hist_keys, ["type", "count", "sum", "max", "p50", "p90", "p99"]);
        assert_eq!(hist.get("type").and_then(Json::as_str), Some("histogram"));
        assert!(hist.get("count").unwrap().as_u64().unwrap() >= 1);
    }

    #[test]
    fn failed_requests_carry_micros_and_count_in_telemetry() {
        let reg = Registry::global();
        // The registry is process-global and other tests run concurrently:
        // assert deltas, never absolute values.
        let failed_before = reg.counter("requests_failed_total").get();
        let invalid_before =
            reg.histogram(&labeled("request_micros", &[("op", "invalid")])).snapshot().count;
        let other_before =
            reg.histogram(&labeled("request_micros", &[("op", "other")])).snapshot().count;
        let mut s = demo_server();
        for line in ["not json", r#"{"op":"frobnicate"}"#] {
            let h = s.handle_line(line);
            let v = Json::parse(&h.response).unwrap();
            assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false), "{line}");
            assert!(
                v.get("micros").unwrap().as_u64().is_some(),
                "{line}: failed responses still report micros"
            );
        }
        assert!(reg.counter("requests_failed_total").get() >= failed_before + 2);
        let invalid_after =
            reg.histogram(&labeled("request_micros", &[("op", "invalid")])).snapshot().count;
        let other_after =
            reg.histogram(&labeled("request_micros", &[("op", "other")])).snapshot().count;
        assert!(invalid_after > invalid_before, "unparseable line lands in op=invalid");
        assert!(other_after > other_before, "unknown op lands in op=other");
        // The per-server stats see them too (deterministic: this server
        // handled exactly these three requests).
        let v = ok(&mut s, r#"{"op":"stats"}"#);
        assert_eq!(v.get("requests_total").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("requests_failed").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn sibling_handles_serve_the_published_epoch() {
        let mut a = demo_server();
        let mut b = a.handle();
        let v = ok(&mut b, r#"{"op":"kappa","space":"core","id":0}"#);
        assert_eq!(v.get("kappa").unwrap().as_u64(), Some(3), "epoch 0: vertex 0 sits in a K4");
        // Writing through handle a publishes epoch 1...
        let v = ok(&mut a, r#"{"op":"update","insert":[[0,4],[1,4]],"remove":[]}"#);
        assert_eq!(v.get("epoch").unwrap().as_u64(), Some(1));
        // ...and sibling b observes it on its next pin, no sync call:
        // {0,1,2,3,4} is now a K5.
        let v = ok(&mut b, r#"{"op":"kappa","space":"core","id":0}"#);
        assert_eq!(v.get("kappa").unwrap().as_u64(), Some(4));
        // Request accounting and the epoch counter are shared state, not
        // per-handle: all four requests land in one stats view.
        let v = ok(&mut b, r#"{"op":"stats"}"#);
        assert_eq!(v.get("epoch").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("requests_total").unwrap().as_u64(), Some(4));
        assert_eq!(v.get("requests_failed").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn slow_requests_attach_trace_and_enter_the_slow_log() {
        let _guard = TRACE_LOCK.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut s = demo_server();
        s.set_trace_slow_us(Some(0)); // everything is "slow"
        let v = ok(&mut s, r#"{"op":"update","insert":[[0,6]],"remove":[]}"#);
        let spans = v.get("trace").expect("slow response carries its span tree");
        let spans = spans.as_array().unwrap();
        assert!(!spans.is_empty());
        let names: Vec<&str> =
            spans.iter().filter_map(|sp| sp.get("name").and_then(Json::as_str)).collect();
        assert!(names.contains(&"update.graph_delta"), "{names:?}");
        assert!(names.contains(&"update.refresh"), "{names:?}");
        for sp in spans.iter().filter(|sp| sp.get("name").is_some()) {
            assert!(sp.get("start_micros").unwrap().as_u64().is_some());
            assert!(sp.get("dur_micros").unwrap().as_u64().is_some());
            assert!(sp.get("parent").is_some());
            assert!(sp.get("thread").unwrap().as_u64().is_some());
        }
        // A threshold no request reaches: traced, but nothing attached.
        s.set_trace_slow_us(Some(u64::MAX));
        let v = ok(&mut s, r#"{"op":"kappa","space":"core","id":0}"#);
        assert!(v.get("trace").is_none());
        s.set_trace_slow_us(None);
        // The slow update is in the bounded in-memory log.
        let v = ok(&mut s, r#"{"op":"slow_log"}"#);
        let entries = v.get("entries").unwrap().as_array().unwrap();
        let e = entries
            .iter()
            .rev()
            .find(|e| e.get("op").and_then(Json::as_str) == Some("update"))
            .expect("slow update must be logged");
        assert!(e.get("micros").unwrap().as_u64().is_some());
        assert!(!e.get("trace").unwrap().as_array().unwrap().is_empty());
    }
}
