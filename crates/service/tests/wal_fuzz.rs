//! Byte-level corruption fuzzing for the persistence formats.
//!
//! Complements `crash_recovery.rs` (which injects crashes at controlled
//! points) with adversarial bytes: truncation at every offset, random
//! bit flips, and duplicated frames. The contract mirrors the JSON
//! parser's (`json_fuzz.rs`): for any mutated file the readers return
//! `Ok` with a **verified prefix** of the original records or a clean
//! `Err` — they never panic, never loop, and never fabricate a record
//! that was not appended.

use std::fs;
use std::path::PathBuf;

use hdsd_nucleus::LocalConfig;
use hdsd_service::{
    read_wal, Durability, DurableConfig, Engine, EngineConfig, FailPoints, FsyncPolicy, WalRecord,
    WalWriter,
};
use proptest::splitmix64 as splitmix;

fn tmpfile(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hdsd_walfuzz_{}_{tag}", std::process::id()))
}

type EdgeList = &'static [(u32, u32)];

/// A short WAL with varied record shapes (growth, removals, batches).
fn build_wal(path: &PathBuf) -> Vec<WalRecord> {
    let _ = fs::remove_file(path);
    let mut w = WalWriter::create(path, 7, FsyncPolicy::Always, FailPoints::none()).unwrap();
    let batches: &[(EdgeList, EdgeList)] = &[
        (&[(0, 1), (2, 3)], &[]),
        (&[(1, 9)], &[(0, 1)]),
        (&[], &[(2, 3), (4, 5)]),
        (&[(6, 7), (7, 8), (8, 9)], &[(1, 9)]),
    ];
    for (ins, rm) in batches {
        w.append(ins, rm).unwrap();
    }
    read_wal(path).unwrap().records
}

fn assert_is_prefix(got: &[WalRecord], original: &[WalRecord], what: &str) {
    assert!(got.len() <= original.len(), "{what}: more records than were written");
    for (g, o) in got.iter().zip(original) {
        assert_eq!(g.seq, o.seq, "{what}");
        assert_eq!(g.insert, o.insert, "{what}: insert list diverged at seq {}", o.seq);
        assert_eq!(g.remove, o.remove, "{what}: remove list diverged at seq {}", o.seq);
    }
}

#[test]
fn truncation_at_every_offset_yields_a_clean_prefix_or_error() {
    let path = tmpfile("trunc");
    let original = build_wal(&path);
    let full = fs::read(&path).unwrap();
    for cut in 0..full.len() {
        fs::write(&path, &full[..cut]).unwrap();
        match read_wal(&path) {
            // Shorter than a header, or a header cut mid-magic: a file we
            // never produce, so rejecting it loudly is correct.
            Err(_) => assert!(cut < 16, "valid header at cut {cut} must not hard-fail"),
            Ok(c) => {
                assert!(cut >= 16);
                assert_is_prefix(&c.records, &original, &format!("cut {cut}"));
                // Every byte is accounted for: valid frames + torn tail.
                assert!(c.records.len() < original.len() || c.torn_bytes == 0);
            }
        }
    }
    fs::remove_file(&path).ok();
}

#[test]
fn random_bit_flips_never_panic_and_never_fabricate_records() {
    let path = tmpfile("flips");
    let original = build_wal(&path);
    let full = fs::read(&path).unwrap();
    let mut rng = 0xBAD_C0DEu64;
    for trial in 0..500 {
        let mut bytes = full.clone();
        for _ in 0..(1 + splitmix(&mut rng) % 3) {
            let at = (splitmix(&mut rng) % bytes.len() as u64) as usize;
            bytes[at] ^= 1 << (splitmix(&mut rng) % 8);
        }
        fs::write(&path, &bytes).unwrap();
        if let Ok(c) = read_wal(&path) {
            // Flips in the generation field change metadata, never record
            // content: anything returned is a checksum-verified prefix.
            assert_is_prefix(&c.records, &original, &format!("trial {trial}"));
        }
    }
    fs::remove_file(&path).ok();
}

#[test]
fn duplicated_tail_frame_is_dropped_by_sequence_check() {
    let path = tmpfile("dup");
    let original = build_wal(&path);
    let full = fs::read(&path).unwrap();
    // Re-append the last frame verbatim: its checksum is fine, but its
    // sequence number repeats — replaying it twice could double-apply a
    // batch under semantics less forgiving than set-merge, so the reader
    // must stop at the break instead of trusting it.
    let last_frame_start = {
        let mut offsets = vec![];
        let mut at = 16usize;
        while at + 8 <= full.len() {
            let len = u32::from_le_bytes(full[at..at + 4].try_into().unwrap()) as usize;
            offsets.push(at);
            at += 8 + len;
        }
        *offsets.last().unwrap()
    };
    let mut bytes = full.clone();
    bytes.extend_from_slice(&full[last_frame_start..]);
    fs::write(&path, &bytes).unwrap();
    let c = read_wal(&path).unwrap();
    assert_eq!(c.records.len(), original.len(), "originals must all survive");
    assert_is_prefix(&c.records, &original, "duplicated tail");
    assert!(c.torn_bytes > 0, "the duplicate must be reported as dropped tail bytes");
    fs::remove_file(&path).ok();
}

#[test]
fn truncated_snapshots_fail_recovery_loudly_at_every_sampled_offset() {
    let dir = std::env::temp_dir().join(format!("hdsd_walfuzz_snap_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    let cfg = || DurableConfig {
        dir: dir.clone(),
        policy: FsyncPolicy::Always,
        failpoints: FailPoints::none(),
    };
    let fresh = || {
        Ok(Engine::new(
            hdsd_datasets::holme_kim(30, 2, 0.4, 5),
            &EngineConfig {
                spaces: vec![hdsd_service::SpaceSel::Core],
                local: LocalConfig::sequential(),
            },
        ))
    };
    let (_e, _d, _) = Durability::open(cfg(), LocalConfig::sequential(), fresh).unwrap();
    drop((_e, _d));
    let snap_path = dir.join(hdsd_service::SNAPSHOT_FILE);
    let full = fs::read(&snap_path).unwrap();
    // Every truncation is a torn checkpoint the rename discipline can
    // never produce — recovery must refuse (no panic, no silent cold
    // start), because serving from a half-read snapshot would be serving
    // wrong κ. Sampled stride keeps the sweep fast; endpoints included.
    let mut cuts: Vec<usize> = (0..full.len()).step_by(17).collect();
    cuts.push(full.len() - 1);
    for cut in cuts {
        fs::write(&snap_path, &full[..cut]).unwrap();
        let err = Durability::open(cfg(), LocalConfig::sequential(), || {
            Err("must not cold start over a corrupt snapshot".into())
        })
        .err()
        .unwrap_or_else(|| panic!("truncation at {cut} was accepted"));
        assert!(err.contains("snapshot"), "cut {cut}: {err}");
    }
    fs::remove_dir_all(&dir).ok();
}
