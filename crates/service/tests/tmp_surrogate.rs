use hdsd_service::Json;

#[test]
fn high_surrogate_then_non_low_surrogate_escape() {
    // \ud800 followed by A: lo = 0x41, so `lo - 0xDC00` underflows
    let r = Json::parse(r#""\ud800A""#);
    println!("{r:?}");
}
