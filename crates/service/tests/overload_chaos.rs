//! Chaos/overload harness for the `hdsd-serve` binary: flooding clients
//! against a tiny in-flight budget with stalled workers, mid-request
//! disconnects, slow readers, and forced brownout tiers. The invariants
//! under test:
//!
//! * zero panics — no response ever carries `internal panic`, and the
//!   daemon keeps answering fresh connections after every hostile mix;
//! * every request written on a kept-open connection is answered exactly
//!   once — `ok:true`, an in-band error, or a structured
//!   `overloaded` shed with a bounded `retry_after_ms`;
//! * the shed/degraded/cancelled accounting balances: the `stats`
//!   overload counters equal what the clients observed on the wire, and
//!   in-flight/queue gauges return to quiescent after the storm;
//! * work queued for a disconnected client is cancelled, not executed.
//!
//! `PROPTEST_CASES` scales the flood (requests per client) for the
//! nightly slow lane; the default is sized for the PR gate.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use hdsd_service::Json;

const BIN: &str = env!("CARGO_BIN_EXE_hdsd-serve");

/// Requests per flooding client; `PROPTEST_CASES` (the slow-lane knob)
/// scales it up.
fn flood_len() -> usize {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .map(|n| n.clamp(25, 400))
        .unwrap_or(25)
}

/// Spawn a `--listen` daemon on a fresh port.
fn spawn_tcp(extra_args: &[&str]) -> (Child, String) {
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let addr = format!("127.0.0.1:{port}");
    let mut args = extra_args.to_vec();
    args.extend_from_slice(&["--listen", &addr]);
    let child = Command::new(BIN)
        .args(&args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn hdsd-serve --listen");
    (child, addr)
}

fn connect(addr: &str) -> std::net::TcpStream {
    for _ in 0..250 {
        match std::net::TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(_) => std::thread::sleep(Duration::from_millis(20)),
        }
    }
    panic!("connect to hdsd-serve at {addr}");
}

/// One request/response on a fresh connection (never shed-starved:
/// `stats` is cheap and queues).
fn ask(addr: &str, line: &str) -> Json {
    let stream = connect(addr);
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(writer, "{line}").unwrap();
    writer.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read response");
    Json::parse(reply.trim()).unwrap_or_else(|e| panic!("bad response {reply:?}: {e}"))
}

fn overload_stats(addr: &str) -> Json {
    let v = ask(addr, r#"{"op":"stats"}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
    v.get("overload").expect("stats carries overload").clone()
}

/// What one flooding client observed.
#[derive(Default)]
struct FloodTally {
    ok: usize,
    errors: usize,
    overloaded: usize,
}

/// Pipeline `lines` on one connection (a slow reader: everything is
/// written before the first response is read), then read exactly one
/// response per request and tally the outcomes.
fn flood(addr: &str, lines: &[String]) -> FloodTally {
    let stream = connect(addr);
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    let mut batch = String::new();
    for l in lines {
        batch.push_str(l);
        batch.push('\n');
    }
    writer.write_all(batch.as_bytes()).unwrap();
    writer.flush().unwrap();

    let mut tally = FloodTally::default();
    for i in 0..lines.len() {
        let mut reply = String::new();
        let n = reader.read_line(&mut reply).expect("read flood response");
        assert!(n > 0, "connection closed after {i}/{} responses", lines.len());
        let v = Json::parse(reply.trim()).unwrap_or_else(|e| panic!("bad response {reply:?}: {e}"));
        match v.get("ok").and_then(Json::as_bool) {
            Some(true) => tally.ok += 1,
            Some(false) => {
                let err = v.get("error").and_then(Json::as_str).unwrap_or("");
                assert!(!err.contains("internal panic"), "panic under flood: {v}");
                if err == "overloaded" {
                    let retry = v
                        .get("retry_after_ms")
                        .and_then(Json::as_u64)
                        .unwrap_or_else(|| panic!("shed without retry_after_ms: {v}"));
                    assert!(
                        (25..=5000).contains(&retry),
                        "retry_after_ms {retry} outside the documented clamp"
                    );
                    tally.overloaded += 1;
                } else {
                    tally.errors += 1;
                }
            }
            None => panic!("response without ok: {v}"),
        }
    }
    tally
}

/// The core storm: both workers pinned by `debug_stall`, then flooding
/// clients pipeline expensive requests at many times the in-flight
/// budget. Every request must be answered exactly once (exact, in-band
/// error, or a structured shed), the shed accounting must balance
/// against what the clients saw, and the gauges must return to
/// quiescent.
#[test]
fn flood_at_10x_budget_is_shed_answered_and_balanced() {
    let reqs = flood_len();
    let (mut child, addr) = spawn_tcp(&[
        "--synthetic",
        "2000,6,0.4,7",
        "--spaces",
        "core,truss",
        "--max-inflight",
        "4",
        "--readers",
        "2",
        "--brownout",
        "off",
        "--debug-ops",
    ]);
    // Warm up (and prove the daemon serves) before the storm.
    let v = ask(&addr, r#"{"op":"kappa","space":"core","id":0}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");

    // Stall both reader workers so admission pressure is deterministic
    // even on a fast machine: inflight stays >= 2 while the flood lands.
    let mut stallers = Vec::new();
    for _ in 0..2 {
        let s = connect(&addr);
        let mut w = s.try_clone().unwrap();
        writeln!(w, r#"{{"op":"debug_stall","ms":700}}"#).unwrap();
        w.flush().unwrap();
        stallers.push(s);
    }
    std::thread::sleep(Duration::from_millis(150));

    // 4 flooding clients × reqs expensive ops ≈ 10×+ the budget of 4.
    let mix = |i: usize| -> String {
        match i % 3 {
            0 => format!(r#"{{"op":"kappa","space":"core","id":{}}}"#, i % 1000),
            1 => format!(
                r#"{{"op":"estimate","space":"core","id":{},"iterations":2,"budget":64}}"#,
                i % 1000
            ),
            _ => format!(r#"{{"op":"kappa","space":"truss","id":{}}}"#, i % 1000),
        }
    };
    let mut threads = Vec::new();
    for c in 0..4usize {
        let addr = addr.clone();
        let lines: Vec<String> = (0..reqs).map(|i| mix(c * reqs + i)).collect();
        threads.push(std::thread::spawn(move || flood(&addr, &lines)));
    }
    let mut seen = FloodTally::default();
    for t in threads {
        let tally = t.join().expect("flood client panicked");
        seen.ok += tally.ok;
        seen.errors += tally.errors;
        seen.overloaded += tally.overloaded;
    }
    assert_eq!(seen.ok + seen.errors + seen.overloaded, 4 * reqs, "a request went unanswered");
    assert!(seen.overloaded > 0, "a 10x flood against budget 4 must shed something");

    // Accounting balances: the daemon counted exactly the sheds the
    // clients observed, nothing was degraded (brownout off) and nothing
    // cancelled (no client disconnected mid-request), and the gauges are
    // quiescent again — except the stats request itself, in flight while
    // it snapshots.
    let o = overload_stats(&addr);
    assert_eq!(o.get("shed").and_then(Json::as_u64), Some(seen.overloaded as u64), "{o}");
    assert_eq!(o.get("degraded").and_then(Json::as_u64), Some(0), "{o}");
    assert_eq!(o.get("cancelled").and_then(Json::as_u64), Some(0), "{o}");
    assert_eq!(o.get("inflight").and_then(Json::as_u64), Some(1), "{o}");
    assert_eq!(o.get("queue_depth").and_then(Json::as_u64), Some(0), "{o}");
    assert_eq!(o.get("max_inflight").and_then(Json::as_u64), Some(4), "{o}");

    // The daemon survived the storm unharmed.
    let v = ask(&addr, r#"{"op":"kappa","space":"core","id":0}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
    drop(stallers);
    let _ = child.kill();
    let _ = child.wait();
}

/// A client that queues work and dies mid-request: the stall occupies
/// the single worker, the follow-up request sits in the queue, and the
/// invalid-UTF-8 tail kills the connection in the same sweep. Both jobs
/// must be cancelled — dropped at dequeue or aborted at the next chunk
/// boundary — never executed for the dead client.
#[test]
fn disconnect_cancels_queued_and_running_work() {
    let (mut child, addr) = spawn_tcp(&[
        "--synthetic",
        "2000,6,0.4,7",
        "--spaces",
        "core,truss",
        "--readers",
        "1",
        "--brownout",
        "off",
        "--debug-ops",
    ]);
    let v = ask(&addr, r#"{"op":"kappa","space":"core","id":0}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
    let before = overload_stats(&addr).get("cancelled").and_then(Json::as_u64).unwrap();

    // Stall (runs), region (queued), then garbage: the server marks the
    // connection dead in the sweep that dispatched both jobs.
    let mut doomed = connect(&addr);
    let mut burst = Vec::new();
    burst.extend_from_slice(b"{\"op\":\"debug_stall\",\"ms\":2000}\n");
    burst.extend_from_slice(b"{\"op\":\"region\",\"space\":\"truss\",\"id\":3}\n");
    burst.extend_from_slice(b"\xff\xfe\xff\n");
    doomed.write_all(&burst).unwrap();
    doomed.flush().unwrap();

    // Well before the 2 s stall could finish, both jobs must be counted
    // cancelled (the stall aborts at a 5 ms check, the queued region is
    // dropped at dequeue) and the worker must be free for other clients.
    let deadline = std::time::Instant::now() + Duration::from_millis(1500);
    let mut cancelled = before;
    while std::time::Instant::now() < deadline {
        cancelled = overload_stats(&addr).get("cancelled").and_then(Json::as_u64).unwrap();
        if cancelled >= before + 2 {
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(
        cancelled >= before + 2,
        "expected both jobs of the dead client cancelled (before={before}, after={cancelled})"
    );
    let o = overload_stats(&addr);
    assert_eq!(o.get("inflight").and_then(Json::as_u64), Some(1), "{o}");
    assert_eq!(o.get("queue_depth").and_then(Json::as_u64), Some(0), "{o}");

    let v = ask(&addr, r#"{"op":"kappa","space":"core","id":1}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
    let _ = child.kill();
    let _ = child.wait();
}

/// Forced brownout over the wire: tier 2 turns exact `kappa` and
/// cold-hierarchy `region` into marked, interval-carrying estimates and
/// counts them; `--brownout off` (the other daemons in this file) never
/// degrades.
#[test]
fn forced_brownout_degrades_on_the_wire_and_counts() {
    let (mut child, addr) =
        spawn_tcp(&["--synthetic", "2000,6,0.4,7", "--spaces", "core,truss", "--brownout", "2"]);

    let v = ask(&addr, r#"{"op":"kappa","space":"core","id":7}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
    assert_eq!(v.get("degraded").and_then(Json::as_bool), Some(true), "{v}");
    assert_eq!(v.get("brownout_tier").and_then(Json::as_u64), Some(2), "{v}");
    let lower = v.get("lower").and_then(Json::as_u64).expect("degraded interval");
    let upper = v.get("estimate").and_then(Json::as_u64).expect("degraded interval");
    assert!(lower <= upper, "{v}");

    let v = ask(&addr, r#"{"op":"region","space":"core","id":7}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
    assert_eq!(v.get("degraded").and_then(Json::as_bool), Some(true), "{v}");

    let o = overload_stats(&addr);
    assert_eq!(o.get("brownout_tier").and_then(Json::as_u64), Some(2), "{o}");
    assert_eq!(o.get("degraded").and_then(Json::as_u64), Some(2), "{o}");
    assert_eq!(o.get("shed").and_then(Json::as_u64), Some(0), "{o}");

    let _ = child.kill();
    let _ = child.wait();
}

/// Deadlines keep working through the admission layer: a `deadline_ms`
/// on an expensive hierarchy op over TCP answers a clean staged error
/// (or completes), never a hang, and is counted cancelled.
#[test]
fn wire_deadline_answers_staged_error_not_hang() {
    let (mut child, addr) =
        spawn_tcp(&["--synthetic", "5000,8,0.5,7", "--spaces", "core,truss", "--brownout", "off"]);
    let v = ask(&addr, r#"{"op":"region","space":"truss","id":3,"deadline_ms":0}"#);
    match v.get("ok").and_then(Json::as_bool) {
        Some(true) => {} // completed inside the deadline — legal
        Some(false) => {
            let err = v.get("error").and_then(Json::as_str).unwrap_or("");
            assert!(
                err.starts_with("deadline exceeded (") && err.ends_with(')'),
                "deadline error must name its stage: {v}"
            );
            let o = overload_stats(&addr);
            assert!(o.get("cancelled").and_then(Json::as_u64).unwrap() >= 1, "{o}");
        }
        None => panic!("response without ok: {v}"),
    }
    let _ = child.kill();
    let _ = child.wait();
}
