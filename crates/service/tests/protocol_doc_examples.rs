//! Executes every example in `docs/PROTOCOL.md` against a live engine.
//!
//! The document is the normative protocol spec; this test is what makes
//! it normative. Every ` ```jsonl ` fenced block is replayed in document
//! order — `→ ` lines are sent through [`Server::handle_line`], `← `
//! lines are asserted against the actual response. Key sets and values
//! must match exactly except for a small closed set of volatile keys
//! (timings, byte counts, filesystem paths). Blocks fenced
//! ` ```jsonl durable ` run against a server opened over a fresh
//! durability directory; ` ```jsonl no-test ` blocks are skipped.
//!
//! If this test fails after a protocol change, the spec and the code
//! disagree: fix whichever is wrong, deliberately.

use std::path::PathBuf;

use hdsd_nucleus::LocalConfig;
use hdsd_service::{
    Durability, DurableConfig, Engine, EngineConfig, FailPoints, FsyncPolicy, Json, Server,
    SpaceSel,
};

fn demo_graph() -> hdsd_graph::CsrGraph {
    hdsd_graph::graph_from_edges([
        (0, 1),
        (0, 2),
        (0, 3),
        (1, 2),
        (1, 3),
        (2, 3),
        (2, 4),
        (2, 5),
        (3, 4),
        (3, 5),
        (4, 5),
        (5, 6),
    ])
}

/// A volatile key: present and type-checked in spirit, but its value
/// (and only its value) varies run to run. Kept in sync with the
/// harness note at the top of docs/PROTOCOL.md.
fn volatile(key: &str) -> bool {
    key.ends_with("micros")
        || matches!(
            key,
            "uptime_seconds" | "path" | "bytes" | "snapshot_bytes" | "wal_bytes_truncated"
        )
}

/// Structural equality with volatile object values skipped. Key sets
/// must match exactly — a key the spec shows must be on the wire, and a
/// key on the wire must be in the spec.
fn matches(expected: &Json, actual: &Json, at: &str, errs: &mut Vec<String>) {
    match (expected, actual) {
        (Json::Obj(e), Json::Obj(a)) => {
            for (k, ev) in e {
                match a.iter().find(|(ak, _)| ak == k) {
                    None => errs.push(format!("{at}.{k}: in spec, missing on the wire")),
                    Some((_, av)) if volatile(k) => {
                        // Value ignored, but null vs number vs object is
                        // still a shape difference worth catching.
                        if std::mem::discriminant(ev) != std::mem::discriminant(av) {
                            errs.push(format!("{at}.{k}: volatile key changed JSON type"));
                        }
                    }
                    Some((_, av)) => matches(ev, av, &format!("{at}.{k}"), errs),
                }
            }
            for (k, _) in a {
                if !e.iter().any(|(ek, _)| ek == k) {
                    errs.push(format!("{at}.{k}: on the wire, missing from spec"));
                }
            }
        }
        (Json::Arr(e), Json::Arr(a)) => {
            if e.len() != a.len() {
                errs.push(format!("{at}: spec has {} elements, wire has {}", e.len(), a.len()));
                return;
            }
            for (i, (ev, av)) in e.iter().zip(a).enumerate() {
                matches(ev, av, &format!("{at}[{i}]"), errs);
            }
        }
        _ => {
            if expected != actual {
                errs.push(format!("{at}: spec {expected} != wire {actual}"));
            }
        }
    }
}

struct Example {
    line_no: usize,
    request: String,
    expected: Json,
}

/// (mode, examples) per testable fenced block, in document order.
fn extract_blocks(md: &str) -> Vec<(String, Vec<Example>)> {
    let mut blocks = Vec::new();
    let mut current: Option<(String, Vec<Example>)> = None;
    let mut pending_request: Option<(usize, String)> = None;
    for (i, line) in md.lines().enumerate() {
        let line_no = i + 1;
        if let Some(info) = line.trim().strip_prefix("```") {
            match current.take() {
                None => {
                    let info = info.trim();
                    if info == "jsonl" || info == "jsonl durable" {
                        current = Some((info.to_string(), Vec::new()));
                    } else if !info.starts_with("jsonl") && info.contains("json") {
                        panic!("PROTOCOL.md:{line_no}: examples must be fenced jsonl: {info:?}");
                    }
                }
                Some(block) => {
                    assert!(
                        pending_request.is_none(),
                        "PROTOCOL.md:{line_no}: block ended with an unanswered request"
                    );
                    blocks.push(block);
                }
            }
            continue;
        }
        let Some((_, examples)) = current.as_mut() else { continue };
        if let Some(req) = line.strip_prefix("→ ") {
            assert!(
                pending_request.is_none(),
                "PROTOCOL.md:{line_no}: two requests without a response between them"
            );
            pending_request = Some((line_no, req.trim().to_string()));
        } else if let Some(resp) = line.strip_prefix("← ") {
            let (line_no, request) = pending_request.take().unwrap_or_else(|| {
                panic!("PROTOCOL.md:{line_no}: response with no preceding request")
            });
            let expected = Json::parse(resp.trim())
                .unwrap_or_else(|e| panic!("PROTOCOL.md:{line_no}: bad expected JSON: {e}"));
            examples.push(Example { line_no, request, expected });
        } else if !line.trim().is_empty() {
            panic!("PROTOCOL.md:{line_no}: jsonl blocks hold only → / ← lines: {line:?}");
        }
    }
    assert!(current.is_none(), "PROTOCOL.md: unterminated fenced block");
    blocks
}

fn replay(server: &mut Server, examples: &[Example], save_path: &str) {
    for ex in examples {
        let request = ex.request.replace("<save_path>", save_path);
        let h = server.handle_line(&request);
        let actual = Json::parse(&h.response)
            .unwrap_or_else(|e| panic!("PROTOCOL.md:{}: response not JSON: {e}", ex.line_no));
        let mut errs = Vec::new();
        matches(&ex.expected, &actual, "$", &mut errs);
        assert!(
            errs.is_empty(),
            "PROTOCOL.md:{} — the documented example disagrees with the live engine:\n  \
             request: {request}\n  wire:    {}\n  {}",
            ex.line_no,
            h.response,
            errs.join("\n  ")
        );
    }
}

fn tmpdir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hdsd_protodoc_{}_{tag}", std::process::id()))
}

#[test]
fn every_example_in_protocol_md_runs_verbatim() {
    let md_path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../docs/PROTOCOL.md");
    let md = std::fs::read_to_string(md_path).expect("docs/PROTOCOL.md exists");
    let blocks = extract_blocks(&md);
    assert!(
        blocks.iter().any(|(m, _)| m == "jsonl")
            && blocks.iter().any(|(m, _)| m == "jsonl durable"),
        "PROTOCOL.md lost its testable examples"
    );

    // Default-mode blocks share one server, in document order, exactly
    // like one client session reading the spec top to bottom.
    let cfg = EngineConfig {
        spaces: vec![SpaceSel::Core, SpaceSel::Truss, SpaceSel::Nucleus34],
        local: LocalConfig::sequential(),
    };
    let mut plain = Server::new(Engine::new(demo_graph(), &cfg));

    // Durable blocks share a durable server over a fresh directory.
    let dir = tmpdir("durable");
    let _ = std::fs::remove_dir_all(&dir);
    let dcfg = DurableConfig {
        dir: dir.clone(),
        policy: FsyncPolicy::Always,
        failpoints: FailPoints::none(),
    };
    let (engine, dur, _) = Durability::open(dcfg, LocalConfig::sequential(), || {
        let cfg = EngineConfig { spaces: vec![SpaceSel::Core], local: LocalConfig::sequential() };
        Ok(Engine::new(demo_graph(), &cfg))
    })
    .expect("open durability dir");
    let mut durable = Server::with_durability(engine, dur);
    let save_path = tmpdir("save.bin");

    for (mode, examples) in &blocks {
        match mode.as_str() {
            "jsonl" => replay(&mut plain, examples, &save_path.to_string_lossy()),
            "jsonl durable" => replay(&mut durable, examples, &save_path.to_string_lossy()),
            other => panic!("unknown block mode {other:?}"),
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_file(&save_path);
}
