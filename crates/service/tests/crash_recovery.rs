//! Crash-point fault injection for the durable serving pipeline.
//!
//! The property under test is the WAL contract end to end: **a crash at
//! any point in the append / fsync / checkpoint / rotate pipeline loses
//! at most the batches that were never acknowledged, and recovery is
//! exact** — the recovered engine's κ vectors, peel order, and hierarchy
//! canonical form are bit-identical to an uninterrupted reference engine
//! that applied the same batches.
//!
//! Mechanics: a [`FailPoints`] hook is armed at one named crash point per
//! trial. When it fires, the writer marks itself dead (every later I/O
//! fails), simulating the process vanishing mid-pipeline. The harness
//! then recovers from the directory exactly as a restarted daemon would
//! ([`Durability::open`] with a must-not-cold-start seed), derives how
//! many batches the crash point guarantees durable, resumes the stream
//! from there, and diffs against the reference.
//!
//! Case count scales with `PROPTEST_CASES` (the nightly slow-props job
//! raises it); the in-repo default runs 100 randomized streams through
//! all crash points and all three resident spaces.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use hdsd_graph::CsrGraph;
use hdsd_nucleus::{assert_forest_eq, peel, CoreSpace, LocalConfig, Nucleus34Space, TrussSpace};
use hdsd_service::{
    is_injected_crash, Durability, DurableConfig, Engine, EngineConfig, FailPoints, FsyncPolicy,
    SpaceSel,
};
use proptest::splitmix64 as splitmix;
use proptest::test_runner::Config;

/// Every named crash point in the WAL + checkpoint pipeline, in pipeline
/// order. Keep in sync with `wal.rs` / `recovery.rs`.
const CRASH_POINTS: &[&str] = &[
    "wal.append.before",
    "wal.append.torn",
    "wal.fsync",
    "wal.append.after",
    "ckpt.temp.torn",
    "ckpt.fsync",
    "ckpt.rename.before",
    "ckpt.rename.after",
    "wal.rotate",
];

const SPACES: &[SpaceSel] = &[SpaceSel::Core, SpaceSel::Truss, SpaceSel::Nucleus34];

type Edge = (u32, u32);

struct Stream {
    base: CsrGraph,
    batches: Vec<(Vec<Edge>, Vec<Edge>)>,
}

/// A small random graph plus a stream of random edge batches. Ids may
/// exceed the current vertex count slightly (growth), removals may miss
/// (no-ops) — the engine-level semantics the WAL must reproduce exactly.
fn random_stream(seed: u64) -> Stream {
    let mut rng = seed ^ 0x9E37_79B9_7F4A_7C15;
    let n = 22 + (splitmix(&mut rng) % 8) as u32;
    let base = hdsd_datasets::holme_kim(n, 2, 0.4, splitmix(&mut rng));
    let id_cap = n as u64 + 4;
    let n_batches = 4 + (splitmix(&mut rng) % 3) as usize;
    let mut batches = Vec::with_capacity(n_batches);
    for _ in 0..n_batches {
        let mut insert: Vec<Edge> = Vec::new();
        for _ in 0..(1 + splitmix(&mut rng) % 3) {
            let u = (splitmix(&mut rng) % id_cap) as u32;
            let v = (splitmix(&mut rng) % id_cap) as u32;
            let e = (u.min(v), u.max(v));
            if u != v && !insert.contains(&e) {
                insert.push(e);
            }
        }
        let mut remove: Vec<Edge> = Vec::new();
        if splitmix(&mut rng).is_multiple_of(2) {
            let u = (splitmix(&mut rng) % id_cap) as u32;
            let v = (splitmix(&mut rng) % id_cap) as u32;
            if u != v && !insert.contains(&(u.min(v), u.max(v))) {
                remove.push((u.min(v), u.max(v)));
            }
        }
        if insert.is_empty() && remove.is_empty() {
            insert.push((0, 1 + (splitmix(&mut rng) % (id_cap - 1)) as u32));
        }
        batches.push((insert, remove));
    }
    Stream { base, batches }
}

fn engine_of(graph: CsrGraph) -> Engine {
    Engine::new(graph, &EngineConfig { spaces: SPACES.to_vec(), local: LocalConfig::sequential() })
}

fn tmpdir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hdsd_crashrec_{}_{tag}", std::process::id()))
}

fn durable_cfg(dir: &std::path::Path, failpoints: FailPoints) -> DurableConfig {
    DurableConfig { dir: dir.to_path_buf(), policy: FsyncPolicy::Always, failpoints }
}

/// Arms exactly one firing of `point`.
fn one_shot(point: &'static str) -> (FailPoints, Arc<AtomicBool>, Arc<AtomicBool>) {
    let armed = Arc::new(AtomicBool::new(false));
    let fired = Arc::new(AtomicBool::new(false));
    let (a, f) = (Arc::clone(&armed), Arc::clone(&fired));
    let fp = FailPoints::new(move |p| {
        p == point && a.load(Ordering::SeqCst) && !f.swap(true, Ordering::SeqCst)
    });
    (fp, armed, fired)
}

/// Batches guaranteed recoverable after crashing at `point` while
/// processing batch `c` (0-based). The WAL contract: a batch is durable
/// iff its record reached the log file before the crash.
fn durable_count(point: &str, c: usize) -> usize {
    match point {
        // The record was never (fully) written: batch `c` is lost — and
        // was never acknowledged, so losing it is correct.
        "wal.append.before" | "wal.append.torn" => c,
        // The record is fully in the file (the failed fsync matters for
        // power loss, not process death) — recovering an unacknowledged
        // batch is allowed; losing an acknowledged one is not.
        "wal.fsync" | "wal.append.after" => c + 1,
        // Checkpoint-path crashes happen after batches 0..=c were logged
        // and applied: whichever snapshot survives the crash, snapshot +
        // idempotent WAL replay reconstructs all of them.
        _ => c + 1,
    }
}

/// Runs one (stream, crash point) trial: drive until the injected crash,
/// recover warm, resume the stream, diff against the reference.
fn run_trial(stream: &Stream, reference: &mut Engine, point: &'static str, trial_tag: &str) {
    let dir = tmpdir(trial_tag);
    let _ = std::fs::remove_dir_all(&dir);
    let (fp, armed, fired) = one_shot(point);
    let seed_graph = stream.base.clone();
    let (mut engine, mut dur, _) =
        Durability::open(durable_cfg(&dir, fp), LocalConfig::sequential(), move || {
            Ok(engine_of(seed_graph))
        })
        .expect("fresh open");

    let c = (stream.batches.len() / 2).min(stream.batches.len() - 1);
    let ckpt_path = !point.starts_with("wal.append") && point != "wal.fsync";
    let mut crashed = false;
    for (j, (ins, rm)) in stream.batches.iter().enumerate() {
        if j == c && !ckpt_path {
            armed.store(true, Ordering::SeqCst);
            let err = dur.append(ins, rm).expect_err("armed append must crash");
            assert!(is_injected_crash(&err), "{point}: {err}");
            crashed = true;
            break;
        }
        dur.append(ins, rm).expect("append");
        engine.update(ins, rm);
        if j == c && ckpt_path {
            armed.store(true, Ordering::SeqCst);
            let err = dur.checkpoint(&engine).expect_err("armed checkpoint must crash");
            assert!(is_injected_crash(&err), "{point}: {err}");
            crashed = true;
            break;
        }
    }
    assert!(crashed && fired.load(Ordering::SeqCst), "{point}: crash point never fired");
    drop((engine, dur)); // the process "dies" here

    // Restart. A valid checkpoint exists, so recovery must be warm: the
    // fresh closure is poisoned, and adopted κ means zero peel time.
    let (mut rec, mut dur2, rep) =
        Durability::open(durable_cfg(&dir, FailPoints::none()), LocalConfig::sequential(), || {
            Err("unexpected cold start: a checkpoint exists".into())
        })
        .unwrap_or_else(|e| panic!("{point}: recovery failed: {e}"));
    let durable = durable_count(point, c);
    assert!(rep.snapshot_loaded && !rep.cold_start, "{point}: {rep:?}");
    assert_eq!(rep.replayed as usize, durable, "{point}: wrong replay count ({rep:?})");
    assert_eq!(rep.torn_bytes > 0, point == "wal.append.torn", "{point}: {rep:?}");
    for sp in rec.stats().spaces {
        assert_eq!(sp.peel_us, 0, "{point}: {} was re-peeled from scratch", sp.space);
    }

    // Resume the stream past the crash and diff against the reference.
    for (ins, rm) in &stream.batches[durable..] {
        dur2.append(ins, rm).expect("resumed append");
        rec.update(ins, rm);
    }
    assert_eq!(rec.graph().num_vertices(), reference.graph().num_vertices(), "{point}");
    assert_eq!(rec.graph().edges(), reference.graph().edges(), "{point}: graphs diverged");
    for &sel in SPACES {
        assert_eq!(
            rec.kappa_vector(sel).unwrap(),
            reference.kappa_vector(sel).unwrap(),
            "{point}: κ diverged in {sel:?}"
        );
        assert_forest_eq(rec.hierarchy_of(sel).unwrap(), reference.hierarchy_of(sel).unwrap());
    }
    // Peel both graphs from scratch: κ and peel order must match exactly
    // (the graphs are bit-equal, so this pins determinism of the peel
    // itself on the recovered bytes).
    let (ga, gb) = (rec.graph(), reference.graph());
    for &sel in SPACES {
        let (a, b) = match sel {
            SpaceSel::Core => (peel(&CoreSpace::new(ga)), peel(&CoreSpace::new(gb))),
            SpaceSel::Truss => {
                (peel(&TrussSpace::precomputed(ga)), peel(&TrussSpace::precomputed(gb)))
            }
            _ => (peel(&Nucleus34Space::precomputed(ga)), peel(&Nucleus34Space::precomputed(gb))),
        };
        assert_eq!(a.kappa, b.kappa, "{point}: peel κ diverged in {sel:?}");
        assert_eq!(a.order, b.order, "{point}: peel order diverged in {sel:?}");
        assert_eq!(a.max_kappa, b.max_kappa, "{point}: max κ diverged in {sel:?}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn every_crash_point_recovers_exactly_over_randomized_streams() {
    let streams = Config::with_cases(100).effective_cases();
    for i in 0..streams as u64 {
        let stream = random_stream(0xC0FF_EE00 + i);
        // The uninterrupted reference: same base, same batches, no crash.
        let mut reference = engine_of(stream.base.clone());
        for (ins, rm) in &stream.batches {
            reference.update(ins, rm);
        }
        for (pi, &point) in CRASH_POINTS.iter().enumerate() {
            run_trial(&stream, &mut reference, point, &format!("{i}_{pi}"));
        }
    }
}
