//! Fuzz-style robustness tests for the hand-rolled JSON parser.
//!
//! The parser fronts every byte the daemon reads off the wire, so the
//! contract is strict: for **any** input string, `Json::parse` returns
//! `Ok` or `Err` — it never panics, never loops, and `Ok` values must
//! re-serialize to something it can parse again. This is the regression
//! net over the PR 3 surrogate-escape fix (`\ud800\u0041` once
//! underflowed `lo - 0xDC00`), generalized from hand-picked cases to
//! deterministic byte-level mutation and random-bytes sweeps.

use hdsd_service::Json;

use proptest::splitmix64 as splitmix;

/// Valid protocol-shaped documents to mutate: every op the server speaks,
/// plus escape-heavy and nesting-heavy strings.
const SEEDS: &[&str] = &[
    r#"{"op":"kappa","space":"core","id":4}"#,
    r#"{"op":"estimate","space":"truss","vertices":[0,1],"iterations":3,"budget":4096}"#,
    r#"{"op":"update","insert":[[7,9],[1,2]],"remove":[[0,3]]}"#,
    r#"{"op":"nuclei","space":"34","k":2,"limit":8}"#,
    r#"{"op":"save","path":"/tmp/x.snap"}"#,
    r#"{"a":1.5e-3,"b":[true,false,null],"c":"hi \"there\"\n","d":-2.5}"#,
    r#""unicode: \u00e9 and \ud83d\ude00 and é and 😀""#,
    r#"[[[[[{"deep":[1,[2,[3,[4]]]]}]]]]]"#,
    r#"{"esc":"\\\"\b\f\n\r\t\/\u0041"}"#,
    "   {\t\"ws\" :\r\n [ 1 ,  2 ] }  ",
];

/// The invariant every input must satisfy: parse returns without
/// panicking, and anything accepted round-trips through `Display`.
fn check(input: &str) {
    if let Ok(v) = Json::parse(input) {
        let text = v.to_string();
        let back = Json::parse(&text)
            .unwrap_or_else(|e| panic!("accepted {input:?} but rejected own output {text:?}: {e}"));
        assert_eq!(back, v, "display round trip changed the value of {input:?}");
    }
}

#[test]
fn byte_level_mutations_never_panic() {
    let mut rng = 0xF00D_F1E5u64;
    for seed in SEEDS {
        // Every single-byte truncation of the document.
        for cut in 0..=seed.len() {
            if seed.is_char_boundary(cut) {
                check(&seed[..cut]);
                check(&seed[cut..]);
            }
        }
        // Deterministic random mutations: overwrite, insert, delete.
        for _ in 0..400 {
            let mut bytes = seed.as_bytes().to_vec();
            for _ in 0..(splitmix(&mut rng) % 4 + 1) {
                let at = (splitmix(&mut rng) % bytes.len() as u64) as usize;
                match splitmix(&mut rng) % 3 {
                    0 => bytes[at] = (splitmix(&mut rng) & 0xFF) as u8,
                    1 => bytes.insert(at, (splitmix(&mut rng) & 0xFF) as u8),
                    _ => {
                        bytes.remove(at);
                        if bytes.is_empty() {
                            bytes.push(b'{');
                        }
                    }
                }
            }
            // Mutations can break UTF-8; the parser's contract is over
            // &str, so exercise it on the lossy repair (the transport
            // layer hands it strings, not raw bytes).
            check(&String::from_utf8_lossy(&bytes));
        }
    }
}

#[test]
fn random_byte_strings_never_panic() {
    let mut rng = 0xBAD_5EED5u64;
    for round in 0..2_000u32 {
        let len = (splitmix(&mut rng) % 48) as usize;
        let bytes: Vec<u8> = (0..len).map(|_| (splitmix(&mut rng) & 0xFF) as u8).collect();
        let text = String::from_utf8_lossy(&bytes);
        check(&text);
        let _ = round;
    }
}

#[test]
fn structured_junk_is_rejected_not_fatal() {
    // Adversarial shapes aimed at each parser state: unterminated
    // nesting, bad escapes, surrogate fragments, number edge cases,
    // duplicate/missing punctuation.
    for text in [
        "{\"a\":",
        "[",
        "[[[[[[[[[[",
        "{\"a\" 1}",
        "{\"a\":1,}",
        "[1,]",
        "{,}",
        "\"\\u",
        "\"\\u12",
        "\"\\ud800\\u",
        "\"\\ud800\\udbff\"",
        "\"\\udfff\"",
        "\"\\x41\"",
        "-",
        "-.",
        "1e",
        "1e+",
        "0x10",
        "01e999999999",
        "nulll",
        "truefalse",
        "\u{0}",
        "\"\u{1}\"",
        "{\"\\u0000\":1} trailing",
    ] {
        check(text);
        assert!(Json::parse(text).is_err(), "{text:?} should be rejected");
    }
    // Near-misses that are VALID must stay valid (guard against
    // over-rejection creeping in with future hardening).
    for text in ["1e9", "-0.5", "{\"\\u0041\":[]}", "\"\\ud83d\\ude00\"", "[null]"] {
        assert!(Json::parse(text).is_ok(), "{text:?} should parse");
    }
}
