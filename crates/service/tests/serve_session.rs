//! End-to-end tests of the `hdsd-serve` binary: a scripted session of
//! lookups, budgeted estimates, region extractions and updates over
//! stdin/stdout, a snapshot save → restart cycle, and the TCP listener.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

use hdsd_service::Json;

const BIN: &str = env!("CARGO_BIN_EXE_hdsd-serve");

struct Serve {
    child: Child,
    stdin: std::process::ChildStdin,
    stdout: BufReader<std::process::ChildStdout>,
}

impl Serve {
    fn spawn(args: &[&str]) -> Serve {
        let mut child = Command::new(BIN)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn hdsd-serve");
        let stdin = child.stdin.take().unwrap();
        let stdout = BufReader::new(child.stdout.take().unwrap());
        Serve { child, stdin, stdout }
    }

    fn request(&mut self, line: &str) -> Json {
        writeln!(self.stdin, "{line}").expect("write request");
        self.stdin.flush().unwrap();
        let mut reply = String::new();
        self.stdout.read_line(&mut reply).expect("read response");
        Json::parse(reply.trim()).unwrap_or_else(|e| panic!("bad response {reply:?}: {e}"))
    }

    fn ok(&mut self, line: &str) -> Json {
        let v = self.request(line);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{line} → {v}");
        v
    }

    fn shutdown(mut self) {
        let _ = writeln!(self.stdin, r#"{{"op":"shutdown"}}"#);
        let _ = self.child.wait();
    }
}

impl Drop for Serve {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn scripted_session_over_stdin() {
    let mut s = Serve::spawn(&["--demo", "--spaces", "core,truss,34"]);

    let v = s.ok(r#"{"op":"stats"}"#);
    assert_eq!(v.get("vertices").unwrap().as_u64(), Some(7));
    assert_eq!(v.get("edges").unwrap().as_u64(), Some(12));

    // Exact lookups, id- and vertex-addressed.
    let v = s.ok(r#"{"op":"kappa","space":"core","id":0}"#);
    assert_eq!(v.get("kappa").unwrap().as_u64(), Some(3));
    let v = s.ok(r#"{"op":"kappa","space":"core","vertices":[6]}"#);
    assert_eq!(v.get("kappa").unwrap().as_u64(), Some(1));
    let v = s.ok(r#"{"op":"kappa","space":"truss","vertices":[0,1]}"#);
    assert_eq!(v.get("kappa").unwrap().as_u64(), Some(2));
    let v = s.ok(r#"{"op":"kappa","space":"34","vertices":[0,1,2]}"#);
    assert_eq!(v.get("kappa").unwrap().as_u64(), Some(1));

    // Budgeted estimate: the Theorem-1 interval brackets κ and reports
    // exploration telemetry.
    let v = s.ok(r#"{"op":"estimate","space":"core","id":2,"iterations":3,"budget":50}"#);
    let lower = v.get("lower").unwrap().as_u64().unwrap();
    let upper = v.get("estimate").unwrap().as_u64().unwrap();
    assert!(lower <= 3 && 3 <= upper, "interval [{lower}, {upper}] misses κ=3");
    assert!(v.get("explored").unwrap().as_u64().unwrap() >= 1);
    assert!(v.get("micros").is_some());

    // Densest region around vertex 0: the 3-core over both K4s.
    let v = s.ok(r#"{"op":"region","space":"core","id":0}"#);
    assert_eq!(v.get("k").unwrap().as_u64(), Some(3));
    assert_eq!(v.get("num_vertices").unwrap().as_u64(), Some(6));

    // The (3,4) hierarchy keeps the two K4s separate (paper Figure 3).
    let v = s.ok(r#"{"op":"nuclei","space":"34","k":1}"#);
    assert_eq!(v.get("total").unwrap().as_u64(), Some(2));

    // Updates refresh exactly: drop the tail, then close a K5.
    let v = s.ok(r#"{"op":"remove","edges":[[5,6]]}"#);
    assert_eq!(v.get("removed").unwrap().as_u64(), Some(1));
    let v = s.ok(r#"{"op":"kappa","space":"core","id":6}"#);
    assert_eq!(v.get("kappa").unwrap().as_u64(), Some(0));
    let v = s.ok(r#"{"op":"update","insert":[[0,4],[1,4]],"remove":[]}"#);
    assert_eq!(v.get("inserted").unwrap().as_u64(), Some(2));
    let refreshes = v.get("spaces").unwrap().as_array().unwrap();
    assert_eq!(refreshes.len(), 3);
    for r in refreshes {
        assert!(r.get("sweeps").unwrap().as_u64().unwrap() >= 1);
    }
    let v = s.ok(r#"{"op":"kappa","space":"core","id":4}"#);
    assert_eq!(v.get("kappa").unwrap().as_u64(), Some(4));

    // Errors are per-request, not fatal.
    let v = s.request(r#"{"op":"kappa","space":"truss","vertices":[0,6]}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    s.ok(r#"{"op":"stats"}"#);

    s.shutdown();
}

#[test]
fn snapshot_save_and_restart() {
    let dir = std::env::temp_dir().join(format!("hdsd_serve_snap_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("engine.snap");
    let snap_str = snap.to_str().unwrap().replace('\\', "/");

    let mut s = Serve::spawn(&["--synthetic", "400,5,0.5,11", "--spaces", "core,truss"]);
    s.ok(r#"{"op":"update","insert":[[0,200],[1,201]],"remove":[]}"#);
    let before = s.ok(r#"{"op":"kappa","space":"truss","id":33}"#);
    let v = s.ok(&format!(r#"{{"op":"save","path":"{snap_str}"}}"#));
    assert_eq!(v.get("spaces").unwrap().as_u64(), Some(2));
    s.shutdown();

    // Restart from the snapshot: same answers, hierarchy already resident.
    let mut s2 = Serve::spawn(&["--snapshot", &snap_str]);
    let stats = s2.ok(r#"{"op":"stats"}"#);
    let resident: Vec<bool> = stats
        .get("spaces")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|sp| sp.get("hierarchy_resident").unwrap().as_bool().unwrap())
        .collect();
    assert_eq!(resident, vec![true, true], "snapshot should restore resident hierarchies");
    let after = s2.ok(r#"{"op":"kappa","space":"truss","id":33}"#);
    assert_eq!(
        before.get("kappa").unwrap().as_u64(),
        after.get("kappa").unwrap().as_u64(),
        "κ must survive the restart"
    );
    // The restored engine still serves updates.
    s2.ok(r#"{"op":"insert","edges":[[2,202]]}"#);
    s2.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tcp_mode_serves_requests() {
    // Pick a free port by binding and releasing it.
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let addr = format!("127.0.0.1:{port}");
    let mut child = Command::new(BIN)
        .args(["--demo", "--listen", &addr])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn hdsd-serve --listen");

    // Wait for the listener to come up.
    let mut stream = None;
    for _ in 0..100 {
        match std::net::TcpStream::connect(&addr) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    }
    let stream = stream.expect("connect to hdsd-serve");
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    let mut ask = |line: &str| -> Json {
        writeln!(writer, "{line}").unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        Json::parse(reply.trim()).unwrap()
    };
    let v = ask(r#"{"op":"kappa","space":"core","id":0}"#);
    assert_eq!(v.get("kappa").unwrap().as_u64(), Some(3));
    let v = ask(r#"{"op":"stats"}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    let v = ask(r#"{"op":"shutdown"}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));

    // The process should exit after shutdown (give it a moment).
    for _ in 0..100 {
        match child.try_wait().unwrap() {
            Some(_) => break,
            None => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    }
    let _ = child.kill();
    let _ = child.wait();
}

#[test]
fn panicking_request_is_survived_over_the_wire() {
    let mut s = Serve::spawn(&["--demo", "--debug-ops"]);
    let v = s.request(r#"{"op":"debug_panic"}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    assert!(v.get("error").unwrap().as_str().unwrap().contains("internal panic"), "{v}");
    // The daemon did not die: the very next request on the same pipe is
    // answered normally.
    let v = s.ok(r#"{"op":"kappa","space":"core","id":0}"#);
    assert_eq!(v.get("kappa").unwrap().as_u64(), Some(3));
    s.shutdown();
}

#[test]
fn durable_daemon_survives_kill_dash_nine() {
    let dir = std::env::temp_dir().join(format!("hdsd_serve_durable_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_str = dir.to_str().unwrap().replace('\\', "/");
    let durable_args =
        ["--demo", "--spaces", "core,truss,34", "--durable", &dir_str, "--fsync", "always"];

    let mut s = Serve::spawn(&durable_args);
    let v = s.ok(r#"{"op":"update","insert":[[0,4],[1,4]],"remove":[[5,6]]}"#);
    assert_eq!(v.get("wal_seq").unwrap().as_u64(), Some(1), "{v}");
    let v = s.ok(r#"{"op":"update","insert":[[0,7],[4,7]]}"#);
    assert_eq!(v.get("wal_seq").unwrap().as_u64(), Some(2));
    let kappa4 = s.ok(r#"{"op":"kappa","space":"core","id":4}"#);
    let kappa4 = kappa4.get("kappa").unwrap().as_u64().unwrap();
    assert_eq!(kappa4, 4, "the closed K5 must be served before the crash");
    // kill(), on unix, is SIGKILL: no drain, no checkpoint, no goodbye.
    s.child.kill().expect("kill -9");
    let _ = s.child.wait();
    drop(s);

    // Restart over the same directory: the WAL tail replays through the
    // warm update path and every acknowledged batch is still there.
    let mut s2 = Serve::spawn(&durable_args);
    let v = s2.ok(r#"{"op":"wal_stats"}"#);
    let rec = v.get("recovery").unwrap();
    assert_eq!(rec.get("snapshot_loaded").and_then(Json::as_bool), Some(true), "{v}");
    assert_eq!(rec.get("replayed").and_then(Json::as_u64), Some(2), "{v}");
    let v = s2.ok(r#"{"op":"kappa","space":"core","id":4}"#);
    assert_eq!(v.get("kappa").unwrap().as_u64(), Some(kappa4), "κ lost in the crash");
    let v = s2.ok(r#"{"op":"kappa","space":"core","id":6}"#);
    assert_eq!(v.get("kappa").unwrap().as_u64(), Some(0), "removal lost in the crash");
    // Graceful shutdown folds the replayed state into a checkpoint...
    let v = s2.request(r#"{"op":"shutdown"}"#);
    assert_eq!(v.get("checkpointed").and_then(Json::as_bool), Some(true), "{v}");
    let _ = s2.child.wait();
    drop(s2);

    // ...so the third start replays nothing.
    let mut s3 = Serve::spawn(&durable_args);
    let v = s3.ok(r#"{"op":"wal_stats"}"#);
    let rec = v.get("recovery").unwrap();
    assert_eq!(rec.get("replayed").and_then(Json::as_u64), Some(0), "{v}");
    s3.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(unix)]
#[test]
fn sigterm_drains_and_checkpoints_gracefully() {
    let dir = std::env::temp_dir().join(format!("hdsd_serve_sigterm_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_str = dir.to_str().unwrap().to_string();
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let addr = format!("127.0.0.1:{port}");
    let mut child = Command::new(BIN)
        .args(["--demo", "--durable", &dir_str, "--listen", &addr])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn durable TCP hdsd-serve");

    let mut stream = None;
    for _ in 0..100 {
        match std::net::TcpStream::connect(&addr) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    }
    let stream = stream.expect("connect");
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(writer, r#"{{"op":"update","insert":[[0,4],[1,4]]}}"#).unwrap();
    writer.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"wal_seq\":1"), "{reply}");

    // SIGTERM (not SIGKILL): the accept loop notices, drains, checkpoints.
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(status.success());
    for _ in 0..200 {
        if child.try_wait().unwrap().is_some() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(child.try_wait().unwrap().is_some(), "daemon ignored SIGTERM");

    // The shutdown was graceful: the update is in the checkpoint and the
    // restart replays nothing.
    let mut s = Serve::spawn(&["--demo", "--durable", &dir_str]);
    let v = s.ok(r#"{"op":"wal_stats"}"#);
    let rec = v.get("recovery").unwrap();
    assert_eq!(rec.get("snapshot_loaded").and_then(Json::as_bool), Some(true), "{v}");
    assert_eq!(rec.get("replayed").and_then(Json::as_u64), Some(0), "{v}");
    let v = s.ok(r#"{"op":"kappa","space":"core","id":4}"#);
    assert_eq!(v.get("kappa").unwrap().as_u64(), Some(4), "update lost despite graceful SIGTERM");
    s.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
