//! End-to-end tests of the `hdsd-serve` binary: a scripted session of
//! lookups, budgeted estimates, region extractions and updates over
//! stdin/stdout, a snapshot save → restart cycle, and the TCP listener.

use std::io::{BufRead, BufReader, Write};
use std::process::{Child, Command, Stdio};

use hdsd_service::Json;

const BIN: &str = env!("CARGO_BIN_EXE_hdsd-serve");

struct Serve {
    child: Child,
    stdin: std::process::ChildStdin,
    stdout: BufReader<std::process::ChildStdout>,
}

impl Serve {
    fn spawn(args: &[&str]) -> Serve {
        let mut child = Command::new(BIN)
            .args(args)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn hdsd-serve");
        let stdin = child.stdin.take().unwrap();
        let stdout = BufReader::new(child.stdout.take().unwrap());
        Serve { child, stdin, stdout }
    }

    fn request(&mut self, line: &str) -> Json {
        writeln!(self.stdin, "{line}").expect("write request");
        self.stdin.flush().unwrap();
        let mut reply = String::new();
        self.stdout.read_line(&mut reply).expect("read response");
        Json::parse(reply.trim()).unwrap_or_else(|e| panic!("bad response {reply:?}: {e}"))
    }

    fn ok(&mut self, line: &str) -> Json {
        let v = self.request(line);
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{line} → {v}");
        v
    }

    fn shutdown(mut self) {
        let _ = writeln!(self.stdin, r#"{{"op":"shutdown"}}"#);
        let _ = self.child.wait();
    }
}

impl Drop for Serve {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

#[test]
fn scripted_session_over_stdin() {
    let mut s = Serve::spawn(&["--demo", "--spaces", "core,truss,34"]);

    let v = s.ok(r#"{"op":"stats"}"#);
    assert_eq!(v.get("vertices").unwrap().as_u64(), Some(7));
    assert_eq!(v.get("edges").unwrap().as_u64(), Some(12));

    // Exact lookups, id- and vertex-addressed.
    let v = s.ok(r#"{"op":"kappa","space":"core","id":0}"#);
    assert_eq!(v.get("kappa").unwrap().as_u64(), Some(3));
    let v = s.ok(r#"{"op":"kappa","space":"core","vertices":[6]}"#);
    assert_eq!(v.get("kappa").unwrap().as_u64(), Some(1));
    let v = s.ok(r#"{"op":"kappa","space":"truss","vertices":[0,1]}"#);
    assert_eq!(v.get("kappa").unwrap().as_u64(), Some(2));
    let v = s.ok(r#"{"op":"kappa","space":"34","vertices":[0,1,2]}"#);
    assert_eq!(v.get("kappa").unwrap().as_u64(), Some(1));

    // Budgeted estimate: the Theorem-1 interval brackets κ and reports
    // exploration telemetry.
    let v = s.ok(r#"{"op":"estimate","space":"core","id":2,"iterations":3,"budget":50}"#);
    let lower = v.get("lower").unwrap().as_u64().unwrap();
    let upper = v.get("estimate").unwrap().as_u64().unwrap();
    assert!(lower <= 3 && 3 <= upper, "interval [{lower}, {upper}] misses κ=3");
    assert!(v.get("explored").unwrap().as_u64().unwrap() >= 1);
    assert!(v.get("micros").is_some());

    // Densest region around vertex 0: the 3-core over both K4s.
    let v = s.ok(r#"{"op":"region","space":"core","id":0}"#);
    assert_eq!(v.get("k").unwrap().as_u64(), Some(3));
    assert_eq!(v.get("num_vertices").unwrap().as_u64(), Some(6));

    // The (3,4) hierarchy keeps the two K4s separate (paper Figure 3).
    let v = s.ok(r#"{"op":"nuclei","space":"34","k":1}"#);
    assert_eq!(v.get("total").unwrap().as_u64(), Some(2));

    // Updates refresh exactly: drop the tail, then close a K5.
    let v = s.ok(r#"{"op":"remove","edges":[[5,6]]}"#);
    assert_eq!(v.get("removed").unwrap().as_u64(), Some(1));
    let v = s.ok(r#"{"op":"kappa","space":"core","id":6}"#);
    assert_eq!(v.get("kappa").unwrap().as_u64(), Some(0));
    let v = s.ok(r#"{"op":"update","insert":[[0,4],[1,4]],"remove":[]}"#);
    assert_eq!(v.get("inserted").unwrap().as_u64(), Some(2));
    let refreshes = v.get("spaces").unwrap().as_array().unwrap();
    assert_eq!(refreshes.len(), 3);
    for r in refreshes {
        assert!(r.get("sweeps").unwrap().as_u64().unwrap() >= 1);
    }
    let v = s.ok(r#"{"op":"kappa","space":"core","id":4}"#);
    assert_eq!(v.get("kappa").unwrap().as_u64(), Some(4));

    // Errors are per-request, not fatal.
    let v = s.request(r#"{"op":"kappa","space":"truss","vertices":[0,6]}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    s.ok(r#"{"op":"stats"}"#);

    s.shutdown();
}

#[test]
fn snapshot_save_and_restart() {
    let dir = std::env::temp_dir().join(format!("hdsd_serve_snap_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let snap = dir.join("engine.snap");
    let snap_str = snap.to_str().unwrap().replace('\\', "/");

    let mut s = Serve::spawn(&["--synthetic", "400,5,0.5,11", "--spaces", "core,truss"]);
    s.ok(r#"{"op":"update","insert":[[0,200],[1,201]],"remove":[]}"#);
    let before = s.ok(r#"{"op":"kappa","space":"truss","id":33}"#);
    let v = s.ok(&format!(r#"{{"op":"save","path":"{snap_str}"}}"#));
    assert_eq!(v.get("spaces").unwrap().as_u64(), Some(2));
    s.shutdown();

    // Restart from the snapshot: same answers, hierarchy already resident.
    let mut s2 = Serve::spawn(&["--snapshot", &snap_str]);
    let stats = s2.ok(r#"{"op":"stats"}"#);
    let resident: Vec<bool> = stats
        .get("spaces")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|sp| sp.get("hierarchy_resident").unwrap().as_bool().unwrap())
        .collect();
    assert_eq!(resident, vec![true, true], "snapshot should restore resident hierarchies");
    let after = s2.ok(r#"{"op":"kappa","space":"truss","id":33}"#);
    assert_eq!(
        before.get("kappa").unwrap().as_u64(),
        after.get("kappa").unwrap().as_u64(),
        "κ must survive the restart"
    );
    // The restored engine still serves updates.
    s2.ok(r#"{"op":"insert","edges":[[2,202]]}"#);
    s2.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn tcp_mode_serves_requests() {
    // Pick a free port by binding and releasing it.
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let addr = format!("127.0.0.1:{port}");
    let mut child = Command::new(BIN)
        .args(["--demo", "--listen", &addr])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn hdsd-serve --listen");

    // Wait for the listener to come up.
    let mut stream = None;
    for _ in 0..100 {
        match std::net::TcpStream::connect(&addr) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    }
    let stream = stream.expect("connect to hdsd-serve");
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    let mut ask = |line: &str| -> Json {
        writeln!(writer, "{line}").unwrap();
        writer.flush().unwrap();
        let mut reply = String::new();
        reader.read_line(&mut reply).unwrap();
        Json::parse(reply.trim()).unwrap()
    };
    let v = ask(r#"{"op":"kappa","space":"core","id":0}"#);
    assert_eq!(v.get("kappa").unwrap().as_u64(), Some(3));
    let v = ask(r#"{"op":"stats"}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
    let v = ask(r#"{"op":"shutdown"}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));

    // The process should exit after shutdown (give it a moment).
    for _ in 0..100 {
        match child.try_wait().unwrap() {
            Some(_) => break,
            None => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    }
    let _ = child.kill();
    let _ = child.wait();
}

/// Spawn a `--listen` daemon and connect, retrying until the listener
/// is up. Returns the child and a connected stream.
fn spawn_tcp(extra_args: &[&str]) -> (Child, String) {
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let addr = format!("127.0.0.1:{port}");
    let mut args = extra_args.to_vec();
    args.extend_from_slice(&["--listen", &addr]);
    let child = Command::new(BIN)
        .args(&args)
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn hdsd-serve --listen");
    (child, addr)
}

fn connect(addr: &str) -> std::net::TcpStream {
    for _ in 0..100 {
        match std::net::TcpStream::connect(addr) {
            Ok(s) => return s,
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    }
    panic!("connect to hdsd-serve at {addr}");
}

/// A connection that dies with responses still in flight frees its slot;
/// the next client reuses the slot index. Late responses for the dead
/// connection must be dropped, never delivered to the slot's new tenant
/// (generation-tag regression test).
#[test]
fn reused_slot_does_not_receive_stale_responses() {
    // A non-trivial graph so the doomed client's request takes long
    // enough to still be in flight when the second client is served.
    let (mut child, addr) = spawn_tcp(&["--synthetic", "5000,8,0.5,7", "--spaces", "core,truss"]);

    // Client A: one slow request (an update whose refresh sweep takes a
    // long time in a debug build), then invalid UTF-8 — the server marks
    // A dead in the same sweep it dispatches the update, so A's slot is
    // reaped and recycled while the response is still in flight.
    let mut a = connect(&addr);
    let mut burst = Vec::new();
    let inserts: Vec<String> = (0..50).map(|i| format!("[{i},{}]", 2500 + i)).collect();
    burst.extend_from_slice(
        format!("{{\"op\":\"update\",\"insert\":[{}]}}\n", inserts.join(",")).as_bytes(),
    );
    burst.extend_from_slice(b"\xff\xfe\xff\n");
    a.write_all(&burst).unwrap();
    a.flush().unwrap();

    // Give the IO loop time to dispatch the update and reap A, so B is
    // accepted into A's recycled slot while the update still runs.
    std::thread::sleep(std::time::Duration::from_millis(100));
    let b = connect(&addr);
    let mut b_writer = b.try_clone().unwrap();
    let mut b_reader = BufReader::new(b);
    writeln!(b_writer, r#"{{"op":"stats"}}"#).unwrap();
    b_writer.flush().unwrap();

    // B's first — and only — response line must be its own stats answer,
    // not one of A's region answers.
    let mut first = String::new();
    b_reader.read_line(&mut first).unwrap();
    let v = Json::parse(first.trim()).unwrap_or_else(|e| panic!("bad response {first:?}: {e}"));
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true), "{v}");
    assert!(v.get("vertices").is_some(), "B received a response that is not its stats: {v}");

    // No stale response may trickle into B afterwards either — the
    // window is generous so A's update completes inside it.
    b_reader.get_ref().set_read_timeout(Some(std::time::Duration::from_millis(2500))).unwrap();
    let mut extra = String::new();
    match b_reader.read_line(&mut extra) {
        Ok(0) => panic!("server closed B's healthy connection"),
        Ok(_) => panic!("B received an unrequested response: {extra:?}"),
        Err(_) => {} // timeout: nothing further arrived — correct
    }

    let _ = child.kill();
    let _ = child.wait();
}

/// A newline-free line longer than the server's cap gets the connection
/// dropped instead of growing `read_buf` without bound — and the server
/// keeps serving other clients.
#[test]
fn oversized_request_line_is_rejected() {
    let (mut child, addr) = spawn_tcp(&["--demo"]);

    let mut flood = connect(&addr);
    // 2 MiB with no newline: past the 1 MiB cap the server kills the
    // connection, so some tail of this write may fail with a reset —
    // that is the expected outcome, not a test error.
    let chunk = vec![b'a'; 64 * 1024];
    let mut wrote_all = true;
    for _ in 0..32 {
        if flood.write_all(&chunk).is_err() {
            wrote_all = false;
            break;
        }
    }
    let _ = flood.flush();
    // The server must hang up: EOF or a reset, never a response.
    flood.set_read_timeout(Some(std::time::Duration::from_secs(5))).unwrap();
    let mut buf = [0u8; 64];
    match std::io::Read::read(&mut flood, &mut buf) {
        Ok(0) | Err(_) => {}
        Ok(n) => panic!(
            "server answered an unterminated over-long line with {n} bytes (wrote_all={wrote_all})"
        ),
    }

    // The daemon itself is unharmed: a fresh connection is served.
    let healthy = connect(&addr);
    let mut writer = healthy.try_clone().unwrap();
    let mut reader = BufReader::new(healthy);
    writeln!(writer, r#"{{"op":"kappa","space":"core","id":0}}"#).unwrap();
    writer.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    let v = Json::parse(reply.trim()).unwrap();
    assert_eq!(v.get("kappa").unwrap().as_u64(), Some(3), "{v}");

    let _ = child.kill();
    let _ = child.wait();
}

/// SIGTERM must drain and exit the stdio loop even while it is blocked
/// waiting for the next stdin line (no request traffic at all).
#[cfg(unix)]
#[test]
fn sigterm_interrupts_idle_stdin_loop() {
    let dir = std::env::temp_dir().join(format!("hdsd_serve_stdin_term_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_str = dir.to_str().unwrap().to_string();

    let mut s = Serve::spawn(&["--demo", "--durable", &dir_str]);
    let v = s.ok(r#"{"op":"update","insert":[[0,4],[1,4]]}"#);
    assert_eq!(v.get("wal_seq").unwrap().as_u64(), Some(1), "{v}");

    // stdin stays open: the daemon is parked in a blocking line read.
    let status = Command::new("kill")
        .args(["-TERM", &s.child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(status.success());
    let mut exited = false;
    for _ in 0..200 {
        if s.child.try_wait().unwrap().is_some() {
            exited = true;
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(exited, "stdio daemon ignored SIGTERM while blocked on stdin");
    drop(s);

    // The exit was a graceful drain: the update is in the checkpoint.
    let mut s2 = Serve::spawn(&["--demo", "--durable", &dir_str]);
    let v = s2.ok(r#"{"op":"wal_stats"}"#);
    let rec = v.get("recovery").unwrap();
    assert_eq!(rec.get("replayed").and_then(Json::as_u64), Some(0), "{v}");
    let v = s2.ok(r#"{"op":"kappa","space":"core","id":4}"#);
    assert_eq!(v.get("kappa").unwrap().as_u64(), Some(4), "update lost despite graceful SIGTERM");
    s2.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn panicking_request_is_survived_over_the_wire() {
    let mut s = Serve::spawn(&["--demo", "--debug-ops"]);
    let v = s.request(r#"{"op":"debug_panic"}"#);
    assert_eq!(v.get("ok").and_then(Json::as_bool), Some(false));
    assert!(v.get("error").unwrap().as_str().unwrap().contains("internal panic"), "{v}");
    // The daemon did not die: the very next request on the same pipe is
    // answered normally.
    let v = s.ok(r#"{"op":"kappa","space":"core","id":0}"#);
    assert_eq!(v.get("kappa").unwrap().as_u64(), Some(3));
    s.shutdown();
}

#[test]
fn durable_daemon_survives_kill_dash_nine() {
    let dir = std::env::temp_dir().join(format!("hdsd_serve_durable_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_str = dir.to_str().unwrap().replace('\\', "/");
    let durable_args =
        ["--demo", "--spaces", "core,truss,34", "--durable", &dir_str, "--fsync", "always"];

    let mut s = Serve::spawn(&durable_args);
    let v = s.ok(r#"{"op":"update","insert":[[0,4],[1,4]],"remove":[[5,6]]}"#);
    assert_eq!(v.get("wal_seq").unwrap().as_u64(), Some(1), "{v}");
    let v = s.ok(r#"{"op":"update","insert":[[0,7],[4,7]]}"#);
    assert_eq!(v.get("wal_seq").unwrap().as_u64(), Some(2));
    let kappa4 = s.ok(r#"{"op":"kappa","space":"core","id":4}"#);
    let kappa4 = kappa4.get("kappa").unwrap().as_u64().unwrap();
    assert_eq!(kappa4, 4, "the closed K5 must be served before the crash");
    // kill(), on unix, is SIGKILL: no drain, no checkpoint, no goodbye.
    s.child.kill().expect("kill -9");
    let _ = s.child.wait();
    drop(s);

    // Restart over the same directory: the WAL tail replays through the
    // warm update path and every acknowledged batch is still there.
    let mut s2 = Serve::spawn(&durable_args);
    let v = s2.ok(r#"{"op":"wal_stats"}"#);
    let rec = v.get("recovery").unwrap();
    assert_eq!(rec.get("snapshot_loaded").and_then(Json::as_bool), Some(true), "{v}");
    assert_eq!(rec.get("replayed").and_then(Json::as_u64), Some(2), "{v}");
    let v = s2.ok(r#"{"op":"kappa","space":"core","id":4}"#);
    assert_eq!(v.get("kappa").unwrap().as_u64(), Some(kappa4), "κ lost in the crash");
    let v = s2.ok(r#"{"op":"kappa","space":"core","id":6}"#);
    assert_eq!(v.get("kappa").unwrap().as_u64(), Some(0), "removal lost in the crash");
    // Graceful shutdown folds the replayed state into a checkpoint...
    let v = s2.request(r#"{"op":"shutdown"}"#);
    assert_eq!(v.get("checkpointed").and_then(Json::as_bool), Some(true), "{v}");
    let _ = s2.child.wait();
    drop(s2);

    // ...so the third start replays nothing.
    let mut s3 = Serve::spawn(&durable_args);
    let v = s3.ok(r#"{"op":"wal_stats"}"#);
    let rec = v.get("recovery").unwrap();
    assert_eq!(rec.get("replayed").and_then(Json::as_u64), Some(0), "{v}");
    s3.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[cfg(unix)]
#[test]
fn sigterm_drains_and_checkpoints_gracefully() {
    let dir = std::env::temp_dir().join(format!("hdsd_serve_sigterm_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let dir_str = dir.to_str().unwrap().to_string();
    let port = {
        let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().port()
    };
    let addr = format!("127.0.0.1:{port}");
    let mut child = Command::new(BIN)
        .args(["--demo", "--durable", &dir_str, "--listen", &addr])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn durable TCP hdsd-serve");

    let mut stream = None;
    for _ in 0..100 {
        match std::net::TcpStream::connect(&addr) {
            Ok(s) => {
                stream = Some(s);
                break;
            }
            Err(_) => std::thread::sleep(std::time::Duration::from_millis(20)),
        }
    }
    let stream = stream.expect("connect");
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);
    writeln!(writer, r#"{{"op":"update","insert":[[0,4],[1,4]]}}"#).unwrap();
    writer.flush().unwrap();
    let mut reply = String::new();
    reader.read_line(&mut reply).unwrap();
    assert!(reply.contains("\"wal_seq\":1"), "{reply}");

    // SIGTERM (not SIGKILL): the accept loop notices, drains, checkpoints.
    let status = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(status.success());
    for _ in 0..200 {
        if child.try_wait().unwrap().is_some() {
            break;
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
    }
    assert!(child.try_wait().unwrap().is_some(), "daemon ignored SIGTERM");

    // The shutdown was graceful: the update is in the checkpoint and the
    // restart replays nothing.
    let mut s = Serve::spawn(&["--demo", "--durable", &dir_str]);
    let v = s.ok(r#"{"op":"wal_stats"}"#);
    let rec = v.get("recovery").unwrap();
    assert_eq!(rec.get("snapshot_loaded").and_then(Json::as_bool), Some(true), "{v}");
    assert_eq!(rec.get("replayed").and_then(Json::as_u64), Some(0), "{v}");
    let v = s.ok(r#"{"op":"kappa","space":"core","id":4}"#);
    assert_eq!(v.get("kappa").unwrap().as_u64(), Some(4), "update lost despite graceful SIGTERM");
    s.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
