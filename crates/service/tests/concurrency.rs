//! Concurrency proof for epoch-published serving (PR 8 tentpole).
//!
//! Two claims get tested here, not just exercised:
//!
//! 1. **Bit-identical epoch reads** — N reader threads hammering
//!    [`EpochReader::pin`] while one writer churns updates only ever see
//!    views whose full κ contents hash exactly to what the writer
//!    recorded for that epoch *before* publishing it. A reader can lag,
//!    but it can never observe a torn, blended, or mutated-in-place view.
//! 2. **Publish/pin linearization** — a seeded interleaving test drives
//!    an [`EpochCell`] through deterministic publish/pin schedules and
//!    asserts the version counter is monotone and every pinned pair is
//!    one the writer actually published.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

use hdsd_nucleus::LocalConfig;
use hdsd_service::engine::EngineView;
use hdsd_service::{Engine, EngineConfig, EpochCell, SpaceSel};

/// FNV-1a over every κ value of every resident space plus the edge
/// count: any single changed bit anywhere in the served state changes
/// the digest.
fn view_digest(view: &EngineView) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |x: u64| {
        for b in x.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    mix(view.graph().num_edges() as u64);
    for sel in view.spaces() {
        let kappa = view.kappa_vector(sel).expect("resident space");
        mix(kappa.len() as u64);
        for &k in kappa {
            mix(u64::from(k));
        }
    }
    h
}

fn test_engine() -> Engine {
    let graph = hdsd_datasets::holme_kim(400, 4, 0.4, 11);
    let cfg = EngineConfig {
        spaces: vec![SpaceSel::Core, SpaceSel::Truss],
        local: LocalConfig::sequential(),
    };
    Engine::new(graph, &cfg)
}

/// Deterministic per-round edge batch against a 400-vertex graph: a
/// small clique-ish insert plus a removal of the previous round's batch,
/// so κ genuinely moves every epoch.
fn round_batch(round: u64) -> Vec<(u32, u32)> {
    let base = 400 + (round % 16) as u32 * 4;
    vec![(base, base + 1), (base, base + 2), (base + 1, base + 2), (base % 100, base + 1)]
}

#[test]
fn n_readers_one_writer_see_bit_identical_epochs() {
    const READERS: usize = 4;
    const ROUNDS: u64 = 40;

    let mut engine = test_engine();
    let cell = Arc::new(EpochCell::new(engine.view()));
    // Epoch → digest, recorded by the writer strictly before publishing
    // that epoch. Readers must find every version they pin in here.
    let digests: Arc<Mutex<HashMap<u64, u64>>> = Arc::new(Mutex::new(HashMap::new()));
    digests.lock().unwrap().insert(0, view_digest(&engine.view()));
    let done = Arc::new(AtomicBool::new(false));

    let mut readers = Vec::new();
    for r in 0..READERS {
        let mut reader = cell.reader();
        let digests = Arc::clone(&digests);
        let done = Arc::clone(&done);
        readers.push(std::thread::spawn(move || {
            let mut last_version = 0u64;
            let mut pins = 0u64;
            while !done.load(Ordering::SeqCst) {
                let (view, version) = reader.pin();
                assert!(
                    version >= last_version,
                    "reader {r}: epoch went backwards ({last_version} -> {version})"
                );
                last_version = version;
                let got = view_digest(view);
                let want = *digests
                    .lock()
                    .unwrap()
                    .get(&version)
                    .unwrap_or_else(|| panic!("reader {r} pinned unpublished epoch {version}"));
                assert_eq!(
                    got, want,
                    "reader {r}: epoch {version} read back different bits than published"
                );
                pins += 1;
            }
            pins
        }));
    }

    let mut prev: Vec<(u32, u32)> = Vec::new();
    for round in 0..ROUNDS {
        let insert = round_batch(round);
        engine.update(&insert, &prev);
        prev = insert;
        let next = engine.view();
        let digest = view_digest(&next);
        {
            // Record under the *next* version before anyone can pin it.
            let mut map = digests.lock().unwrap();
            map.insert(cell.version() + 1, digest);
        }
        cell.publish(next);
    }
    done.store(true, Ordering::SeqCst);

    let total_pins: u64 = readers.into_iter().map(|t| t.join().expect("reader panicked")).sum();
    assert!(total_pins > 0, "readers never ran");
    assert_eq!(cell.version(), ROUNDS, "one publish per round");
}

/// Tiny deterministic PRNG (xorshift64*) so the interleavings are
/// reproducible from the printed seed.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }
}

#[test]
fn seeded_interleavings_of_publish_and_pin_linearize() {
    // The payload stamps its own generation: element 0 is the version the
    // writer expects publish() to return, and every element must agree —
    // a torn read would surface as a mixed vector.
    for seed in [3u64, 0x5eed, 0xdead_beef, 0x0123_4567_89ab_cdef] {
        let mut rng = Rng(seed);
        let cell = Arc::new(EpochCell::new(Arc::new(vec![0u64; 32])));
        let mut readers: Vec<_> = (0..3).map(|_| cell.reader()).collect();
        let mut published = 0u64;
        let mut reader_versions = vec![0u64; readers.len()];
        for step in 0..2000 {
            match rng.next() % 4 {
                0 => {
                    let next_version = published + 1;
                    let got = cell.publish(Arc::new(vec![next_version; 32]));
                    assert_eq!(got, next_version, "seed {seed:#x} step {step}: publish version");
                    published = next_version;
                }
                n => {
                    let r = (n as usize - 1) % readers.len();
                    let (data, version) = readers[r].pin();
                    assert_eq!(
                        version, published,
                        "seed {seed:#x} step {step}: single-threaded pin must be current"
                    );
                    assert!(data.iter().all(|&g| g == version), "seed {seed:#x}: torn payload");
                    assert!(version >= reader_versions[r], "seed {seed:#x}: version regressed");
                    reader_versions[r] = version;
                    assert_eq!(readers[r].pinned_version(), version);
                    assert_eq!(readers[r].lag(), 0, "just pinned: no lag");
                }
            }
        }
        // Lag is visible without pinning: publish once more and ask.
        cell.publish(Arc::new(vec![published + 1; 32]));
        for r in &readers {
            assert_eq!(r.lag(), published + 1 - r.pinned_version());
        }
    }
}
