#![warn(missing_docs)]
//! # hdsd-telemetry
//!
//! Dependency-free runtime telemetry for the serving stack — the
//! observable counterpart of the paper's convergence-counter methodology:
//! the decomposition layers already *compute* their work counters
//! (`SchedulerStats`, `PeelStats`, repair telemetry); this crate is where
//! those numbers stop being dropped and become a scrapeable surface.
//!
//! Four pieces, all `std`-only:
//!
//! * [`registry`] — a process-wide metrics [`Registry`] of atomic
//!   [`Counter`]s, [`Gauge`]s and log₂-bucketed latency [`Histogram`]s.
//!   Registration is a one-time name lookup; the hot path afterwards is a
//!   single relaxed atomic add. The [`counter_add!`] macro caches the
//!   handle in a per-call-site `OnceLock` so instrumented loops pay no
//!   repeated lookup.
//! * [`trace`] — lightweight stage spans ([`span!`] guards over a
//!   monotonic clock, parent-linked, thread-tagged) recorded into
//!   per-thread bounded collectors, plus a global bounded slow-query log.
//!   When tracing is disabled a span costs one relaxed load and a branch.
//! * [`log`] — structured stderr logging (`text` or `json` lines with
//!   timestamps, levels, targets and key/value fields) replacing ad-hoc
//!   `eprintln!` in the daemon.
//! * [`prometheus`] — text-exposition rendering of the registry and a
//!   minimal HTTP exporter thread for `--metrics-addr`.
//!
//! Histogram buckets are powers of two, so quantiles extracted from a
//! snapshot ([`HistogramSnapshot::quantile`]) carry a bounded relative
//! error: the estimate `e` of an exact quantile `q` satisfies
//! `q ≤ e ≤ 2·q` (property-tested against exact sorted-slice quantiles).
//! Snapshots merge associatively, so per-shard registries can be folded
//! losslessly later.

pub mod histogram;
pub mod log;
pub mod prometheus;
pub mod registry;
pub mod trace;

pub use histogram::{Histogram, HistogramSnapshot, NUM_BUCKETS};
pub use registry::{labeled, Counter, Gauge, MetricSnapshot, Registry};
pub use trace::{SlowEntry, Span, SpanRecord, Trace};

/// Adds `n` to a named counter in the global registry, caching the handle
/// per call site: the first execution registers (one mutex + map lookup),
/// every later one is a single relaxed atomic add.
///
/// ```
/// hdsd_telemetry::counter_add!("example_events_total", 1);
/// ```
#[macro_export]
macro_rules! counter_add {
    ($name:expr, $n:expr) => {{
        static __HDSD_COUNTER: std::sync::OnceLock<std::sync::Arc<$crate::Counter>> =
            std::sync::OnceLock::new();
        __HDSD_COUNTER.get_or_init(|| $crate::Registry::global().counter($name)).add($n);
    }};
}

/// Opens a stage span that closes (and records its duration) at the end
/// of the enclosing scope. Free when tracing is disabled.
///
/// ```
/// fn stage() {
///     hdsd_telemetry::span!("example.stage");
///     // ... traced work ...
/// }
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        let _hdsd_span_guard = $crate::trace::Span::enter($name);
    };
}

#[cfg(test)]
mod tests {
    use crate::registry::Registry;

    #[test]
    fn counter_add_macro_registers_once_and_accumulates() {
        let before = Registry::global().counter("lib_macro_test_total").get();
        for _ in 0..10 {
            counter_add!("lib_macro_test_total", 2);
        }
        let after = Registry::global().counter("lib_macro_test_total").get();
        assert_eq!(after - before, 20);
    }

    #[test]
    fn span_macro_compiles_disabled() {
        // Tracing defaults to disabled: the guard must be a no-op.
        span!("lib.test.span");
    }
}
