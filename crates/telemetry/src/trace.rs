//! Stage tracing: parent-linked span guards over a monotonic clock.
//!
//! Spans are recorded into a per-thread bounded collector, so recording
//! never takes a lock and worker threads cannot interleave each other's
//! span trees. The whole subsystem is gated on a single process-wide
//! flag: while tracing is disabled (the default) a [`Span::enter`] is one
//! relaxed load and a branch, cheap enough to leave in peel/refresh hot
//! stages permanently.
//!
//! The serving layer drives the lifecycle per request: [`begin`] clears
//! the current thread's collector, instrumented code opens guards with
//! [`crate::span!`], and [`take`] returns the finished [`Trace`] —
//! parent-linked [`SpanRecord`]s in start order plus a count of spans
//! dropped once the per-thread capacity (256) was reached. Requests that
//! exceed the `--trace-slow-ms` threshold are additionally pushed into a
//! bounded global slow-query log ([`slow_log_push`] / [`slow_log_snapshot`]).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Maximum spans retained per trace; further spans are counted as dropped.
pub const TRACE_CAPACITY: usize = 256;

/// Maximum entries retained in the global slow-query log (oldest evicted).
pub const SLOW_LOG_CAPACITY: usize = 64;

static ENABLED: AtomicBool = AtomicBool::new(false);

/// Enables or disables span recording process-wide.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// One completed (or still-open) span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Static stage name, e.g. `"peel.flat"`.
    pub name: &'static str,
    /// Start offset in microseconds from the trace's [`begin`] call.
    pub start_us: u64,
    /// Duration in microseconds (0 if the guard never dropped).
    pub dur_us: u64,
    /// Index of the parent span within the trace, or -1 for roots.
    pub parent: i32,
    /// Small dense id of the recording thread.
    pub thread: u64,
}

/// A finished trace: spans in start order plus the overflow count.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Recorded spans, parent-linked by index.
    pub spans: Vec<SpanRecord>,
    /// Spans discarded after [`TRACE_CAPACITY`] was reached.
    pub dropped: u64,
}

struct Collector {
    base: Instant,
    spans: Vec<SpanRecord>,
    stack: Vec<u32>,
    dropped: u64,
}

impl Collector {
    fn new() -> Self {
        Collector { base: Instant::now(), spans: Vec::new(), stack: Vec::new(), dropped: 0 }
    }
}

thread_local! {
    static COLLECTOR: RefCell<Collector> = RefCell::new(Collector::new());
    static THREAD_ID: u64 = {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        NEXT.fetch_add(1, Ordering::Relaxed)
    };
}

/// Small dense id of the current thread (assigned on first use).
pub fn thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

/// Resets the current thread's collector, starting a fresh trace whose
/// span offsets are measured from now.
pub fn begin() {
    COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        c.base = Instant::now();
        c.spans.clear();
        c.stack.clear();
        c.dropped = 0;
    });
}

/// Takes the current thread's trace, leaving the collector empty.
pub fn take() -> Trace {
    COLLECTOR.with(|c| {
        let mut c = c.borrow_mut();
        c.stack.clear();
        Trace { spans: std::mem::take(&mut c.spans), dropped: std::mem::take(&mut c.dropped) }
    })
}

/// RAII guard for one stage span; created by [`crate::span!`]. While
/// tracing is disabled the guard is inert and costs one relaxed load.
#[must_use = "a span records its duration when dropped; bind it with `let`"]
#[derive(Debug)]
pub struct Span {
    /// Index in the collector's span vec, or `None` when tracing is off
    /// or the trace is full.
    slot: Option<u32>,
}

impl Span {
    /// Opens a span named `name`, parented to the innermost open span on
    /// this thread.
    #[inline]
    pub fn enter(name: &'static str) -> Span {
        if !enabled() {
            return Span { slot: None };
        }
        Span { slot: Self::enter_slow(name) }
    }

    #[cold]
    fn enter_slow(name: &'static str) -> Option<u32> {
        COLLECTOR.with(|c| {
            let mut c = c.borrow_mut();
            if c.spans.len() >= TRACE_CAPACITY {
                c.dropped += 1;
                return None;
            }
            let start_us = c.base.elapsed().as_micros() as u64;
            let parent = c.stack.last().map_or(-1, |&p| p as i32);
            let slot = c.spans.len() as u32;
            let thread = thread_id();
            c.spans.push(SpanRecord { name, start_us, dur_us: 0, parent, thread });
            c.stack.push(slot);
            Some(slot)
        })
    }
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        if let Some(slot) = self.slot {
            COLLECTOR.with(|c| {
                let mut c = c.borrow_mut();
                let end_us = c.base.elapsed().as_micros() as u64;
                if let Some(rec) = c.spans.get_mut(slot as usize) {
                    rec.dur_us = end_us.saturating_sub(rec.start_us);
                }
                if c.stack.last() == Some(&slot) {
                    c.stack.pop();
                }
            });
        }
    }
}

/// One slow request retained in the in-memory slow-query log.
#[derive(Debug, Clone)]
pub struct SlowEntry {
    /// Monotonic sequence number of the slow entry (process-wide).
    pub seq: u64,
    /// Request id assigned by the server.
    pub request_id: u64,
    /// Operation name of the slow request.
    pub op: String,
    /// Total request latency in microseconds.
    pub micros: u64,
    /// The request's span tree.
    pub trace: Trace,
}

static SLOW_SEQ: AtomicU64 = AtomicU64::new(0);
static SLOW_LOG: Mutex<VecDeque<SlowEntry>> = Mutex::new(VecDeque::new());

/// Appends an entry to the slow-query log, evicting the oldest entry past
/// [`SLOW_LOG_CAPACITY`]. Returns the entry's sequence number.
pub fn slow_log_push(request_id: u64, op: &str, micros: u64, trace: Trace) -> u64 {
    let seq = SLOW_SEQ.fetch_add(1, Ordering::Relaxed);
    let mut log = SLOW_LOG.lock().unwrap();
    if log.len() >= SLOW_LOG_CAPACITY {
        log.pop_front();
    }
    log.push_back(SlowEntry { seq, request_id, op: op.to_string(), micros, trace });
    seq
}

/// Copies the slow-query log, oldest first.
pub fn slow_log_snapshot() -> Vec<SlowEntry> {
    SLOW_LOG.lock().unwrap().iter().cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    // ENABLED is process-global and cargo runs tests on parallel threads,
    // so every test that flips it holds this lock.
    static ENABLE_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn disabled_spans_record_nothing() {
        let _g = ENABLE_LOCK.lock().unwrap();
        set_enabled(false);
        begin();
        {
            let _a = Span::enter("a");
            let _b = Span::enter("b");
        }
        let t = take();
        assert!(t.spans.is_empty());
        assert_eq!(t.dropped, 0);
    }

    #[test]
    fn nested_spans_are_parent_linked() {
        let _g = ENABLE_LOCK.lock().unwrap();
        set_enabled(true);
        begin();
        {
            let _outer = Span::enter("outer");
            {
                let _inner = Span::enter("inner");
            }
            let _sibling = Span::enter("sibling");
        }
        let t = take();
        set_enabled(false);
        assert_eq!(t.spans.len(), 3);
        assert_eq!(t.spans[0].name, "outer");
        assert_eq!(t.spans[0].parent, -1);
        assert_eq!(t.spans[1].name, "inner");
        assert_eq!(t.spans[1].parent, 0);
        assert_eq!(t.spans[2].name, "sibling");
        assert_eq!(t.spans[2].parent, 0);
        let tid = thread_id();
        assert!(t.spans.iter().all(|s| s.thread == tid));
    }

    #[test]
    fn capacity_overflow_counts_dropped() {
        let _g = ENABLE_LOCK.lock().unwrap();
        set_enabled(true);
        begin();
        for _ in 0..TRACE_CAPACITY + 10 {
            let _s = Span::enter("x");
        }
        let t = take();
        set_enabled(false);
        assert_eq!(t.spans.len(), TRACE_CAPACITY);
        assert_eq!(t.dropped, 10);
    }

    #[test]
    fn threads_do_not_share_collectors() {
        let _g = ENABLE_LOCK.lock().unwrap();
        set_enabled(true);
        begin();
        let _mine = Span::enter("main-span");
        let handle = std::thread::spawn(|| {
            begin();
            let _theirs = Span::enter("worker-span");
            drop(_theirs);
            take()
        });
        let worker = handle.join().unwrap();
        drop(_mine);
        let mine = take();
        set_enabled(false);
        assert_eq!(worker.spans.len(), 1);
        assert_eq!(worker.spans[0].name, "worker-span");
        assert_eq!(mine.spans.len(), 1);
        assert_eq!(mine.spans[0].name, "main-span");
        assert_ne!(worker.spans[0].thread, mine.spans[0].thread);
    }

    #[test]
    fn slow_log_is_bounded_fifo() {
        let base = slow_log_push(0, "warm", 1, Trace::default());
        for i in 0..SLOW_LOG_CAPACITY + 5 {
            slow_log_push(i as u64, "stats", 10_000, Trace::default());
        }
        let snap = slow_log_snapshot();
        assert_eq!(snap.len(), SLOW_LOG_CAPACITY);
        // Oldest entries (including the warmup push) were evicted and
        // sequence numbers stay strictly increasing.
        assert!(snap.windows(2).all(|w| w[0].seq < w[1].seq));
        assert!(snap[0].seq > base);
    }
}
