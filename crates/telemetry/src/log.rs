//! Structured stderr logging for the daemon.
//!
//! One line per event, in either human-readable text or JSON
//! (`--log-format json|text`), each carrying a UTC timestamp, a level, a
//! target (subsystem tag) and optional key/value fields:
//!
//! ```text
//! 2026-08-08T12:00:00.123Z INFO serve listening addr=127.0.0.1:7171
//! {"ts":"2026-08-08T12:00:00.123Z","level":"info","target":"serve","msg":"listening","addr":"127.0.0.1:7171"}
//! ```
//!
//! The writer is a single `eprintln!` per event — stderr is line-buffered
//! through a lock already, so concurrent threads cannot interleave
//! partial lines. Level filtering happens before formatting via one
//! relaxed atomic load.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severity, ordered.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Verbose diagnostics.
    Debug = 0,
    /// Normal operational events.
    Info = 1,
    /// Unexpected but recoverable conditions.
    Warn = 2,
    /// Failures.
    Error = 3,
}

impl Level {
    fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    fn as_upper(self) -> &'static str {
        match self {
            Level::Debug => "DEBUG",
            Level::Info => "INFO",
            Level::Warn => "WARN",
            Level::Error => "ERROR",
        }
    }
}

/// Output format for log lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Format {
    /// Human-readable single-line text (default).
    Text,
    /// One JSON object per line.
    Json,
}

static FORMAT: AtomicU8 = AtomicU8::new(0); // 0 = Text, 1 = Json
static MIN_LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);

/// Sets the process-wide log format.
pub fn set_format(f: Format) {
    FORMAT.store(matches!(f, Format::Json) as u8, Ordering::Relaxed);
}

/// Parses a `--log-format` value.
pub fn parse_format(s: &str) -> Option<Format> {
    match s {
        "text" => Some(Format::Text),
        "json" => Some(Format::Json),
        _ => None,
    }
}

/// Sets the minimum level that will be emitted.
pub fn set_min_level(l: Level) {
    MIN_LEVEL.store(l as u8, Ordering::Relaxed);
}

/// Whether events at `l` are currently emitted.
#[inline]
pub fn enabled(l: Level) -> bool {
    l as u8 >= MIN_LEVEL.load(Ordering::Relaxed)
}

/// Formats a `SystemTime` as UTC ISO-8601 with millisecond precision
/// (`2026-08-08T12:00:00.123Z`). Pure integer math — no locale, no libc.
pub fn format_timestamp(t: SystemTime) -> String {
    let dur = t.duration_since(UNIX_EPOCH).unwrap_or_default();
    let secs = dur.as_secs();
    let millis = dur.subsec_millis();
    let days = (secs / 86_400) as i64;
    let rem = secs % 86_400;
    let (h, m, s) = (rem / 3600, (rem / 60) % 60, rem % 60);
    // Civil-from-days (Howard Hinnant's algorithm), valid for the unix era.
    let z = days + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let mo = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if mo <= 2 { y + 1 } else { y };
    format!("{y:04}-{mo:02}-{d:02}T{h:02}:{m:02}:{s:02}.{millis:03}Z")
}

fn json_escape_into(out: &mut String, s: &str) {
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Emits one log event. `fields` are appended as `key=value` pairs (text)
/// or string members (json). Prefer the [`crate::info!`]-family macros.
pub fn write(level: Level, target: &str, msg: &str, fields: &[(&str, String)]) {
    if !enabled(level) {
        return;
    }
    let ts = format_timestamp(SystemTime::now());
    let json = FORMAT.load(Ordering::Relaxed) == 1;
    let mut line = String::with_capacity(64 + msg.len());
    if json {
        line.push_str("{\"ts\":\"");
        line.push_str(&ts);
        line.push_str("\",\"level\":\"");
        line.push_str(level.as_str());
        line.push_str("\",\"target\":\"");
        json_escape_into(&mut line, target);
        line.push_str("\",\"msg\":\"");
        json_escape_into(&mut line, msg);
        line.push('"');
        for (k, v) in fields {
            line.push_str(",\"");
            json_escape_into(&mut line, k);
            line.push_str("\":\"");
            json_escape_into(&mut line, v);
            line.push('"');
        }
        line.push('}');
    } else {
        let _ = write!(line, "{ts} {} {target} {msg}", level.as_upper());
        for (k, v) in fields {
            let _ = write!(line, " {k}={v}");
        }
    }
    eprintln!("{line}");
}

/// Logs at [`Level::Info`]: `info!("serve", "listening"; "addr" => addr)`.
#[macro_export]
macro_rules! info {
    ($($args:tt)*) => { $crate::log_event!($crate::log::Level::Info, $($args)*) };
}

/// Logs at [`Level::Warn`]; same syntax as [`crate::info!`].
#[macro_export]
macro_rules! warn {
    ($($args:tt)*) => { $crate::log_event!($crate::log::Level::Warn, $($args)*) };
}

/// Logs at [`Level::Error`]; same syntax as [`crate::info!`].
#[macro_export]
macro_rules! error {
    ($($args:tt)*) => { $crate::log_event!($crate::log::Level::Error, $($args)*) };
}

/// Logs at [`Level::Debug`]; same syntax as [`crate::info!`].
#[macro_export]
macro_rules! debug {
    ($($args:tt)*) => { $crate::log_event!($crate::log::Level::Debug, $($args)*) };
}

/// Shared expansion behind the level macros: a target, a format string
/// with args, then optional `; "key" => value` fields (values go through
/// `ToString`).
#[macro_export]
macro_rules! log_event {
    ($level:expr, $target:expr, $($fmt:expr),+ $(; $($k:literal => $v:expr),* $(,)?)?) => {
        if $crate::log::enabled($level) {
            $crate::log::write(
                $level,
                $target,
                &format!($($fmt),+),
                &[$($(($k, ($v).to_string())),*)?],
            );
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_epoch_and_known_dates() {
        assert_eq!(format_timestamp(UNIX_EPOCH), "1970-01-01T00:00:00.000Z");
        // 2026-08-08T00:00:00Z = 1786147200.
        let t = UNIX_EPOCH + std::time::Duration::from_millis(1_786_147_200_123);
        assert_eq!(format_timestamp(t), "2026-08-08T00:00:00.123Z");
        // Leap-year day: 2024-02-29T12:34:56Z = 1709210096.
        let t = UNIX_EPOCH + std::time::Duration::from_secs(1_709_210_096);
        assert_eq!(format_timestamp(t), "2024-02-29T12:34:56.000Z");
    }

    #[test]
    fn level_filtering() {
        assert!(Level::Error > Level::Warn);
        assert!(Level::Warn > Level::Info);
        assert!(Level::Info > Level::Debug);
    }

    #[test]
    fn macros_compile_with_and_without_fields() {
        // Emitted below Info by default, so these stay silent.
        crate::debug!("test", "plain message");
        crate::debug!("test", "formatted {}", 42; "k" => "v", "n" => 7);
    }
}
