//! The process-wide metrics registry.
//!
//! A [`Registry`] maps metric names to shared atomic instruments:
//! [`Counter`]s (monotonic), [`Gauge`]s (set to the latest value) and
//! [`super::Histogram`]s. Registration (`counter` / `gauge` /
//! `histogram`) takes a short mutex to look up or insert the name and
//! hands back an `Arc` handle; all subsequent updates through the handle
//! are lock-free relaxed atomics. Call sites that cannot keep a handle
//! use the [`crate::counter_add!`] macro, which caches one per call site.
//!
//! Labels are encoded into the name itself with [`labeled`] —
//! `request_micros{op="stats"}` — which keeps the registry a flat ordered
//! map and lets the Prometheus renderer split family from labels
//! syntactically.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::histogram::{Histogram, HistogramSnapshot};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` (relaxed).
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one (relaxed).
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (relaxed).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding the most recently set value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Replaces the value (relaxed).
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value (relaxed).
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// One registered metric: the shared instrument behind a name.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A point-in-time copy of one metric's value, as returned by
/// [`Registry::snapshot`].
#[derive(Debug, Clone)]
pub enum MetricSnapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Full histogram state.
    Histogram(HistogramSnapshot),
}

/// A named collection of metrics. Use [`Registry::global`] for the
/// process-wide instance; fresh instances exist for tests and future
/// per-shard registries.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-wide registry all instrumentation records into.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// Returns the counter registered under `name`, creating it on first
    /// use. Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut map = self.metrics.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Returns the gauge registered under `name`, creating it on first
    /// use. Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut map = self.metrics.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Returns the histogram registered under `name`, creating it on
    /// first use. Panics if `name` is already registered as a different
    /// kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.metrics.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => panic!("metric {name:?} already registered with a different type"),
        }
    }

    /// Snapshots every registered metric, sorted by name.
    pub fn snapshot(&self) -> Vec<(String, MetricSnapshot)> {
        let map = self.metrics.lock().unwrap();
        map.iter()
            .map(|(name, metric)| {
                let snap = match metric {
                    Metric::Counter(c) => MetricSnapshot::Counter(c.get()),
                    Metric::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                    Metric::Histogram(h) => MetricSnapshot::Histogram(h.snapshot()),
                };
                (name.clone(), snap)
            })
            .collect()
    }
}

/// Builds a labeled metric name: `labeled("request_micros",
/// &[("op", "stats")])` → `request_micros{op="stats"}`. Label values are
/// escaped for the Prometheus exposition format (backslash, quote,
/// newline).
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for ch in v.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_name_returns_same_instrument() {
        let r = Registry::new();
        let a = r.counter("x_total");
        let b = r.counter("x_total");
        a.add(3);
        b.add(4);
        assert_eq!(a.get(), 7);
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn kind_mismatch_panics() {
        let r = Registry::new();
        let _ = r.counter("dual");
        let _ = r.gauge("dual");
    }

    #[test]
    fn snapshot_is_sorted_and_typed() {
        let r = Registry::new();
        r.gauge("b_gauge").set(9);
        r.counter("a_total").add(2);
        r.histogram("c_micros").record(5);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["a_total", "b_gauge", "c_micros"]);
        assert!(matches!(snap[0].1, MetricSnapshot::Counter(2)));
        assert!(matches!(snap[1].1, MetricSnapshot::Gauge(9)));
        match &snap[2].1 {
            MetricSnapshot::Histogram(h) => assert_eq!(h.count, 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn labeled_formats_and_escapes() {
        assert_eq!(labeled("m", &[]), "m");
        assert_eq!(labeled("m", &[("op", "stats")]), "m{op=\"stats\"}");
        assert_eq!(labeled("m", &[("a", "x\"y"), ("b", "z")]), "m{a=\"x\\\"y\",b=\"z\"}");
    }
}
