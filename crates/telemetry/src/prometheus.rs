//! Prometheus text-exposition rendering and a minimal HTTP exporter.
//!
//! [`render`] turns a registry snapshot into exposition format 0.0.4
//! (the `# TYPE` / `_bucket{le=...}` text format every scraper accepts),
//! hand-rolled to keep the workspace dependency-free. Metric names are
//! prefixed `hdsd_`; labels encoded into registry keys by
//! [`crate::labeled`] are carried through verbatim, so
//! `request_micros{op="stats"}` becomes the family
//! `hdsd_request_micros` with the `op` label on every sample.
//!
//! [`serve_http`] binds a TCP listener (`--metrics-addr`, port 0
//! supported for tests) and answers every request with a fresh render of
//! the global registry on a detached accept-loop thread — one connection
//! at a time, `Connection: close`, which is all a scrape loop needs.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};

use crate::histogram::{bucket_upper_edge, HistogramSnapshot, NUM_BUCKETS};
use crate::registry::{MetricSnapshot, Registry};

/// Prefix applied to every exported metric family.
pub const PREFIX: &str = "hdsd_";

/// Splits a registry key into its family name and label block:
/// `a{op="x"}` → `("a", Some("op=\"x\""))`.
fn split_labels(key: &str) -> (&str, Option<&str>) {
    match key.find('{') {
        Some(i) if key.ends_with('}') => (&key[..i], Some(&key[i + 1..key.len() - 1])),
        _ => (key, None),
    }
}

fn sample_name(
    out: &mut String,
    family: &str,
    suffix: &str,
    labels: Option<&str>,
    extra: Option<&str>,
) {
    out.push_str(PREFIX);
    out.push_str(family);
    out.push_str(suffix);
    match (labels, extra) {
        (None, None) => {}
        (l, e) => {
            out.push('{');
            if let Some(l) = l {
                out.push_str(l);
            }
            if let Some(e) = e {
                if l.is_some() {
                    out.push(',');
                }
                out.push_str(e);
            }
            out.push('}');
        }
    }
}

fn histogram_exposition(
    out: &mut String,
    family: &str,
    labels: Option<&str>,
    h: &HistogramSnapshot,
) {
    // Emit only the occupied prefix of the bucket array: everything up to
    // the highest nonzero bucket, then +Inf. Empty histogram → +Inf only.
    let highest = h.buckets.iter().rposition(|&c| c > 0).map_or(0, |i| i + 1);
    let mut cumulative = 0u64;
    for (i, &c) in h.buckets.iter().enumerate().take(highest.min(NUM_BUCKETS - 1)) {
        cumulative += c;
        let le = format!("le=\"{}\"", bucket_upper_edge(i));
        sample_name(out, family, "_bucket", labels, Some(&le));
        let _ = writeln!(out, " {cumulative}");
    }
    cumulative = h.buckets.iter().sum();
    sample_name(out, family, "_bucket", labels, Some("le=\"+Inf\""));
    let _ = writeln!(out, " {cumulative}");
    sample_name(out, family, "_sum", labels, None);
    let _ = writeln!(out, " {}", h.sum);
    sample_name(out, family, "_count", labels, None);
    let _ = writeln!(out, " {}", h.count);
}

/// Renders a registry snapshot in Prometheus text exposition format.
pub fn render(registry: &Registry) -> String {
    let snapshot = registry.snapshot();
    let mut out = String::with_capacity(64 * snapshot.len().max(1));
    let mut last_family: Option<String> = None;
    for (key, metric) in &snapshot {
        let (family, labels) = split_labels(key);
        if last_family.as_deref() != Some(family) {
            let kind = match metric {
                MetricSnapshot::Counter(_) => "counter",
                MetricSnapshot::Gauge(_) => "gauge",
                MetricSnapshot::Histogram(_) => "histogram",
            };
            let _ = writeln!(out, "# TYPE {PREFIX}{family} {kind}");
            last_family = Some(family.to_string());
        }
        match metric {
            MetricSnapshot::Counter(v) | MetricSnapshot::Gauge(v) => {
                sample_name(&mut out, family, "", labels, None);
                let _ = writeln!(out, " {v}");
            }
            MetricSnapshot::Histogram(h) => {
                histogram_exposition(&mut out, family, labels, h);
            }
        }
    }
    out
}

fn answer(stream: &mut TcpStream) -> std::io::Result<()> {
    // Drain the request head; the path is irrelevant — every request gets
    // the metrics page.
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 || line == "\r\n" || line == "\n" {
            break;
        }
    }
    let body = render(Registry::global());
    let head = format!(
        "HTTP/1.1 200 OK\r\nContent-Type: text/plain; version=0.0.4; charset=utf-8\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Binds `addr` and serves the global registry over HTTP from a detached
/// daemon thread. Returns the bound address (useful with port 0).
pub fn serve_http<A: ToSocketAddrs>(addr: A) -> std::io::Result<SocketAddr> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    std::thread::Builder::new().name("hdsd-metrics".to_string()).spawn(move || {
        for mut stream in listener.incoming().flatten() {
            let _ = answer(&mut stream);
        }
    })?;
    Ok(local)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_labels_roundtrip() {
        assert_eq!(split_labels("plain_total"), ("plain_total", None));
        assert_eq!(
            split_labels("request_micros{op=\"stats\"}"),
            ("request_micros", Some("op=\"stats\""))
        );
    }

    #[test]
    fn render_counter_gauge_histogram() {
        let r = Registry::new();
        r.counter("requests_total").add(3);
        r.counter(&crate::labeled("request_micros_by_op", &[("op", "x")])).add(1);
        r.gauge("graph_edges").set(42);
        let h = r.histogram("wal_fsync_micros");
        h.record(5);
        h.record(300);
        let text = render(&r);
        assert!(text.contains("# TYPE hdsd_requests_total counter\n"));
        assert!(text.contains("hdsd_requests_total 3\n"));
        assert!(text.contains("hdsd_request_micros_by_op{op=\"x\"} 1\n"));
        assert!(text.contains("# TYPE hdsd_graph_edges gauge\n"));
        assert!(text.contains("hdsd_graph_edges 42\n"));
        assert!(text.contains("# TYPE hdsd_wal_fsync_micros histogram\n"));
        // 5 → bucket 3 (le 7), 300 → bucket 9 (le 511); buckets are cumulative.
        assert!(text.contains("hdsd_wal_fsync_micros_bucket{le=\"7\"} 1\n"));
        assert!(text.contains("hdsd_wal_fsync_micros_bucket{le=\"511\"} 2\n"));
        assert!(text.contains("hdsd_wal_fsync_micros_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("hdsd_wal_fsync_micros_sum 305\n"));
        assert!(text.contains("hdsd_wal_fsync_micros_count 2\n"));
    }

    #[test]
    fn type_line_emitted_once_per_family() {
        let r = Registry::new();
        r.counter(&crate::labeled("ops_total", &[("op", "a")])).add(1);
        r.counter(&crate::labeled("ops_total", &[("op", "b")])).add(2);
        let text = render(&r);
        assert_eq!(text.matches("# TYPE hdsd_ops_total counter").count(), 1);
        assert!(text.contains("hdsd_ops_total{op=\"a\"} 1\n"));
        assert!(text.contains("hdsd_ops_total{op=\"b\"} 2\n"));
    }

    #[test]
    fn http_exporter_serves_exposition() {
        crate::Registry::global().counter("prom_http_test_total").add(7);
        let addr = serve_http("127.0.0.1:0").unwrap();
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        let mut response = String::new();
        use std::io::Read;
        stream.read_to_string(&mut response).unwrap();
        assert!(response.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(response.contains("text/plain; version=0.0.4"));
        assert!(response.contains("hdsd_prom_http_test_total 7"));
    }
}
