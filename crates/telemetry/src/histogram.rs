//! Lock-free log₂-bucketed histograms for latency-style measurements.
//!
//! A [`Histogram`] holds 64 `AtomicU64` buckets; a recorded value `v`
//! lands in the bucket whose index is the bit length of `v` (so bucket
//! `i` covers `[2^(i-1), 2^i - 1]` for `i ≥ 1` and bucket 0 holds only
//! zero). Recording is two relaxed adds plus a relaxed `fetch_max` —
//! safe from any thread, never blocking. Reads go through
//! [`Histogram::snapshot`], which produces a plain mergeable
//! [`HistogramSnapshot`] from which bounded-error quantiles are
//! extracted: the estimate of quantile `q` is the upper edge of the
//! bucket holding the rank-`⌈q·n⌉` observation, clamped to the observed
//! maximum, so it always satisfies `exact ≤ estimate ≤ 2·exact`.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log₂ buckets in a histogram. Bucket `i < 63` has upper edge
/// `2^i - 1`; the last bucket is unbounded.
pub const NUM_BUCKETS: usize = 64;

/// Returns the bucket index for a recorded value: the bit length of `v`,
/// clamped to the last bucket (`v = 0` maps to bucket 0).
#[inline]
pub fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(NUM_BUCKETS - 1)
}

/// Returns the inclusive upper edge of bucket `i`: `2^i - 1`, saturating
/// to `u64::MAX` for the final unbounded bucket.
#[inline]
pub fn bucket_upper_edge(i: usize) -> u64 {
    if i >= NUM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A lock-free histogram of `u64` observations in log₂ buckets.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            buckets: [const { AtomicU64::new(0) }; NUM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one observation. Lock-free: two relaxed adds and a relaxed
    /// `fetch_max`.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Takes a point-in-time copy of the histogram state. Concurrent
    /// recorders may land between field reads, so a snapshot's `count`
    /// can briefly disagree with its bucket total by in-flight records;
    /// quantile extraction uses the bucket totals, so it stays coherent.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        HistogramSnapshot {
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// A plain, mergeable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of recorded observations.
    pub count: u64,
    /// Sum of all recorded values.
    pub sum: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Per-bucket observation counts, `NUM_BUCKETS` long.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// Creates an empty snapshot (the merge identity).
    pub fn empty() -> Self {
        HistogramSnapshot { count: 0, sum: 0, max: 0, buckets: vec![0; NUM_BUCKETS] }
    }

    /// Folds another snapshot into this one. Merging is associative and
    /// commutative with [`HistogramSnapshot::empty`] as identity, so
    /// per-shard histograms can be combined in any order.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += *b;
        }
    }

    /// Estimates the `q`-quantile (`0.0 ≤ q ≤ 1.0`) from the bucket
    /// counts. Returns 0 for an empty snapshot. The estimate is the
    /// upper edge of the bucket containing the rank-`⌈q·n⌉` observation,
    /// clamped to the observed maximum; relative to the exact quantile
    /// `x` it satisfies `x ≤ estimate ≤ 2·x`.
    pub fn quantile(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper_edge(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean of recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_edges() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
    }

    #[test]
    fn bucket_edges_cover_their_index() {
        for v in [0u64, 1, 2, 3, 7, 8, 100, 1 << 20, u64::MAX] {
            let i = bucket_index(v);
            assert!(v <= bucket_upper_edge(i), "v={v} i={i}");
            if i > 0 {
                assert!(v > bucket_upper_edge(i - 1), "v={v} i={i}");
            }
        }
    }

    #[test]
    fn record_and_quantile_simple() {
        let h = Histogram::new();
        for v in [1u64, 2, 3, 100, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1106);
        assert_eq!(s.max, 1000);
        // p100 clamps to the observed max, not the bucket edge (1023).
        assert_eq!(s.quantile(1.0), 1000);
        // p50 = rank 3 → value 3 → bucket 2 → edge 3.
        assert_eq!(s.quantile(0.5), 3);
    }

    #[test]
    fn empty_quantiles_are_zero() {
        let s = HistogramSnapshot::empty();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.quantile(1.0), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_matches_union() {
        let a = Histogram::new();
        let b = Histogram::new();
        let u = Histogram::new();
        for v in [5u64, 9, 17] {
            a.record(v);
            u.record(v);
        }
        for v in [2u64, 300, 70000] {
            b.record(v);
            u.record(v);
        }
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m, u.snapshot());
    }
}
