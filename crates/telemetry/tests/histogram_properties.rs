//! Property tests for the log₂-bucket histogram: quantile estimates stay
//! within the documented bounded relative error of exact sorted-slice
//! quantiles, merging is associative, and concurrent recording loses
//! nothing.

use std::sync::Arc;

use hdsd_telemetry::{Histogram, HistogramSnapshot};
use proptest::collection::vec;
use proptest::prelude::*;

/// Exact quantile under the same rank convention the histogram uses:
/// the `⌈q·n⌉`-th smallest observation.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    assert!(!sorted.is_empty());
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn snapshot_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

proptest! {
    // For every quantile the log₂-bucket estimate `e` of the exact
    // value `x` satisfies `x ≤ e ≤ 2·x` (and `e = 0` exactly when
    // `x = 0`).
    #[test]
    fn quantiles_within_bounded_relative_error(
        raw in vec(0u64..=1_000_000_000, 1..300),
        q_pct in (1u64..=100).prop_map(|p| p as f64 / 100.0),
    ) {
        let snap = snapshot_of(&raw);
        let mut values = raw;
        values.sort_unstable();
        for q in [q_pct, 0.5, 0.9, 0.99, 1.0] {
            let exact = exact_quantile(&values, q);
            let est = snap.quantile(q);
            prop_assert!(est >= exact, "q={q}: est {est} < exact {exact}");
            prop_assert!(
                est <= exact.saturating_mul(2).max(exact),
                "q={q}: est {est} > 2*exact ({exact})"
            );
            if exact == 0 {
                prop_assert_eq!(est, 0);
            }
        }
    }

    // `p1.0` is exactly the observed maximum.
    #[test]
    fn p100_is_exact_max(values in vec(0u64..=(1u64 << 60), 1..200)) {
        let snap = snapshot_of(&values);
        prop_assert_eq!(snap.quantile(1.0), *values.iter().max().unwrap());
    }

    // Merging is associative and order-independent: any grouping of
    // three shards equals the histogram of the concatenated values.
    #[test]
    fn merge_is_associative(
        a in vec(0u64..=1_000_000, 0..100),
        b in vec(0u64..=1_000_000, 0..100),
        c in vec(0u64..=1_000_000, 0..100),
    ) {
        let (sa, sb, sc) = (snapshot_of(&a), snapshot_of(&b), snapshot_of(&c));

        let mut left = sa.clone();
        left.merge(&sb);
        left.merge(&sc);

        let mut right = sb.clone();
        right.merge(&sc);
        let mut outer = sa.clone();
        outer.merge(&right);

        let union: Vec<u64> = a.iter().chain(&b).chain(&c).copied().collect();
        let direct = snapshot_of(&union);

        prop_assert_eq!(&left, &outer);
        prop_assert_eq!(&left, &direct);

        let mut with_identity = HistogramSnapshot::empty();
        with_identity.merge(&direct);
        prop_assert_eq!(&with_identity, &direct);
    }
}

/// Concurrent recorders on one histogram lose no observations: the final
/// snapshot's count, sum and bucket totals equal the union of what every
/// thread recorded.
#[test]
fn concurrent_recording_is_lossless() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 10_000;
    let h = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let h = Arc::clone(&h);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    // Spread across buckets deterministically.
                    h.record((t * PER_THREAD + i) % 5_000);
                }
            })
        })
        .collect();
    for handle in handles {
        handle.join().unwrap();
    }
    let snap = h.snapshot();
    assert_eq!(snap.count, THREADS * PER_THREAD);
    let expected_sum: u64 = (0..THREADS * PER_THREAD).map(|v| v % 5_000).sum();
    assert_eq!(snap.sum, expected_sum);
    assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
    assert_eq!(snap.max, 4_999);
}
