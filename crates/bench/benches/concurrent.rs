//! Concurrent-serving benchmark: wait-free epoch reads under churn.
//!
//! This is the measurement the epoch tentpole is accountable to. A
//! background writer thread applies edge batches and publishes a new
//! epoch after each one (exactly the daemon's writer lane); reader
//! threads hammer κ point lookups through pinned [`EpochReader`]s.
//! Reported:
//!
//! * **aggregate lookup throughput at 1/2/4/8 reader threads**, writer
//!   churning throughout — the scaling curve a lock-serialized engine
//!   cannot produce (its curve is flat);
//! * **read p99 during refresh vs quiescent** — a reader must not
//!   stall while the writer builds and publishes the next epoch.
//!
//! Readers also assert their pinned epoch never regresses
//! (`reads_monotone` in the artifact — a hard gate failure if false).
//!
//! The machine's core count is part of the artifact: the CI gate
//! (`bench_gate.py`, kind=concurrent) requires max-thread scaling ≥
//! `min(4.0, 0.6 × cores)` and gates the p99 ratio only on ≥ 2 cores —
//! a single-core runner cannot overlap readers with the writer, and its
//! "scaling" would only measure scheduler overhead.
//!
//! Run with `cargo bench -p hdsd-bench --bench concurrent` (append
//! `-- --quick` for the smoke size; quick mode writes to `target/`).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use hdsd_nucleus::LocalConfig;
use hdsd_service::engine::EngineView;
use hdsd_service::{Engine, EngineConfig, EpochCell, SpaceSel};
use proptest::splitmix64 as splitmix;

/// One measurement window: `threads` readers doing random κ lookups
/// while (optionally) a writer churns update batches and publishes.
/// Returns (lookups/sec, publishes, all readers monotone).
fn run_window(
    engine: &mut Engine,
    cell: &Arc<EpochCell<EngineView>>,
    threads: usize,
    window: Duration,
    churn: bool,
    rng_seed: u64,
) -> (f64, u64, bool) {
    let stop = AtomicBool::new(false);
    let total = AtomicU64::new(0);
    let monotone = AtomicBool::new(true);
    let mut publishes = 0u64;
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let mut reader = cell.reader();
            let stop = &stop;
            let total = &total;
            let monotone = &monotone;
            handles.push(s.spawn(move || {
                let mut rng = rng_seed ^ (t as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
                let mut count = 0u64;
                let mut checksum = 0u64;
                let mut last_epoch = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    // Tight inner loop between stop checks: the lookup
                    // itself is the workload, not the atomic poll.
                    for _ in 0..256 {
                        let (view, epoch) = reader.pin();
                        if epoch < last_epoch {
                            monotone.store(false, Ordering::Relaxed);
                        }
                        last_epoch = epoch;
                        let sel =
                            if count.is_multiple_of(2) { SpaceSel::Core } else { SpaceSel::Truss };
                        let n = view.num_cliques(sel).unwrap();
                        let id = (splitmix(&mut rng) % n as u64) as usize;
                        checksum = checksum.wrapping_add(view.kappa_of(sel, id).unwrap() as u64);
                        count += 1;
                    }
                }
                total.fetch_add(count, Ordering::Relaxed);
                checksum
            }));
        }

        let t0 = Instant::now();
        if churn {
            // The measuring thread IS the writer lane: churn until the
            // window closes, exactly like the daemon's single writer.
            let mut rng = rng_seed ^ 0xD00D;
            while t0.elapsed() < window {
                let nv = engine.graph().num_vertices() as u64;
                let ins: Vec<(u32, u32)> = (0..2)
                    .map(|_| ((splitmix(&mut rng) % nv) as u32, (splitmix(&mut rng) % nv) as u32))
                    .collect();
                let rm: Vec<(u32, u32)> = {
                    let edges = engine.graph().edges();
                    (0..2)
                        .map(|_| edges[(splitmix(&mut rng) % edges.len() as u64) as usize])
                        .collect()
                };
                engine.update(&ins, &rm);
                cell.publish(engine.view());
                publishes += 1;
            }
        } else {
            std::thread::sleep(window);
        }
        let elapsed = t0.elapsed();
        stop.store(true, Ordering::Relaxed);
        let mut sink = 0u64;
        for h in handles {
            sink = sink.wrapping_add(h.join().expect("reader panicked"));
        }
        std::hint::black_box(sink);
        let per_sec = total.load(Ordering::Relaxed) as f64 / elapsed.as_secs_f64();
        (per_sec, publishes, monotone.load(Ordering::Relaxed))
    })
}

/// p99 over per-chunk lookup latencies (one chunk = `CHUNK` lookups on
/// one reader thread), in microseconds.
fn chunk_p99(
    engine: &mut Engine,
    cell: &Arc<EpochCell<EngineView>>,
    chunks: usize,
    churn: bool,
) -> f64 {
    const CHUNK: usize = 64;
    let stop = AtomicBool::new(false);
    std::thread::scope(|s| {
        let mut reader = cell.reader();
        let stop_ref = &stop;
        let sampler = s.spawn(move || {
            let mut rng = 0xFACEu64;
            let mut lat_us: Vec<f64> = Vec::with_capacity(chunks);
            let mut checksum = 0u64;
            for _ in 0..chunks {
                let t = Instant::now();
                for i in 0..CHUNK {
                    let (view, _) = reader.pin();
                    let sel = if i % 2 == 0 { SpaceSel::Core } else { SpaceSel::Truss };
                    let n = view.num_cliques(sel).unwrap();
                    let id = (splitmix(&mut rng) % n as u64) as usize;
                    checksum = checksum.wrapping_add(view.kappa_of(sel, id).unwrap() as u64);
                }
                lat_us.push(t.elapsed().as_secs_f64() * 1e6);
            }
            stop_ref.store(true, Ordering::Relaxed);
            std::hint::black_box(checksum);
            lat_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
            lat_us[((lat_us.len() - 1) as f64 * 0.99) as usize]
        });
        if churn {
            let mut rng = 0xBADCAFEu64;
            while !stop.load(Ordering::Relaxed) {
                let nv = engine.graph().num_vertices() as u64;
                let ins: Vec<(u32, u32)> = (0..2)
                    .map(|_| ((splitmix(&mut rng) % nv) as u32, (splitmix(&mut rng) % nv) as u32))
                    .collect();
                let rm: Vec<(u32, u32)> = {
                    let edges = engine.graph().edges();
                    (0..2)
                        .map(|_| edges[(splitmix(&mut rng) % edges.len() as u64) as usize])
                        .collect()
                };
                engine.update(&ins, &rm);
                cell.publish(engine.view());
            }
        }
        sampler.join().expect("sampler panicked")
    })
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, m_attach, thin) = if quick { (2_000u32, 5u32, 0.7) } else { (20_000, 6, 0.6) };
    let g = hdsd_datasets::thin_edges(&hdsd_datasets::holme_kim(n, m_attach, 0.4, 7), thin, 7);
    eprintln!("concurrent bench graph: {} vertices, {} edges", g.num_vertices(), g.num_edges());

    let cores = std::thread::available_parallelism().map_or(1, |p| p.get());
    let required_scaling = 4.0_f64.min(0.6 * cores as f64);
    eprintln!("cores: {cores}; required max-thread scaling: {required_scaling:.2}x");

    let cfg = EngineConfig {
        spaces: vec![SpaceSel::Core, SpaceSel::Truss],
        local: LocalConfig::sequential(),
    };
    let mut engine = Engine::new(g.clone(), &cfg);
    let cell = Arc::new(EpochCell::new(engine.view()));

    let window = Duration::from_millis(if quick { 250 } else { 1000 });
    let thread_counts = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    let mut all_monotone = true;
    for &threads in &thread_counts {
        let (per_sec, publishes, monotone) =
            run_window(&mut engine, &cell, threads, window, true, 0x5EED ^ threads as u64);
        all_monotone &= monotone;
        eprintln!(
            "lookups @ {threads} threads under churn: {per_sec:.0}/s ({publishes} epochs published)"
        );
        rows.push((threads, per_sec, publishes));
    }
    let base = rows[0].1;
    let max_threads_per_sec = rows.last().unwrap().1;
    let scaling = max_threads_per_sec / base;
    eprintln!(
        "scaling {}t vs 1t under churn: {scaling:.2}x (required {required_scaling:.2}x)",
        thread_counts.last().unwrap()
    );

    let chunks = if quick { 400 } else { 1500 };
    let p99_quiescent = chunk_p99(&mut engine, &cell, chunks, false);
    let p99_refresh = chunk_p99(&mut engine, &cell, chunks, true);
    let p99_ratio = p99_refresh / p99_quiescent.max(1e-9);
    eprintln!(
        "read p99 per 64-lookup chunk: quiescent {p99_quiescent:.1} µs, \
         during refresh {p99_refresh:.1} µs ({p99_ratio:.2}x)"
    );
    assert!(all_monotone, "a reader observed its epoch going backwards");

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"graph\": {{\"generator\": \"thin(holme_kim)\", \"n\": {n}, \"m_attach\": {m_attach}, \
         \"thin\": {thin}, \"vertices\": {}, \"edges\": {}}},",
        g.num_vertices(),
        g.num_edges()
    );
    let _ = writeln!(out, "  \"cores\": {cores},");
    let _ = writeln!(out, "  \"required_scaling\": {required_scaling:.3},");
    out.push_str("  \"lookup_throughput\": [\n");
    for (i, (threads, per_sec, publishes)) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"threads\": {threads}, \"per_sec\": {per_sec:.0}, \
             \"publishes\": {publishes}}}{}",
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(out, "  \"scaling_max_vs_1\": {scaling:.3},");
    let _ = writeln!(
        out,
        "  \"p99\": {{\"chunk_lookups\": 64, \"quiescent_us\": {p99_quiescent:.1}, \
         \"refresh_us\": {p99_refresh:.1}, \"ratio\": {p99_ratio:.3}}},"
    );
    let _ = writeln!(out, "  \"reads_monotone\": {all_monotone}");
    out.push_str("}\n");

    let path = if quick {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_concurrent.quick.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_concurrent.json")
    };
    std::fs::write(path, &out).expect("write concurrent bench JSON");
    eprintln!("wrote {path}");
}
