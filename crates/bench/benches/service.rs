//! Serving benchmark for the `hdsd-service` engine.
//!
//! Measures the three serving paths the engine exists for and writes one
//! self-contained JSON document so the trend is trackable across PRs:
//!
//! * **point-query throughput** — resident-κ lookups per second;
//! * **budgeted-estimate latency** — `local_estimate_opts` at several
//!   exploration budgets (mean latency + mean explored ball size);
//! * **warm-start refresh vs from-scratch** — per space, the sweeps and
//!   r-clique recomputations of the candidate-lifted warm refresh on
//!   mixed insert/delete batches against a cold And decomposition of the
//!   same updated graph. The run *asserts* κ-exactness of every refresh
//!   and that the warm path does strictly less recomputation.
//!
//! Run with `cargo bench -p hdsd-bench --bench service` (append
//! `-- --quick` for the smoke-test size; quick mode writes to `target/`).

use std::fmt::Write as _;
use std::time::Instant;

use hdsd_nucleus::{
    and, build_hierarchy, peel, CachedSpace, CoreSpace, LocalConfig, Nucleus34Space, Order,
    QueryOptions, TrussSpace,
};
use hdsd_service::{Engine, EngineConfig, SpaceSel};

struct EstimateRecord {
    space: &'static str,
    budget: Option<usize>,
    iterations: usize,
    mean_us: f64,
    mean_explored: f64,
    truncated: usize,
}

struct RefreshRecord {
    space: String,
    warm_sweeps: usize,
    warm_processed: u64,
    cold_sweeps: usize,
    cold_processed: u64,
    awake: usize,
    lifted: usize,
    splice_us: u64,
}

struct HierarchyRecord {
    space: String,
    repair_us: u64,
    rebuild_us: u64,
    preserved_nodes: usize,
    rebuilt_nodes: usize,
    preserved_fraction: f64,
    dirty_cliques: usize,
    scanned_scliques: usize,
}

use proptest::splitmix64 as splitmix;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, m_attach, thin) = if quick { (2_000u32, 5u32, 0.7) } else { (20_000, 6, 0.6) };
    let g = hdsd_datasets::thin_edges(&hdsd_datasets::holme_kim(n, m_attach, 0.4, 7), thin, 7);
    eprintln!("service bench graph: {} vertices, {} edges", g.num_vertices(), g.num_edges());

    let spaces = vec![SpaceSel::Core, SpaceSel::Truss, SpaceSel::Nucleus34];
    let cfg = EngineConfig { spaces: spaces.clone(), local: LocalConfig::sequential() };
    let t_build = Instant::now();
    let mut engine = Engine::new(g.clone(), &cfg);
    let build_ms = t_build.elapsed().as_secs_f64() * 1e3;
    // Cold-start split per space (the flat-peel routing made the exact
    // peel the observable line item; see `stats` in the protocol).
    let cold_start: Vec<(String, u64, u64)> =
        engine.stats().spaces.iter().map(|s| (s.space.clone(), s.build_us, s.peel_us)).collect();
    for (space, b_us, p_us) in &cold_start {
        eprintln!("cold start {space}: snapshot build {b_us} µs, exact peel {p_us} µs");
    }
    eprintln!("engine built in {build_ms:.0} ms");

    // ── point-query throughput ────────────────────────────────────────
    let lookups: usize = if quick { 200_000 } else { 1_000_000 };
    let mut rng = 0xC0FFEEu64;
    let n_core = engine.num_cliques(SpaceSel::Core).unwrap();
    let n_truss = engine.num_cliques(SpaceSel::Truss).unwrap();
    let t0 = Instant::now();
    let mut checksum = 0u64;
    for i in 0..lookups {
        let (sel, n_sel) =
            if i % 2 == 0 { (SpaceSel::Core, n_core) } else { (SpaceSel::Truss, n_truss) };
        let id = (splitmix(&mut rng) % n_sel as u64) as usize;
        checksum = checksum.wrapping_add(engine.kappa_of(sel, id).unwrap() as u64);
    }
    let lookup_secs = t0.elapsed().as_secs_f64();
    let lookups_per_sec = lookups as f64 / lookup_secs;
    eprintln!("point lookups: {lookups_per_sec:.0}/s (checksum {checksum})");

    // ── budgeted-estimate latency ─────────────────────────────────────
    let mut estimates = Vec::new();
    let queries: usize = if quick { 40 } else { 100 };
    for sel in [SpaceSel::Core, SpaceSel::Truss] {
        let n_sel = engine.num_cliques(sel).unwrap();
        for budget in [Some(64usize), Some(1024), None] {
            let iterations = 3;
            let opts = QueryOptions { iterations, budget, lower_bound: true, deadline: None };
            let mut total_us = 0f64;
            let mut total_explored = 0usize;
            let mut truncated = 0usize;
            let mut rng = 0xBEEFu64;
            for _ in 0..queries {
                let q = (splitmix(&mut rng) % n_sel as u64) as usize;
                let t = Instant::now();
                let est = engine.estimate(sel, q, &opts).unwrap();
                total_us += t.elapsed().as_secs_f64() * 1e6;
                total_explored += est.explored;
                truncated += est.truncated as usize;
            }
            estimates.push(EstimateRecord {
                space: sel.name(),
                budget,
                iterations,
                mean_us: total_us / queries as f64,
                mean_explored: total_explored as f64 / queries as f64,
                truncated,
            });
        }
    }
    for e in &estimates {
        eprintln!(
            "estimate {}: budget {:?} → {:.0} µs mean, {:.0} cliques explored, {} truncated",
            e.space, e.budget, e.mean_us, e.mean_explored, e.truncated
        );
    }

    // ── warm-start refresh vs from-scratch decomposition ──────────────
    // Make every hierarchy resident first: updates then *repair* the
    // forests in place, and the post-update region query below no longer
    // pays a rebuild.
    for &sel in &spaces {
        let t = Instant::now();
        let _ = engine.nuclei_at(sel, 1).unwrap();
        eprintln!(
            "hierarchy {} first build: {:.1} ms",
            sel.name(),
            t.elapsed().as_secs_f64() * 1e3
        );
    }
    let batches: usize = if quick { 2 } else { 3 };
    let mut refreshes: Vec<RefreshRecord> = Vec::new();
    let mut hierarchies: Vec<HierarchyRecord> = Vec::new();
    let mut rng = 0xDECAFu64;
    let mut update_walls_us: Vec<u64> = Vec::new();
    let mut graph_delta_us: Vec<u64> = Vec::new();
    let mut repair_walls_us: Vec<u64> = Vec::new();
    let mut post_update_region_us: Vec<u64> = Vec::new();
    for _ in 0..batches {
        let nv = engine.graph().num_vertices() as u64;
        let ins: Vec<(u32, u32)> = (0..2)
            .map(|_| ((splitmix(&mut rng) % nv) as u32, (splitmix(&mut rng) % nv) as u32))
            .collect();
        let rm: Vec<(u32, u32)> = {
            let edges = engine.graph().edges();
            (0..3).map(|_| edges[(splitmix(&mut rng) % edges.len() as u64) as usize]).collect()
        };
        let report = engine.update(&ins, &rm);
        update_walls_us.push(report.wall_us);
        graph_delta_us.push(report.graph_delta_us);
        repair_walls_us.push(report.hierarchy_repair_us);

        // The acceptance measurement: the first region query after an
        // update used to rebuild the whole forest; with in-place repair it
        // is a plain index read + materialization.
        let t_region = Instant::now();
        let _ = engine.region_of(SpaceSel::Core, 0);
        post_update_region_us.push(t_region.elapsed().as_micros() as u64);

        // Cold baseline + exactness audit on the *updated* graph.
        let g2 = engine.graph().clone();
        for r in &report.spaces {
            let cached = match r.space {
                "core" => CachedSpace::build(&CoreSpace::new(&g2)),
                "truss" => CachedSpace::build(&TrussSpace::on_the_fly(&g2)),
                _ => CachedSpace::build(&Nucleus34Space::on_the_fly(&g2)),
            };
            let cold = and(&cached, &LocalConfig::sequential(), &Order::Natural);
            let exact = peel(&cached).kappa;
            let sel = SpaceSel::parse(r.space).unwrap();
            assert_eq!(
                engine.kappa_vector(sel).unwrap(),
                exact.as_slice(),
                "{} refresh diverged from from-scratch peel",
                r.space
            );
            // The core space's broad, low-κ levels keep its candidate set
            // large (see ROADMAP), so the hard guarantee is asserted for
            // the truss and (3,4) spaces the serving story centers on.
            // Recomputation count is the robust metric at this scale;
            // sweep counts are asserted on controlled batches in the
            // `hdsd-nucleus` incremental tests and reported here.
            if r.space != "core" {
                assert!(
                    r.processed < cold.total_processed(),
                    "{}: warm refresh {} sweeps / {} recomputations vs cold {} / {}",
                    r.space,
                    r.sweeps,
                    r.processed,
                    cold.sweeps,
                    cold.total_processed()
                );
            }
            refreshes.push(RefreshRecord {
                space: r.space.to_string(),
                warm_sweeps: r.sweeps,
                warm_processed: r.processed,
                cold_sweeps: cold.sweeps,
                cold_processed: cold.total_processed(),
                awake: r.awake,
                lifted: r.lifted,
                splice_us: r.splice_us,
            });

            // Hierarchy repair vs a from-scratch forest rebuild of the
            // same updated space.
            let hr = r.hierarchy_repair.as_ref().expect("hierarchies are resident in this bench");
            let t_rebuild = Instant::now();
            let rebuilt = build_hierarchy(&cached, &exact);
            let rebuild_us = t_rebuild.elapsed().as_micros() as u64;
            let total_nodes = hr.preserved_nodes + hr.rebuilt_nodes;
            assert_eq!(
                total_nodes,
                rebuilt.len(),
                "{}: repaired forest size diverged from a cold rebuild",
                r.space
            );
            hierarchies.push(HierarchyRecord {
                space: r.space.to_string(),
                repair_us: hr.repair_us,
                rebuild_us,
                preserved_nodes: hr.preserved_nodes,
                rebuilt_nodes: hr.rebuilt_nodes,
                preserved_fraction: hr.preserved_nodes as f64 / total_nodes.max(1) as f64,
                dirty_cliques: hr.dirty_cliques,
                scanned_scliques: hr.scanned_scliques,
            });
        }
    }
    for r in &refreshes {
        eprintln!(
            "refresh {}: warm {} sweeps / {} recomputed vs cold {} sweeps / {} recomputed",
            r.space, r.warm_sweeps, r.warm_processed, r.cold_sweeps, r.cold_processed
        );
    }
    for h in &hierarchies {
        eprintln!(
            "hierarchy {}: repair {} µs vs rebuild {} µs ({} preserved / {} rebuilt nodes, \
             {} s-cliques scanned)",
            h.space,
            h.repair_us,
            h.rebuild_us,
            h.preserved_nodes,
            h.rebuilt_nodes,
            h.scanned_scliques
        );
    }

    // ── emit the JSON artifact ────────────────────────────────────────
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"graph\": {{\"generator\": \"thin(holme_kim)\", \"n\": {n}, \"m_attach\": {m_attach}, \
         \"thin\": {thin}, \"vertices\": {}, \"edges\": {}}},",
        g.num_vertices(),
        g.num_edges()
    );
    let _ = writeln!(out, "  \"engine_build_ms\": {build_ms:.1},");
    out.push_str("  \"cold_start\": [\n");
    for (i, (space, b_us, p_us)) in cold_start.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"space\": \"{space}\", \"build_us\": {b_us}, \"peel_us\": {p_us}}}{}",
            if i + 1 < cold_start.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    let _ = writeln!(
        out,
        "  \"point_lookups\": {{\"count\": {lookups}, \"per_sec\": {lookups_per_sec:.0}}},"
    );
    out.push_str("  \"estimates\": [\n");
    for (i, e) in estimates.iter().enumerate() {
        let budget = e.budget.map_or("null".to_string(), |b| b.to_string());
        let _ = writeln!(
            out,
            "    {{\"space\": \"{}\", \"budget\": {budget}, \"iterations\": {}, \
             \"mean_us\": {:.1}, \"mean_explored\": {:.1}, \"truncated\": {}}}{}",
            e.space,
            e.iterations,
            e.mean_us,
            e.mean_explored,
            e.truncated,
            if i + 1 < estimates.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    out.push_str("  \"refreshes\": [\n");
    for (i, r) in refreshes.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"space\": \"{}\", \"warm_sweeps\": {}, \"warm_processed\": {}, \
             \"cold_sweeps\": {}, \"cold_processed\": {}, \"awake\": {}, \"lifted\": {}, \
             \"splice_us\": {}, \"processed_ratio\": {:.3}}}{}",
            r.space,
            r.warm_sweeps,
            r.warm_processed,
            r.cold_sweeps,
            r.cold_processed,
            r.awake,
            r.lifted,
            r.splice_us,
            r.cold_processed as f64 / r.warm_processed.max(1) as f64,
            if i + 1 < refreshes.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    out.push_str("  \"hierarchy\": [\n");
    for (i, h) in hierarchies.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"space\": \"{}\", \"repair_us\": {}, \"rebuild_us\": {}, \
             \"preserved_nodes\": {}, \"rebuilt_nodes\": {}, \"preserved_fraction\": {:.4}, \
             \"dirty_cliques\": {}, \"scanned_scliques\": {}}}{}",
            h.space,
            h.repair_us,
            h.rebuild_us,
            h.preserved_nodes,
            h.rebuilt_nodes,
            h.preserved_fraction,
            h.dirty_cliques,
            h.scanned_scliques,
            if i + 1 < hierarchies.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    let mean = |xs: &[u64]| xs.iter().sum::<u64>() as f64 / 1e3 / xs.len().max(1) as f64;
    let mean_update_ms = mean(&update_walls_us);
    let mean_delta_ms = mean(&graph_delta_us);
    let mean_repair_ms = mean(&repair_walls_us);
    let mean_region_ms = mean(&post_update_region_us);
    let _ = writeln!(out, "  \"mean_update_wall_ms\": {mean_update_ms:.1},");
    let _ = writeln!(out, "  \"mean_graph_delta_ms\": {mean_delta_ms:.1},");
    let _ = writeln!(out, "  \"mean_hierarchy_repair_ms\": {mean_repair_ms:.2},");
    let _ = writeln!(out, "  \"mean_post_update_region_ms\": {mean_region_ms:.2}");
    out.push_str("}\n");

    // Quick mode is a smoke test; only full-size runs may overwrite the
    // tracked trend artifact.
    let path = if quick {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_service.quick.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_service.json")
    };
    std::fs::write(path, &out).expect("write service bench JSON");
    eprintln!("wrote {path}");
}
