//! The headline comparison (Tables 4/5/6 in microbenchmark form): exact
//! peeling vs Snd vs And for all three decompositions.

use criterion::{criterion_group, criterion_main, Criterion};
use hdsd_datasets::Dataset;
use hdsd_nucleus::{and, peel, snd, CoreSpace, LocalConfig, Nucleus34Space, Order, TrussSpace};

fn bench_core(c: &mut Criterion) {
    let g = Dataset::Sse.generate(0.25);
    let sp = CoreSpace::new(&g);
    let mut group = c.benchmark_group("core_sse_quarter");
    group.bench_function("peel", |b| b.iter(|| peel(std::hint::black_box(&sp))));
    group.bench_function("snd", |b| {
        b.iter(|| snd(std::hint::black_box(&sp), &LocalConfig::default()))
    });
    group.bench_function("and", |b| {
        b.iter(|| and(std::hint::black_box(&sp), &LocalConfig::default(), &Order::Natural))
    });
    group.finish();
}

fn bench_truss(c: &mut Criterion) {
    let g = Dataset::Fb.generate(0.25);
    let sp = TrussSpace::precomputed(&g);
    let mut group = c.benchmark_group("truss_fb_quarter");
    group.sample_size(10);
    group.bench_function("peel", |b| b.iter(|| peel(std::hint::black_box(&sp))));
    group.bench_function("snd", |b| {
        b.iter(|| snd(std::hint::black_box(&sp), &LocalConfig::default()))
    });
    group.bench_function("and", |b| {
        b.iter(|| and(std::hint::black_box(&sp), &LocalConfig::default(), &Order::Natural))
    });
    // Theorem 4 best case: And fed the final peel order.
    let order = Order::Custom(peel(&sp).order.clone());
    group.bench_function("and_peel_order", |b| {
        b.iter(|| and(std::hint::black_box(&sp), &LocalConfig::default(), &order))
    });
    group.finish();
}

fn bench_nucleus34(c: &mut Criterion) {
    let g = Dataset::Fb.generate(0.15);
    let sp = Nucleus34Space::precomputed(&g);
    let mut group = c.benchmark_group("nucleus34_fb_small");
    group.sample_size(10);
    group.bench_function("peel", |b| b.iter(|| peel(std::hint::black_box(&sp))));
    group.bench_function("snd", |b| {
        b.iter(|| snd(std::hint::black_box(&sp), &LocalConfig::default()))
    });
    group.bench_function("and", |b| {
        b.iter(|| and(std::hint::black_box(&sp), &LocalConfig::default(), &Order::Natural))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_core, bench_truss, bench_nucleus34
}
criterion_main!(benches);
