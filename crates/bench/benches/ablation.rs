//! Ablations of the design choices DESIGN.md calls out:
//!
//! * notification mechanism on/off (§4.2.1, Figure 8),
//! * preserve-τ early exit on/off (§4.4),
//! * dynamic vs static chunk scheduling (§4.4),
//! * precomputed vs on-the-fly truss containers (§5 memory/time trade).

use criterion::{criterion_group, criterion_main, Criterion};
use hdsd_datasets::Dataset;
use hdsd_nucleus::{and, and_without_notification, snd, LocalConfig, Order, TrussSpace};
use hdsd_parallel::{parallel_for_chunks, ParallelConfig, Policy};

fn bench_notification(c: &mut Criterion) {
    let g = Dataset::Fb.generate(0.25);
    let sp = TrussSpace::precomputed(&g);
    let mut group = c.benchmark_group("ablation_notification_fb_quarter");
    group.sample_size(10);
    group.bench_function("and_with_notification", |b| {
        b.iter(|| and(&sp, &LocalConfig::default(), &Order::Natural))
    });
    group.bench_function("and_without_notification", |b| {
        b.iter(|| and_without_notification(&sp, &LocalConfig::default(), &Order::Natural))
    });
    group.finish();
}

fn bench_preserve_check(c: &mut Criterion) {
    let g = Dataset::Fb.generate(0.25);
    let sp = TrussSpace::precomputed(&g);
    let mut group = c.benchmark_group("ablation_preserve_check_fb_quarter");
    group.sample_size(10);
    group.bench_function("snd_with_preserve_check", |b| {
        b.iter(|| snd(&sp, &LocalConfig::default()))
    });
    group.bench_function("snd_without_preserve_check", |b| {
        b.iter(|| snd(&sp, &LocalConfig::default().without_preserve_check()))
    });
    group.finish();
}

fn bench_scheduling(c: &mut Criterion) {
    // Skewed per-item work: the pathology static scheduling suffers from.
    let n = 1 << 16;
    let work = |i: usize| {
        // Heavy work clustered at the front of the index space.
        let reps = if i < n / 8 { 64 } else { 1 };
        let mut acc = i as u64;
        for _ in 0..reps {
            acc = acc.wrapping_mul(0x9E3779B97F4A7C15).rotate_left(17);
        }
        std::hint::black_box(acc);
    };
    let threads = hdsd_parallel::default_threads().max(2);
    let mut group = c.benchmark_group("ablation_scheduling_skewed");
    group.sample_size(10);
    for policy in [Policy::Dynamic, Policy::Static] {
        group.bench_function(format!("{policy:?}").to_lowercase(), |b| {
            let cfg = ParallelConfig { threads, chunk: 256, policy };
            b.iter(|| {
                parallel_for_chunks(n, cfg, |range| {
                    for i in range {
                        work(i);
                    }
                })
            })
        });
    }
    group.finish();
}

fn bench_truss_strategy(c: &mut Criterion) {
    let g = Dataset::Fb.generate(0.25);
    let mut group = c.benchmark_group("ablation_truss_strategy_fb_quarter");
    group.sample_size(10);
    group.bench_function("precomputed_build_plus_snd", |b| {
        b.iter(|| {
            let sp = TrussSpace::precomputed(&g);
            snd(&sp, &LocalConfig::default())
        })
    });
    group.bench_function("on_the_fly_build_plus_snd", |b| {
        b.iter(|| {
            let sp = TrussSpace::on_the_fly(&g);
            snd(&sp, &LocalConfig::default())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_notification, bench_preserve_check, bench_scheduling, bench_truss_strategy
}
criterion_main!(benches);
