//! Telemetry overhead microbench: what the hot paths pay for being
//! observable.
//!
//! The instrumentation contract is that a counter bump is one relaxed
//! atomic add behind a per-call-site cached `Arc`, a histogram record is
//! two relaxed adds plus a `fetch_max`, and a **disabled** span guard is a
//! single relaxed load and a branch — cheap enough to leave compiled into
//! `peel_flat`, `WalWriter::append` and every other hot seam
//! unconditionally. This bench measures each primitive in a tight
//! `black_box` loop and reports ns/op next to a pinned ceiling; the CI
//! gate (`scripts/bench_gate.py --kind telemetry`) hard-fails any
//! primitive that exceeds its ceiling and pins the ceilings themselves so
//! they cannot drift silently.
//!
//! Ceilings are deliberately loose (10–50× the expected cost on an idle
//! machine): they exist to catch accidental O(1) → O(lock) regressions —
//! a mutex, an allocation, a syscall sneaking into the fast path — not to
//! measure scheduler noise on shared CI runners.
//!
//! Run with `cargo bench -p hdsd-bench --bench telemetry` (append
//! `-- --quick` for the CI size; quick mode writes to `target/`).

use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

use hdsd_telemetry::{counter_add, span, trace, Registry};

struct Row {
    name: &'static str,
    ns_per_op: f64,
    ceiling_ns: f64,
}

/// Mean cost of `f` over `iters` calls, in nanoseconds.
fn time_ns_per_op(iters: u64, mut f: impl FnMut()) -> f64 {
    let t = Instant::now();
    for _ in 0..iters {
        f();
    }
    t.elapsed().as_nanos() as f64 / iters as f64
}

/// Best-of-`reps` run of a measurement closure (minimum filters out
/// scheduler preemption; the ceilings do the rest).
fn best(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let iters: u64 = if quick { 2_000_000 } else { 20_000_000 };
    let reps = 5;

    // Counter bump through the macro's per-call-site Arc cache — the
    // exact code shape of `requests_total` on the request path.
    let counter_ns = best(reps, || {
        time_ns_per_op(iters, || {
            counter_add!("bench_telemetry_ops_total", 1);
        })
    });

    // Histogram record with the Arc already in hand — the shape of the
    // per-op request histogram and the WAL latency histograms.
    let hist = Registry::global().histogram("bench_telemetry_record_micros");
    let mut v = 0u64;
    let histogram_ns = best(reps, || {
        time_ns_per_op(iters, || {
            hist.record(black_box(v & 0xFFFF));
            v = v.wrapping_add(977);
        })
    });

    // Span guard with tracing globally off — what every instrumented hot
    // path pays when `--trace-slow-ms` is not set.
    trace::set_enabled(false);
    let disabled_span_ns = best(reps, || {
        time_ns_per_op(iters, || {
            span!("bench.disabled");
        })
    });

    // Span guard with tracing armed: two clock reads plus a ring-buffer
    // push, amortized over chunks so the per-request collector (capacity
    // 256) is drained the way the server drains it.
    let enabled_span_ns = best(reps, || {
        trace::set_enabled(true);
        let chunk = 200u64;
        let rounds = (iters / (20 * chunk)).max(1);
        let t = Instant::now();
        for _ in 0..rounds {
            trace::begin();
            for _ in 0..chunk {
                span!("bench.enabled");
            }
            black_box(trace::take());
        }
        let ns = t.elapsed().as_nanos() as f64 / (rounds * chunk) as f64;
        trace::set_enabled(false);
        ns
    });

    let rows = vec![
        Row { name: "counter_add", ns_per_op: counter_ns, ceiling_ns: 100.0 },
        Row { name: "histogram_record", ns_per_op: histogram_ns, ceiling_ns: 150.0 },
        Row { name: "disabled_span", ns_per_op: disabled_span_ns, ceiling_ns: 50.0 },
        Row { name: "enabled_span", ns_per_op: enabled_span_ns, ceiling_ns: 2000.0 },
    ];

    for r in &rows {
        eprintln!(
            "telemetry {}: {:.2} ns/op (ceiling {:.0} ns){}",
            r.name,
            r.ns_per_op,
            r.ceiling_ns,
            if r.ns_per_op > r.ceiling_ns { "  OVER CEILING" } else { "" }
        );
    }

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"iters\": {iters},");
    out.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"name\": \"{}\", \"ns_per_op\": {:.3}, \"ceiling_ns\": {:.1}}}{}",
            r.name,
            r.ns_per_op,
            r.ceiling_ns,
            if i + 1 < rows.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");

    // Quick mode is a smoke test; only full-size runs may overwrite the
    // tracked trend artifact.
    let path = if quick {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_telemetry.quick.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_telemetry.json")
    };
    std::fs::write(path, &out).expect("write telemetry bench JSON");
    eprintln!("wrote {path}");
}
