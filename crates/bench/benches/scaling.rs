//! Figure 1b in microbenchmark form: thread sweep for parallel And and the
//! partially parallel peeling baseline. On a single-core host the curves
//! are flat — the sweep is still exercised for correctness and to produce
//! honest numbers on whatever hardware runs it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdsd_datasets::Dataset;
use hdsd_nucleus::{and, peel_parallel, LocalConfig, Order, TrussSpace};
use hdsd_parallel::ParallelConfig;

fn bench_thread_sweep(c: &mut Criterion) {
    let g = Dataset::Fb.generate(0.25);
    let sp = TrussSpace::precomputed(&g);
    let max = hdsd_parallel::default_threads();
    let sweep: Vec<usize> = [1usize, 2, 4, max]
        .into_iter()
        .filter(|&t| t <= max)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();

    let mut group = c.benchmark_group("truss_thread_sweep_fb_quarter");
    group.sample_size(10);
    for &t in &sweep {
        group.bench_with_input(BenchmarkId::new("and", t), &t, |b, &threads| {
            b.iter(|| and(&sp, &LocalConfig::with_threads(threads), &Order::Natural))
        });
        group.bench_with_input(BenchmarkId::new("peel_parallel", t), &t, |b, &threads| {
            b.iter(|| peel_parallel(&sp, ParallelConfig::with_threads(threads)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_thread_sweep
}
criterion_main!(benches);
