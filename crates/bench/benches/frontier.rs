//! Frontier-scheduling and container-cache ablation.
//!
//! Runs And on a generated power-law graph with a long convergence tail and
//! compares, per clique space:
//!
//! * **scheduling**: `Frontier` (explicit worklist) vs `FlagScan` (full
//!   permutation walk + wake flags) vs `FullScan` (no notification) —
//!   recomputation counts come from `SchedulerStats`, so the numbers are
//!   exact, not sampled;
//! * **memory layout**: flat container cache vs the callback walk;
//! * **parallel drain**: the barrier-free continuous frontier drain vs a
//!   barriered parallel flag scan (dynamic chunk hand-out) — the ablation
//!   showing what removing the per-sweep barrier buys.
//!
//! Everything is written to `BENCH_frontier.json` at the workspace root
//! (one self-contained JSON document, no dependencies) so the perf
//! trajectory is trackable across PRs. The run also *verifies* the two
//! headline claims: every configuration reproduces the peeling ground
//! truth exactly, and frontier scheduling performs at least 2× fewer
//! r-clique recomputations than the full-scan baseline.
//!
//! Run with: `cargo bench --bench frontier` (append `-- --quick` for a
//! smaller graph when smoke-testing).

use std::fmt::Write as _;
use std::time::Instant;

use hdsd_nucleus::{
    and, peel, CliqueSpace, CoreSpace, FlatContainers, LocalConfig, Order, SweepMode, TrussSpace,
    DEFAULT_CONTAINER_CACHE_BUDGET,
};
use hdsd_parallel::Policy;

struct RunRecord {
    space: String,
    mode: &'static str,
    cache: &'static str,
    threads: usize,
    policy: &'static str,
    sweeps: usize,
    converged: bool,
    processed: u64,
    skipped: u64,
    total_chunks: usize,
    wall_ms: f64,
    kappa_exact: bool,
}

fn mode_name(mode: SweepMode) -> &'static str {
    match mode {
        SweepMode::Frontier => "frontier",
        SweepMode::FlagScan => "flag_scan",
        SweepMode::FullScan => "full_scan",
    }
}

fn run_one<S: CliqueSpace>(
    space: &S,
    exact: &[u32],
    mode: SweepMode,
    cache: bool,
    threads: usize,
    policy: Policy,
) -> RunRecord {
    let mut cfg =
        if threads <= 1 { LocalConfig::sequential() } else { LocalConfig::with_threads(threads) }
            .sweep_mode(mode);
    cfg.parallel = cfg.parallel.policy(policy);
    if !cache {
        cfg = cfg.without_container_cache();
    }
    // Report what the sweep will actually use: spaces whose layout is
    // already flat (e.g. the core space) opt out of the cache regardless
    // of budget, so "flat" would be a lie for them.
    let cache_active = cache
        && space.prefers_flat_cache()
        && FlatContainers::estimate_bytes(space) <= DEFAULT_CONTAINER_CACHE_BUDGET;
    let start = Instant::now();
    let r = and(space, &cfg, &Order::Natural);
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    RunRecord {
        space: space.name(),
        mode: mode_name(mode),
        cache: if cache_active { "flat" } else { "walk" },
        threads,
        policy: if threads <= 1 {
            "sequential"
        } else if mode == SweepMode::Frontier {
            // The parallel frontier is the barrier-free continuous drain;
            // chunk hand-out policy does not apply to it.
            "drain"
        } else {
            match policy {
                Policy::Dynamic => "dynamic",
                Policy::Static => "static",
            }
        },
        sweeps: r.sweeps,
        converged: r.converged,
        processed: r.scheduler.items_processed,
        skipped: r.scheduler.items_skipped,
        total_chunks: r.scheduler.total_chunks(),
        wall_ms,
        kappa_exact: r.tau == exact,
    }
}

fn bench_space<S: CliqueSpace>(space: &S, records: &mut Vec<RunRecord>) {
    let exact = peel(space).kappa;
    // Scheduling ablation (sequential, cached where the space allows it).
    for mode in [SweepMode::Frontier, SweepMode::FlagScan, SweepMode::FullScan] {
        records.push(run_one(space, &exact, mode, true, 1, Policy::Dynamic));
    }
    // Cache ablation (frontier, sequential, no cache).
    records.push(run_one(space, &exact, SweepMode::Frontier, false, 1, Policy::Dynamic));
    // Parallel: the barrier-free continuous drain vs the barriered flag
    // scan with dynamic hand-out (the what-does-the-barrier-cost ablation).
    let threads = hdsd_parallel::default_threads().clamp(2, 8);
    records.push(run_one(space, &exact, SweepMode::Frontier, true, threads, Policy::Dynamic));
    records.push(run_one(space, &exact, SweepMode::FlagScan, true, threads, Policy::Dynamic));
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Holme–Kim: preferential attachment with triad closure — a power-law
    // graph whose dense core keeps updating long after the sparse fringe
    // has converged, i.e. exactly the long-tail workload the frontier
    // scheduler targets. ~4 edges per vertex.
    let (n, m_attach, p_triad, seed) =
        if quick { (4_000u32, 4u32, 0.5, 42u64) } else { (30_000, 4, 0.5, 42) };
    let g = hdsd_datasets::holme_kim(n, m_attach, p_triad, seed);
    eprintln!(
        "frontier ablation: holme_kim(n={n}, m={m_attach}, p={p_triad}, seed={seed}) -> {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );
    if !quick {
        assert!(g.num_edges() >= 100_000, "ablation graph must have >= 100k edges");
    }

    let mut records = Vec::new();
    bench_space(&CoreSpace::new(&g), &mut records);
    bench_space(&TrussSpace::precomputed(&g), &mut records);

    // Headline verification: identical κ everywhere, and frontier does at
    // least 2× fewer recomputations than the no-notification full scan.
    for r in &records {
        assert!(r.kappa_exact, "{} [{} {}] diverged from peeling", r.space, r.mode, r.cache);
        assert!(r.converged, "{} [{} {}] did not converge", r.space, r.mode, r.cache);
    }
    let mut comparisons = Vec::new();
    for space in ["(1,2) k-core", "(2,3) k-truss"] {
        // First matching record per mode = the sequential scheduling-
        // ablation run (the cache-ablation rerun comes later).
        let of = |mode: &str| {
            records
                .iter()
                .find(|r| r.space.contains(space) && r.mode == mode && r.threads == 1)
                .unwrap_or_else(|| panic!("missing {space}/{mode} record"))
        };
        let frontier = of("frontier");
        let full = of("full_scan");
        let ratio = full.processed as f64 / frontier.processed.max(1) as f64;
        eprintln!(
            "{space}: frontier {} recomputations vs full-scan {} ({ratio:.2}x fewer), {:.1} ms vs {:.1} ms",
            frontier.processed, full.processed, frontier.wall_ms, full.wall_ms
        );
        assert!(
            ratio >= 2.0,
            "{space}: frontier must do >=2x fewer recomputations (got {ratio:.2}x)"
        );
        comparisons.push((space, frontier.processed, full.processed, ratio));
    }

    // Emit the JSON document.
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"bench\": \"frontier\",");
    let _ = writeln!(
        out,
        "  \"graph\": {{\"generator\": \"holme_kim\", \"n\": {n}, \"m_attach\": {m_attach}, \
         \"p_triad\": {p_triad}, \"seed\": {seed}, \"vertices\": {}, \"edges\": {}}},",
        g.num_vertices(),
        g.num_edges()
    );
    out.push_str("  \"runs\": [\n");
    for (k, r) in records.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"space\": \"{}\", \"mode\": \"{}\", \"cache\": \"{}\", \"threads\": {}, \
             \"policy\": \"{}\", \"sweeps\": {}, \"converged\": {}, \"processed\": {}, \
             \"skipped\": {}, \"chunks\": {}, \"wall_ms\": {:.3}, \"kappa_exact\": {}}}{}",
            json_escape(&r.space),
            r.mode,
            r.cache,
            r.threads,
            r.policy,
            r.sweeps,
            r.converged,
            r.processed,
            r.skipped,
            r.total_chunks,
            r.wall_ms,
            r.kappa_exact,
            if k + 1 < records.len() { "," } else { "" }
        );
    }
    out.push_str("  ],\n");
    out.push_str("  \"frontier_vs_full_scan\": [\n");
    for (k, (space, fp, xp, ratio)) in comparisons.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"space\": \"{}\", \"frontier_processed\": {fp}, \"full_scan_processed\": {xp}, \
             \"ratio\": {ratio:.3}}}{}",
            json_escape(space),
            if k + 1 < comparisons.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");

    // Quick mode is a smoke test; only full-size runs may overwrite the
    // tracked trend artifact.
    let path = if quick {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_frontier.quick.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_frontier.json")
    };
    std::fs::write(path, &out).expect("write frontier ablation JSON");
    eprintln!("wrote {path}");
}
