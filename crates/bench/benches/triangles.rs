//! Substrate benchmarks: triangle counting/listing and 4-clique counting,
//! the fixed costs every (2,3) / (3,4) decomposition pays up front.

use criterion::{criterion_group, criterion_main, Criterion};
use hdsd_datasets::Dataset;
use hdsd_graph::{count_triangles_per_edge, total_k4, total_triangles, K4List, TriangleList};

fn bench_substrate(c: &mut Criterion) {
    let g = Dataset::Fb.generate(0.25);
    let mut group = c.benchmark_group("substrate_fb_quarter");
    group.bench_function("triangle_count_per_edge", |b| {
        b.iter(|| count_triangles_per_edge(std::hint::black_box(&g)))
    });
    group
        .bench_function("triangle_total", |b| b.iter(|| total_triangles(std::hint::black_box(&g))));
    group.bench_function("triangle_list_build", |b| {
        b.iter(|| TriangleList::build(std::hint::black_box(&g)))
    });
    group.bench_function("k4_total", |b| b.iter(|| total_k4(std::hint::black_box(&g))));
    let tl = TriangleList::build(&g);
    group.bench_function("k4_list_build", |b| {
        b.iter(|| K4List::build(std::hint::black_box(&g), std::hint::black_box(&tl)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_substrate
}
criterion_main!(benches);
