//! Micro-benchmarks of the h-index kernels (§4.4): the linear-time
//! counting kernel vs the sort-based reference, and the plateau shortcut.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hdsd_hindex::{h_index_sorted_ref, preserves_h, HBuffer};

fn pseudo_values(n: usize, seed: u64) -> Vec<u32> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) % (n as u64 + 1)) as u32
        })
        .collect()
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("hindex");
    for &n in &[16usize, 256, 4096] {
        let vals = pseudo_values(n, 42);
        group.bench_with_input(BenchmarkId::new("sorted_ref", n), &vals, |b, v| {
            b.iter(|| h_index_sorted_ref(std::hint::black_box(v)))
        });
        group.bench_with_input(BenchmarkId::new("counting_buffer", n), &vals, |b, v| {
            let mut buf = HBuffer::with_capacity(n);
            b.iter(|| buf.compute(std::hint::black_box(v)))
        });
        let h = h_index_sorted_ref(&vals);
        group.bench_with_input(BenchmarkId::new("preserve_check", n), &vals, |b, v| {
            b.iter(|| preserves_h(std::hint::black_box(v).iter().copied(), h))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernels
}
criterion_main!(benches);
