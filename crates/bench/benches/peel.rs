//! Exact-path peeling benchmark: the flat engine vs the container walk
//! vs the barrier-free parallel drain.
//!
//! For each space (core, truss, (3,4) nucleus) on the 20k-vertex serving
//! graph, measures the sequential exact peel through both engines —
//! [`peel_walk`] over the space's container callbacks vs [`peel_flat`]
//! over a prebuilt [`FlatContainers`] cache (the serving scenario: the
//! engine-resident `CachedSpace` always has the rows materialized) — plus
//! the reusable [`PeelEngine`] form and the barrier-free parallel drain
//! ([`peel_parallel_flat`], workers claiming bucket chunks from a shared
//! cursor with no per-level barrier). The cache build cost is reported
//! separately so the cold path (build + flat) is reconstructable from
//! the artifact.
//!
//! Every run asserts bit-identical results (κ, order, counters) between
//! the sequential engines, and that the parallel drain reproduces κ and
//! the closed-form work counters exactly. The JSON records the counters
//! the CI gate pins plus the drain telemetry (chunks claimed, steals,
//! stale retries, epilogue items) and the parallel speedup the gate
//! floors (`scripts/bench_gate.py --kind peel`).
//!
//! Run with `cargo bench -p hdsd-bench --bench peel` (append `-- --quick`
//! for the smoke-test size; quick mode writes to `target/`).

use std::fmt::Write as _;
use std::time::Instant;

use hdsd_nucleus::{
    peel_flat, peel_parallel_flat, peel_walk, CliqueSpace, CoreSpace, DrainStats, FlatContainers,
    Nucleus34Space, PeelEngine, PeelResult, TrussSpace,
};
use hdsd_parallel::ParallelConfig;

struct SpaceRecord {
    space: &'static str,
    cliques: usize,
    max_kappa: u32,
    cache_build_ms: f64,
    walk_ms: f64,
    flat_ms: f64,
    flat_engine_ms: f64,
    par_flat_ms: f64,
    drain: DrainStats,
    containers_scanned: u64,
    dead_containers: u64,
    bucket_moves: u64,
    kappa_identical: bool,
    counters_match: bool,
}

/// Best-of-`reps` wall time of `f`, returning the last result.
fn time_best<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (best, out.unwrap())
}

fn bench_space<S: CliqueSpace>(
    name: &'static str,
    space: &S,
    reps: usize,
    threads: usize,
) -> SpaceRecord {
    let (cache_build_ms, flat) = time_best(reps, || FlatContainers::build(space));

    let (walk_ms, walk) = time_best(reps, || peel_walk(space));
    let (flat_ms, flat_r) = time_best(reps, || peel_flat(&flat));
    let mut engine = PeelEngine::new();
    engine.peel(&flat); // warm the scratch before timing the reusable form
    let (flat_engine_ms, engine_r) = time_best(reps, || engine.peel(&flat));

    let cfg = ParallelConfig::with_threads(threads);
    // Warm the canonical container keys (lazily built, shared across runs)
    // so the drain timing measures the drain, not the one-time key setup.
    flat.container_keys();
    let (par_flat_ms, par_flat) = time_best(reps, || peel_parallel_flat(&flat, cfg));

    let same = |r: &PeelResult| {
        r.kappa == walk.kappa && r.order == walk.order && r.max_kappa == walk.max_kappa
    };
    // The parallel drain emits the canonical (κ, id) order rather than the
    // historical bucket-queue order, so only κ/counters are compared there.
    let kappa_identical = same(&flat_r) && same(&engine_r) && par_flat.kappa == walk.kappa;
    let counters_match =
        flat_r.stats == walk.stats && engine_r.stats == walk.stats && par_flat.stats == walk.stats;
    assert!(kappa_identical, "{name}: engines disagree on the exact decomposition");
    assert!(counters_match, "{name}: flat/walk/parallel work counters diverged");

    SpaceRecord {
        space: name,
        cliques: space.num_cliques(),
        max_kappa: walk.max_kappa,
        cache_build_ms,
        walk_ms,
        flat_ms,
        flat_engine_ms,
        par_flat_ms,
        drain: par_flat.drain.unwrap_or_default(),
        containers_scanned: walk.stats.containers_scanned,
        dead_containers: walk.stats.dead_containers,
        bucket_moves: walk.stats.bucket_moves,
        kappa_identical,
        counters_match,
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Denser than the serving bench graph (no thinning, higher closure
    // probability): the (3,4) space needs real K4 structure to measure.
    let (n, m_attach, closure) = if quick { (2_000u32, 6u32, 0.8) } else { (20_000, 8, 0.8) };
    let reps = if quick { 3 } else { 5 };
    let cores = std::thread::available_parallelism().map(|c| c.get()).unwrap_or(1);
    let threads = hdsd_parallel::default_threads().min(8);
    let g = hdsd_datasets::holme_kim(n, m_attach, closure, 7);
    eprintln!(
        "peel bench graph: {} vertices, {} edges, {} threads ({} cores) for the parallel drain",
        g.num_vertices(),
        g.num_edges(),
        threads,
        cores
    );

    let records = vec![
        bench_space("core", &CoreSpace::new(&g), reps, threads),
        bench_space("truss", &TrussSpace::precomputed(&g), reps, threads),
        bench_space("nucleus34", &Nucleus34Space::precomputed(&g), reps, threads),
    ];

    for r in &records {
        eprintln!(
            "peel {}: walk {:.2} ms vs flat {:.2} ms ({:.2}x; engine {:.2} ms, cache build \
             {:.2} ms) | parallel drain {:.2} ms ({:.2}x vs flat) | {} containers, {} dead, \
             {} bucket moves | drain: {} chunks, {} steals, {} stale retries, {} epilogue",
            r.space,
            r.walk_ms,
            r.flat_ms,
            r.walk_ms / r.flat_ms.max(1e-9),
            r.flat_engine_ms,
            r.cache_build_ms,
            r.par_flat_ms,
            r.flat_ms / r.par_flat_ms.max(1e-9),
            r.containers_scanned,
            r.dead_containers,
            r.bucket_moves,
            r.drain.chunks_claimed,
            r.drain.steals,
            r.drain.stale_retries,
            r.drain.epilogue_items,
        );
    }

    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(
        out,
        "  \"graph\": {{\"generator\": \"holme_kim\", \"n\": {n}, \"m_attach\": {m_attach}, \
         \"closure\": {closure}, \"vertices\": {}, \"edges\": {}}},",
        g.num_vertices(),
        g.num_edges()
    );
    let _ = writeln!(out, "  \"threads\": {threads},");
    let _ = writeln!(out, "  \"cores\": {cores},");
    out.push_str("  \"spaces\": [\n");
    for (i, r) in records.iter().enumerate() {
        let _ = writeln!(
            out,
            "    {{\"space\": \"{}\", \"cliques\": {}, \"max_kappa\": {}, \
             \"cache_build_ms\": {:.3}, \"walk_ms\": {:.3}, \"flat_ms\": {:.3}, \
             \"flat_engine_ms\": {:.3}, \"speedup_flat_vs_walk\": {:.3}, \
             \"par_flat_ms\": {:.3}, \"speedup_par_vs_flat\": {:.3}, \
             \"drain_chunks_claimed\": {}, \"drain_steals\": {}, \
             \"drain_stale_retries\": {}, \"drain_epilogue_items\": {}, \
             \"containers_scanned\": {}, \"dead_containers\": {}, \"bucket_moves\": {}, \
             \"kappa_identical\": {}, \"counters_match\": {}}}{}",
            r.space,
            r.cliques,
            r.max_kappa,
            r.cache_build_ms,
            r.walk_ms,
            r.flat_ms,
            r.flat_engine_ms,
            r.walk_ms / r.flat_ms.max(1e-9),
            r.par_flat_ms,
            r.flat_ms / r.par_flat_ms.max(1e-9),
            r.drain.chunks_claimed,
            r.drain.steals,
            r.drain.stale_retries,
            r.drain.epilogue_items,
            r.containers_scanned,
            r.dead_containers,
            r.bucket_moves,
            r.kappa_identical,
            r.counters_match,
            if i + 1 < records.len() { "," } else { "" }
        );
    }
    out.push_str("  ]\n}\n");

    // Quick mode is a smoke test; only full-size runs may overwrite the
    // tracked trend artifact.
    let path = if quick {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../target/BENCH_peel.quick.json")
    } else {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_peel.json")
    };
    std::fs::write(path, &out).expect("write peel bench JSON");
    eprintln!("wrote {path}");
}
