#![warn(missing_docs)]
//! # hdsd-bench
//!
//! The reproduction harness: one subcommand per table/figure of the paper
//! (see `src/bin/repro.rs`) plus criterion micro-benchmarks under
//! `benches/`. This library holds the shared plumbing: environment
//! parsing, wall-clock timing, and plain-text table rendering so every
//! experiment prints rows comparable to the paper's.

pub mod experiments;

use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Runtime knobs shared by all experiments.
#[derive(Clone, Debug)]
pub struct Env {
    /// Dataset scale factor (1.0 = default laptop scale).
    pub scale: f64,
    /// Maximum worker threads for parallel runs.
    pub threads: usize,
    /// Directory searched for original SNAP files before falling back to
    /// synthetic stand-ins.
    pub data_dir: PathBuf,
}

impl Default for Env {
    fn default() -> Self {
        Env {
            scale: std::env::var("HDSD_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(0.25),
            threads: hdsd_parallel::default_threads(),
            data_dir: std::env::var("HDSD_DATA_DIR")
                .map(PathBuf::from)
                .unwrap_or_else(|_| PathBuf::from("data")),
        }
    }
}

impl Env {
    /// Parses `--scale X`, `--threads N`, `--data-dir D` from an argument
    /// list, returning the env and the remaining positional arguments.
    pub fn from_args(args: &[String]) -> (Env, Vec<String>) {
        let mut env = Env::default();
        let mut rest = Vec::new();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    env.scale = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(env.scale);
                }
                "--threads" => {
                    i += 1;
                    env.threads = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(env.threads);
                }
                "--data-dir" => {
                    i += 1;
                    if let Some(d) = args.get(i) {
                        env.data_dir = PathBuf::from(d);
                    }
                }
                other => rest.push(other.to_string()),
            }
            i += 1;
        }
        (env, rest)
    }

    /// Loads a dataset honoring the data dir and scale.
    pub fn load(&self, d: hdsd_datasets::Dataset) -> hdsd_graph::CsrGraph {
        d.load_or_generate(&self.data_dir, self.scale)
    }
}

/// Runs `f` once, returning its result and wall time.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Runs `f` `reps` times, returning the last result and the minimum wall
/// time (minimum is the standard noise-robust point estimate).
pub fn time_best<T>(reps: usize, mut f: impl FnMut() -> T) -> (T, Duration) {
    assert!(reps >= 1);
    let mut best = Duration::MAX;
    let mut out = None;
    for _ in 0..reps {
        let (t, d) = time(&mut f);
        best = best.min(d);
        out = Some(t);
    }
    (out.unwrap(), best)
}

/// Milliseconds with two decimals, right-aligned to 10 chars.
pub fn ms(d: Duration) -> String {
    format!("{:>10.2}", d.as_secs_f64() * 1e3)
}

/// Human-formatted count (12.3K / 4.5M / 1.2B).
pub fn human(n: u64) -> String {
    let f = n as f64;
    if f >= 1e9 {
        format!("{:.1}B", f / 1e9)
    } else if f >= 1e6 {
        format!("{:.1}M", f / 1e6)
    } else if f >= 1e3 {
        format!("{:.1}K", f / 1e3)
    } else {
        format!("{n}")
    }
}

/// A fixed-width plain-text table writer.
pub struct Table {
    widths: Vec<usize>,
}

impl Table {
    /// Creates a table and prints the header row.
    pub fn new(headers: &[(&str, usize)]) -> Self {
        let widths: Vec<usize> = headers.iter().map(|&(_, w)| w).collect();
        let mut line = String::new();
        for ((h, _), w) in headers.iter().zip(&widths) {
            line.push_str(&format!("{:>width$}  ", h, width = w));
        }
        println!("{line}");
        println!("{}", "-".repeat(line.len().min(120)));
        Table { widths }
    }

    /// Prints one row.
    pub fn row(&self, cells: &[String]) {
        let mut line = String::new();
        for (c, w) in cells.iter().zip(&self.widths) {
            line.push_str(&format!("{:>width$}  ", c, width = w));
        }
        println!("{line}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_parses_flags() {
        let args: Vec<String> =
            ["--scale", "0.5", "f1a", "--threads", "3", "--data-dir", "/tmp/x", "extra"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let (env, rest) = Env::from_args(&args);
        assert_eq!(env.scale, 0.5);
        assert_eq!(env.threads, 3);
        assert_eq!(env.data_dir, PathBuf::from("/tmp/x"));
        assert_eq!(rest, vec!["f1a".to_string(), "extra".to_string()]);
    }

    #[test]
    fn human_formatting() {
        assert_eq!(human(12), "12");
        assert_eq!(human(1_200), "1.2K");
        assert_eq!(human(3_400_000), "3.4M");
        assert_eq!(human(9_900_000_000), "9.9B");
    }

    #[test]
    fn time_best_runs_reps() {
        let mut count = 0;
        let (v, d) = time_best(3, || {
            count += 1;
            count
        });
        assert_eq!(v, 3);
        assert!(d <= Duration::from_secs(1));
    }
}
