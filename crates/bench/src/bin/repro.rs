//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! cargo run --release -p hdsd-bench --bin repro -- <experiment> [flags]
//!
//! experiments:
//!   t3       Table 3   dataset statistics
//!   f1a      Fig. 1a   k-truss convergence rate (Kendall-τ per iteration)
//!   f6       Fig. 6    same for k-core and the (3,4) nucleus
//!   f1b      Fig. 1b   thread-scalability vs partially-parallel peeling
//!   toys     Figs. 2–4 worked toy examples, step by step
//!   f5       Fig. 5    τ trajectories / plateaus on facebook
//!   t4       Table 4   k-core:   iterations + runtimes vs peeling
//!   t5       Table 5   k-truss:  iterations + runtimes vs peeling
//!   t6       Table 6   (3,4):    iterations + runtimes vs peeling
//!   f7       Fig. 7    accuracy-vs-runtime trade-off curves
//!   f8       Fig. 8    notification-mechanism ablation
//!   f9       Fig. 9    query-driven local estimation
//!   levels   §3.1      degree-level bound vs observed iterations
//!   hier     §1/§2     hierarchy quality: core vs truss vs (3,4)
//!   all      everything above, in order
//!
//! flags:
//!   --scale X      dataset scale factor        (default $HDSD_SCALE or 0.25)
//!   --threads N    max worker threads          (default $HDSD_THREADS or #cpus)
//!   --data-dir D   original SNAP files dir     (default ./data)
//! ```

use hdsd_bench::experiments::{f1a, f1b, f5, f7, f8, f9, hier, levels, t3, tables456, toys};
use hdsd_bench::Env;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (env, rest) = Env::from_args(&args);
    let exp = rest.first().map(String::as_str).unwrap_or("help");

    let t0 = std::time::Instant::now();
    match exp {
        "t3" => t3::run(&env),
        "f1a" => run_f1a(&env),
        "f6" => run_f6(&env),
        "f1b" => f1b::run(&env),
        "toys" => toys::run(&env),
        "f5" => f5::run(&env),
        "t4" => tables456::run(&env, tables456::Which::Core),
        "t5" => tables456::run(&env, tables456::Which::Truss),
        "t6" => tables456::run(&env, tables456::Which::Nucleus34),
        "f7" => f7::run(&env),
        "f8" => f8::run(&env),
        "f9" => f9::run(&env),
        "levels" => levels::run(&env),
        "hier" => hier::run(&env),
        "all" => {
            for (name, f) in EXPERIMENTS {
                banner(name);
                f(&env);
            }
        }
        "help" | "--help" | "-h" => {
            print!("{}", HELP);
            return;
        }
        other => {
            eprintln!("unknown experiment {other:?}\n");
            print!("{}", HELP);
            std::process::exit(2);
        }
    }
    eprintln!("\n[{exp} finished in {:.1}s]", t0.elapsed().as_secs_f64());
}

type Runner = fn(&Env);

const EXPERIMENTS: &[(&str, Runner)] = &[
    ("t3", t3::run as Runner),
    ("toys", toys::run as Runner),
    ("f1a", run_f1a as Runner),
    ("f6", run_f6 as Runner),
    ("f1b", f1b::run as Runner),
    ("f5", f5::run as Runner),
    ("t4", run_t4 as Runner),
    ("t5", run_t5 as Runner),
    ("t6", run_t6 as Runner),
    ("f7", f7::run as Runner),
    ("f8", f8::run as Runner),
    ("f9", f9::run as Runner),
    ("levels", levels::run as Runner),
    ("hier", hier::run as Runner),
];

fn run_f1a(env: &Env) {
    fail_clean(f1a::run(env, "truss"));
}
fn run_f6(env: &Env) {
    fail_clean(f1a::run(env, "core"));
    println!();
    fail_clean(f1a::run(env, "34"));
}

/// Prints a convergence-experiment error and exits non-zero instead of
/// unwinding through the bench harness.
fn fail_clean(r: Result<(), String>) {
    if let Err(e) = r {
        eprintln!("repro: {e}");
        std::process::exit(2);
    }
}
fn run_t4(env: &Env) {
    tables456::run(env, tables456::Which::Core);
}
fn run_t5(env: &Env) {
    tables456::run(env, tables456::Which::Truss);
}
fn run_t6(env: &Env) {
    tables456::run(env, tables456::Which::Nucleus34);
}

fn banner(name: &str) {
    println!("\n{}", "=".repeat(78));
    println!("==  {name}");
    println!("{}\n", "=".repeat(78));
}

const HELP: &str = r#"repro — regenerate the paper's tables and figures

usage: repro <experiment> [--scale X] [--threads N] [--data-dir D]

experiments:
  t3      Table 3   dataset statistics (|V| |E| |tri| |K4|)
  f1a     Fig. 1a   k-truss convergence rate (Kendall-tau per iteration)
  f6      Fig. 6    convergence rate for k-core and (3,4)
  f1b     Fig. 1b   thread scalability vs partially-parallel peeling
  toys    Figs 2-4  worked toy examples
  f5      Fig. 5    tau trajectories / plateaus on facebook
  t4      Table 4   k-core iterations + runtimes
  t5      Table 5   k-truss iterations + runtimes
  t6      Table 6   (3,4) nucleus iterations + runtimes
  f7      Fig. 7    accuracy vs runtime trade-off
  f8      Fig. 8    notification ablation
  f9      Fig. 9    query-driven estimation
  levels  sec. 3.1  degree-level convergence bound
  hier    sec. 1-2  hierarchy quality comparison
  all     run everything
"#;
