//! §3.1: degree levels — the Theorem-3 convergence bound measured on real
//! (stand-in) graphs: number of levels vs observed Snd iterations, plus
//! level-distribution statistics.

use hdsd_datasets::ALL_DATASETS;
use hdsd_metrics::histogram;
use hdsd_nucleus::{degree_levels, snd, CliqueSpace, CoreSpace, LocalConfig, TrussSpace};

use crate::{human, Env, Table};

/// Regenerates the degree-level analysis.
pub fn run(env: &Env) {
    println!("§3.1 — degree levels: the convergence bound vs observed iterations\n");
    let t = Table::new(&[
        ("dataset", 10),
        ("space", 7),
        ("|R|", 9),
        ("levels", 7),
        ("snd-iters", 10),
        ("bound-gap", 10),
        ("mean-lvl", 9),
        ("p99-lvl", 8),
    ]);
    for d in ALL_DATASETS {
        let g = env.load(d);
        {
            let sp = CoreSpace::new(&g);
            row(&t, d.short_name(), "core", &sp);
        }
        if d.k34_feasible() {
            let sp = TrussSpace::precomputed(&g);
            row(&t, d.short_name(), "truss", &sp);
        }
    }
    println!("\nPaper point: the level count is a dramatically tighter bound than the");
    println!("trivial |R(G)| bound, and observed iterations sit well below even that.");
}

fn row<S: CliqueSpace>(t: &Table, name: &str, space_label: &str, space: &S) {
    let lv = degree_levels(space);
    let r = snd(space, &LocalConfig::default());
    assert!(r.iterations_to_converge() <= lv.snd_iteration_bound().max(1));
    let h = histogram(lv.level.iter().copied());
    t.row(&[
        name.to_string(),
        space_label.to_string(),
        human(space.num_cliques() as u64),
        format!("{}", lv.num_levels),
        format!("{}", r.iterations_to_converge()),
        format!("{:.2}x", lv.num_levels as f64 / r.iterations_to_converge().max(1) as f64),
        format!("{:.1}", h.mean()),
        format!("{}", h.percentile(0.99)),
    ]);
}
