//! Figure 1b: scalability — runtime of parallel And (k-truss) across
//! thread counts, reported as speedup over the partially-parallel peeling
//! baseline running with the maximum thread count (the paper's
//! "Peeling-24t" reference line; here the host maximum stands in for 24).
//!
//! The paper's thread axis {4, 6, 12, 24} maps to {1, 2, 4, max} here;
//! on a single-core container the sweep is honest but flat — see
//! EXPERIMENTS.md for the hardware note.

use hdsd_datasets::SCALABILITY_SET;
use hdsd_nucleus::{and, peel_parallel, LocalConfig, Order, TrussSpace};
use hdsd_parallel::ParallelConfig;

use crate::{ms, time_best, Env, Table};

/// Regenerates the Figure 1b table.
pub fn run(env: &Env) {
    let max_threads = env.threads.max(1);
    let sweep: Vec<usize> = [1usize, 2, 4, max_threads]
        .into_iter()
        .filter(|&t| t <= max_threads)
        .collect::<std::collections::BTreeSet<_>>()
        .into_iter()
        .collect();
    println!(
        "Figure 1b — k-truss scalability: And speedup over Peeling-{max_threads}t (threads: {sweep:?})\n"
    );

    let mut headers: Vec<(&str, usize)> = vec![("dataset", 10), ("peel-ms", 10)];
    let labels: Vec<String> = sweep.iter().map(|t| format!("and-{t}t")).collect();
    for l in &labels {
        headers.push((l.as_str(), 10));
    }
    let mut speedup_headers: Vec<String> = sweep.iter().map(|t| format!("spd-{t}t")).collect();
    for l in &speedup_headers {
        headers.push((l.as_str(), 8));
    }
    let t = Table::new(&headers);

    // Dedup the scalability set (the paper's FRI slot maps onto SLJ).
    let mut seen = std::collections::HashSet::new();
    for d in SCALABILITY_SET {
        if !seen.insert(d.short_name()) {
            continue;
        }
        let g = env.load(d);
        let space = TrussSpace::precomputed(&g);
        let (_, peel_time) =
            time_best(2, || peel_parallel(&space, ParallelConfig::with_threads(max_threads)));
        let mut row = vec![d.short_name().to_string(), ms(peel_time)];
        let mut speeds = Vec::new();
        for &threads in &sweep {
            let (_, and_time) =
                time_best(2, || and(&space, &LocalConfig::with_threads(threads), &Order::Natural));
            row.push(ms(and_time));
            speeds.push(format!("{:.2}x", peel_time.as_secs_f64() / and_time.as_secs_f64()));
        }
        row.extend(speeds);
        t.row(&row);
    }
    speedup_headers.clear();
    println!("\nPaper shape: local And beats the partially-parallel peeling baseline and");
    println!("scales with threads (the paper reports 4.8x from 4→24 threads on average).");
}
