//! Figure 1a (and Figure 6): convergence rate — Kendall-Tau between the
//! iteration-t τ values and the exact κ indices, per iteration, on the
//! five convergence datasets. Figure 1a is the k-truss instance; passing
//! `core` or `34` regenerates the Figure-6 variants.

use hdsd_datasets::CONVERGENCE_SET;
use hdsd_metrics::kendall_tau_b;
use hdsd_nucleus::{peel, snd_with_observer, CoreSpace, LocalConfig, Nucleus34Space, TrussSpace};

use crate::{Env, Table};

/// Regenerates the convergence-rate series for one decomposition
/// (`which` ∈ {"core", "truss", "34"}). Returns an error on an unknown
/// decomposition name so bench binaries can fail cleanly instead of
/// panicking.
pub fn run(env: &Env, which: &str) -> Result<(), String> {
    if !matches!(which, "core" | "truss" | "34") {
        return Err(format!("unknown decomposition {which:?} (use core|truss|34)"));
    }
    println!("Figure 1a — convergence rate (Kendall-τ vs iterations), {which} decomposition\n");
    let mut series: Vec<(String, Vec<f64>)> = Vec::new();
    for d in CONVERGENCE_SET {
        if which == "34" && !d.k34_feasible() {
            continue;
        }
        let g = env.load(d);
        let kts = match which {
            "core" => {
                let sp = CoreSpace::new(&g);
                trace(&sp)
            }
            "truss" => {
                let sp = TrussSpace::precomputed(&g);
                trace(&sp)
            }
            _ => {
                let sp = Nucleus34Space::precomputed(&g);
                trace(&sp)
            }
        };
        series.push((d.short_name().to_string(), kts));
    }

    let max_iters = series.iter().map(|(_, s)| s.len()).max().unwrap_or(0);
    let mut headers: Vec<(&str, usize)> = vec![("iter", 5)];
    for (name, _) in &series {
        headers.push((name.as_str(), 8));
    }
    let t = Table::new(&headers);
    for it in 0..max_iters {
        let mut row = vec![format!("{}", it + 1)];
        for (_, kts) in &series {
            row.push(match kts.get(it) {
                Some(v) => format!("{v:.4}"),
                None => "·".to_string(), // already converged
            });
        }
        t.row(&row);
    }
    println!("\nPaper shape: τ ranking is ~exact (Kendall-τ ≈ 1.0) within ~10 iterations");
    println!("on every graph, long before full convergence.");
    Ok(())
}

fn trace<S: hdsd_nucleus::CliqueSpace>(space: &S) -> Vec<f64> {
    let exact = peel(space).kappa;
    let mut kts = Vec::new();
    snd_with_observer(space, &LocalConfig::default(), &mut |ev| {
        kts.push(kendall_tau_b(ev.tau, &exact));
    });
    kts
}
