//! Figure 5: τ trajectories of sampled edges during the k-truss
//! decomposition of facebook, showing the plateaus that motivate the
//! notification mechanism.

use hdsd_datasets::Dataset;
use hdsd_nucleus::{peel, snd_with_observer, CliqueSpace, LocalConfig, TrussSpace};

use crate::{Env, Table};

/// Regenerates the Figure 5 trajectory table.
pub fn run(env: &Env) {
    println!("Figure 5 — τ trajectories of sampled edges (k-truss on fb stand-in)\n");
    let g = env.load(Dataset::Fb);
    let space = TrussSpace::precomputed(&g);
    let exact = peel(&space).kappa;

    // Sample edges with diverse final truss numbers and high initial
    // degrees, like the paper's hand-picked examples.
    let mut by_kappa: std::collections::BTreeMap<u32, usize> = std::collections::BTreeMap::new();
    for (e, &k) in exact.iter().enumerate() {
        by_kappa.entry(k).or_insert(e);
    }
    let sample: Vec<usize> = by_kappa.values().rev().take(8).copied().collect();

    let mut trajectories: Vec<Vec<u32>> = vec![Vec::new(); sample.len()];
    // Record τ0 explicitly.
    for (s, &e) in sample.iter().enumerate() {
        trajectories[s].push(space.degree(e));
    }
    snd_with_observer(&space, &LocalConfig::default(), &mut |ev| {
        for (s, &e) in sample.iter().enumerate() {
            trajectories[s].push(ev.tau[e]);
        }
    });

    let mut headers: Vec<(&str, usize)> = vec![("iter", 5)];
    let labels: Vec<String> = sample
        .iter()
        .map(|&e| {
            let (u, v) = g.edge_endpoints(e as u32);
            format!("e({u},{v})")
        })
        .collect();
    for l in &labels {
        headers.push((l.as_str(), 12));
    }
    let t = Table::new(&headers);
    let iters = trajectories[0].len();
    for it in 0..iters {
        let mut row = vec![if it == 0 { "τ0".to_string() } else { format!("{it}") }];
        for traj in &trajectories {
            row.push(format!("{}", traj[it]));
        }
        t.row(&row);
    }
    // Plateau statistics: how much of the trajectory is flat?
    let mut flat = 0usize;
    let mut steps = 0usize;
    for traj in &trajectories {
        for w in traj.windows(2) {
            steps += 1;
            if w[0] == w[1] {
                flat += 1;
            }
        }
    }
    println!(
        "\nplateau fraction across sampled trajectories: {:.1}% of iteration steps",
        100.0 * flat as f64 / steps.max(1) as f64
    );
    println!("(the wide plateaus are the redundant work the notification mechanism skips)");
}
