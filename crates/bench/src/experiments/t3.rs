//! Table 3: dataset statistics — |V|, |E|, |△|, |K4| for every dataset,
//! printed next to the paper's numbers for the original graphs.

use hdsd_datasets::ALL_DATASETS;
use hdsd_graph::{total_k4, total_triangles};

use crate::{human, time, Env, Table};

/// Regenerates Table 3.
pub fn run(env: &Env) {
    println!("Table 3 — dataset statistics (ours = synthetic stand-in at scale {}, paper = original graph)\n", env.scale);
    let t = Table::new(&[
        ("dataset", 18),
        ("|V|", 8),
        ("|E|", 8),
        ("|tri|", 8),
        ("|K4|", 8),
        ("paper |V|", 10),
        ("paper |E|", 10),
        ("paper |tri|", 11),
        ("paper |K4|", 10),
        ("gen+count", 10),
    ]);
    for d in ALL_DATASETS {
        let (g, dur) = time(|| env.load(d));
        let tri = total_triangles(&g);
        // K4 counting is the expensive part on dense graphs; always feasible
        // at stand-in scale.
        let k4 = total_k4(&g);
        let p = d.paper_stats();
        t.row(&[
            d.full_name().to_string(),
            human(g.num_vertices() as u64),
            human(g.num_edges() as u64),
            human(tri),
            human(k4),
            human(p.vertices),
            human(p.edges),
            human(p.triangles),
            human(p.k4),
            format!("{:.1}s", dur.as_secs_f64()),
        ]);
    }
    println!("\nShape check: social stand-ins (fb, ork, tw, hg) are triangle-dense");
    println!("relative to their edge counts, web/topology stand-ins are sparser —");
    println!("matching the ordering in the paper's table.");
}
