//! §1/§2 motivation: hierarchy quality — the (3,4) nucleus decomposition
//! finds denser subgraphs with richer hierarchy than trusses and cores
//! (the claim behind the paper's Figure 3 and its prior-work citations).

use hdsd_datasets::{nested_communities, Dataset, NestedCommunitySpec};
use hdsd_graph::CsrGraph;
use hdsd_nucleus::{
    build_hierarchy, peel, CliqueSpace, CoreSpace, Hierarchy, Nucleus34Space, TrussSpace,
    Vertex13Space,
};

use crate::{Env, Table};

/// Regenerates the hierarchy-quality comparison.
pub fn run(env: &Env) {
    println!("Hierarchy quality — cores vs trusses vs (3,4) nuclei\n");

    println!("== planted nested communities (ground truth: 4 leaves in 2 supers) ==");
    let planted = nested_communities(
        20,
        &[
            NestedCommunitySpec { branching: 2, p: 0.25 },
            NestedCommunitySpec { branching: 2, p: 0.8 },
        ],
        0.02,
        31,
    );
    compare(&planted);

    println!("\n== facebook stand-in ==");
    let fb = env.load(Dataset::Fb);
    compare(&fb);

    println!("\nPaper shape: (3,4) nuclei are the densest and expose the deepest");
    println!("hierarchy; trusses beat cores; density increases toward the leaves.");
}

fn compare(g: &CsrGraph) {
    let t = Table::new(&[
        ("space", 12),
        ("nuclei", 7),
        ("depth", 6),
        ("best-density", 13),
        ("best-|V|", 9),
        ("avg-leaf-density", 17),
    ]);
    {
        let sp = CoreSpace::new(g);
        let kappa = peel(&sp).kappa;
        let h = build_hierarchy(&sp, &kappa);
        report(&t, &sp, g, &h);
    }
    {
        let sp = Vertex13Space::new(g);
        let kappa = peel(&sp).kappa;
        let h = build_hierarchy(&sp, &kappa);
        report(&t, &sp, g, &h);
    }
    {
        let sp = TrussSpace::precomputed(g);
        let kappa = peel(&sp).kappa;
        let h = build_hierarchy(&sp, &kappa);
        report(&t, &sp, g, &h);
    }
    {
        let sp = Nucleus34Space::precomputed(g);
        let kappa = peel(&sp).kappa;
        let h = build_hierarchy(&sp, &kappa);
        report(&t, &sp, g, &h);
    }
}

fn report<S: CliqueSpace>(t: &Table, space: &S, g: &CsrGraph, h: &Hierarchy) {
    // Best-density nucleus with at least 6 vertices (trivial near-cliques
    // of 3-4 vertices would otherwise always win with density 1).
    let mut best_density = 0.0f64;
    let mut best_v = 0usize;
    let mut leaf_density_sum = 0.0f64;
    let mut leaf_count = 0usize;
    for id in 0..h.len() as u32 {
        let d = h.node_density(id, space, g);
        if d.vertices >= 6 && d.density > best_density {
            best_density = d.density;
            best_v = d.vertices;
        }
    }
    for id in h.leaves() {
        let d = h.node_density(id, space, g);
        if d.vertices >= 6 {
            leaf_density_sum += d.density;
            leaf_count += 1;
        }
    }
    t.row(&[
        space.name(),
        format!("{}", h.len()),
        format!("{}", h.depth()),
        format!("{best_density:.3}"),
        format!("{best_v}"),
        if leaf_count > 0 {
            format!("{:.3}", leaf_density_sum / leaf_count as f64)
        } else {
            "—".to_string()
        },
    ]);
}
