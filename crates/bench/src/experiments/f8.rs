//! Figure 8 / §4.2.1 ablation: the notification mechanism. Compares And
//! with and without wake flags: identical results, but the notification
//! variant recomputes far fewer r-cliques once plateaus dominate.

use hdsd_datasets::Dataset;
use hdsd_nucleus::{and_with_options, CliqueSpace, CoreSpace, LocalConfig, Order, TrussSpace};

use crate::{ms, time, Env, Table};

/// Regenerates the notification ablation.
pub fn run(env: &Env) {
    println!("Figure 8 — notification-mechanism ablation (And, natural order)\n");
    let t = Table::new(&[
        ("dataset", 9),
        ("space", 9),
        ("notif", 6),
        ("sweeps", 7),
        ("recomputations", 15),
        ("work-saved", 11),
        ("runtime", 11),
    ]);
    for d in [Dataset::Fb, Dataset::Sse, Dataset::Wnd] {
        let g = env.load(d);
        {
            let sp = CoreSpace::new(&g);
            ablate(&t, d.short_name(), "core", &sp);
        }
        {
            let sp = TrussSpace::precomputed(&g);
            ablate(&t, d.short_name(), "truss", &sp);
        }
    }
    println!("\nPaper shape: plateaus dominate late iterations, so skipping idle");
    println!("r-cliques cuts total recomputation by a large factor at equal results.");
}

fn ablate<S: CliqueSpace>(t: &Table, name: &str, space_label: &str, space: &S) {
    let cfg = LocalConfig::default();
    let (with, time_with) =
        time(|| and_with_options(space, &cfg, &Order::Natural, true, &mut |_| {}));
    let (without, time_without) =
        time(|| and_with_options(space, &cfg, &Order::Natural, false, &mut |_| {}));
    assert_eq!(with.tau, without.tau);
    let saved = 1.0 - with.total_processed() as f64 / without.total_processed().max(1) as f64;
    t.row(&[
        name.to_string(),
        space_label.to_string(),
        "on".to_string(),
        format!("{}", with.sweeps),
        format!("{}", with.total_processed()),
        format!("{:.1}%", saved * 100.0),
        ms(time_with),
    ]);
    t.row(&[
        name.to_string(),
        space_label.to_string(),
        "off".to_string(),
        format!("{}", without.sweeps),
        format!("{}", without.total_processed()),
        "—".to_string(),
        ms(time_without),
    ]);
}
