//! Tables 4/5/6: iteration counts and runtimes of Snd and And against the
//! peeling baseline, for (1,2) k-core (Table 4), (2,3) k-truss (Table 5)
//! and the (3,4) nucleus (Table 6), on every dataset.

use hdsd_datasets::{Dataset, ALL_DATASETS};
use hdsd_nucleus::{
    and, peel, snd, CliqueSpace, CoreSpace, LocalConfig, Nucleus34Space, Order, TrussSpace,
};

use crate::{human, ms, time, time_best, Env, Table};

/// Which decomposition table to regenerate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Which {
    /// Table 4 — k-core.
    Core,
    /// Table 5 — k-truss.
    Truss,
    /// Table 6 — (3,4) nucleus.
    Nucleus34,
}

/// Regenerates one of Tables 4/5/6.
pub fn run(env: &Env, which: Which) {
    let (table_no, label) = match which {
        Which::Core => ("4", "(1,2) k-core"),
        Which::Truss => ("5", "(2,3) k-truss"),
        Which::Nucleus34 => ("6", "(3,4) nucleus"),
    };
    println!("Table {table_no} — {label}: Snd/And iterations and runtimes vs peeling\n");
    let t = Table::new(&[
        ("dataset", 10),
        ("|R|", 8),
        ("max-κ", 6),
        ("snd-it", 7),
        ("and-it", 7),
        ("peel-ms", 10),
        ("snd-ms", 10),
        ("and-ms", 10),
        ("and/peel", 9),
    ]);
    for d in ALL_DATASETS {
        if which == Which::Nucleus34 && !d.k34_feasible() {
            continue;
        }
        let g = env.load(d);
        match which {
            Which::Core => {
                let sp = CoreSpace::new(&g);
                row(&t, d, &sp);
            }
            Which::Truss => {
                let sp = TrussSpace::precomputed(&g);
                row(&t, d, &sp);
            }
            Which::Nucleus34 => {
                let (sp, build_time) = time(|| Nucleus34Space::precomputed(&g));
                println!(
                    "  [{}: triangle/K4 materialization {}ms]",
                    d.short_name(),
                    build_time.as_millis()
                );
                row(&t, d, &sp);
            }
        }
    }
    println!("\nPaper shape: And needs fewer iterations than Snd. Sequential");
    println!("full-convergence runtime does not beat exact peeling — the paper's wins");
    println!("come from parallel scaling (Fig. 1b) and early stopping (Fig. 7), both of");
    println!("which peeling cannot offer.");
}

fn row<S: CliqueSpace>(t: &Table, d: Dataset, space: &S) {
    let (exact, peel_time) = time_best(2, || peel(space));
    let (s, snd_time) = time_best(2, || snd(space, &LocalConfig::default()));
    let (a, and_time) = time_best(2, || and(space, &LocalConfig::default(), &Order::Natural));
    assert_eq!(s.tau, exact.kappa, "snd mismatch on {}", d.short_name());
    assert_eq!(a.tau, exact.kappa, "and mismatch on {}", d.short_name());
    t.row(&[
        d.short_name().to_string(),
        human(space.num_cliques() as u64),
        format!("{}", exact.max_kappa),
        format!("{}", s.iterations_to_converge()),
        format!("{}", a.iterations_to_converge()),
        ms(peel_time),
        ms(snd_time),
        ms(and_time),
        format!("{:.2}x", peel_time.as_secs_f64() / and_time.as_secs_f64()),
    ]);
}
