//! Figure 9 / §6: the query-driven scenario — estimating core and truss
//! numbers of query vertices/edges from their local neighborhoods only,
//! sweeping the iteration budget.

use hdsd_datasets::Dataset;
use hdsd_metrics::relative_error_stats;
use hdsd_nucleus::{estimate_core_numbers, estimate_truss_numbers, peel, CoreSpace, TrussSpace};

use crate::{Env, Table};

const NUM_QUERIES: usize = 100;

/// Regenerates the query-driven error sweep.
pub fn run(env: &Env) {
    println!("Figure 9 — query-driven local estimation ({NUM_QUERIES} queries per row)\n");
    for d in [Dataset::Fb, Dataset::Tw] {
        let g = env.load(d);
        println!(
            "== {} ({} vertices, {} edges) ==",
            d.short_name(),
            g.num_vertices(),
            g.num_edges()
        );

        // Core-number queries.
        let core = CoreSpace::new(&g);
        let exact = peel(&core).kappa;
        let queries: Vec<u32> = sample_ids(g.num_vertices(), NUM_QUERIES, 0xC0FE + d as u64);
        let exact_q: Vec<u32> = queries.iter().map(|&q| exact[q as usize]).collect();
        println!("  core-number queries:");
        let t = Table::new(&[
            ("iters", 6),
            ("exact-frac", 11),
            ("mean-rel-err", 13),
            ("max-abs-err", 12),
            ("avg-explored", 13),
        ]);
        for iters in [1usize, 2, 3, 4, 6] {
            let ests = estimate_core_numbers(&g, &queries, iters);
            let vals: Vec<u32> = ests.iter().map(|e| e.estimate).collect();
            let stats = relative_error_stats(&vals, &exact_q);
            let avg_explored =
                ests.iter().map(|e| e.explored).sum::<usize>() as f64 / ests.len() as f64;
            t.row(&[
                format!("{iters}"),
                format!("{:.3}", stats.exact_fraction),
                format!("{:.4}", stats.mean_relative_error),
                format!("{}", stats.max_abs_error),
                format!(
                    "{:.0} ({:.1}%)",
                    avg_explored,
                    100.0 * avg_explored / g.num_vertices() as f64
                ),
            ]);
        }

        // Truss-number queries.
        let truss = TrussSpace::on_the_fly(&g);
        let exact_t = peel(&truss).kappa;
        let equeries: Vec<u32> = sample_ids(g.num_edges(), NUM_QUERIES, 0xBEEF + d as u64);
        let exact_eq: Vec<u32> = equeries.iter().map(|&e| exact_t[e as usize]).collect();
        println!("  truss-number queries:");
        let t = Table::new(&[
            ("iters", 6),
            ("exact-frac", 11),
            ("mean-rel-err", 13),
            ("max-abs-err", 12),
        ]);
        for iters in [1usize, 2, 3, 4] {
            let ests = estimate_truss_numbers(&g, &equeries, iters);
            let vals: Vec<u32> = ests.iter().map(|e| e.estimate).collect();
            let stats = relative_error_stats(&vals, &exact_eq);
            t.row(&[
                format!("{iters}"),
                format!("{:.3}", stats.exact_fraction),
                format!("{:.4}", stats.mean_relative_error),
                format!("{}", stats.max_abs_error),
            ]);
        }
        println!();
    }
    println!("Paper shape: a few local iterations give usable estimates; truss queries");
    println!("converge faster than core queries because triangle neighborhoods are tighter.");
}

/// Deterministic spread-out id sample.
fn sample_ids(n: usize, count: usize, seed: u64) -> Vec<u32> {
    let mut state = seed | 1;
    let mut out = Vec::with_capacity(count);
    let mut seen = std::collections::HashSet::new();
    while out.len() < count.min(n) {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        let id = (state >> 33) as usize % n;
        if seen.insert(id) {
            out.push(id as u32);
        }
    }
    out
}
