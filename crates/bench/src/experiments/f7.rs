//! Figure 7: the runtime/accuracy trade-off — Kendall-τ quality reached as
//! a function of the runtime fraction spent, relative to running the local
//! algorithm to full convergence. This is the capability peeling lacks
//! entirely: its intermediate state carries no global approximation.

use hdsd_datasets::Dataset;
use hdsd_metrics::kendall_tau_b;
use hdsd_nucleus::{peel, snd_with_observer, CliqueSpace, CoreSpace, LocalConfig, TrussSpace};
use std::time::Instant;

use crate::{Env, Table};

/// Regenerates the Figure 7 trade-off curves.
pub fn run(env: &Env) {
    println!("Figure 7 — accuracy vs runtime fraction (Snd, per-iteration checkpoints)\n");
    for d in [Dataset::Fb, Dataset::Sse, Dataset::Tw] {
        let g = env.load(d);
        println!("== {} ==", d.short_name());
        {
            let sp = CoreSpace::new(&g);
            curve("k-core", &sp);
        }
        {
            let sp = TrussSpace::precomputed(&g);
            curve("k-truss", &sp);
        }
        println!();
    }
    println!("Paper shape: ~0.9 Kendall-τ within the first few percent of the full");
    println!("convergence time; the last iterations only chase the final plateau.");
}

fn curve<S: CliqueSpace>(label: &str, space: &S) {
    let exact = peel(space).kappa;
    let start = Instant::now();
    let mut checkpoints: Vec<(f64, f64, usize)> = Vec::new(); // (secs, kt, iter)
    snd_with_observer(space, &LocalConfig::default(), &mut |ev| {
        // Kendall-τ computation excluded from the clock: pause by sampling
        // elapsed first.
        let elapsed = start.elapsed().as_secs_f64();
        let kt = kendall_tau_b(ev.tau, &exact);
        checkpoints.push((elapsed, kt, ev.iteration));
    });
    let total = checkpoints.last().map(|c| c.0).unwrap_or(1.0).max(1e-9);

    println!("  {label}:");
    let t = Table::new(&[("iter", 6), ("time-frac", 10), ("kendall-τ", 10)]);
    // Print a readable subset: every iteration until τ ≥ 0.99, then sparse.
    let mut printed_converged = false;
    for (secs, kt, iter) in &checkpoints {
        let frac = secs / total;
        if *kt < 0.995 || !printed_converged {
            t.row(&[format!("{iter}"), format!("{frac:.3}"), format!("{kt:.4}")]);
            if *kt >= 0.995 {
                printed_converged = true;
            }
        }
    }
    if let Some((_, kt, iter)) = checkpoints.last() {
        t.row(&[format!("{iter}"), "1.000".to_string(), format!("{kt:.4}")]);
    }
}
