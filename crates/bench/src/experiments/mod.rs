//! One module per paper artifact (table/figure). Every module exposes a
//! `run(&Env)` that prints the regenerated rows/series; `repro` dispatches
//! to them by experiment id, and EXPERIMENTS.md records their output
//! alongside the paper's numbers.

pub mod f1a;
pub mod f1b;
pub mod f5;
pub mod f7;
pub mod f8;
pub mod f9;
pub mod hier;
pub mod levels;
pub mod t3;
pub mod tables456;
pub mod toys;
