//! Figures 2–4: the paper's worked toy examples, traced step by step.

use hdsd_nucleus::toys::{
    fig2_core_toy, fig2_kappa_order, fig3_nucleus_toy, fig4_levels_toy, fig5_truss_toy,
};
use hdsd_nucleus::{
    and_with_options, build_hierarchy, degree_levels, peel, snd_with_observer, CliqueSpace,
    CoreSpace, LocalConfig, Nucleus34Space, Order, TrussSpace,
};

use crate::Env;

/// Prints all toy traces.
pub fn run(_env: &Env) {
    fig2();
    fig3();
    fig4();
    fig5();
}

fn fig2() {
    println!("Figure 2 — Snd vs And on the 6-vertex core toy (a..f = 0..5)\n");
    let g = fig2_core_toy();
    let sp = CoreSpace::new(&g);
    println!("  τ0 (degrees)        : {:?}", sp.initial_degrees());
    snd_with_observer(&sp, &LocalConfig::default(), &mut |ev| {
        println!("  Snd τ{}              : {:?}  ({} updates)", ev.iteration, ev.tau, ev.updates);
    });
    let exact = peel(&sp);
    println!("  exact κ (peeling)   : {:?}", exact.kappa);

    for (label, order) in [
        ("And alphabetical", Order::Natural),
        ("And {f,e,a,b,c,d}", Order::Custom(fig2_kappa_order())),
    ] {
        let mut sweeps = Vec::new();
        let r = and_with_options(&sp, &LocalConfig::default(), &order, true, &mut |ev| {
            sweeps.push((ev.tau.to_vec(), ev.updates));
        });
        println!(
            "  {label}: converged in {} updating sweep(s); final {:?}",
            r.iterations_to_converge(),
            r.tau
        );
    }
    println!();
}

fn fig3() {
    println!("Figure 3 — k-truss vs (3,4) nuclei on the 8-vertex toy (a..h = 0..7)\n");
    let g = fig3_nucleus_toy();
    let truss = TrussSpace::precomputed(&g);
    let kt = peel(&truss).kappa;
    println!("  truss numbers per edge:");
    for e in 0..g.num_edges() as u32 {
        let (u, v) = g.edge_endpoints(e);
        print!("  ({u},{v})={}", kt[e as usize]);
    }
    println!("\n");
    let nuc = Nucleus34Space::precomputed(&g);
    let kn = peel(&nuc).kappa;
    let h = build_hierarchy(&nuc, &kn);
    let ones = h.nuclei_at(1);
    println!("  1-(3,4) nuclei found: {}", ones.len());
    for id in ones {
        println!("    vertices {:?}", h.member_vertices(id, &nuc));
    }
    println!("  (paper: two separate nuclei {{a,b,c,d}} and {{c,d,e,f,h}} — not merged,");
    println!("   since no 4-clique carries S-connectivity across the shared edge (c,d))\n");
}

fn fig4() {
    println!("Figure 4 — degree levels on the 7-vertex toy (a..g = 0..6)\n");
    let g = fig4_levels_toy();
    let sp = CoreSpace::new(&g);
    let lv = degree_levels(&sp);
    for (name, v) in ["a", "b", "c", "d", "e", "f", "g"].iter().zip(0..) {
        println!("  level({name}) = {}", lv.level[v as usize]);
    }
    println!(
        "  level sizes: {:?} (paper: L0={{a}}, L1={{b}}, L2={{c,g}}, L3={{d,e,f}})\n",
        lv.level_sizes()
    );
}

fn fig5() {
    println!("Figure 5 companion — first τ update of edge (a,b) in the truss toy\n");
    let g = fig5_truss_toy();
    let sp = TrussSpace::precomputed(&g);
    let ab = g.edge_id(0, 1).unwrap() as usize;
    println!("  d3(ab) = {} triangles", sp.degree(ab));
    let r = hdsd_nucleus::snd(&sp, &LocalConfig::default().max_iterations(1));
    println!("  τ1(ab) = {} (paper walkthrough: H({{4,3,3,2}}) = 3)\n", r.tau[ab]);
}
