//! The barrier-free parallel drain is **deterministic by construction**,
//! and this harness proves it by brute interleaving search: every
//! `(threads, seed)` pair runs the drain under a different seeded schedule
//! — per-worker SplitMix64 jitter streams perturb chunk-claim sizes and
//! inject yields/spins at every claim, item, and push (see
//! [`hdsd_parallel::ScheduleJitter`]) — and κ, the canonical `(κ, id)`
//! order, `max_kappa`, and the closed-form `PeelStats` must come out
//! bit-identical to the sequential bucket queue every single time.
//!
//! Thread counts {1, 2, 4, 8} × `HDSD_DETERMINISM_SEEDS` seeds (default
//! 64; the TSan CI lane lowers it) × four spaces: core, truss,
//! (3,4)-nucleus, and the generic enumerator at (r,s) = (1,3). An
//! adversarial variant additionally stalls one worker at every chunk claim
//! (the failpoint-style [`hdsd_parallel::DrainHooks`]), demonstrating the
//! companion paper's claim (arXiv:1704.00386) that stale reads delay —
//! never corrupt — the drain. The And continuous drain gets the same
//! treatment on τ: exact κ at every thread count.

use hdsd_nucleus::{
    and, peel_flat, peel_parallel_flat_with, CliqueSpace, CoreSpace, FlatContainers, GenericSpace,
    LocalConfig, Nucleus34Space, Order, TrussSpace,
};
use hdsd_parallel::{DrainControl, DrainEvent, DrainHooks, ParallelConfig, ScheduleJitter};

/// Seeds per (space, thread-count) cell; override with
/// `HDSD_DETERMINISM_SEEDS` (the TSan lane runs fewer, slow-props more).
fn num_seeds() -> u64 {
    std::env::var("HDSD_DETERMINISM_SEEDS")
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(64)
}

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// Runs the full seeded-schedule sweep for one space and asserts every
/// run is bit-identical to the sequential reference.
fn check_determinism<S: CliqueSpace>(space: &S) {
    let name = space.name();
    let flat = FlatContainers::build(space);
    let seq = peel_flat(&flat);

    // The canonical parallel order: ids sorted by (κ, id). Schedule-free,
    // so it is the fixed reference every parallel run must reproduce.
    let mut canonical: Vec<u32> = (0..seq.kappa.len() as u32).collect();
    canonical.sort_unstable_by_key(|&i| (seq.kappa[i as usize], i));

    for threads in THREAD_COUNTS {
        for seed in 0..num_seeds() {
            let ctl = DrainControl::seeded(seed);
            let cfg = ParallelConfig::with_threads(threads).chunk(4);
            let r = peel_parallel_flat_with(&flat, cfg, &ctl);
            let tag = format!("{name} threads={threads} seed={seed}");
            assert_eq!(r.kappa, seq.kappa, "{tag}: κ diverged");
            assert_eq!(r.order, canonical, "{tag}: order diverged");
            assert_eq!(r.max_kappa, seq.max_kappa, "{tag}: max κ diverged");
            assert_eq!(r.stats, seq.stats, "{tag}: work counters diverged");
        }
    }
}

#[test]
fn core_peel_is_bit_identical_under_seeded_schedules() {
    let g = hdsd_datasets::holme_kim(400, 4, 0.5, 7);
    check_determinism(&CoreSpace::new(&g));
}

#[test]
fn truss_peel_is_bit_identical_under_seeded_schedules() {
    let g = hdsd_datasets::holme_kim(240, 4, 0.5, 7);
    check_determinism(&TrussSpace::precomputed(&g));
}

#[test]
fn nucleus34_peel_is_bit_identical_under_seeded_schedules() {
    let g = hdsd_datasets::holme_kim(150, 4, 0.7, 7);
    check_determinism(&Nucleus34Space::precomputed(&g));
}

#[test]
fn generic_13_peel_is_bit_identical_under_seeded_schedules() {
    // The generic enumerator at (r,s) = (1,3): triangle containers over
    // vertices, group = binom(3,1) − 1 = 2, but through the dynamic-width
    // dispatch — the drain's runtime-arity path.
    let g = hdsd_datasets::holme_kim(220, 4, 0.6, 7);
    check_determinism(&GenericSpace::new(&g, 1, 3));
}

#[test]
fn stalled_worker_cannot_change_the_result() {
    // Adversarial staleness: worker 1 sleeps at every chunk claim, so the
    // other workers race far ahead and worker 1 keeps acting on stale
    // degree reads. The peeled-position (κ) check makes every stale write
    // attempt harmless: the result stays bit-identical.
    let g = hdsd_datasets::holme_kim(240, 4, 0.5, 9);
    let sp = TrussSpace::precomputed(&g);
    let flat = FlatContainers::build(&sp);
    let seq = peel_flat(&flat);
    let mut canonical: Vec<u32> = (0..seq.kappa.len() as u32).collect();
    canonical.sort_unstable_by_key(|&i| (seq.kappa[i as usize], i));

    for seed in 0..4 {
        let ctl = DrainControl {
            jitter: Some(ScheduleJitter::new(seed)),
            hooks: DrainHooks::with(|worker, event| {
                if worker == 1 && event == DrainEvent::Claim {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            }),
        };
        let r = peel_parallel_flat_with(&flat, ParallelConfig::with_threads(4).chunk(4), &ctl);
        assert_eq!(r.kappa, seq.kappa, "seed={seed}: stalled worker corrupted κ");
        assert_eq!(r.order, canonical, "seed={seed}");
        assert_eq!(r.stats, seq.stats, "seed={seed}");
        let drain = r.drain.expect("parallel run reports drain telemetry");
        assert!(
            drain.chunks_claimed > 0,
            "seed={seed}: the drain must have made parallel progress"
        );
    }
}

#[test]
fn and_continuous_drain_converges_exactly_at_every_thread_count() {
    // The And worklist has no seeded-schedule hook — its drain is *free*
    // asynchrony — but exactness must hold at every thread count and
    // order, certified by the final verification round.
    let g = hdsd_datasets::holme_kim(300, 4, 0.5, 21);
    let core = CoreSpace::new(&g);
    let truss = TrussSpace::precomputed(&g);
    let exact_core = peel_flat(&FlatContainers::build(&core)).kappa;
    let exact_truss = peel_flat(&FlatContainers::build(&truss)).kappa;

    for threads in THREAD_COUNTS {
        for order in [Order::Natural, Order::Reverse, Order::Random(5)] {
            let cfg = LocalConfig::with_threads(threads);
            let rc = and(&core, &cfg, &order);
            assert_eq!(rc.tau, exact_core, "core threads={threads} order={order:?}");
            assert!(rc.converged);
            let rt = and(&truss, &cfg, &order);
            assert_eq!(rt.tau, exact_truss, "truss threads={threads} order={order:?}");
            assert!(rt.converged);
        }
    }
}
