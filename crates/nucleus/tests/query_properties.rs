//! Property tests for query-driven local estimation (the Theorem-1
//! guarantees the serving engine leans on): on random Holme–Kim graphs,
//! for every clique space, `local_estimate` must satisfy
//! `κ(q) ≤ estimate ≤ d_s(q)` and reproduce the global Snd trajectory
//! `τ_t(q)` bit-for-bit.

use hdsd_nucleus::{
    local_estimate, local_estimate_opts, peel, snd_with_observer, CliqueSpace, CoreSpace,
    LocalConfig, Nucleus34Space, QueryOptions, TrussSpace,
};
use proptest::prelude::*;

fn arb_holme_kim() -> impl Strategy<Value = hdsd_graph::CsrGraph> {
    (20u32..70, 2u32..5, 0u32..=100, 0u64..1_000_000)
        .prop_map(|(n, m, p, seed)| hdsd_datasets::holme_kim(n, m, p as f64 / 100.0, seed))
}

/// Exhaustive check of one space: every estimate is bracketed by
/// `[κ(q), d_s(q)]`, matches the global Snd `τ_t(q)` exactly, and the
/// optional lower bound never exceeds κ.
fn check_space<S: CliqueSpace>(space: &S, queries: &[usize], iterations: &[usize]) {
    if space.num_cliques() == 0 {
        return;
    }
    let exact = peel(space).kappa;
    // Record the exact global τ_t snapshots.
    let mut snapshots: Vec<Vec<u32>> = Vec::new();
    snd_with_observer(space, &LocalConfig::sequential(), &mut |ev| {
        snapshots.push(ev.tau.to_vec());
    });
    for &q in queries {
        let q = q % space.num_cliques();
        for &t in iterations {
            let est = local_estimate(space, q, t);
            assert!(
                est.estimate >= exact[q],
                "{}: estimate {} below κ {} at q={q}, t={t}",
                space.name(),
                est.estimate,
                exact[q]
            );
            assert!(
                est.estimate <= space.degree(q),
                "{}: estimate above d_s at q={q}, t={t}",
                space.name()
            );
            assert_eq!(est.degree, space.degree(q));
            // Bit-for-bit: τ_t(q) from the global synchronous run. After
            // global convergence the trajectory is constant.
            let global = match snapshots.get(t.saturating_sub(1)) {
                Some(snap) if t >= 1 => snap[q],
                _ if t == 0 => space.degree(q),
                _ => *snapshots.last().map(|s| &s[q]).unwrap_or(&space.degree(q)),
            };
            assert_eq!(
                est.estimate,
                global,
                "{}: local estimate diverges from global Snd at q={q}, t={t}",
                space.name()
            );
            // The certificate interval brackets κ.
            let opts =
                QueryOptions { iterations: t, budget: None, lower_bound: true, deadline: None };
            let bounded = local_estimate_opts(space, q, &opts);
            assert_eq!(bounded.estimate, est.estimate, "options path must agree");
            assert!(
                bounded.lower <= exact[q],
                "{}: lower bound {} above κ {} at q={q}",
                space.name(),
                bounded.lower,
                exact[q]
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn estimate_brackets_kappa_and_matches_snd_on_all_spaces(g in arb_holme_kim()) {
        let queries = [0usize, 7, 13, 29, 57];
        let iterations = [0usize, 1, 2, 4];
        check_space(&CoreSpace::new(&g), &queries, &iterations);
        check_space(&TrussSpace::precomputed(&g), &queries, &iterations);
        check_space(&Nucleus34Space::precomputed(&g), &queries, &iterations);
    }

    #[test]
    fn budgeted_estimates_stay_sound(g in arb_holme_kim(), budget in 1usize..64) {
        let sp = TrussSpace::precomputed(&g);
        if sp.num_cliques() > 0 {
            let exact = peel(&sp).kappa;
            for q in [0usize, 11, 47] {
                let q = q % sp.num_cliques();
                let opts = QueryOptions { iterations: 3, budget: Some(budget), lower_bound: true, deadline: None };
                let est = local_estimate_opts(&sp, q, &opts);
                prop_assert!(est.lower <= exact[q]);
                prop_assert!(est.estimate >= exact[q]);
                prop_assert!(est.estimate <= sp.degree(q));
            }
        }
    }
}
