//! Property tests for the flat peeling engine: on random Holme–Kim
//! graphs, [`peel_flat`] (and the reusable [`PeelEngine`], and the
//! dispatching [`peel`]) must be **bit-identical** to the container-walk
//! baseline [`peel_walk`] — κ, processing order, max κ, and the
//! deterministic work counters — across every clique space, including the
//! dynamic-width generic space. The parallel engines must reproduce the
//! same κ. Runs under the nightly slow-props budget (`PROPTEST_CASES`).

use hdsd_nucleus::{
    peel, peel_flat, peel_parallel_flat, peel_walk, CliqueSpace, CoreSpace, FlatContainers,
    GenericSpace, Nucleus34Space, PeelEngine, TrussSpace,
};
use hdsd_parallel::ParallelConfig;
use proptest::prelude::*;

fn arb_holme_kim() -> impl Strategy<Value = hdsd_graph::CsrGraph> {
    (20u32..80, 2u32..5, 0u32..=100, 0u64..1_000_000)
        .prop_map(|(n, m, p, seed)| hdsd_datasets::holme_kim(n, m, p as f64 / 100.0, seed))
}

/// One space's full equivalence check; `engine` is shared across spaces to
/// exercise scratch reuse over differently-sized universes.
fn check_space<S: CliqueSpace>(space: &S, engine: &mut PeelEngine) {
    let walk = peel_walk(space);
    let flat = FlatContainers::build(space);
    let one_shot = peel_flat(&flat);
    let reused = engine.peel(&flat);
    let dispatched = peel(space);

    for (label, r) in [("peel_flat", &one_shot), ("PeelEngine", &reused), ("peel", &dispatched)] {
        assert_eq!(r.kappa, walk.kappa, "{}: {label} κ diverged", space.name());
        assert_eq!(r.order, walk.order, "{}: {label} order diverged", space.name());
        assert_eq!(r.max_kappa, walk.max_kappa, "{}: {label} max κ diverged", space.name());
    }
    // The sequential engines execute the identical visit sequence, so the
    // work counters must match exactly (the CI bench gate pins these).
    assert_eq!(one_shot.stats, walk.stats, "{}: work counters diverged", space.name());
    assert_eq!(reused.stats, walk.stats, "{}: engine counters diverged", space.name());

    // Invariants of the result itself.
    let ks: Vec<u32> = walk.order.iter().map(|&i| walk.kappa[i as usize]).collect();
    assert!(ks.windows(2).all(|w| w[0] <= w[1]), "{}: order not κ-sorted", space.name());
    assert_eq!(walk.max_kappa, walk.kappa.iter().copied().max().unwrap_or(0));

    // The barrier-free parallel drain reproduces κ and the closed-form
    // work counters bit-for-bit.
    let cfg = ParallelConfig::with_threads(3).chunk(4);
    let par = peel_parallel_flat(&flat, cfg);
    assert_eq!(par.kappa, walk.kappa, "{}", space.name());
    assert_eq!(par.stats, walk.stats, "{}: parallel counters diverged", space.name());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn flat_peel_is_bit_identical_on_all_spaces(g in arb_holme_kim()) {
        let mut engine = PeelEngine::new();
        check_space(&CoreSpace::new(&g), &mut engine);
        check_space(&TrussSpace::precomputed(&g), &mut engine);
        check_space(&Nucleus34Space::precomputed(&g), &mut engine);
        // The generic enumerator at group = binom(3,1) − 1 = 2 (same width
        // as truss, different id/order structure)...
        check_space(&GenericSpace::new(&g, 1, 3), &mut engine);
        // ...and at group = binom(4,2) − 1 = 5, which exceeds every
        // monomorphized arity and exercises the width-at-runtime fallback
        // (run::<0> / par_flat::<0>).
        check_space(&GenericSpace::new(&g, 2, 4), &mut engine);
    }

    #[test]
    fn flat_peel_survives_edge_deletion_noise(
        g in arb_holme_kim(),
        step in 3usize..13,
    ) {
        // Thin the graph so isolated edges/vertices and empty container
        // rows appear, then re-check the truss space (the two-others fast
        // path) end to end.
        let keep: Vec<(u32, u32)> = g
            .edges()
            .iter()
            .enumerate()
            .filter(|(i, _)| i % step != 0)
            .map(|(_, &e)| e)
            .collect();
        let thinned = hdsd_graph::GraphBuilder::new()
            .with_num_vertices(g.num_vertices())
            .edges(keep)
            .build();
        let mut engine = PeelEngine::new();
        check_space(&TrussSpace::on_the_fly(&thinned), &mut engine);
        check_space(&CoreSpace::new(&thinned), &mut engine);
    }
}

#[test]
fn empty_and_containerless_spaces() {
    let empty = hdsd_graph::graph_from_edges([]);
    let sp = CoreSpace::new(&empty);
    let flat = FlatContainers::build(&sp);
    let r = peel_flat(&flat);
    assert!(r.kappa.is_empty());
    assert_eq!(r.max_kappa, 0);

    // A triangle-free graph: every truss container row is empty.
    let path = hdsd_graph::graph_from_edges([(0, 1), (1, 2), (2, 3)]);
    let truss = TrussSpace::precomputed(&path);
    let flat = FlatContainers::build(&truss);
    let r = peel_flat(&flat);
    assert_eq!(r.kappa, vec![0, 0, 0]);
    assert_eq!(r.kappa, peel_walk(&truss).kappa);
}

#[test]
fn isolated_vertices_and_reuse_across_sizes() {
    let g1 = hdsd_graph::GraphBuilder::new().with_num_vertices(6).edges([(0, 1), (1, 2)]).build();
    let g2 = hdsd_datasets::holme_kim(60, 3, 0.4, 5);
    let mut engine = PeelEngine::new();
    // Big space first, then a smaller one: scratch shrinks correctly.
    let big = FlatContainers::build(&CoreSpace::new(&g2));
    let small = FlatContainers::build(&CoreSpace::new(&g1));
    assert_eq!(engine.peel(&big).kappa, peel_walk(&CoreSpace::new(&g2)).kappa);
    let r = engine.peel(&small);
    assert_eq!(r.kappa, vec![1, 1, 1, 0, 0, 0]);
    // And back up again.
    assert_eq!(engine.peel(&big).kappa, peel_walk(&CoreSpace::new(&g2)).kappa);
}
