//! The forest-equivalence property harness for incremental hierarchy
//! repair: on random Holme–Kim graphs with random mixed insert/remove
//! batches, for **all three** clique spaces (core, truss, (3,4)), the
//! forest produced by [`Hierarchy::repair`] must be structurally identical
//! — canonical-form equal, see `hdsd_nucleus::hierarchy::canonical` — to a
//! cold [`build_hierarchy`] over the post-batch space. Repairs are
//! *chained* (each round repairs the previous round's repaired forest), so
//! drift would compound and be caught.
//!
//! Forest equality is subtle because node ids are renumbering-dependent;
//! `canonical()` quotients ids and sibling order away, which is what makes
//! "repaired ≡ rebuilt" a checkable property at all. The suite also
//! cross-checks the repair telemetry: no-op batches must preserve
//! everything, and the scanned region must never exceed the full s-clique
//! universe.
//!
//! Case counts are tuned for the PR gate; the nightly `slow-props` CI job
//! reruns this suite with `PROPTEST_CASES` raised (the vendored proptest
//! honors the same env var as the real crate).

use hdsd_graph::{CsrGraph, VertexId};
use hdsd_nucleus::{
    assert_forest_eq, build_hierarchy, CoreKind, Hierarchy, Incremental, Nucleus34Kind, SpaceKind,
    TrussKind,
};
use proptest::prelude::*;
use proptest::splitmix64 as splitmix;

type Batch = Vec<(VertexId, VertexId)>;

/// A random mixed batch with the same no-op noise the public API must
/// tolerate: duplicate/reversed inserts, self-loops, already-present
/// edges, absent removals, and endpoints beyond the current vertex set.
fn random_batch(g: &CsrGraph, rng: &mut u64) -> (Batch, Batch) {
    let n = g.num_vertices() as u64;
    let m = g.num_edges() as u64;
    let mut ins = Vec::new();
    for _ in 0..(splitmix(rng) % 5 + 1) {
        let u = (splitmix(rng) % (n + 3)) as u32;
        let v = (splitmix(rng) % (n + 3)) as u32;
        ins.push((u, v));
        if splitmix(rng).is_multiple_of(4) {
            ins.push((v, u)); // duplicate, reversed
        }
    }
    if splitmix(rng).is_multiple_of(3) {
        ins.push((5, 5)); // self-loop
        if m > 0 {
            ins.push(g.edges()[(splitmix(rng) % m) as usize]); // already present
        }
    }
    let mut rm = Vec::new();
    if m > 0 {
        for _ in 0..(splitmix(rng) % 4 + 1) {
            rm.push(g.edges()[(splitmix(rng) % m) as usize]);
        }
    }
    rm.push(((splitmix(rng) % (n + 6)) as u32, (splitmix(rng) % (n + 6)) as u32)); // likely absent
    (ins, rm)
}

/// Drives one space kind through `rounds` chained batches, asserting after
/// each that the repaired forest is canonical-form equal to a cold rebuild
/// of the post-batch space. Returns aggregate preservation counters so
/// callers can assert the repair actually reuses work overall.
fn chained_repairs_equal_cold<K: SpaceKind>(
    g: CsrGraph,
    rounds: usize,
    rng: &mut u64,
) -> (usize, usize) {
    let mut inc: Incremental<K> = Incremental::new(g);
    let mut forest: Hierarchy = build_hierarchy(inc.cached(), inc.kappa());
    let mut preserved_total = 0usize;
    let mut nodes_total = 0usize;
    for round in 0..rounds {
        let (ins, rm) = random_batch(inc.graph(), rng);
        let out = inc.update_edges_outcome(&ins, &rm);
        let (repaired, stats) = forest.repair(
            inc.cached(),
            inc.kappa(),
            &out.new_to_old,
            out.old_num_cliques,
            &out.repair_dirty_seed(inc.kappa()),
        );
        let cold = build_hierarchy(inc.cached(), inc.kappa());
        // The property: repair ≡ cold rebuild, structurally. On failure,
        // print the reproducing inputs before the canonical diagnostic.
        if repaired.canonical() != cold.canonical() {
            eprintln!(
                "{} repair diverged from cold rebuild at round {round}: \
                 ins {ins:?}, rm {rm:?}, stats {stats:?}",
                K::NAME
            );
        }
        assert_forest_eq(&repaired, &cold);
        assert!(
            stats.preserved_nodes + stats.rebuilt_nodes == repaired.len(),
            "{}: stats don't partition the result: {stats:?} vs {} nodes",
            K::NAME,
            repaired.len()
        );
        preserved_total += stats.preserved_nodes;
        nodes_total += repaired.len();
        forest = repaired; // chain: next round repairs the repaired forest
    }
    (preserved_total, nodes_total)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    #[test]
    fn core_repair_equals_cold_rebuild(
        n in 40u32..140,
        m in 2u32..5,
        p in 0u32..=100,
        seed in 0u64..1_000_000,
        batch_seed in 0u64..1_000_000,
    ) {
        let g = hdsd_datasets::holme_kim(n, m, p as f64 / 100.0, seed);
        let mut rng = batch_seed ^ 0xC04E;
        chained_repairs_equal_cold::<CoreKind>(g, 3, &mut rng);
    }

    #[test]
    fn truss_repair_equals_cold_rebuild(
        n in 40u32..120,
        m in 2u32..5,
        p in 0u32..=100,
        seed in 0u64..1_000_000,
        batch_seed in 0u64..1_000_000,
    ) {
        let g = hdsd_datasets::holme_kim(n, m, p as f64 / 100.0, seed);
        let mut rng = batch_seed ^ 0x7255;
        chained_repairs_equal_cold::<TrussKind>(g, 3, &mut rng);
    }

    #[test]
    fn nucleus34_repair_equals_cold_rebuild(
        n in 30u32..80,
        m in 3u32..6,
        p in 20u32..=100,
        seed in 0u64..1_000_000,
        batch_seed in 0u64..1_000_000,
    ) {
        let g = hdsd_datasets::holme_kim(n, m, p as f64 / 100.0, seed);
        let mut rng = batch_seed ^ 0x3434;
        chained_repairs_equal_cold::<Nucleus34Kind>(g, 2, &mut rng);
    }
}

/// On a graph with many far-apart communities and a single-edge batch, the
/// repair must actually *preserve* most of the forest — the point of the
/// tentpole, asserted on counters rather than wall clocks.
#[test]
fn small_batches_preserve_most_of_the_forest() {
    let g = hdsd_datasets::planted_partition(&[20, 20, 20, 20, 20], 0.5, 0.01, 77);
    let mut inc: Incremental<CoreKind> = Incremental::new(g);
    let forest = build_hierarchy(inc.cached(), inc.kappa());
    let out = inc.update_edges_outcome(&[(0, 1)], &[]);
    let (repaired, stats) = forest.repair(
        inc.cached(),
        inc.kappa(),
        &out.new_to_old,
        out.old_num_cliques,
        &out.repair_dirty_seed(inc.kappa()),
    );
    assert_forest_eq(&repaired, &build_hierarchy(inc.cached(), inc.kappa()));
    assert!(
        stats.preserved_nodes * 2 > repaired.len(),
        "one-edge batch should preserve most nodes: {stats:?} of {} nodes",
        repaired.len()
    );
    assert!(
        stats.scanned_scliques < inc.graph().num_edges(),
        "one-edge batch should not re-scan every s-clique: {stats:?}"
    );
}

/// Deletion-heavy batches exercise subtree splits and node removals.
#[test]
fn deletion_heavy_batches_stay_equivalent() {
    let base = hdsd_datasets::holme_kim(150, 5, 0.6, 9);
    for kind_rounds in 0..3u64 {
        let mut rng = 0xDE1E ^ kind_rounds;
        let mut inc: Incremental<TrussKind> = Incremental::new(base.clone());
        let mut forest = build_hierarchy(inc.cached(), inc.kappa());
        for _ in 0..3 {
            let victims: Vec<(u32, u32)> = {
                let edges = inc.graph().edges();
                (0..12).map(|_| edges[(splitmix(&mut rng) % edges.len() as u64) as usize]).collect()
            };
            let out = inc.update_edges_outcome(&[], &victims);
            let (repaired, _) = forest.repair(
                inc.cached(),
                inc.kappa(),
                &out.new_to_old,
                out.old_num_cliques,
                &out.repair_dirty_seed(inc.kappa()),
            );
            assert_forest_eq(&repaired, &build_hierarchy(inc.cached(), inc.kappa()));
            forest = repaired;
        }
    }
}

/// Batches that wipe the graph entirely (and then regrow it) hit the
/// degenerate ends of the repair: empty forests on both sides.
#[test]
fn wipe_and_regrow_round_trips() {
    let g = hdsd_datasets::holme_kim(40, 3, 0.5, 4);
    let all_edges: Vec<(u32, u32)> = g.edges().to_vec();
    let mut inc: Incremental<CoreKind> = Incremental::new(g);
    let mut forest = build_hierarchy(inc.cached(), inc.kappa());

    let out = inc.update_edges_outcome(&[], &all_edges);
    let (repaired, _) = forest.repair(
        inc.cached(),
        inc.kappa(),
        &out.new_to_old,
        out.old_num_cliques,
        &out.repair_dirty_seed(inc.kappa()),
    );
    assert!(repaired.is_empty(), "wiped graph must repair to an empty forest");
    assert_forest_eq(&repaired, &build_hierarchy(inc.cached(), inc.kappa()));
    forest = repaired;

    let out = inc.update_edges_outcome(&all_edges, &[]);
    let (regrown, _) = forest.repair(
        inc.cached(),
        inc.kappa(),
        &out.new_to_old,
        out.old_num_cliques,
        &out.repair_dirty_seed(inc.kappa()),
    );
    assert_forest_eq(&regrown, &build_hierarchy(inc.cached(), inc.kappa()));
}
