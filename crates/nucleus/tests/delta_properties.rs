//! Property tests for the incremental update path: on random Holme–Kim
//! graphs with random mixed insert/remove batches, the delta-maintained
//! structures must be **structurally identical** to from-scratch builds at
//! every layer (CSR, triangle list, container caches), and the
//! warm-started refresh must stay bit-identical to a cold peel for all
//! three spaces. Case counts are proptest-driven, so the nightly
//! `slow-props` job's `PROPTEST_CASES` override deepens this suite too.

use hdsd_graph::{apply_edge_batch, triangle_delta, CsrGraph, TriangleList, VertexId, NO_ID};
use hdsd_nucleus::{
    core_space_delta, nucleus34_space_delta, peel, rebuild_graph, truss_space_delta, CachedSpace,
    CliqueSpace, CoreKind, CoreSpace, Incremental, Nucleus34Kind, Nucleus34Space, SpaceKind,
    TrussKind, TrussSpace,
};

use proptest::prelude::*;
use proptest::splitmix64 as splitmix;

type Batch = Vec<(VertexId, VertexId)>;

/// A random mixed batch: inserts may duplicate, touch new vertices, repeat
/// existing edges, or contain self-loops; removes mix present and absent
/// edges. All the no-op noise the public API must tolerate.
fn random_batch(g: &CsrGraph, rng: &mut u64) -> (Batch, Batch) {
    let n = g.num_vertices() as u64;
    let m = g.num_edges() as u64;
    let mut ins = Vec::new();
    for _ in 0..(splitmix(rng) % 6 + 1) {
        let u = (splitmix(rng) % (n + 4)) as u32;
        let v = (splitmix(rng) % (n + 4)) as u32;
        ins.push((u, v));
        if splitmix(rng).is_multiple_of(4) {
            ins.push((v, u)); // duplicate, reversed
        }
    }
    if splitmix(rng).is_multiple_of(3) {
        ins.push((7, 7)); // self-loop
        if m > 0 {
            ins.push(g.edges()[(splitmix(rng) % m) as usize]); // already present
        }
    }
    let mut rm = Vec::new();
    if m > 0 {
        for _ in 0..(splitmix(rng) % 5 + 1) {
            rm.push(g.edges()[(splitmix(rng) % m) as usize]);
        }
    }
    rm.push(((splitmix(rng) % (n + 8)) as u32, (splitmix(rng) % (n + 8)) as u32)); // likely absent
    (ins, rm)
}

fn assert_same_graph(a: &CsrGraph, b: &CsrGraph, ctx: &str) {
    assert_eq!(a.num_vertices(), b.num_vertices(), "{ctx}: vertex count");
    assert_eq!(a.edges(), b.edges(), "{ctx}: edge list");
    for v in a.vertices() {
        assert_eq!(a.neighbors(v), b.neighbors(v), "{ctx}: neighbors of {v}");
        assert_eq!(a.neighbor_edge_ids(v), b.neighbor_edge_ids(v), "{ctx}: edge ids of {v}");
    }
}

fn assert_same_triangles(a: &TriangleList, b: &TriangleList, m: usize, ctx: &str) {
    assert_eq!(a.tri_verts, b.tri_verts, "{ctx}: triangle vertices");
    assert_eq!(a.tri_edges, b.tri_edges, "{ctx}: triangle edges");
    for e in 0..m as u32 {
        assert_eq!(a.triangles_of_edge(e), b.triangles_of_edge(e), "{ctx}: incidence of {e}");
        assert_eq!(a.thirds_of_edge(e), b.thirds_of_edge(e), "{ctx}: thirds of {e}");
    }
}

fn sorted_containers(space: &CachedSpace, i: usize) -> Vec<Vec<usize>> {
    let mut v: Vec<Vec<usize>> = Vec::new();
    space.for_each_container(i, |o| {
        let mut c = o.to_vec();
        c.sort_unstable();
        v.push(c);
    });
    v.sort();
    v
}

fn assert_same_cached(spliced: &CachedSpace, fresh: &CachedSpace, ctx: &str) {
    assert_eq!(spliced.num_cliques(), fresh.num_cliques(), "{ctx}: clique count");
    for i in 0..fresh.num_cliques() {
        assert_eq!(spliced.degree(i), fresh.degree(i), "{ctx}: degree of {i}");
        assert_eq!(spliced.clique_vertices(i), fresh.clique_vertices(i), "{ctx}: vertices of {i}");
        assert_eq!(sorted_containers(spliced, i), sorted_containers(fresh, i), "{ctx}: row {i}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn delta_structures_match_from_scratch_builds(
        n in 120u32..360,
        m in 4u32..7,
        seed in 0u64..1_000_000,
        batch_seed in 0u64..1_000_000,
    ) {
        let base = hdsd_datasets::holme_kim(n, m, 0.5, seed);
        let g = hdsd_datasets::thin_edges(&base, 0.75, seed);
        let tl = TriangleList::build(&g);
        let old_truss = CachedSpace::build(&TrussSpace::with_triangles(&g, &tl));
        let old_n34 = CachedSpace::build(&Nucleus34Space::with_triangles(&g, &tl));

        let mut rng = 0xABCDEF ^ batch_seed;
        let (ins, rm) = random_batch(&g, &mut rng);
        let ctx = format!("n {n} m {m} seed {seed} batch {batch_seed}");

        // Layer 1: the spliced CSR is bit-identical to a rebuild.
        let (g2, ed) = apply_edge_batch(&g, &ins, &rm);
        let (g_ref, inserted_ref) = rebuild_graph(&g, &ins, &rm);
        assert_same_graph(&g2, &g_ref, &ctx);
        assert_eq!(ed.inserted(), inserted_ref, "{ctx}: inserted count");
        for (old, &new) in ed.old_to_new.iter().enumerate() {
            if new != NO_ID {
                assert_eq!(
                    g.edge_endpoints(old as u32),
                    g2.edge_endpoints(new),
                    "{ctx}: edge remap {old}"
                );
            }
        }

        // Layer 2: the maintained triangle list matches a fresh build.
        let td = triangle_delta(&tl, &g2, &ed);
        assert_same_triangles(&td.list, &TriangleList::build(&g2), g2.num_edges(), &ctx);

        // Layer 3: spliced container caches match cold builds.
        let truss = truss_space_delta(&old_truss, &tl, &g2, &ed, &td);
        assert_same_cached(
            &truss.cached,
            &CachedSpace::build(&TrussSpace::on_the_fly(&g2)),
            &format!("{ctx} truss"),
        );
        let n34 = nucleus34_space_delta(&old_n34, &g, &tl, &g2, &ed, &td);
        assert_same_cached(
            &n34.cached,
            &CachedSpace::build(&Nucleus34Space::on_the_fly(&g2)),
            &format!("{ctx} nucleus34"),
        );
        let core = core_space_delta(&g2, g.num_vertices());
        assert_same_cached(
            &core.cached,
            &CachedSpace::build(&CoreSpace::new(&g2)),
            &format!("{ctx} core"),
        );
    }
}

fn incremental_stays_exact<K: SpaceKind>(n: u32, seed: u64, batch_seed: u64) {
    let base = hdsd_datasets::holme_kim(n, 4, 0.55, seed ^ 0x55);
    let g = hdsd_datasets::thin_edges(&base, 0.8, seed);
    let mut inc: Incremental<K> = Incremental::new(g);
    let mut rng = 0xFEED ^ batch_seed;
    for round in 0..4 {
        let (ins, rm) = random_batch(inc.graph(), &mut rng);
        inc.update_edges(&ins, &rm);
        let exact = peel(&K::build(inc.graph())).kappa;
        assert_eq!(
            inc.kappa(),
            exact.as_slice(),
            "{} diverged from cold peel at n {n} seed {seed} batch {batch_seed} round {round}",
            K::NAME
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn incremental_refresh_is_bit_identical_to_peel(
        n in 100u32..200,
        seed in 0u64..1_000_000,
        batch_seed in 0u64..1_000_000,
    ) {
        incremental_stays_exact::<CoreKind>(n, seed, batch_seed);
        incremental_stays_exact::<TrussKind>(n, seed, batch_seed);
        incremental_stays_exact::<Nucleus34Kind>(n, seed, batch_seed);
    }
}
