//! Exporting decomposition results: κ tables as TSV, hierarchies as
//! GraphViz dot, and the versioned binary **snapshot** format the
//! `hdsd-service` engine uses for fast restart (graph + per-space κ +
//! resident hierarchies in one self-contained file).

use std::io::{self, Read, Write};
use std::sync::Arc;

use hdsd_graph::io::{read_u32, read_u64, write_u32, write_u64, Crc32};
use hdsd_graph::CsrGraph;

use crate::hierarchy::{Hierarchy, HierarchyNode};
use crate::space::CliqueSpace;

/// Magic prefix of a snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"HDSDSNAP";
/// Current snapshot format version.
///
/// Version 4: the file ends with a CRC-32 trailer (one little-endian
/// `u32` over every preceding byte, magic and version included), so a
/// torn `save`, a short copy, or bit rot is detected up front instead of
/// relying on the structural checks to stumble over it. v3 files carry
/// no trailer but are otherwise framing-identical, so the reader still
/// accepts them (checksum skipped) — upgrading a deployment must not
/// orphan its existing snapshots. After the trailer (or, for v3, the
/// payload) the file must end; trailing bytes are rejected so a v4 file
/// whose version field rotted into "3" cannot silently skip its own
/// checksum.
///
/// Version 3: each persisted hierarchy now carries its inverted
/// clique → node index ([`Hierarchy::clique_to_node`]), making the
/// snapshot self-contained for consumers that don't know the derivation
/// and giving the reader an integrity cross-check — the index must
/// invert the forest it rides with, so corruption that survives the
/// shape checks still fails loudly instead of serving wrong regions.
/// (The derivation itself is one flat pass, dwarfed by the space rebuild
/// a restore performs; the index is persisted for self-containedness and
/// validation, not speed.) The extra array changes the framing, so v2
/// blobs are rejected with a versioned error rather than misread.
///
/// Version 2: triangle ids became canonical (lexicographic by vertex
/// triple) instead of orientation discovery order. A v1 snapshot's
/// (3,4)-space κ vector and hierarchy are indexed by the old ids and
/// would load silently permuted, so v1 is rejected rather than migrated.
pub const SNAPSHOT_VERSION: u32 = 4;

/// Oldest snapshot version [`read_snapshot`] still accepts.
pub const SNAPSHOT_MIN_VERSION: u32 = 3;

/// One decomposition's resident state inside a [`Snapshot`].
///
/// The payload rows are `Arc`'d so a snapshot can **share** a live
/// engine's resident state zero-copy (a checkpoint of a multi-gigabyte
/// epoch allocates pointers, not copies) and, symmetrically, a restore
/// can hand its rows to the engine without cloning. Plain owned values
/// still convert implicitly at the constructors.
#[derive(Clone, Debug, PartialEq)]
pub struct SpaceSnapshot {
    /// The `(r, s)` of the decomposition.
    pub rs: (u32, u32),
    /// Exact κ per r-clique (ids follow the snapshot graph's space).
    pub kappa: Arc<Vec<u32>>,
    /// The nucleus forest, when it was resident at save time.
    pub hierarchy: Option<Arc<Hierarchy>>,
    /// The forest's clique → node index (`u32::MAX` for cliques in no
    /// nucleus), persisted with the hierarchy so the snapshot is
    /// self-contained and the reader can cross-check it against the
    /// forest. Present iff `hierarchy` is. [`write_snapshot`] derives
    /// the persisted index from `hierarchy` itself (this field is not
    /// trusted on the write path — a stale value could otherwise poison
    /// restores); [`read_snapshot`] populates it after validating that
    /// it inverts the forest.
    pub node_of: Option<Arc<Vec<u32>>>,
}

impl SpaceSnapshot {
    /// A space snapshot with no resident hierarchy.
    pub fn new(rs: (u32, u32), kappa: impl Into<Arc<Vec<u32>>>) -> SpaceSnapshot {
        SpaceSnapshot { rs, kappa: kappa.into(), hierarchy: None, node_of: None }
    }

    /// A space snapshot with a resident hierarchy and a freshly derived
    /// clique → node index.
    pub fn with_hierarchy(
        rs: (u32, u32),
        kappa: impl Into<Arc<Vec<u32>>>,
        hierarchy: impl Into<Arc<Hierarchy>>,
    ) -> SpaceSnapshot {
        let kappa = kappa.into();
        let hierarchy = hierarchy.into();
        let node_of = Arc::new(hierarchy.clique_to_node(kappa.len()));
        SpaceSnapshot { rs, kappa, hierarchy: Some(hierarchy), node_of: Some(node_of) }
    }
}

/// A restartable image of a serving engine: the graph plus every
/// decomposition's κ (and optional hierarchy), `Arc`-shared with whoever
/// produced it (see [`SpaceSnapshot`]).
#[derive(Clone, Debug)]
pub struct Snapshot {
    /// The graph at save time.
    pub graph: Arc<CsrGraph>,
    /// Per-space decomposition state.
    pub spaces: Vec<SpaceSnapshot>,
}

/// `Write` adaptor feeding every byte through a [`Crc32`] on its way to
/// the inner writer, so the v4 trailer is computed without buffering the
/// whole snapshot in memory.
struct CrcWriter<'a, W: Write> {
    inner: &'a mut W,
    crc: Crc32,
}

impl<W: Write> Write for CrcWriter<'_, W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let n = self.inner.write(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// `Read` adaptor digesting every byte as it streams past, mirroring
/// [`CrcWriter`] on the load side.
struct CrcReader<'a, R: Read> {
    inner: &'a mut R,
    crc: Crc32,
}

impl<R: Read> Read for CrcReader<'_, R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let n = self.inner.read(buf)?;
        self.crc.update(&buf[..n]);
        Ok(n)
    }
}

fn write_u32_slice(out: &mut impl Write, xs: &[u32]) -> io::Result<()> {
    write_u64(out, xs.len() as u64)?;
    for &x in xs {
        write_u32(out, x)?;
    }
    Ok(())
}

fn read_u32_vec(input: &mut impl Read, cap: u64) -> io::Result<Vec<u32>> {
    let len = read_u64(input)?;
    if len > cap {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "snapshot length field too large"));
    }
    // The length field is untrusted: clamp the up-front reservation so a
    // corrupt file fails on a short read instead of a huge allocation.
    let mut out = Vec::with_capacity(len.min(1 << 20) as usize);
    for _ in 0..len {
        out.push(read_u32(input)?);
    }
    Ok(out)
}

/// Writes a [`Snapshot`] in the versioned binary format.
pub fn write_snapshot(snap: &Snapshot, out: &mut impl Write) -> io::Result<()> {
    let mut w = CrcWriter { inner: out, crc: Crc32::new() };
    w.write_all(SNAPSHOT_MAGIC)?;
    write_u32(&mut w, SNAPSHOT_VERSION)?;
    hdsd_graph::write_graph_binary(&snap.graph, &mut w)?;
    write_u32(&mut w, snap.spaces.len() as u32)?;
    for sp in &snap.spaces {
        write_u32(&mut w, sp.rs.0)?;
        write_u32(&mut w, sp.rs.1)?;
        write_u32_slice(&mut w, &sp.kappa)?;
        match &sp.hierarchy {
            None => write_u32(&mut w, 0)?,
            Some(h) => {
                write_u32(&mut w, 1)?;
                write_u64(&mut w, h.nodes.len() as u64)?;
                for node in &h.nodes {
                    write_u32(&mut w, node.k)?;
                    write_u32(&mut w, node.parent.map_or(u32::MAX, |p| p))?;
                    write_u32_slice(&mut w, &node.children)?;
                    write_u32_slice(&mut w, &node.own_cliques)?;
                    write_u64(&mut w, node.size as u64)?;
                }
                write_u32_slice(&mut w, &h.roots)?;
                write_u32(&mut w, h.rs.0 as u32)?;
                write_u32(&mut w, h.rs.1 as u32)?;
                // v3: the inverted clique → node index rides along for
                // self-containedness and as a read-side integrity check.
                // Always derived from the forest being written —
                // `SpaceSnapshot`'s fields are pub, and persisting a
                // caller-supplied vector would let a stale or mis-sized
                // index either poison every later restore ("clique index
                // length mismatch") or, worse, pass the reader's shape
                // checks while mapping cliques to the wrong nodes.
                write_u32_slice(&mut w, &h.clique_to_node(sp.kappa.len()))?;
            }
        }
    }
    // v4 trailer: CRC-32 over every byte written above (magic included),
    // written raw so it does not digest itself.
    let digest = w.crc.finish();
    write_u32(w.inner, digest)
}

/// Reads a [`Snapshot`] written by [`write_snapshot`], validating magic,
/// version, structural sanity (lengths, node references) and — for v4
/// files — the CRC-32 trailer. The input must end at the snapshot's last
/// byte; trailing data is rejected.
pub fn read_snapshot(raw: &mut impl Read) -> io::Result<Snapshot> {
    let bad = |msg: &str| io::Error::new(io::ErrorKind::InvalidData, msg.to_string());
    let mut input = CrcReader { inner: raw, crc: Crc32::new() };
    let mut magic = [0u8; 8];
    input.read_exact(&mut magic)?;
    if &magic != SNAPSHOT_MAGIC {
        return Err(bad("not an hdsd snapshot"));
    }
    let version = read_u32(&mut input)?;
    if !(SNAPSHOT_MIN_VERSION..=SNAPSHOT_VERSION).contains(&version) {
        return Err(bad(&format!(
            "unsupported snapshot version {version} (this build reads \
             v{SNAPSHOT_MIN_VERSION}..v{SNAPSHOT_VERSION}); re-save from a live engine"
        )));
    }
    let graph = hdsd_graph::read_graph_binary(&mut input)?;
    let num_spaces = read_u32(&mut input)?;
    if num_spaces > 16 {
        return Err(bad("implausible space count"));
    }
    let mut spaces = Vec::with_capacity(num_spaces as usize);
    for _ in 0..num_spaces {
        let rs = (read_u32(&mut input)?, read_u32(&mut input)?);
        let kappa = read_u32_vec(&mut input, u32::MAX as u64)?;
        let (hierarchy, node_of) = match read_u32(&mut input)? {
            0 => (None, None),
            1 => {
                let num_nodes = read_u64(&mut input)?;
                if num_nodes > kappa.len() as u64 * 2 + 16 {
                    return Err(bad("implausible hierarchy node count"));
                }
                let mut nodes = Vec::with_capacity(num_nodes.min(1 << 20) as usize);
                for _ in 0..num_nodes {
                    let k = read_u32(&mut input)?;
                    let parent = match read_u32(&mut input)? {
                        u32::MAX => None,
                        p if (p as u64) < num_nodes => Some(p),
                        _ => return Err(bad("hierarchy parent out of range")),
                    };
                    let children = read_u32_vec(&mut input, num_nodes)?;
                    let own_cliques = read_u32_vec(&mut input, kappa.len() as u64)?;
                    if own_cliques.iter().any(|&c| c as usize >= kappa.len()) {
                        return Err(bad("hierarchy own_clique out of range"));
                    }
                    let size = read_u64(&mut input)? as usize;
                    nodes.push(HierarchyNode { k, parent, children, own_cliques, size });
                }
                let roots = read_u32_vec(&mut input, num_nodes)?;
                if roots
                    .iter()
                    .chain(nodes.iter().flat_map(|n| &n.children))
                    .any(|&x| x as u64 >= num_nodes)
                {
                    return Err(bad("hierarchy reference out of range"));
                }
                let rs_h = (read_u32(&mut input)? as usize, read_u32(&mut input)? as usize);
                let node_of = read_u32_vec(&mut input, kappa.len() as u64)?;
                if node_of.len() != kappa.len() {
                    return Err(bad("hierarchy clique index length mismatch"));
                }
                let h = Hierarchy { nodes, roots, rs: rs_h };
                // Shape checks alone would let an in-range but *wrong*
                // mapping through, and adopters (the serving engine) trust
                // this index verbatim — so verify it against the forest it
                // claims to invert. One flat pass, dwarfed by the space
                // rebuild any restore performs anyway; every other
                // corruption fails loudly, this one must too.
                if node_of != h.clique_to_node(kappa.len()) {
                    return Err(bad("hierarchy clique index inconsistent with forest"));
                }
                (Some(Arc::new(h)), Some(Arc::new(node_of)))
            }
            _ => return Err(bad("bad hierarchy presence flag")),
        };
        spaces.push(SpaceSnapshot { rs, kappa: Arc::new(kappa), hierarchy, node_of });
    }
    if version >= 4 {
        // The digest covers everything up to here; read the stored trailer
        // raw (it must not digest itself).
        let digest = input.crc.finish();
        let stored = read_u32(input.inner)?;
        if stored != digest {
            return Err(bad("snapshot trailer checksum mismatch (torn or corrupt file)"));
        }
    }
    // Require EOF: extra bytes mean a corrupt length field resynchronized
    // by luck, or a v4 file whose version byte rotted into an older
    // trailer-less version — either way, refuse rather than trust it.
    if input.inner.read(&mut [0u8; 1])? != 0 {
        return Err(bad("trailing bytes after snapshot"));
    }
    Ok(Snapshot { graph: Arc::new(graph), spaces })
}

/// Writes one `id <TAB> vertices <TAB> kappa` line per r-clique.
///
/// The vertex column lists the r-clique's members joined by `,` so the file
/// is self-describing for every (r, s) (vertex ids for cores, endpoint
/// pairs for trusses, triples for (3,4)).
pub fn write_kappa_tsv<S: CliqueSpace>(
    space: &S,
    kappa: &[u32],
    mut out: impl Write,
) -> io::Result<()> {
    assert_eq!(kappa.len(), space.num_cliques());
    writeln!(out, "# ({},{}) decomposition: id\tvertices\tkappa", space.r(), space.s())?;
    let mut verts = Vec::new();
    for (i, &k) in kappa.iter().enumerate() {
        verts.clear();
        space.vertices_of(i, &mut verts);
        let joined = verts.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(",");
        writeln!(out, "{i}\t{joined}\t{k}")?;
    }
    Ok(())
}

/// Renders the nucleus forest as a GraphViz `digraph`: one box per nucleus
/// labelled `k / size / density`, edges from parent to child.
///
/// Densities require materializing each node's vertex set; for very large
/// forests pass `with_density = false` to skip that cost.
pub fn write_hierarchy_dot<S: CliqueSpace>(
    hierarchy: &Hierarchy,
    space: &S,
    graph: &CsrGraph,
    with_density: bool,
    mut out: impl Write,
) -> io::Result<()> {
    writeln!(out, "digraph nuclei {{")?;
    writeln!(out, "  rankdir=TB; node [shape=box, fontname=\"monospace\"];")?;
    for (id, node) in hierarchy.nodes.iter().enumerate() {
        let label = if with_density {
            let d = hierarchy.node_density(id as u32, space, graph);
            format!("k={}\\n|V|={} |E|={}\\nρ={:.3}", node.k, d.vertices, d.edges, d.density)
        } else {
            format!("k={}\\nsize={}", node.k, node.size)
        };
        writeln!(out, "  n{id} [label=\"{label}\"];")?;
    }
    for (id, node) in hierarchy.nodes.iter().enumerate() {
        for &c in &node.children {
            writeln!(out, "  n{id} -> n{c};")?;
        }
    }
    writeln!(out, "}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::build_hierarchy;
    use crate::peel::peel;
    use crate::space::{CoreSpace, TrussSpace};
    use hdsd_graph::graph_from_edges;

    fn sample() -> CsrGraph {
        graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3), // K4
            (3, 4),
            (4, 5), // tail
        ])
    }

    #[test]
    fn tsv_has_one_line_per_clique_plus_header() {
        let g = sample();
        let sp = CoreSpace::new(&g);
        let kappa = peel(&sp).kappa;
        let mut buf = Vec::new();
        write_kappa_tsv(&sp, &kappa, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + g.num_vertices());
        assert!(lines[0].starts_with("# (1,2)"));
        // vertex 0 has κ 3
        assert_eq!(lines[1], "0\t0\t3");
    }

    #[test]
    fn tsv_for_truss_lists_endpoints() {
        let g = sample();
        let sp = TrussSpace::precomputed(&g);
        let kappa = peel(&sp).kappa;
        let mut buf = Vec::new();
        write_kappa_tsv(&sp, &kappa, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // edge 0 = (0,1), inside the K4: κ3 = 2
        assert!(text.lines().any(|l| l == "0\t0,1\t2"), "{text}");
    }

    #[test]
    fn snapshot_round_trips_graph_kappa_and_hierarchy() {
        let g = hdsd_datasets::holme_kim(120, 4, 0.5, 5);
        let core = CoreSpace::new(&g);
        let truss = TrussSpace::precomputed(&g);
        let kc = peel(&core).kappa;
        let kt = peel(&truss).kappa;
        let hc = build_hierarchy(&core, &kc);
        let ht = build_hierarchy(&truss, &kt);
        let snap = Snapshot {
            graph: Arc::new(g.clone()),
            spaces: vec![
                SpaceSnapshot::with_hierarchy((1, 2), kc.clone(), hc.clone()),
                SpaceSnapshot::with_hierarchy((2, 3), kt.clone(), ht.clone()),
            ],
        };
        let mut buf = Vec::new();
        write_snapshot(&snap, &mut buf).unwrap();
        let back = read_snapshot(&mut buf.as_slice()).unwrap();
        assert_eq!(back.graph.edges(), g.edges());
        assert_eq!(back.graph.num_vertices(), g.num_vertices());
        assert_eq!(back.spaces.len(), 2);
        assert_eq!(back.spaces[0].rs, (1, 2));
        assert_eq!(*back.spaces[0].kappa, kc);
        assert_eq!(back.spaces[0].hierarchy.as_deref().unwrap(), &hc);
        assert_eq!(back.spaces[1].rs, (2, 3));
        assert_eq!(*back.spaces[1].kappa, kt);
        assert_eq!(back.spaces[1].hierarchy.as_deref().unwrap(), &ht);
        // v3: the clique → node index rides along bit-identically.
        assert_eq!(back.spaces[0].node_of.as_deref().unwrap(), &hc.clique_to_node(kc.len()));
        assert_eq!(back.spaces[1].node_of.as_deref().unwrap(), &ht.clique_to_node(kt.len()));
        // A second save of the restored snapshot is byte-identical.
        let mut buf2 = Vec::new();
        write_snapshot(&back, &mut buf2).unwrap();
        assert_eq!(buf, buf2, "save/load round trip must be bit-stable");
    }

    #[test]
    fn snapshot_without_hierarchy_round_trips() {
        let g = sample();
        let sp = CoreSpace::new(&g);
        let kappa = peel(&sp).kappa;
        let snap = Snapshot {
            graph: Arc::new(g),
            spaces: vec![SpaceSnapshot::new((1, 2), kappa.clone())],
        };
        let mut buf = Vec::new();
        write_snapshot(&snap, &mut buf).unwrap();
        let back = read_snapshot(&mut buf.as_slice()).unwrap();
        assert_eq!(*back.spaces[0].kappa, kappa);
        assert!(back.spaces[0].hierarchy.is_none());
        assert!(back.spaces[0].node_of.is_none());
    }

    #[test]
    fn snapshot_reader_rejects_corruption() {
        let g = sample();
        let sp = CoreSpace::new(&g);
        let kappa = peel(&sp).kappa;
        let h = build_hierarchy(&sp, &kappa);
        let snap = Snapshot {
            graph: Arc::new(g),
            spaces: vec![SpaceSnapshot::with_hierarchy((1, 2), kappa, h)],
        };
        let mut buf = Vec::new();
        write_snapshot(&snap, &mut buf).unwrap();
        assert!(read_snapshot(&mut &b"HDSDJUNKxxxxxxxxxxxx"[..]).is_err());
        let mut wrong_version = buf.clone();
        wrong_version[8] = 0xFE;
        assert!(read_snapshot(&mut wrong_version.as_slice()).is_err());
        let mut truncated = buf.clone();
        truncated.truncate(buf.len() / 2);
        assert!(read_snapshot(&mut truncated.as_slice()).is_err());
    }

    #[test]
    fn corrupted_clique_index_is_rejected() {
        let g = sample();
        let sp = CoreSpace::new(&g);
        let kappa = peel(&sp).kappa;
        let h = build_hierarchy(&sp, &kappa);
        let snap = Snapshot {
            graph: Arc::new(g),
            spaces: vec![SpaceSnapshot::with_hierarchy((1, 2), kappa, h)],
        };
        let mut buf = Vec::new();
        write_snapshot(&snap, &mut buf).unwrap();
        // node_of is the final payload section of the (single) space
        // block, just before the v4 trailer; flip a bit in its last entry:
        // the value stays shape-plausible but no longer inverts the
        // forest. Recompute the trailer so the corruption reaches the
        // semantic cross-check instead of tripping the checksum first —
        // this is the regression net for the inversion check itself.
        let last = buf.len() - 8;
        buf[last] ^= 0x01;
        let payload_end = buf.len() - 4;
        let digest = hdsd_graph::io::crc32(&buf[..payload_end]);
        buf[payload_end..].copy_from_slice(&digest.to_le_bytes());
        let err = read_snapshot(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("inconsistent"), "{err}");
    }

    #[test]
    fn v3_snapshots_without_trailer_still_load() {
        let g = sample();
        let sp = CoreSpace::new(&g);
        let kappa = peel(&sp).kappa;
        let h = build_hierarchy(&sp, &kappa);
        let snap = Snapshot {
            graph: Arc::new(g.clone()),
            spaces: vec![SpaceSnapshot::with_hierarchy((1, 2), kappa.clone(), h)],
        };
        let mut buf = Vec::new();
        write_snapshot(&snap, &mut buf).unwrap();
        // Rebuild the previous format by hand: strip the trailer and
        // rewrite the version field — byte-identical framing otherwise.
        buf.truncate(buf.len() - 4);
        buf[8..12].copy_from_slice(&3u32.to_le_bytes());
        let back = read_snapshot(&mut buf.as_slice()).unwrap();
        assert_eq!(back.graph.edges(), g.edges());
        assert_eq!(*back.spaces[0].kappa, kappa);
        assert!(back.spaces[0].hierarchy.is_some());
    }

    #[test]
    fn v4_bit_flips_are_always_rejected() {
        let g = sample();
        let sp = CoreSpace::new(&g);
        let kappa = peel(&sp).kappa;
        let h = build_hierarchy(&sp, &kappa);
        let snap = Snapshot {
            graph: Arc::new(g),
            spaces: vec![SpaceSnapshot::with_hierarchy((1, 2), kappa, h)],
        };
        let mut buf = Vec::new();
        write_snapshot(&snap, &mut buf).unwrap();
        for bit in 0..buf.len() * 8 {
            let mut bad = buf.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            assert!(
                read_snapshot(&mut bad.as_slice()).is_err(),
                "single-bit flip at bit {bit} was accepted"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let g = sample();
        let sp = CoreSpace::new(&g);
        let kappa = peel(&sp).kappa;
        let snap = Snapshot { graph: Arc::new(g), spaces: vec![SpaceSnapshot::new((1, 2), kappa)] };
        let mut buf = Vec::new();
        write_snapshot(&snap, &mut buf).unwrap();
        buf.push(0);
        let err = read_snapshot(&mut buf.as_slice()).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn v2_snapshots_are_rejected_with_a_versioned_error() {
        let g = sample();
        let sp = CoreSpace::new(&g);
        let kappa = peel(&sp).kappa;
        let h = build_hierarchy(&sp, &kappa);
        let snap = Snapshot {
            graph: Arc::new(g),
            spaces: vec![SpaceSnapshot::with_hierarchy((1, 2), kappa, h)],
        };
        let mut buf = Vec::new();
        write_snapshot(&snap, &mut buf).unwrap();
        // Rewrite the version field (little-endian u32 after the 8-byte
        // magic) to the previous format's: the loader must refuse with a
        // versioned message before touching any payload.
        buf[8..12].copy_from_slice(&2u32.to_le_bytes());
        let err = read_snapshot(&mut buf.as_slice()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("version 2"), "error should name the found version: {msg}");
        assert!(
            msg.contains(&format!("v{SNAPSHOT_VERSION}")),
            "error should name the supported version: {msg}"
        );
    }

    #[test]
    fn dot_is_well_formed() {
        let g = sample();
        let sp = CoreSpace::new(&g);
        let kappa = peel(&sp).kappa;
        let h = build_hierarchy(&sp, &kappa);
        for with_density in [true, false] {
            let mut buf = Vec::new();
            write_hierarchy_dot(&h, &sp, &g, with_density, &mut buf).unwrap();
            let text = String::from_utf8(buf).unwrap();
            assert!(text.starts_with("digraph nuclei {"));
            assert!(text.trim_end().ends_with('}'));
            // one node line per nucleus
            assert_eq!(text.matches("[label=").count(), h.len(), "node count mismatch:\n{text}");
            // edge count = total children
            let edges: usize = h.nodes.iter().map(|n| n.children.len()).sum();
            assert_eq!(text.matches(" -> ").count(), edges);
        }
    }
}
