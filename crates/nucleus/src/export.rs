//! Exporting decomposition results: κ tables as TSV, hierarchies as
//! GraphViz dot — the artifacts downstream analyses (or a paper's figures)
//! consume.

use std::io::{self, Write};

use hdsd_graph::CsrGraph;

use crate::hierarchy::Hierarchy;
use crate::space::CliqueSpace;

/// Writes one `id <TAB> vertices <TAB> kappa` line per r-clique.
///
/// The vertex column lists the r-clique's members joined by `,` so the file
/// is self-describing for every (r, s) (vertex ids for cores, endpoint
/// pairs for trusses, triples for (3,4)).
pub fn write_kappa_tsv<S: CliqueSpace>(
    space: &S,
    kappa: &[u32],
    mut out: impl Write,
) -> io::Result<()> {
    assert_eq!(kappa.len(), space.num_cliques());
    writeln!(out, "# ({},{}) decomposition: id\tvertices\tkappa", space.r(), space.s())?;
    let mut verts = Vec::new();
    for (i, &k) in kappa.iter().enumerate() {
        verts.clear();
        space.vertices_of(i, &mut verts);
        let joined = verts.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(",");
        writeln!(out, "{i}\t{joined}\t{k}")?;
    }
    Ok(())
}

/// Renders the nucleus forest as a GraphViz `digraph`: one box per nucleus
/// labelled `k / size / density`, edges from parent to child.
///
/// Densities require materializing each node's vertex set; for very large
/// forests pass `with_density = false` to skip that cost.
pub fn write_hierarchy_dot<S: CliqueSpace>(
    hierarchy: &Hierarchy,
    space: &S,
    graph: &CsrGraph,
    with_density: bool,
    mut out: impl Write,
) -> io::Result<()> {
    writeln!(out, "digraph nuclei {{")?;
    writeln!(out, "  rankdir=TB; node [shape=box, fontname=\"monospace\"];")?;
    for (id, node) in hierarchy.nodes.iter().enumerate() {
        let label = if with_density {
            let d = hierarchy.node_density(id as u32, space, graph);
            format!("k={}\\n|V|={} |E|={}\\nρ={:.3}", node.k, d.vertices, d.edges, d.density)
        } else {
            format!("k={}\\nsize={}", node.k, node.size)
        };
        writeln!(out, "  n{id} [label=\"{label}\"];")?;
    }
    for (id, node) in hierarchy.nodes.iter().enumerate() {
        for &c in &node.children {
            writeln!(out, "  n{id} -> n{c};")?;
        }
    }
    writeln!(out, "}}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::build_hierarchy;
    use crate::peel::peel;
    use crate::space::{CoreSpace, TrussSpace};
    use hdsd_graph::graph_from_edges;

    fn sample() -> CsrGraph {
        graph_from_edges([
            (0, 1),
            (0, 2),
            (0, 3),
            (1, 2),
            (1, 3),
            (2, 3), // K4
            (3, 4),
            (4, 5), // tail
        ])
    }

    #[test]
    fn tsv_has_one_line_per_clique_plus_header() {
        let g = sample();
        let sp = CoreSpace::new(&g);
        let kappa = peel(&sp).kappa;
        let mut buf = Vec::new();
        write_kappa_tsv(&sp, &kappa, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1 + g.num_vertices());
        assert!(lines[0].starts_with("# (1,2)"));
        // vertex 0 has κ 3
        assert_eq!(lines[1], "0\t0\t3");
    }

    #[test]
    fn tsv_for_truss_lists_endpoints() {
        let g = sample();
        let sp = TrussSpace::precomputed(&g);
        let kappa = peel(&sp).kappa;
        let mut buf = Vec::new();
        write_kappa_tsv(&sp, &kappa, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // edge 0 = (0,1), inside the K4: κ3 = 2
        assert!(text.lines().any(|l| l == "0\t0,1\t2"), "{text}");
    }

    #[test]
    fn dot_is_well_formed() {
        let g = sample();
        let sp = CoreSpace::new(&g);
        let kappa = peel(&sp).kappa;
        let h = build_hierarchy(&sp, &kappa);
        for with_density in [true, false] {
            let mut buf = Vec::new();
            write_hierarchy_dot(&h, &sp, &g, with_density, &mut buf).unwrap();
            let text = String::from_utf8(buf).unwrap();
            assert!(text.starts_with("digraph nuclei {"));
            assert!(text.trim_end().ends_with('}'));
            // one node line per nucleus
            assert_eq!(text.matches("[label=").count(), h.len(), "node count mismatch:\n{text}");
            // edge count = total children
            let edges: usize = h.nodes.iter().map(|n| n.children.len()).sum();
            assert_eq!(text.matches(" -> ").count(), edges);
        }
    }
}
