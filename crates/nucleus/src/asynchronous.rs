//! And — Asynchronous Nucleus Decomposition (the paper's Algorithm 3).
//!
//! Gauss–Seidel-style iteration: τ updates are visible immediately, so
//! information propagates within a sweep and And never needs more sweeps
//! than Snd. The processing order matters: Theorem 4 proves that sweeping
//! in non-decreasing final-κ order (the peeling order) converges in a
//! single iteration, while adversarial orders degrade toward Snd behaviour.
//!
//! The §4.2.1 **notification mechanism** is implemented as the paper
//! describes: each r-clique carries a wake flag `c(·)`; a clique marks
//! itself idle after recomputing and is woken only when a neighbor's τ
//! changes, which skips the plateau recomputation that otherwise dominates
//! late iterations.
//!
//! A parallel variant shares τ through relaxed atomics: workers may read a
//! mix of old and new values, which the paper argues (and Theorem 1's
//! monotone, lower-bounded descent guarantees) still converges to the same
//! fixed point — in the worst case it degenerates to the synchronous
//! schedule. A final full verification sweep certifies the fixed point, so
//! results are exact regardless of races.

use hdsd_hindex::HBuffer;
use hdsd_parallel::{parallel_for_chunks_with, AtomicBitset, AtomicU32Vec};
use std::ops::ControlFlow;
use std::sync::atomic::{AtomicUsize, Ordering};

use crate::convergence::{ConvergenceResult, IterationEvent, LocalConfig};
use crate::space::{rho, CliqueSpace};

/// Processing order for the asynchronous sweep.
#[derive(Clone, Debug, Default)]
pub enum Order {
    /// r-clique id order (the paper's default).
    #[default]
    Natural,
    /// Reverse id order.
    Reverse,
    /// Deterministic pseudo-random permutation of the given seed.
    Random(u64),
    /// Non-decreasing initial S-degree (a cheap proxy for κ order).
    IncreasingDegree,
    /// Explicit permutation: `order[k]` = k-th r-clique to process.
    /// Passing a peeling order realizes Theorem 4's single-iteration bound.
    Custom(Vec<u32>),
}

impl Order {
    /// Materializes the permutation for a space of `n` r-cliques.
    pub fn permutation<S: CliqueSpace>(&self, space: &S) -> Vec<u32> {
        let n = space.num_cliques();
        match self {
            Order::Natural => (0..n as u32).collect(),
            Order::Reverse => (0..n as u32).rev().collect(),
            Order::Random(seed) => {
                let mut p: Vec<u32> = (0..n as u32).collect();
                // SplitMix64-driven Fisher–Yates; deterministic, dependency-free.
                let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
                let mut next = || {
                    state = state.wrapping_add(0x9E3779B97F4A7C15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                    z ^ (z >> 31)
                };
                for i in (1..n).rev() {
                    let j = (next() % (i as u64 + 1)) as usize;
                    p.swap(i, j);
                }
                p
            }
            Order::IncreasingDegree => {
                let mut p: Vec<u32> = (0..n as u32).collect();
                p.sort_by_key(|&i| (space.degree(i as usize), i));
                p
            }
            Order::Custom(p) => {
                assert_eq!(p.len(), n, "custom order length mismatch");
                p.clone()
            }
        }
    }
}

/// Runs And to convergence (or the iteration cap) with wake-flag
/// notifications enabled.
pub fn and<S: CliqueSpace>(space: &S, cfg: &LocalConfig, order: &Order) -> ConvergenceResult {
    and_with_options(space, cfg, order, true, &mut |_| {})
}

/// Runs And without the notification mechanism (every sweep recomputes
/// every r-clique) — the ablation baseline for Figure 8-style experiments.
pub fn and_without_notification<S: CliqueSpace>(
    space: &S,
    cfg: &LocalConfig,
    order: &Order,
) -> ConvergenceResult {
    and_with_options(space, cfg, order, false, &mut |_| {})
}

/// Full-control And entry point.
pub fn and_with_options<S: CliqueSpace>(
    space: &S,
    cfg: &LocalConfig,
    order: &Order,
    notification: bool,
    observer: &mut dyn FnMut(IterationEvent<'_>),
) -> ConvergenceResult {
    if cfg.parallel.threads <= 1 {
        and_sequential(space, cfg, order, notification, None, observer)
    } else {
        and_parallel(space, cfg, order, notification, observer)
    }
}

/// And starting from a caller-provided τ instead of the S-degrees.
///
/// **Correctness**: the iteration converges to the exact κ from *any*
/// pointwise upper bound `τ_init ≥ κ`. Proof sketch: `U` is monotone and
/// `H` over a clique's containers never exceeds its container count, so
/// `Uτ_init ≤ d_s` pointwise after one sweep; thereafter
/// `κ = U^t κ ≤ U^t τ_init ≤ U^t d_s → κ` squeezes the sequence onto κ
/// within the Theorem-3 bound (+1 sweep). This is what makes incremental
/// maintenance ([`crate::incremental`]) possible: a stale decomposition,
/// suitably bumped, is a valid warm start.
///
/// # Panics
/// Panics when `tau_init.len() != space.num_cliques()`.
pub fn and_resume<S: CliqueSpace>(
    space: &S,
    cfg: &LocalConfig,
    order: &Order,
    tau_init: Vec<u32>,
    observer: &mut dyn FnMut(IterationEvent<'_>),
) -> ConvergenceResult {
    assert_eq!(tau_init.len(), space.num_cliques(), "tau_init length mismatch");
    and_sequential(space, cfg, order, true, Some(tau_init), observer)
}

fn and_sequential<S: CliqueSpace>(
    space: &S,
    cfg: &LocalConfig,
    order: &Order,
    notification: bool,
    tau_init: Option<Vec<u32>>,
    observer: &mut dyn FnMut(IterationEvent<'_>),
) -> ConvergenceResult {
    let n = space.num_cliques();
    let perm = order.permutation(space);
    let mut tau = tau_init.unwrap_or_else(|| space.initial_degrees());
    // Wake flags: all r-cliques start active (line 4 of Algorithm 3).
    let mut active = vec![true; n];
    let mut buf = HBuffer::new();

    let mut updates_per_iter = Vec::new();
    let mut processed_per_iter = Vec::new();
    let mut converged = false;
    let mut sweeps = 0usize;

    loop {
        if n == 0 {
            converged = true;
            break;
        }
        let mut updates = 0usize;
        let mut processed = 0usize;
        for &iu in &perm {
            let i = iu as usize;
            if notification && !active[i] {
                continue;
            }
            processed += 1;
            // Mark idle before recomputing; a same-sweep neighbor update
            // re-wakes us (the paper's line 17 semantics).
            active[i] = false;
            let old = tau[i];
            let new = update_inplace(space, i, old, &tau, &mut buf, cfg.preserve_check);
            if new != old {
                debug_assert!(new < old);
                tau[i] = new;
                updates += 1;
                if notification {
                    space.for_each_neighbor(i, |o| active[o] = true);
                }
            }
        }
        sweeps += 1;
        updates_per_iter.push(updates);
        processed_per_iter.push(processed);
        observer(IterationEvent { iteration: sweeps, tau: &tau, updates, processed });

        if updates == 0 {
            // With notifications, a zero-update sweep may simply mean
            // "nobody was awake"; certify with one full sweep.
            if notification && processed < n {
                active.iter_mut().for_each(|a| *a = true);
                continue;
            }
            converged = true;
            break;
        }
        if cfg.stable_enough(updates, n) {
            break; // stability stopping rule: good enough, not exact
        }
        if let Some(cap) = cfg.max_iterations {
            if sweeps >= cap {
                break;
            }
        }
    }

    ConvergenceResult { tau, sweeps, converged, updates_per_iter, processed_per_iter }
}

fn and_parallel<S: CliqueSpace>(
    space: &S,
    cfg: &LocalConfig,
    order: &Order,
    notification: bool,
    observer: &mut dyn FnMut(IterationEvent<'_>),
) -> ConvergenceResult {
    let n = space.num_cliques();
    let perm = order.permutation(space);
    let tau = AtomicU32Vec::from_vec(space.initial_degrees());
    let active = AtomicBitset::new(n, true);

    let mut updates_per_iter = Vec::new();
    let mut processed_per_iter = Vec::new();
    let mut converged = false;
    let mut sweeps = 0usize;
    let mut tau_snapshot = vec![0u32; n];

    loop {
        if n == 0 {
            converged = true;
            break;
        }
        let updates = AtomicUsize::new(0);
        let processed = AtomicUsize::new(0);
        let perm_ref: &[u32] = &perm;
        let tau_ref = &tau;
        let active_ref = &active;
        let updates_ref = &updates;
        let processed_ref = &processed;

        parallel_for_chunks_with(n, cfg.parallel, HBuffer::new, |buf, range| {
            let mut local_updates = 0usize;
            let mut local_processed = 0usize;
            for k in range {
                let i = perm_ref[k] as usize;
                if notification && !active_ref.get(i) {
                    continue;
                }
                local_processed += 1;
                active_ref.clear(i);
                let old = tau_ref.get(i);
                let new = update_atomic(space, i, old, tau_ref, buf, cfg.preserve_check);
                if new != old {
                    tau_ref.set(i, new);
                    local_updates += 1;
                    if notification {
                        space.for_each_neighbor(i, |o| {
                            active_ref.set(o);
                        });
                    }
                }
            }
            if local_updates > 0 {
                updates_ref.fetch_add(local_updates, Ordering::Relaxed);
            }
            if local_processed > 0 {
                processed_ref.fetch_add(local_processed, Ordering::Relaxed);
            }
        });

        sweeps += 1;
        let u = updates.load(Ordering::Relaxed);
        let p = processed.load(Ordering::Relaxed);
        updates_per_iter.push(u);
        processed_per_iter.push(p);
        tau.copy_to_slice(&mut tau_snapshot);
        observer(IterationEvent { iteration: sweeps, tau: &tau_snapshot, updates: u, processed: p });

        if u == 0 {
            // Races (or sleeping cliques) could hide pending work: certify
            // the fixed point with a full sweep before declaring victory.
            if p < n {
                for i in 0..n {
                    active.set(i);
                }
                continue;
            }
            converged = true;
            break;
        }
        if cfg.stable_enough(u, n) {
            break; // stability stopping rule: good enough, not exact
        }
        if let Some(cap) = cfg.max_iterations {
            if sweeps >= cap {
                break;
            }
        }
    }

    ConvergenceResult {
        tau: tau.into_vec(),
        sweeps,
        converged,
        updates_per_iter,
        processed_per_iter,
    }
}

/// One in-place update against a plain τ array (sequential And).
#[inline]
fn update_inplace<S: CliqueSpace>(
    space: &S,
    i: usize,
    old: u32,
    tau: &[u32],
    buf: &mut HBuffer,
    preserve_check: bool,
) -> u32 {
    if old == 0 {
        return 0;
    }
    if preserve_check {
        let mut qualifying = 0u32;
        let preserved = space
            .try_for_each_container(i, |others| {
                if rho(tau, others) >= old {
                    qualifying += 1;
                    if qualifying >= old {
                        return ControlFlow::Break(());
                    }
                }
                ControlFlow::Continue(())
            })
            .is_break();
        if preserved {
            return old;
        }
    }
    let deg = space.degree(i) as usize;
    let mut session = buf.session(deg);
    space.for_each_container(i, |others| session.push(rho(tau, others)));
    // Clamp to `old`: a no-op on the standard τ0 = d_s descent (H never
    // exceeds the previous value there), but essential for warm starts
    // (`and_resume`), where H may exceed a stale τ. The clamped iteration
    // computes min(τ, Uτ), whose only fixpoint ≥ κ is κ itself: a stall
    // means τ ≤ Uτ everywhere, which (Lemma 1 / the Theorem-4 argument)
    // forces τ ≤ κ.
    session.finish().min(old)
}

/// One in-place update against atomic τ (parallel And).
#[inline]
fn update_atomic<S: CliqueSpace>(
    space: &S,
    i: usize,
    old: u32,
    tau: &AtomicU32Vec,
    buf: &mut HBuffer,
    preserve_check: bool,
) -> u32 {
    if old == 0 {
        return 0;
    }
    let rho_atomic = |others: &[usize]| -> u32 {
        let mut m = u32::MAX;
        for &o in others {
            m = m.min(tau.get(o));
        }
        m
    };
    if preserve_check {
        let mut qualifying = 0u32;
        let preserved = space
            .try_for_each_container(i, |others| {
                if rho_atomic(others) >= old {
                    qualifying += 1;
                    if qualifying >= old {
                        return ControlFlow::Break(());
                    }
                }
                ControlFlow::Continue(())
            })
            .is_break();
        if preserved {
            return old;
        }
    }
    let deg = space.degree(i) as usize;
    let mut session = buf.session(deg);
    space.for_each_container(i, |others| session.push(rho_atomic(others)));
    // Concurrent writers may have changed neighbor τ mid-walk; the computed
    // value is still a valid member of the monotone descent (never below κ
    // because every read value is ≥ κ by Theorem 1). Clamp to `old` to keep
    // per-clique monotonicity even under torn reads.
    session.finish().min(old)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peel::peel;
    use crate::snd::snd;
    use crate::space::{CoreSpace, Nucleus34Space, TrussSpace};
    use hdsd_graph::graph_from_edges;

    fn paper_fig2_graph() -> hdsd_graph::CsrGraph {
        graph_from_edges([(0, 4), (0, 1), (1, 2), (1, 3), (2, 3), (4, 5)])
    }

    #[test]
    fn and_matches_peeling_all_orders() {
        let g = hdsd_datasets::holme_kim(250, 4, 0.5, 21);
        let sp = CoreSpace::new(&g);
        let exact = peel(&sp).kappa;
        for order in [
            Order::Natural,
            Order::Reverse,
            Order::Random(7),
            Order::IncreasingDegree,
        ] {
            let r = and(&sp, &LocalConfig::sequential(), &order);
            assert_eq!(r.tau, exact, "order {order:?}");
            assert!(r.converged);
        }
    }

    #[test]
    fn theorem4_peel_order_converges_in_one_iteration() {
        // Processing in non-decreasing κ order => single updating sweep.
        let g = hdsd_datasets::holme_kim(300, 5, 0.5, 4);
        for use_truss in [false, true] {
            let (iters, ok) = if use_truss {
                let sp = TrussSpace::precomputed(&g);
                let p = peel(&sp);
                let r = and(&sp, &LocalConfig::sequential(), &Order::Custom(p.order.clone()));
                (r.iterations_to_converge(), r.tau == p.kappa)
            } else {
                let sp = CoreSpace::new(&g);
                let p = peel(&sp);
                let r = and(&sp, &LocalConfig::sequential(), &Order::Custom(p.order.clone()));
                (r.iterations_to_converge(), r.tau == p.kappa)
            };
            assert!(ok);
            assert!(iters <= 1, "Theorem 4 violated: {iters} updating iterations");
        }
    }

    #[test]
    fn paper_fig2_alphabetical_vs_kappa_order() {
        // The paper's Figure 2: alphabetical order {a..f} needs two
        // updating iterations; the {f,e,a,b,c,d} order (non-decreasing κ)
        // converges in one.
        let g = paper_fig2_graph();
        let sp = CoreSpace::new(&g);
        let alpha = and(&sp, &LocalConfig::sequential(), &Order::Natural);
        assert_eq!(alpha.tau, vec![1, 2, 2, 2, 1, 1]);
        assert_eq!(alpha.iterations_to_converge(), 2);
        // f=5, e=4, a=0, b=1, c=2, d=3
        let good = and(
            &sp,
            &LocalConfig::sequential(),
            &Order::Custom(vec![5, 4, 0, 1, 2, 3]),
        );
        assert_eq!(good.tau, vec![1, 2, 2, 2, 1, 1]);
        assert_eq!(good.iterations_to_converge(), 1);
    }

    #[test]
    fn and_never_needs_more_updating_sweeps_than_snd() {
        for seed in [1u64, 2, 3] {
            let g = hdsd_datasets::erdos_renyi_gnm(150, 600, seed);
            let sp = CoreSpace::new(&g);
            let s = snd(&sp, &LocalConfig::sequential());
            let a = and(&sp, &LocalConfig::sequential(), &Order::Natural);
            assert_eq!(s.tau, a.tau);
            assert!(
                a.iterations_to_converge() <= s.iterations_to_converge(),
                "seed {seed}: AND {} > SND {}",
                a.iterations_to_converge(),
                s.iterations_to_converge()
            );
        }
    }

    #[test]
    fn notification_reduces_processed_work() {
        let g = hdsd_datasets::holme_kim(400, 5, 0.6, 11);
        let sp = TrussSpace::precomputed(&g);
        let with = and(&sp, &LocalConfig::sequential(), &Order::Natural);
        let without = and_without_notification(&sp, &LocalConfig::sequential(), &Order::Natural);
        assert_eq!(with.tau, without.tau);
        assert!(
            with.total_processed() < without.total_processed(),
            "notification should skip plateau work: {} vs {}",
            with.total_processed(),
            without.total_processed()
        );
    }

    #[test]
    fn parallel_and_matches_exact_results() {
        let g = hdsd_datasets::holme_kim(300, 5, 0.5, 33);
        let core = CoreSpace::new(&g);
        let exact = peel(&core).kappa;
        for threads in [2, 4] {
            for notification in [true, false] {
                let cfg = LocalConfig::with_threads(threads);
                let r = and_with_options(&core, &cfg, &Order::Natural, notification, &mut |_| {});
                assert_eq!(r.tau, exact, "threads={threads} notif={notification}");
                assert!(r.converged);
            }
        }
        let truss = TrussSpace::precomputed(&g);
        let exact_t = peel(&truss).kappa;
        let r = and(&truss, &LocalConfig::with_threads(4), &Order::Natural);
        assert_eq!(r.tau, exact_t);
    }

    #[test]
    fn and_on_34_nucleus() {
        let g = hdsd_datasets::planted_partition(&[12, 12, 12], 0.8, 0.05, 5);
        let sp = Nucleus34Space::precomputed(&g);
        let exact = peel(&sp).kappa;
        let r = and(&sp, &LocalConfig::sequential(), &Order::Natural);
        assert_eq!(r.tau, exact);
    }

    #[test]
    fn capped_and_still_upper_bounds_kappa() {
        let g = hdsd_datasets::erdos_renyi_gnm(120, 500, 9);
        let sp = CoreSpace::new(&g);
        let exact = peel(&sp).kappa;
        let r = and(&sp, &LocalConfig::sequential().max_iterations(1), &Order::Natural);
        for (i, (&a, &k)) in r.tau.iter().zip(&exact).enumerate() {
            assert!(a >= k, "τ[{i}]");
        }
    }

    #[test]
    fn random_order_is_deterministic_per_seed() {
        let g = hdsd_datasets::erdos_renyi_gnm(60, 150, 2);
        let sp = CoreSpace::new(&g);
        let p1 = Order::Random(5).permutation(&sp);
        let p2 = Order::Random(5).permutation(&sp);
        let p3 = Order::Random(6).permutation(&sp);
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
        let mut sorted = p1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..60u32).collect::<Vec<_>>());
    }
}
