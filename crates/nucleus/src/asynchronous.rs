//! And — Asynchronous Nucleus Decomposition (the paper's Algorithm 3).
//!
//! Gauss–Seidel-style iteration: τ updates are visible immediately, so
//! information propagates within a sweep and And never needs more sweeps
//! than Snd. The processing order matters: Theorem 4 proves that sweeping
//! in non-decreasing final-κ order (the peeling order) converges in a
//! single iteration, while adversarial orders degrade toward Snd behaviour.
//!
//! ## Scheduling the notification mechanism
//!
//! The §4.2.1 **notification mechanism** — each r-clique carries a wake
//! flag `c(·)`, marks itself idle after recomputing, and is woken only when
//! a neighbor's τ changes — is what makes And beat Snd in practice. How the
//! awake set is *scheduled* is a separate choice ([`crate::SweepMode`]):
//!
//! * [`SweepMode::Frontier`] (default) keeps the awake r-cliques in an
//!   explicit dedup-on-insert worklist, so per-sweep cost is
//!   `O(|frontier|)`, not `O(n)`. Late, nearly-converged sweeps touch only
//!   the handful of r-cliques that can still change. Sequentially the
//!   worklist is a plain epoch queue drained in permutation order; in
//!   parallel it is a lock-free MPMC ring ([`hdsd_parallel::ConcurrentWorklist`])
//!   drained **continuously** — no epoch snapshot, no sort, no barrier
//!   (see "Parallel variant" below).
//! * [`SweepMode::FlagScan`] is the paper's literal formulation: walk the
//!   full permutation every sweep and test the wake flag per r-clique. It
//!   recomputes the same r-cliques as `Frontier` but pays `O(n)` idle flag
//!   checks per sweep (counted in `SchedulerStats::items_skipped`).
//! * [`SweepMode::FullScan`] disables notification entirely (the Figure-8
//!   ablation baseline): every sweep recomputes every r-clique.
//!
//! The wake semantics are identical across modes: an r-clique woken while
//! it still awaits processing in the current sweep is visited once, in
//! place, with the newer τ values; one woken after its visit is scheduled
//! for the next sweep.
//!
//! ## Flat container cache
//!
//! Independently of scheduling, sweeps can run against a one-shot CSR
//! materialization of the space's containers
//! ([`crate::space::FlatContainers`]) instead of the callback walk, turning
//! per-container adjacency intersections into contiguous `u32` reads fed to
//! the fused ρ-min + h-index kernels of `hdsd-hindex`. The cache is gated
//! by [`LocalConfig::container_cache_budget`] and by each space's
//! [`CliqueSpace::prefers_flat_cache`] hint.
//!
//! ## Parallel variant
//!
//! A parallel variant shares τ through relaxed atomics: workers may read a
//! mix of old and new values, which the paper argues (and Theorem 1's
//! monotone, lower-bounded descent guarantees) still converges to the same
//! fixed point — in the worst case it degenerates to the synchronous
//! schedule. Under [`SweepMode::Frontier`] the workers free-run against a
//! lock-free worklist with **no per-epoch barrier**: an update pushes the
//! woken neighbors straight back into the ring and any idle worker picks
//! them up within the same round, which is exactly the asynchrony the
//! companion paper (arXiv:1704.00386) proves harmless. Round termination
//! is exact quiescence counting ([`hdsd_parallel::QuiescenceCounter`]),
//! not an empty-queue check. The scan modes keep their dynamic/static
//! chunk hand-out (the paper's `schedule(dynamic)` ablation, now doubling
//! as the barrier ablation). A final full verification round certifies
//! the fixed point, so results are exact regardless of races.

use hdsd_hindex::HBuffer;
use hdsd_parallel::{
    parallel_for_chunks_with, AtomicBitset, AtomicU32Vec, ConcurrentWorklist, QuiescenceCounter,
    SchedulerStats,
};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::cancel::{CancelToken, Cancelled};
use crate::convergence::{ConvergenceResult, IterationEvent, LocalConfig, SweepMode};
use crate::space::{CliqueSpace, FlatAccess, FlatContainers, SweepAccess, WalkAccess};

/// How many frontier pops a parallel And worker processes between
/// cancellation probes — the per-worker overshoot bound for the drain.
pub const AND_CANCEL_POP_BATCH: u32 = 64;

/// Processing order for the asynchronous sweep.
#[derive(Clone, Debug, Default)]
pub enum Order {
    /// r-clique id order (the paper's default).
    #[default]
    Natural,
    /// Reverse id order.
    Reverse,
    /// Deterministic pseudo-random permutation of the given seed.
    Random(u64),
    /// Non-decreasing initial S-degree (a cheap proxy for κ order).
    IncreasingDegree,
    /// Explicit permutation: `order[k]` = k-th r-clique to process.
    /// Passing a peeling order realizes Theorem 4's single-iteration bound.
    Custom(Vec<u32>),
}

impl Order {
    /// Materializes the permutation for a space of `n` r-cliques.
    pub fn permutation<S: CliqueSpace>(&self, space: &S) -> Vec<u32> {
        let n = space.num_cliques();
        match self {
            Order::Natural => (0..n as u32).collect(),
            Order::Reverse => (0..n as u32).rev().collect(),
            Order::Random(seed) => {
                let mut p: Vec<u32> = (0..n as u32).collect();
                // SplitMix64-driven Fisher–Yates; deterministic, dependency-free.
                let mut state = seed.wrapping_add(0x9E3779B97F4A7C15);
                let mut next = || {
                    state = state.wrapping_add(0x9E3779B97F4A7C15);
                    let mut z = state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                    z ^ (z >> 31)
                };
                for i in (1..n).rev() {
                    let j = (next() % (i as u64 + 1)) as usize;
                    p.swap(i, j);
                }
                p
            }
            Order::IncreasingDegree => {
                let mut p: Vec<u32> = (0..n as u32).collect();
                p.sort_by_key(|&i| (space.degree(i as usize), i));
                p
            }
            Order::Custom(p) => {
                assert_eq!(p.len(), n, "custom order length mismatch");
                p.clone()
            }
        }
    }
}

/// Runs And to convergence (or the iteration cap) with wake-flag
/// notifications enabled, scheduled per [`LocalConfig::sweep_mode`].
pub fn and<S: CliqueSpace>(space: &S, cfg: &LocalConfig, order: &Order) -> ConvergenceResult {
    and_with_options(space, cfg, order, true, &mut |_| {})
}

/// Runs And without the notification mechanism (every sweep recomputes
/// every r-clique) — the ablation baseline for Figure 8-style experiments.
/// Equivalent to forcing [`SweepMode::FullScan`].
pub fn and_without_notification<S: CliqueSpace>(
    space: &S,
    cfg: &LocalConfig,
    order: &Order,
) -> ConvergenceResult {
    and_with_options(space, cfg, order, false, &mut |_| {})
}

/// Full-control And entry point.
pub fn and_with_options<S: CliqueSpace>(
    space: &S,
    cfg: &LocalConfig,
    order: &Order,
    notification: bool,
    observer: &mut dyn FnMut(IterationEvent<'_>),
) -> ConvergenceResult {
    let mode = if notification { cfg.sweep_mode } else { SweepMode::FullScan };
    dispatch(space, cfg, order, mode, None, None, &CancelToken::none(), observer)
        .expect("an unarmed token never cancels")
}

/// And starting from a caller-provided τ instead of the S-degrees.
///
/// **Correctness**: the iteration converges to the exact κ from *any*
/// pointwise upper bound `τ_init ≥ κ`. Proof sketch: `U` is monotone and
/// `H` over a clique's containers never exceeds its container count, so
/// `Uτ_init ≤ d_s` pointwise after one sweep; thereafter
/// `κ = U^t κ ≤ U^t τ_init ≤ U^t d_s → κ` squeezes the sequence onto κ
/// within the Theorem-3 bound (+1 sweep). This is what makes incremental
/// maintenance ([`crate::incremental`]) possible: a stale decomposition,
/// suitably bumped, is a valid warm start.
///
/// # Panics
/// Panics when `tau_init.len() != space.num_cliques()`.
pub fn and_resume<S: CliqueSpace>(
    space: &S,
    cfg: &LocalConfig,
    order: &Order,
    tau_init: Vec<u32>,
    observer: &mut dyn FnMut(IterationEvent<'_>),
) -> ConvergenceResult {
    assert_eq!(tau_init.len(), space.num_cliques(), "tau_init length mismatch");
    dispatch(
        space,
        cfg,
        order,
        cfg.sweep_mode,
        Some(tau_init),
        None,
        &CancelToken::none(),
        observer,
    )
    .expect("an unarmed token never cancels")
}

/// [`and_resume`] with only `awake` initially scheduled instead of the
/// whole universe — the incremental-maintenance fast path: after an edge
/// batch, only the cliques whose τ or containers the batch may have
/// changed need a first look; everything else is woken on demand by the
/// notification mechanism.
///
/// Exactness does not depend on `awake` being complete: the convergence
/// protocol's final certification sweep recomputes every clique before
/// declaring a fixed point, so an under-seeded run costs extra sweeps, not
/// correctness. (`SweepMode::FullScan` ignores `awake` by construction.)
pub fn and_resume_awake<S: CliqueSpace>(
    space: &S,
    cfg: &LocalConfig,
    order: &Order,
    tau_init: Vec<u32>,
    awake: &[u32],
    observer: &mut dyn FnMut(IterationEvent<'_>),
) -> ConvergenceResult {
    and_resume_awake_within(space, cfg, order, tau_init, awake, &CancelToken::none(), observer)
        .expect("an unarmed token never cancels")
}

/// [`and_resume_awake`] with cooperative cancellation: the sequential
/// driver probes the token once per sweep, the parallel frontier every
/// [`AND_CANCEL_POP_BATCH`] pops per worker (the scan modes once per
/// sweep), so a tripped token abandons the iteration with bounded
/// overshoot instead of running to convergence. On `Err` all partial τ
/// progress is discarded — callers that want exactness re-run; callers
/// that arrived here already hold a valid upper bound (τ only descends).
pub fn and_resume_awake_within<S: CliqueSpace>(
    space: &S,
    cfg: &LocalConfig,
    order: &Order,
    tau_init: Vec<u32>,
    awake: &[u32],
    cancel: &CancelToken,
    observer: &mut dyn FnMut(IterationEvent<'_>),
) -> Result<ConvergenceResult, Cancelled> {
    assert_eq!(tau_init.len(), space.num_cliques(), "tau_init length mismatch");
    dispatch(space, cfg, order, cfg.sweep_mode, Some(tau_init), Some(awake), cancel, observer)
}

/// Resolves the access layer (flat cache vs callback walk) and the
/// sequential/parallel driver, then runs the sweeps. The drivers are
/// monomorphized over [`SweepAccess`], so the hot per-container loop has no
/// dynamic dispatch either way.
#[allow(clippy::too_many_arguments)]
fn dispatch<S: CliqueSpace>(
    space: &S,
    cfg: &LocalConfig,
    order: &Order,
    mode: SweepMode,
    tau_init: Option<Vec<u32>>,
    awake: Option<&[u32]>,
    cancel: &CancelToken,
    observer: &mut dyn FnMut(IterationEvent<'_>),
) -> Result<ConvergenceResult, Cancelled> {
    let perm = order.permutation(space);
    let flat =
        cfg.container_cache_budget.and_then(|budget| FlatContainers::build_within(space, budget));
    match &flat {
        Some(f) => drive(&FlatAccess(f), cfg, &perm, mode, tau_init, awake, cancel, observer),
        None => drive(&WalkAccess(space), cfg, &perm, mode, tau_init, awake, cancel, observer),
    }
}

#[allow(clippy::too_many_arguments)]
fn drive<A: SweepAccess>(
    access: &A,
    cfg: &LocalConfig,
    perm: &[u32],
    mode: SweepMode,
    tau_init: Option<Vec<u32>>,
    awake: Option<&[u32]>,
    cancel: &CancelToken,
    observer: &mut dyn FnMut(IterationEvent<'_>),
) -> Result<ConvergenceResult, Cancelled> {
    if cfg.parallel.threads <= 1 {
        and_sequential(access, cfg, perm, mode, tau_init, awake, cancel, observer)
    } else {
        and_parallel(access, cfg, perm, mode, tau_init, awake, cancel, observer)
    }
}

/// The continuous-drain frontier of the parallel And: a lock-free MPMC
/// worklist ([`ConcurrentWorklist`]) drained by free-running workers with
/// **no per-epoch barrier, snapshot, or sort** — an updating worker pushes
/// woken neighbors straight back into the ring and any idle worker picks
/// them up immediately. The companion paper's asynchrony argument
/// (arXiv:1704.00386) makes this safe: τ reads may be stale, but `U` is
/// monotone and lower-bounded, so every schedule descends to the same
/// fixed point; the round only ends when [`QuiescenceCounter`] proves every
/// issued item (seeds and wakes alike) was retired.
///
/// Ids are seeded in permutation-rank order, so the first round starts in
/// the requested processing order; after that the drain order is whatever
/// the interleaving produces (exactness never depends on it — the
/// convergence protocol's certification round recomputes everything).
struct DrainFrontier {
    worklist: ConcurrentWorklist,
    quiesce: QuiescenceCounter,
}

impl DrainFrontier {
    /// Builds the worklist with every r-clique scheduled (line 4 of
    /// Algorithm 3: all start awake), or only `awake` when given (the
    /// incremental warm-start path).
    fn seeded(perm: &[u32], awake: Option<&[u32]>) -> Self {
        let f = DrainFrontier {
            worklist: ConcurrentWorklist::new(perm.len()),
            quiesce: QuiescenceCounter::new(),
        };
        for &i in awake.unwrap_or(perm) {
            f.issue_push(i);
        }
        f
    }

    /// Issues then publishes `id`, rolling the issue back when the dedup
    /// bit says it is already scheduled (issue-before-publish keeps the
    /// quiescence invariant `retired ≤ issued` exact).
    #[inline]
    fn issue_push(&self, id: u32) {
        self.quiesce.issue(1);
        if !self.worklist.push(id) {
            self.quiesce.retire(1);
        }
    }

    /// Schedules every r-clique again (the certification round). Runs
    /// between rounds, when the drain is quiescent: the ring is empty and
    /// every dedup bit is clear, so each push publishes.
    fn reschedule_all(&self, perm: &[u32]) {
        for &i in perm {
            self.issue_push(i);
        }
    }
}

/// Single-threaded counterpart of [`EpochFrontier`]: the same dedup-on-
/// insert epoch protocol, but with a plain bool membership array and a
/// plain `Vec` accumulator. Wake pushes are the hottest frontier operation
/// (one per container member per update), so the sequential driver must
/// not pay test-and-set atomics for them.
struct SeqFrontier {
    queued: Vec<bool>,
    next: Vec<u32>,
    rank: Vec<u32>,
    snapshot: Vec<u32>,
}

impl SeqFrontier {
    fn seeded(perm: &[u32], awake: Option<&[u32]>) -> Self {
        let n = perm.len();
        let mut rank = vec![0u32; n];
        for (k, &i) in perm.iter().enumerate() {
            rank[i as usize] = k as u32;
        }
        let mut f = match awake {
            Some(_) => SeqFrontier {
                queued: vec![false; n],
                next: Vec::new(),
                rank,
                snapshot: Vec::with_capacity(n),
            },
            None => SeqFrontier {
                queued: vec![true; n],
                next: perm.to_vec(),
                rank,
                snapshot: Vec::with_capacity(n),
            },
        };
        if let Some(ids) = awake {
            for &i in ids {
                f.push(i as usize);
            }
        }
        f
    }

    #[inline]
    fn push(&mut self, id: usize) {
        if !self.queued[id] {
            self.queued[id] = true;
            self.next.push(id as u32);
        }
    }

    /// Swaps the accumulated worklist into the sweep snapshot, ordered by
    /// permutation rank. Membership flags stay set until `unmark`.
    fn begin_sweep(&mut self) {
        std::mem::swap(&mut self.snapshot, &mut self.next);
        self.next.clear();
        let rank = &self.rank;
        self.snapshot.sort_unstable_by_key(|&i| rank[i as usize]);
    }

    fn reschedule_all(&mut self, perm: &[u32]) {
        for &i in perm {
            self.push(i as usize);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn and_sequential<A: SweepAccess>(
    access: &A,
    cfg: &LocalConfig,
    perm: &[u32],
    mode: SweepMode,
    tau_init: Option<Vec<u32>>,
    awake: Option<&[u32]>,
    cancel: &CancelToken,
    observer: &mut dyn FnMut(IterationEvent<'_>),
) -> Result<ConvergenceResult, Cancelled> {
    let armed = cancel.is_armed();
    let n = access.len();
    let mut tau = tau_init.unwrap_or_else(|| access.initial());
    let mut buf = HBuffer::new();

    let mut frontier =
        if mode == SweepMode::Frontier { Some(SeqFrontier::seeded(perm, awake)) } else { None };
    // Wake flags, FlagScan only (all r-cliques start active, as in the
    // paper, unless an initial awake set narrows it); the other modes
    // never read them, so don't pay the O(n).
    let mut active = match (mode, awake) {
        (SweepMode::FlagScan, None) => vec![true; n],
        (SweepMode::FlagScan, Some(ids)) => {
            let mut a = vec![false; n];
            ids.iter().for_each(|&i| a[i as usize] = true);
            a
        }
        _ => Vec::new(),
    };

    let mut scheduler = SchedulerStats::from_chunks(vec![0]);
    let mut updates_per_iter = Vec::new();
    let mut processed_per_iter = Vec::new();
    let mut converged = false;
    let mut sweeps = 0usize;

    loop {
        if n == 0 {
            converged = true;
            break;
        }
        if armed {
            cancel.check("and sweep")?;
        }
        let mut updates = 0usize;
        let mut processed = 0usize;
        match &mut frontier {
            Some(f) => {
                f.begin_sweep();
                for idx in 0..f.snapshot.len() {
                    let i = f.snapshot[idx] as usize;
                    // Unmark before recomputing: a same-sweep neighbor
                    // update re-schedules us (the paper's line 17).
                    f.queued[i] = false;
                    processed += 1;
                    let old = tau[i];
                    let new =
                        access.recompute(i, old, |o| tau[o], &mut buf, cfg.preserve_check).min(old);
                    if new != old {
                        debug_assert!(new < old);
                        tau[i] = new;
                        updates += 1;
                        let SeqFrontier { queued, next, .. } = &mut *f;
                        access.wake(i, |o| {
                            if !queued[o] {
                                queued[o] = true;
                                next.push(o as u32);
                            }
                        });
                    }
                }
            }
            None => {
                for &iu in perm {
                    let i = iu as usize;
                    if mode == SweepMode::FlagScan && !active[i] {
                        scheduler.items_skipped += 1;
                        continue;
                    }
                    processed += 1;
                    // Mark idle before recomputing; a same-sweep neighbor
                    // update re-wakes us (the paper's line 17 semantics).
                    if mode == SweepMode::FlagScan {
                        active[i] = false;
                    }
                    let old = tau[i];
                    let new =
                        access.recompute(i, old, |o| tau[o], &mut buf, cfg.preserve_check).min(old);
                    if new != old {
                        debug_assert!(new < old);
                        tau[i] = new;
                        updates += 1;
                        if mode == SweepMode::FlagScan {
                            access.wake(i, |o| active[o] = true);
                        }
                    }
                }
            }
        }
        scheduler.chunks_per_worker[0] += 1;
        scheduler.items_processed += processed as u64;
        sweeps += 1;
        updates_per_iter.push(updates);
        processed_per_iter.push(processed);
        observer(IterationEvent { iteration: sweeps, tau: &tau, updates, processed });

        if updates == 0 {
            // With notifications, a zero-update sweep may simply mean
            // "nobody was awake"; certify with one full sweep.
            if processed < n {
                match &mut frontier {
                    Some(f) => f.reschedule_all(perm),
                    None => active.iter_mut().for_each(|a| *a = true),
                }
                continue;
            }
            converged = true;
            break;
        }
        if cfg.stable_enough(updates, n) {
            break; // stability stopping rule: good enough, not exact
        }
        if let Some(cap) = cfg.max_iterations {
            if sweeps >= cap {
                break;
            }
        }
    }

    Ok(ConvergenceResult {
        tau,
        sweeps,
        converged,
        updates_per_iter,
        processed_per_iter,
        scheduler,
    })
}

#[allow(clippy::too_many_arguments)]
fn and_parallel<A: SweepAccess>(
    access: &A,
    cfg: &LocalConfig,
    perm: &[u32],
    mode: SweepMode,
    tau_init: Option<Vec<u32>>,
    awake: Option<&[u32]>,
    cancel: &CancelToken,
    observer: &mut dyn FnMut(IterationEvent<'_>),
) -> Result<ConvergenceResult, Cancelled> {
    let armed = cancel.is_armed();
    // First cancellation observed inside a frontier drain; the observer
    // also raises `abort` so every free-running peer exits its pop loop.
    let cancel_info: Mutex<Option<Cancelled>> = Mutex::new(None);
    let n = access.len();
    let tau = AtomicU32Vec::from_vec(tau_init.unwrap_or_else(|| access.initial()));

    let frontier =
        if mode == SweepMode::Frontier { Some(DrainFrontier::seeded(perm, awake)) } else { None };
    // Wake flags, FlagScan only; Frontier/FullScan never touch them.
    let active =
        AtomicBitset::new(if mode == SweepMode::FlagScan { n } else { 0 }, awake.is_none());
    if mode == SweepMode::FlagScan {
        if let Some(ids) = awake {
            for &i in ids {
                active.set(i as usize);
            }
        }
    }

    let mut scheduler = SchedulerStats::default();
    let mut updates_per_iter = Vec::new();
    let mut processed_per_iter = Vec::new();
    let mut converged = false;
    let mut sweeps = 0usize;
    let mut tau_snapshot = vec![0u32; n];

    loop {
        if n == 0 {
            converged = true;
            break;
        }
        if armed {
            cancel.check("and sweep")?;
        }
        let updates = AtomicUsize::new(0);
        let processed = AtomicUsize::new(0);
        let skipped = AtomicU64::new(0);
        let tau_ref = &tau;
        let updates_ref = &updates;
        let processed_ref = &processed;

        // The frontier path is a barrier-free continuous drain; the scan
        // paths hand out chunks through the shared scheduler, so the
        // dynamic-vs-static policy ablation applies to them unchanged.
        let sweep_stats = match &frontier {
            Some(f) => {
                let worklist = &f.worklist;
                let quiesce = &f.quiesce;
                let abort = AtomicBool::new(false);
                let abort_ref = &abort;
                let cancel_info_ref = &cancel_info;
                let threads = cfg.parallel.threads.max(1);
                let mut per_worker = vec![0usize; threads];
                std::thread::scope(|s| {
                    let handles: Vec<_> = (0..threads)
                        .map(|_| {
                            s.spawn(move || {
                                let mut buf = HBuffer::new();
                                let mut claims = 0usize;
                                let mut local_updates = 0usize;
                                let mut local_processed = 0usize;
                                let mut idle = 0u32;
                                let mut since_check = 0u32;
                                loop {
                                    // Quiescence cannot be reached once a
                                    // peer aborts with unretired items, so
                                    // the abort flag is the drain's second
                                    // exit — checked every iteration,
                                    // including the idle spin (which loops
                                    // back here via `continue`).
                                    if armed && abort_ref.load(Ordering::Relaxed) {
                                        break;
                                    }
                                    let Some(iu) = worklist.pop() else {
                                        // Empty is not done: a peer may be
                                        // mid-item about to wake neighbors.
                                        // Only quiescence (all issued work
                                        // retired) ends the round.
                                        if quiesce.quiescent() {
                                            break;
                                        }
                                        idle += 1;
                                        if idle > 4 {
                                            // Oversubscribed hosts: give
                                            // the worker holding the tail
                                            // of the drain the core.
                                            std::thread::yield_now();
                                        } else {
                                            std::hint::spin_loop();
                                        }
                                        continue;
                                    };
                                    idle = 0;
                                    claims += 1;
                                    since_check += 1;
                                    if armed && since_check >= AND_CANCEL_POP_BATCH {
                                        since_check = 0;
                                        if let Err(c) = cancel.check("and frontier") {
                                            let mut slot =
                                                cancel_info_ref.lock().expect("cancel slot");
                                            if slot.is_none() {
                                                *slot = Some(c);
                                            }
                                            drop(slot);
                                            abort_ref.store(true, Ordering::Relaxed);
                                            // The popped item is still
                                            // processed below — a worker
                                            // never abandons a held item,
                                            // bounding overshoot to the
                                            // pop batch plus this one.
                                        }
                                    }
                                    let i = iu as usize;
                                    // Unmark before recomputing: a
                                    // concurrent neighbor update re-issues
                                    // us (the paper's line 17).
                                    worklist.unmark(iu);
                                    local_processed += 1;
                                    let old = tau_ref.get(i);
                                    let new = access
                                        .recompute(
                                            i,
                                            old,
                                            |o| tau_ref.get(o),
                                            &mut buf,
                                            cfg.preserve_check,
                                        )
                                        .min(old);
                                    if new != old {
                                        tau_ref.set(i, new);
                                        local_updates += 1;
                                        access.wake(i, |o| f.issue_push(o as u32));
                                    }
                                    // Retire only after the item's own
                                    // issues are published.
                                    quiesce.retire(1);
                                }
                                (claims, local_updates, local_processed)
                            })
                        })
                        .collect();
                    for (w, h) in handles.into_iter().enumerate() {
                        let (claims, lu, lp) = h.join().expect("And drain worker panicked");
                        per_worker[w] = claims;
                        updates_ref.fetch_add(lu, Ordering::Relaxed);
                        processed_ref.fetch_add(lp, Ordering::Relaxed);
                    }
                });
                SchedulerStats::from_chunks(per_worker)
            }
            None => {
                let active_ref = &active;
                let skipped_ref = &skipped;
                parallel_for_chunks_with(n, cfg.parallel, HBuffer::new, |buf, range| {
                    let mut local_updates = 0usize;
                    let mut local_processed = 0usize;
                    let mut local_skipped = 0u64;
                    for k in range {
                        let i = perm[k] as usize;
                        if mode == SweepMode::FlagScan && !active_ref.get(i) {
                            local_skipped += 1;
                            continue;
                        }
                        local_processed += 1;
                        if mode == SweepMode::FlagScan {
                            active_ref.clear(i);
                        }
                        let old = tau_ref.get(i);
                        let new = access
                            .recompute(i, old, |o| tau_ref.get(o), buf, cfg.preserve_check)
                            .min(old);
                        if new != old {
                            tau_ref.set(i, new);
                            local_updates += 1;
                            if mode == SweepMode::FlagScan {
                                access.wake(i, |o| {
                                    active_ref.set(o);
                                });
                            }
                        }
                    }
                    if local_updates > 0 {
                        updates_ref.fetch_add(local_updates, Ordering::Relaxed);
                    }
                    if local_processed > 0 {
                        processed_ref.fetch_add(local_processed, Ordering::Relaxed);
                    }
                    if local_skipped > 0 {
                        skipped_ref.fetch_add(local_skipped, Ordering::Relaxed);
                    }
                })
            }
        };

        if let Some(c) = cancel_info.lock().expect("cancel slot").take() {
            return Err(c);
        }
        scheduler.merge(&sweep_stats);
        sweeps += 1;
        let u = updates.load(Ordering::Relaxed);
        let p = processed.load(Ordering::Relaxed);
        scheduler.items_processed += p as u64;
        scheduler.items_skipped += skipped.load(Ordering::Relaxed);
        updates_per_iter.push(u);
        processed_per_iter.push(p);
        tau.copy_to_slice(&mut tau_snapshot);
        observer(IterationEvent {
            iteration: sweeps,
            tau: &tau_snapshot,
            updates: u,
            processed: p,
        });

        if u == 0 {
            // Races (or sleeping cliques) could hide pending work: certify
            // the fixed point with a full sweep before declaring victory.
            if p < n {
                match &frontier {
                    Some(f) => f.reschedule_all(perm),
                    // Only FlagScan can under-process a sweep (FullScan
                    // always visits all n, so `p < n` is unreachable there
                    // and the empty bitset is never touched).
                    None => {
                        for i in 0..n {
                            active.set(i);
                        }
                    }
                }
                continue;
            }
            converged = true;
            break;
        }
        if cfg.stable_enough(u, n) {
            break; // stability stopping rule: good enough, not exact
        }
        if let Some(cap) = cfg.max_iterations {
            if sweeps >= cap {
                break;
            }
        }
    }

    Ok(ConvergenceResult {
        tau: tau.into_vec(),
        sweeps,
        converged,
        updates_per_iter,
        processed_per_iter,
        scheduler,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::peel::peel;
    use crate::snd::snd;
    use crate::space::{CoreSpace, Nucleus34Space, TrussSpace};
    use hdsd_graph::graph_from_edges;

    fn paper_fig2_graph() -> hdsd_graph::CsrGraph {
        graph_from_edges([(0, 4), (0, 1), (1, 2), (1, 3), (2, 3), (4, 5)])
    }

    #[test]
    fn and_matches_peeling_all_orders() {
        let g = hdsd_datasets::holme_kim(250, 4, 0.5, 21);
        let sp = CoreSpace::new(&g);
        let exact = peel(&sp).kappa;
        for order in [Order::Natural, Order::Reverse, Order::Random(7), Order::IncreasingDegree] {
            let r = and(&sp, &LocalConfig::sequential(), &order);
            assert_eq!(r.tau, exact, "order {order:?}");
            assert!(r.converged);
        }
    }

    #[test]
    fn theorem4_peel_order_converges_in_one_iteration() {
        // Processing in non-decreasing κ order => single updating sweep.
        let g = hdsd_datasets::holme_kim(300, 5, 0.5, 4);
        for use_truss in [false, true] {
            let (iters, ok) = if use_truss {
                let sp = TrussSpace::precomputed(&g);
                let p = peel(&sp);
                let r = and(&sp, &LocalConfig::sequential(), &Order::Custom(p.order.clone()));
                (r.iterations_to_converge(), r.tau == p.kappa)
            } else {
                let sp = CoreSpace::new(&g);
                let p = peel(&sp);
                let r = and(&sp, &LocalConfig::sequential(), &Order::Custom(p.order.clone()));
                (r.iterations_to_converge(), r.tau == p.kappa)
            };
            assert!(ok);
            assert!(iters <= 1, "Theorem 4 violated: {iters} updating iterations");
        }
    }

    #[test]
    fn paper_fig2_alphabetical_vs_kappa_order() {
        // The paper's Figure 2: alphabetical order {a..f} needs two
        // updating iterations; the {f,e,a,b,c,d} order (non-decreasing κ)
        // converges in one.
        let g = paper_fig2_graph();
        let sp = CoreSpace::new(&g);
        let alpha = and(&sp, &LocalConfig::sequential(), &Order::Natural);
        assert_eq!(alpha.tau, vec![1, 2, 2, 2, 1, 1]);
        assert_eq!(alpha.iterations_to_converge(), 2);
        // f=5, e=4, a=0, b=1, c=2, d=3
        let good = and(&sp, &LocalConfig::sequential(), &Order::Custom(vec![5, 4, 0, 1, 2, 3]));
        assert_eq!(good.tau, vec![1, 2, 2, 2, 1, 1]);
        assert_eq!(good.iterations_to_converge(), 1);
    }

    #[test]
    fn and_never_needs_more_updating_sweeps_than_snd() {
        for seed in [1u64, 2, 3] {
            let g = hdsd_datasets::erdos_renyi_gnm(150, 600, seed);
            let sp = CoreSpace::new(&g);
            let s = snd(&sp, &LocalConfig::sequential());
            let a = and(&sp, &LocalConfig::sequential(), &Order::Natural);
            assert_eq!(s.tau, a.tau);
            assert!(
                a.iterations_to_converge() <= s.iterations_to_converge(),
                "seed {seed}: AND {} > SND {}",
                a.iterations_to_converge(),
                s.iterations_to_converge()
            );
        }
    }

    #[test]
    fn notification_reduces_processed_work() {
        let g = hdsd_datasets::holme_kim(400, 5, 0.6, 11);
        let sp = TrussSpace::precomputed(&g);
        let with = and(&sp, &LocalConfig::sequential(), &Order::Natural);
        let without = and_without_notification(&sp, &LocalConfig::sequential(), &Order::Natural);
        assert_eq!(with.tau, without.tau);
        assert!(
            with.total_processed() < without.total_processed(),
            "notification should skip plateau work: {} vs {}",
            with.total_processed(),
            without.total_processed()
        );
    }

    #[test]
    fn sweep_modes_agree_and_frontier_skips_nothing() {
        let g = hdsd_datasets::holme_kim(350, 5, 0.6, 17);
        let sp = TrussSpace::precomputed(&g);
        let exact = peel(&sp).kappa;

        let frontier =
            and(&sp, &LocalConfig::sequential().sweep_mode(SweepMode::Frontier), &Order::Natural);
        let flags =
            and(&sp, &LocalConfig::sequential().sweep_mode(SweepMode::FlagScan), &Order::Natural);
        let full =
            and(&sp, &LocalConfig::sequential().sweep_mode(SweepMode::FullScan), &Order::Natural);

        for r in [&frontier, &flags, &full] {
            assert_eq!(r.tau, exact);
            assert!(r.converged);
        }
        assert_eq!(frontier.scheduler.items_skipped, 0, "frontier never visits idle work");
        assert!(flags.scheduler.items_skipped > 0, "flag scan pays idle checks");
        assert_eq!(
            flags.scheduler.items_skipped + flags.scheduler.items_processed,
            (sp.num_cliques() * flags.sweeps) as u64,
            "flag scan touches n items every sweep"
        );
        assert!(frontier.total_processed() < full.total_processed());
    }

    #[test]
    fn flat_cache_does_not_change_behaviour() {
        let g = hdsd_datasets::holme_kim(300, 5, 0.5, 23);
        let sp = TrussSpace::precomputed(&g);
        let cached = and(&sp, &LocalConfig::sequential(), &Order::Natural);
        let walked =
            and(&sp, &LocalConfig::sequential().without_container_cache(), &Order::Natural);
        assert_eq!(cached.tau, walked.tau);
        assert_eq!(cached.sweeps, walked.sweeps);
        assert_eq!(cached.processed_per_iter, walked.processed_per_iter);
        // A budget too small for the cache must silently fall back.
        let tiny = and(&sp, &LocalConfig::sequential().container_cache_budget(1), &Order::Natural);
        assert_eq!(tiny.tau, walked.tau);
    }

    #[test]
    fn parallel_and_matches_exact_results() {
        let g = hdsd_datasets::holme_kim(300, 5, 0.5, 33);
        let core = CoreSpace::new(&g);
        let exact = peel(&core).kappa;
        for threads in [2, 4] {
            for notification in [true, false] {
                let cfg = LocalConfig::with_threads(threads);
                let r = and_with_options(&core, &cfg, &Order::Natural, notification, &mut |_| {});
                assert_eq!(r.tau, exact, "threads={threads} notif={notification}");
                assert!(r.converged);
            }
        }
        let truss = TrussSpace::precomputed(&g);
        let exact_t = peel(&truss).kappa;
        for mode in [SweepMode::Frontier, SweepMode::FlagScan] {
            let r = and(&truss, &LocalConfig::with_threads(4).sweep_mode(mode), &Order::Natural);
            assert_eq!(r.tau, exact_t, "mode {mode:?}");
            assert!(r.converged);
        }
    }

    #[test]
    fn parallel_frontier_reports_chunk_telemetry() {
        let g = hdsd_datasets::holme_kim(400, 5, 0.5, 3);
        let sp = CoreSpace::new(&g);
        let cfg = LocalConfig::with_threads(4);
        let r = and(&sp, &cfg, &Order::Natural);
        assert_eq!(r.scheduler.chunks_per_worker.len(), 4);
        assert!(r.scheduler.total_chunks() > 0);
        assert_eq!(r.scheduler.items_processed, r.total_processed());
    }

    #[test]
    fn and_on_34_nucleus() {
        let g = hdsd_datasets::planted_partition(&[12, 12, 12], 0.8, 0.05, 5);
        let sp = Nucleus34Space::precomputed(&g);
        let exact = peel(&sp).kappa;
        let r = and(&sp, &LocalConfig::sequential(), &Order::Natural);
        assert_eq!(r.tau, exact);
    }

    #[test]
    fn capped_and_still_upper_bounds_kappa() {
        let g = hdsd_datasets::erdos_renyi_gnm(120, 500, 9);
        let sp = CoreSpace::new(&g);
        let exact = peel(&sp).kappa;
        let r = and(&sp, &LocalConfig::sequential().max_iterations(1), &Order::Natural);
        for (i, (&a, &k)) in r.tau.iter().zip(&exact).enumerate() {
            assert!(a >= k, "τ[{i}]");
        }
    }

    #[test]
    fn cancelled_and_aborts_sequential_and_parallel() {
        let g = hdsd_datasets::holme_kim(800, 5, 0.5, 41);
        let sp = CoreSpace::new(&g);
        let n = sp.num_cliques();
        let tau: Vec<u32> = (0..n).map(|i| sp.degree(i)).collect();
        let awake: Vec<u32> = (0..n as u32).collect();
        let past = std::time::Instant::now() - std::time::Duration::from_millis(1);
        for threads in [1usize, 4] {
            let cfg = if threads == 1 {
                LocalConfig::sequential()
            } else {
                LocalConfig::with_threads(threads)
            };
            // An expired deadline trips at the first sweep boundary.
            let err = and_resume_awake_within(
                &sp,
                &cfg,
                &Order::Natural,
                tau.clone(),
                &awake,
                &CancelToken::with_deadline(Some(past)),
                &mut |_| {},
            )
            .unwrap_err();
            assert_eq!(err.message(), "deadline exceeded (and sweep)", "threads={threads}");
            // A generous deadline is invisible: exact κ as ever.
            let far = std::time::Instant::now() + std::time::Duration::from_secs(3600);
            let ok = and_resume_awake_within(
                &sp,
                &cfg,
                &Order::Natural,
                tau.clone(),
                &awake,
                &CancelToken::with_deadline(Some(far)),
                &mut |_| {},
            )
            .expect("generous deadline");
            assert_eq!(ok.tau, peel(&sp).kappa, "threads={threads}");
        }
        // A flag raised mid-run stops the parallel frontier drain between
        // pop batches (stage is either the sweep boundary or the frontier,
        // depending on where the trip lands).
        let err = and_resume_awake_within(
            &sp,
            &LocalConfig::with_threads(4),
            &Order::Natural,
            tau.clone(),
            &awake,
            &CancelToken::tripping_after_checks(2),
            &mut |_| {},
        )
        .unwrap_err();
        assert!(
            err.stage == "and sweep" || err.stage == "and frontier",
            "unexpected stage {:?}",
            err.stage
        );
    }

    #[test]
    fn random_order_is_deterministic_per_seed() {
        let g = hdsd_datasets::erdos_renyi_gnm(60, 150, 2);
        let sp = CoreSpace::new(&g);
        let p1 = Order::Random(5).permutation(&sp);
        let p2 = Order::Random(5).permutation(&sp);
        let p3 = Order::Random(6).permutation(&sp);
        assert_eq!(p1, p2);
        assert_ne!(p1, p3);
        let mut sorted = p1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..60u32).collect::<Vec<_>>());
    }
}
