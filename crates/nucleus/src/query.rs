//! Query-driven local estimation of κ indices (the paper's §1/§6
//! query-driven scenario).
//!
//! The peeling algorithm cannot answer "what is the core number of this
//! vertex?" without decomposing the entire graph. The local formulation
//! can: `τ_t(q)` depends only on the t-hop neighborhood of `q` in the
//! r-clique adjacency (neighbors = r-cliques sharing an s-clique), so a
//! query is answered by pulling exactly that neighborhood and running `t`
//! synchronous updates on it. The estimate equals the global Snd value
//! `τ_t(q)` bit-for-bit — Theorem 1 then gives the guarantee
//! `κ(q) ≤ estimate ≤ d_s(q)`, with the upper bound shrinking per
//! iteration.

use hdsd_hindex::HBuffer;
use std::collections::HashMap;

use crate::space::CliqueSpace;

/// Result of one local estimation.
#[derive(Clone, Debug)]
pub struct QueryEstimate {
    /// Estimated κ (equals the global `τ_t` at the query).
    pub estimate: u32,
    /// r-cliques touched (size of the explored neighborhood).
    pub explored: usize,
    /// Iterations performed (`t`).
    pub iterations: usize,
}

/// Estimates κ of r-clique `q` with `t` iterations of the local update,
/// touching only the `t`-hop neighborhood of `q`.
pub fn local_estimate<S: CliqueSpace>(space: &S, q: usize, t: usize) -> QueryEstimate {
    assert!(q < space.num_cliques(), "query clique out of range");
    // BFS distances up to t in the r-clique adjacency.
    let mut dist: HashMap<usize, u32> = HashMap::new();
    dist.insert(q, 0);
    let mut frontier = vec![q];
    for d in 1..=t as u32 {
        let mut next = Vec::new();
        for &i in &frontier {
            space.for_each_neighbor(i, |o| {
                if let std::collections::hash_map::Entry::Vacant(e) = dist.entry(o) {
                    e.insert(d);
                    next.push(o);
                }
            });
        }
        frontier = next;
        if frontier.is_empty() {
            break;
        }
    }

    // τ values for the explored ball; everything outside keeps τ0 = d_s,
    // which is only ever *read* (never recomputed), preserving equality
    // with the global Snd trajectory.
    let mut tau: HashMap<usize, u32> = HashMap::with_capacity(dist.len());
    for &i in dist.keys() {
        tau.insert(i, space.degree(i));
    }

    let mut buf = HBuffer::new();
    let mut curr: Vec<(usize, u32)> = Vec::new();
    for j in 1..=t as u32 {
        // Recompute τ_j for r-cliques within distance t - j: their next
        // value needs neighbors' τ_{j-1}, available within distance
        // t - j + 1.
        let radius = (t as u32) - j;
        curr.clear();
        for (&i, &d) in &dist {
            if d <= radius {
                let old = tau[&i];
                // Reads may touch cliques outside the explored ball only
                // when d == radius boundary neighbors were explored at
                // d + 1 <= t; cliques never explored read their d_s.
                let read =
                    |o: usize| -> u32 { tau.get(&o).copied().unwrap_or_else(|| space.degree(o)) };
                let new = update_one_map(space, i, old, &read, &mut buf);
                curr.push((i, new));
            }
        }
        for &(i, v) in &curr {
            tau.insert(i, v);
        }
    }

    QueryEstimate { estimate: tau[&q], explored: dist.len(), iterations: t }
}

/// `update_one` against a map-backed τ lookup.
fn update_one_map<S: CliqueSpace>(
    space: &S,
    i: usize,
    old: u32,
    read: &impl Fn(usize) -> u32,
    buf: &mut HBuffer,
) -> u32 {
    if old == 0 {
        return 0;
    }
    let deg = space.degree(i) as usize;
    let mut session = buf.session(deg);
    space.for_each_container(i, |others| {
        let mut m = u32::MAX;
        for &o in others {
            m = m.min(read(o));
        }
        session.push(m);
    });
    session.finish()
}

/// Estimates core numbers (κ₂) for a set of query vertices.
pub fn estimate_core_numbers(
    graph: &hdsd_graph::CsrGraph,
    queries: &[hdsd_graph::VertexId],
    iterations: usize,
) -> Vec<QueryEstimate> {
    let space = crate::space::CoreSpace::new(graph);
    queries.iter().map(|&v| local_estimate(&space, v as usize, iterations)).collect()
}

/// Estimates truss numbers (κ₃) for a set of query edges.
pub fn estimate_truss_numbers(
    graph: &hdsd_graph::CsrGraph,
    query_edges: &[hdsd_graph::EdgeId],
    iterations: usize,
) -> Vec<QueryEstimate> {
    let space = crate::space::TrussSpace::on_the_fly(graph);
    query_edges.iter().map(|&e| local_estimate(&space, e as usize, iterations)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::convergence::LocalConfig;
    use crate::peel::peel;
    use crate::snd::snd_with_observer;
    use crate::space::{CoreSpace, TrussSpace};

    #[test]
    fn estimate_matches_global_snd_trajectory() {
        let g = hdsd_datasets::holme_kim(200, 4, 0.5, 7);
        let sp = CoreSpace::new(&g);
        // Record the exact global τ_t values.
        let mut snapshots: Vec<Vec<u32>> = Vec::new();
        snd_with_observer(&sp, &LocalConfig::sequential(), &mut |ev| {
            snapshots.push(ev.tau.to_vec());
        });
        for &q in &[0usize, 17, 55, 123, 199] {
            for t in 1..=3usize {
                let est = local_estimate(&sp, q, t);
                assert_eq!(
                    est.estimate,
                    snapshots[t - 1][q],
                    "query {q} at t={t} disagrees with global Snd"
                );
            }
        }
    }

    #[test]
    fn estimates_bound_kappa_from_above_and_shrink() {
        let g = hdsd_datasets::erdos_renyi_gnm(150, 600, 2);
        let sp = CoreSpace::new(&g);
        let exact = peel(&sp).kappa;
        for q in [3usize, 42, 99] {
            let mut prev = u32::MAX;
            for t in 0..5 {
                let est = local_estimate(&sp, q, t);
                assert!(est.estimate >= exact[q], "estimate below κ");
                assert!(est.estimate <= prev, "estimate not monotone");
                prev = est.estimate;
            }
        }
    }

    #[test]
    fn zero_iterations_returns_degree() {
        let g = hdsd_datasets::erdos_renyi_gnm(50, 120, 4);
        let sp = CoreSpace::new(&g);
        let est = local_estimate(&sp, 7, 0);
        assert_eq!(est.estimate, sp.degree(7));
        assert_eq!(est.explored, 1);
    }

    #[test]
    fn explored_ball_grows_with_iterations() {
        let g = hdsd_datasets::holme_kim(300, 3, 0.4, 11);
        let sp = CoreSpace::new(&g);
        let e1 = local_estimate(&sp, 5, 1);
        let e3 = local_estimate(&sp, 5, 3);
        assert!(e3.explored >= e1.explored);
        assert!(e1.explored <= g.num_vertices());
    }

    #[test]
    fn truss_query_helper() {
        let g = hdsd_datasets::holme_kim(120, 5, 0.6, 5);
        let tsp = TrussSpace::on_the_fly(&g);
        let exact = peel(&tsp).kappa;
        let queries: Vec<u32> = vec![0, 10, 20];
        let ests = estimate_truss_numbers(&g, &queries, 4);
        for (q, est) in queries.iter().zip(&ests) {
            assert!(est.estimate >= exact[*q as usize]);
        }
    }

    #[test]
    fn core_query_helper_converges_to_exact_on_small_graph() {
        let g = hdsd_datasets::erdos_renyi_gnm(40, 90, 9);
        let sp = CoreSpace::new(&g);
        let exact = peel(&sp).kappa;
        // Enough iterations: estimates equal exact κ.
        let queries: Vec<u32> = (0..40).collect();
        let ests = estimate_core_numbers(&g, &queries, 40);
        for (q, est) in queries.iter().zip(&ests) {
            assert_eq!(est.estimate, exact[*q as usize], "vertex {q}");
        }
    }
}
